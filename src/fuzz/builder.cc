#include "fuzz/builder.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::fuzz {

namespace {

/** Distinguishes the mutation stream from the generation stream of the
 *  same (seed, index) pair. */
constexpr std::uint64_t kMutateStream = 0x6d75746174656463ULL;

/** Uniform divisor of @p period (period <= kMaxPeriod, so two passes
 *  beat building a divisor list — no allocation). */
std::uint32_t
randomDivisor(sim::Rng &rng, std::uint32_t period)
{
    std::uint32_t count = 0;
    for (std::uint32_t d = 1; d <= period; ++d)
        count += period % d == 0 ? 1 : 0;
    std::uint32_t pick = static_cast<std::uint32_t>(rng.below(count));
    for (std::uint32_t d = 1; d <= period; ++d) {
        if (period % d != 0)
            continue;
        if (pick == 0)
            return d;
        pick -= 1;
    }
    LEAKY_ASSERT(false, "unreachable: divisor pick out of range");
    return 1;
}

void
rollTuple(sim::Rng &rng, std::uint32_t period, std::uint32_t max_amp,
          Aggressor *agg)
{
    agg->freq = randomDivisor(rng, period);
    agg->phase = static_cast<std::uint32_t>(rng.below(period / agg->freq));
    agg->amp = static_cast<std::uint32_t>(rng.range(1, max_amp));
}

/** Deterministic density fix-up: flatten amplitudes (in listed order)
 *  until the expansion fits kMaxAccesses. Only reachable with
 *  user-widened FuzzParams bounds; the defaults can never overflow. */
void
fitDensity(HammerPattern *p)
{
    for (auto &agg : p->aggressors) {
        if (p->accessesPerPeriod() <= HammerPattern::kMaxAccesses)
            return;
        agg.amp = 1;
    }
}

} // namespace

PatternBuilder::PatternBuilder(FuzzParams params)
    : params_(std::move(params))
{
    LEAKY_ASSERT(!params_.periods.empty(), "no periods to draw from");
    LEAKY_ASSERT(!params_.gaps.empty(), "no gaps to draw from");
    LEAKY_ASSERT(params_.min_rows >= 1 &&
                     params_.min_rows <= params_.max_rows &&
                     params_.max_rows <= HammerPattern::kMaxRows,
                 "row bounds out of range");
    LEAKY_ASSERT(params_.max_aggressors >= params_.max_rows &&
                     params_.max_aggressors <=
                         HammerPattern::kMaxAggressors,
                 "aggressor bound out of range");
    LEAKY_ASSERT(params_.max_amplitude >= 1 &&
                     params_.max_amplitude <=
                         HammerPattern::kMaxAmplitude,
                 "amplitude bound out of range");
    for (const auto period : params_.periods)
        LEAKY_ASSERT(period >= 1 && period <= HammerPattern::kMaxPeriod,
                     "period %u out of range", period);
    for (const auto gap : params_.gaps)
        LEAKY_ASSERT(gap <= HammerPattern::kMaxGap,
                     "gap %llu out of range",
                     static_cast<unsigned long long>(gap));
}

void
PatternBuilder::generateInto(std::uint64_t index,
                             HammerPattern *out) const
{
    sim::Rng rng(sim::seedFanout(params_.seed, index));
    out->period = params_.periods[rng.below(params_.periods.size())];
    out->gap = params_.gaps[rng.below(params_.gaps.size())];
    const auto rows = static_cast<std::uint32_t>(
        rng.range(params_.min_rows, params_.max_rows));
    const auto n_aggs = static_cast<std::uint32_t>(
        rng.range(rows, params_.max_aggressors));
    out->aggressors.clear();
    for (std::uint32_t i = 0; i < n_aggs; ++i) {
        Aggressor agg;
        // The first `rows` tuples cover each row slot once; extras
        // re-visit random slots with their own frequency/phase.
        agg.row = i < rows ? i
                           : static_cast<std::uint32_t>(rng.below(rows));
        rollTuple(rng, out->period, params_.max_amplitude, &agg);
        out->aggressors.push_back(agg);
    }
    fitDensity(out);
    std::string error;
    LEAKY_ASSERT(out->validate(&error), "generated invalid pattern: %s",
                 error.c_str());
}

HammerPattern
PatternBuilder::generate(std::uint64_t index) const
{
    HammerPattern out;
    generateInto(index, &out);
    return out;
}

void
PatternBuilder::mutateInto(const HammerPattern &src, std::uint64_t index,
                           HammerPattern *dst) const
{
    sim::Rng rng(sim::seedFanout(params_.seed ^ kMutateStream, index));
    *dst = src;
    const auto pick = [&rng, dst]() -> Aggressor & {
        return dst->aggressors[rng.below(dst->aggressors.size())];
    };
    switch (rng.below(7)) {
      case 0: { // Re-roll one tuple's frequency/phase.
        Aggressor &agg = pick();
        const std::uint32_t amp = agg.amp;
        rollTuple(rng, dst->period, params_.max_amplitude, &agg);
        agg.amp = amp;
        break;
      }
      case 1: // Re-roll one tuple's amplitude.
        pick().amp = static_cast<std::uint32_t>(
            rng.range(1, params_.max_amplitude));
        break;
      case 2: // Re-point one tuple at another row slot.
        pick().row =
            static_cast<std::uint32_t>(rng.below(params_.max_rows));
        break;
      case 3: // Grow: one more aggressor tuple (if room).
        if (dst->aggressors.size() <
            static_cast<std::size_t>(params_.max_aggressors)) {
            Aggressor agg;
            agg.row = static_cast<std::uint32_t>(
                rng.below(params_.max_rows));
            rollTuple(rng, dst->period, params_.max_amplitude, &agg);
            dst->aggressors.push_back(agg);
        } else {
            rollTuple(rng, dst->period, params_.max_amplitude, &pick());
        }
        break;
      case 4: // Shrink: drop one aggressor (if more than one).
        if (dst->aggressors.size() > 1) {
            const auto victim = rng.below(dst->aggressors.size());
            dst->aggressors.erase(dst->aggressors.begin() +
                                  static_cast<std::ptrdiff_t>(victim));
        } else {
            rollTuple(rng, dst->period, params_.max_amplitude, &pick());
        }
        break;
      case 5: // New pacing gap.
        dst->gap = params_.gaps[rng.below(params_.gaps.size())];
        break;
      default: { // New period: every tuple re-fits the new divisors.
        dst->period =
            params_.periods[rng.below(params_.periods.size())];
        for (auto &agg : dst->aggressors) {
            const std::uint32_t amp = agg.amp;
            rollTuple(rng, dst->period, params_.max_amplitude, &agg);
            agg.amp = amp;
        }
        break;
      }
    }
    fitDensity(dst);
    std::string error;
    LEAKY_ASSERT(dst->validate(&error), "mutated invalid pattern: %s",
                 error.c_str());
}

} // namespace leaky::fuzz
