#include "fuzz/replay.hh"

#include "sim/logging.hh"

namespace leaky::fuzz {

const std::vector<NamedPattern> &replayCatalogue()
{
    // Baselines are the hand-written shapes the paper's senders use:
    // a single-row hammer (the stock cross-defense sender), the classic
    // two-row alternation, and a four-row round-robin. Discovered
    // entries are pinned verbatim from `leakyhammer fuzz --seed 1`
    // (smoke budget; see EXPERIMENTS.md "Fuzzing") and stay canonical:
    // parse(text).str() == text for every entry.
    static const std::vector<NamedPattern> catalogue = {
        {"single", "hp1:period=1;gap=0;agg=0@1/0x1", false},
        {"double", "hp1:period=2;gap=0;agg=0@1/0x1;agg=1@1/1x1", false},
        {"quad",
         "hp1:period=4;gap=0;agg=0@1/0x1;agg=1@1/1x1;agg=2@1/2x1;"
         "agg=3@1/3x1",
         false},
        {"fuzz-graphene",
         "hp1:period=32;gap=0;agg=0@8/0x4;agg=1@8/0x2;agg=3@4/5x1;"
         "agg=3@8/3x2;agg=4@2/9x2;agg=1@2/4x3",
         true},
        {"fuzz-hydra",
         "hp1:period=8;gap=15000;agg=0@2/1x2;agg=0@2/3x1;agg=0@2/2x3;"
         "agg=0@8/0x1;agg=0@2/1x1;agg=0@2/1x2;agg=0@4/0x2",
         true},
    };
    return catalogue;
}

std::vector<double> replayRow(const HammerPattern &p, const EvalSpec &spec)
{
    const EvalResult r = evaluatePattern(p, spec);
    return {r.channel.capacity, r.channel.symbol_error, r.score,
            static_cast<double>(preventiveActions(r.channel)), r.leakage};
}

std::vector<double> replaySerialized(const std::string &text,
                                     const EvalSpec &spec)
{
    return replayRow(HammerPattern::parse(text), spec);
}

} // namespace leaky::fuzz
