/**
 * @file
 * Deterministic pattern generation over the frequency/phase/amplitude
 * parameter space. FuzzParams bounds the space; PatternBuilder maps a
 * (params.seed, stream index) pair onto a valid HammerPattern via
 * `sim::seedFanout` — the same splitmix64 fan-out the sweep runner and
 * sys::System use — so the pattern stream is:
 *
 *  - deterministic: the same seed yields a byte-identical serialized
 *    stream (a property test pins this), and
 *  - random-access: pattern #i never depends on #0..#i-1, so a
 *    campaign can evaluate any subset on any thread schedule and the
 *    search trajectory stays bit-identical.
 *
 * generateInto/mutateInto write into caller-owned patterns and reuse
 * vector capacity — the fuzz hot loop (mutation + scoring) is
 * steady-state allocation-free (pinned by the shared test-binary
 * allocation counter).
 */

#ifndef LEAKY_FUZZ_BUILDER_HH
#define LEAKY_FUZZ_BUILDER_HH

#include <cstdint>
#include <vector>

#include "fuzz/pattern.hh"

namespace leaky::fuzz {

/** Bounds of the pattern parameter space (the fuzzer's knobs). */
struct FuzzParams {
    /** Base seed of the pattern stream (splitmix64 fan-out per index). */
    std::uint64_t seed = 1;
    /** Distinct aggressor row slots per pattern. */
    std::uint32_t min_rows = 1;
    std::uint32_t max_rows = 6;
    /** Base periods to draw from (every aggressor frequency must
     *  divide the drawn period). */
    std::vector<std::uint32_t> periods = {4, 8, 16, 32};
    /** Aggressor tuples per pattern (>= the drawn row count). */
    std::uint32_t max_aggressors = 8;
    std::uint32_t max_amplitude = 4;
    /** Extra per-access pacing delays to draw from (ticks). */
    std::vector<std::uint64_t> gaps = {0, 15'000, 45'000};
};

/** Seeded generator/mutator over the FuzzParams space. */
class PatternBuilder
{
  public:
    explicit PatternBuilder(FuzzParams params);

    const FuzzParams &params() const { return params_; }

    /** Pattern #index of the stream (pure function of params + index). */
    void generateInto(std::uint64_t index, HammerPattern *out) const;
    HammerPattern generate(std::uint64_t index) const;

    /**
     * Mutate @p src into @p dst with one seeded edit (re-rolled
     * aggressor tuple, added/removed aggressor, new gap, or new
     * period). Pure function of (params, src, index); @p dst reuses
     * its vector capacity.
     */
    void mutateInto(const HammerPattern &src, std::uint64_t index,
                    HammerPattern *dst) const;

  private:
    FuzzParams params_;
};

} // namespace leaky::fuzz

#endif // LEAKY_FUZZ_BUILDER_HH
