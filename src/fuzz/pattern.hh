/**
 * @file
 * Serializable aggressor access patterns — the value type of the
 * pattern fuzzer (Blacksmith/ZenHammer-style frequency/phase/amplitude
 * search, ROADMAP item 1). A HammerPattern describes one base period of
 * aggressor activity: each Aggressor tuple names a logical row slot and
 * the (frequency, phase, amplitude) at which that row's accesses recur
 * within the period. The covert sender replays the expanded access
 * sequence cyclically during logic-1 windows, so the pattern's shape —
 * not just its access count — decides how the defense's counters
 * charge and when preventive actions land.
 *
 * Patterns are plain data with a canonical text grammar, mirroring
 * dram::MappingSpec's design: `tryParse` for untrusted input with a
 * user-facing error, `parse` for trusted literals, `str()` emitting
 * the canonical spelling, and the round-trip identity
 * `parse(p.str()) == p`. The grammar is the CLI/CSV surface of every
 * fuzzer-discovered pattern, so tests pin an accept/reject table.
 *
 * Grammar (one line, no spaces):
 *
 *   pattern  := "hp1:" field (";" field)*
 *   field    := "period=" uint | "gap=" uint | "agg=" aggressor
 *   aggressor:= row "@" freq "/" phase "x" amp
 *
 *  - `period`: slots per base period (required, 1..kMaxPeriod).
 *  - `gap`: extra pacing delay per access in ticks (optional, 0
 *    default, <= kMaxGap) — added to the sender's loop overhead.
 *  - `agg=R@F/PxA`: row slot R recurs F times per period (F must
 *    divide the period), first at slot P (P < period/F), with A
 *    consecutive accesses per occurrence. Aggressor order is
 *    semantic: it decides the intra-slot access order.
 *
 * Example: `hp1:period=2;gap=0;agg=0@1/0x1;agg=1@1/1x1` is the classic
 * two-row alternation (row 0 on even slots, row 1 on odd slots).
 */

#ifndef LEAKY_FUZZ_PATTERN_HH
#define LEAKY_FUZZ_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tick.hh"

namespace leaky::fuzz {

/** One recurring aggressor: row slot + frequency/phase/amplitude. */
struct Aggressor {
    std::uint32_t row = 0;   ///< Logical row slot (0..kMaxRows-1).
    std::uint32_t freq = 1;  ///< Occurrences per period (divides period).
    std::uint32_t phase = 0; ///< First slot of the cycle (< period/freq).
    std::uint32_t amp = 1;   ///< Consecutive accesses per occurrence.

    bool operator==(const Aggressor &o) const
    {
        return row == o.row && freq == o.freq && phase == o.phase &&
               amp == o.amp;
    }
    bool operator!=(const Aggressor &o) const { return !(*this == o); }
};

/** One serialized-comparable aggressor access pattern. */
struct HammerPattern {
    static constexpr std::uint32_t kMaxPeriod = 256;
    static constexpr std::uint32_t kMaxRows = 32;
    static constexpr std::uint32_t kMaxAmplitude = 16;
    static constexpr std::uint32_t kMaxAggressors = 16;
    static constexpr std::uint64_t kMaxGap = 1'000'000; ///< 1 us.
    /** Cap on accesses per expanded period ("pattern too dense"). */
    static constexpr std::size_t kMaxAccesses = 4096;

    std::uint32_t period = 1;
    sim::Tick gap = 0;
    std::vector<Aggressor> aggressors;

    /** Equality is structural; `parse(str()) == *this` for any valid
     *  pattern because str() is a canonical rendering. */
    bool operator==(const HammerPattern &o) const
    {
        return period == o.period && gap == o.gap &&
               aggressors == o.aggressors;
    }
    bool operator!=(const HammerPattern &o) const { return !(*this == o); }

    /** Canonical spelling: `hp1:period=..;gap=..;agg=..;...` with the
     *  fields in that fixed order and aggressors as listed. */
    std::string str() const;

    /** Parse untrusted text; on failure fills @p error (user-facing)
     *  and returns false leaving @p out untouched. */
    static bool tryParse(const std::string &text, HammerPattern *out,
                         std::string *error);

    /** Parse trusted text (asserts on failure). */
    static HammerPattern parse(const std::string &text);

    /** Validate the in-memory pattern against the same rules the
     *  grammar enforces; fills @p error on failure. */
    bool validate(std::string *error) const;

    /** Number of distinct row slots referenced (max row index + 1). */
    std::uint32_t rowCount() const;

    /** Total accesses in one expanded period (sum of freq x amp). */
    std::size_t accessesPerPeriod() const;

    /**
     * Expand one period into the row-slot access sequence: for each
     * slot s in [0, period), every aggressor due at s (in listed
     * order) contributes `amp` consecutive accesses of its row.
     * Clears and refills @p slots — steady-state allocation-free once
     * the vector's capacity covers accessesPerPeriod().
     */
    void expandInto(std::vector<std::uint32_t> *slots) const;

    /** Convenience allocating form of expandInto. */
    std::vector<std::uint32_t> expand() const;
};

} // namespace leaky::fuzz

#endif // LEAKY_FUZZ_PATTERN_HH
