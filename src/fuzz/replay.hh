/**
 * @file
 * Deterministic pattern replay: any serialized HammerPattern becomes a
 * registry figure row. The catalogue pairs hand-written baselines
 * (single / double / quad-row hammers, the shapes the paper's attacks
 * use) with fuzzer-discovered patterns pinned by their canonical
 * serialization — the fuzz-replay figure and the discovered-beats-
 * baseline acceptance test both read it.
 */

#ifndef LEAKY_FUZZ_REPLAY_HH
#define LEAKY_FUZZ_REPLAY_HH

#include <string>
#include <vector>

#include "fuzz/campaign.hh"

namespace leaky::fuzz {

/** One catalogue entry: a named, serialized pattern. */
struct NamedPattern {
    std::string name; ///< Stable row label (axis value in fuzz-replay).
    std::string text; ///< Canonical "hp1:..." serialization.
    bool discovered = false; ///< Fuzzer-found (vs hand-written baseline).
};

/** Baselines first, then pinned discoveries — order is the fuzz-replay
 *  figure's pattern axis. Every entry parses and validates. */
const std::vector<NamedPattern> &replayCatalogue();

/**
 * Replay @p p under @p spec and return the metric payload of one
 * fuzz-replay CSV row: {capacity, symbol_error, score, actions,
 * leakage}. The round-trip suite pins that replaying a parsed
 * serialization yields byte-identical cells to the in-memory pattern.
 */
std::vector<double> replayRow(const HammerPattern &p, const EvalSpec &spec);

/** Parse-then-replay (panics on malformed text, like parse()). */
std::vector<double> replaySerialized(const std::string &text,
                                     const EvalSpec &spec);

} // namespace leaky::fuzz

#endif // LEAKY_FUZZ_REPLAY_HH
