#include "fuzz/campaign.hh"

#include <algorithm>
#include <utility>

#include "attack/dram_addr.hh"
#include "attack/message.hh"
#include "core/experiments.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::fuzz {
namespace {

/**
 * Row slot -> DRAM row. Slot 0 is the stock cross-defense sender row
 * (1000), so the trivial one-aggressor pattern replays the hand-written
 * baseline exactly; further slots stride by 2 to keep the aggressors in
 * distinct rows while staying well clear of the receiver row (2000).
 */
constexpr std::uint32_t kPatternRowBase = 1000;
constexpr std::uint32_t kPatternRowStride = 2;

static_assert(kPatternRowBase +
                      kPatternRowStride * (HammerPattern::kMaxRows - 1) <
                  2000,
              "pattern rows must not collide with the receiver row");

} // namespace

const std::vector<defense::DefenseKind> &campaignDefenses()
{
    static const std::vector<defense::DefenseKind> kinds = {
        defense::DefenseKind::kPrac,  defense::DefenseKind::kPracRiac,
        defense::DefenseKind::kPrfm,  defense::DefenseKind::kFrRfm,
        defense::DefenseKind::kPara,  defense::DefenseKind::kGraphene,
        defense::DefenseKind::kHydra,
    };
    return kinds;
}

std::uint64_t evalSeedFor(std::uint64_t base, defense::DefenseKind kind)
{
    return sim::seedFanout(base, static_cast<std::uint64_t>(kind));
}

std::uint64_t preventiveActions(const attack::ChannelResult &r)
{
    return r.backoffs + r.rfms + r.targeted_refreshes;
}

double scoreResult(const attack::ChannelResult &r)
{
    const std::size_t windows = r.sent.empty() ? 1 : r.sent.size();
    const double leakage =
        static_cast<double>(preventiveActions(r)) /
        static_cast<double>(windows);
    return r.capacity + 1e-3 * leakage;
}

EvalResult evaluatePattern(const HammerPattern &p, const EvalSpec &spec)
{
    std::string error;
    LEAKY_ASSERT(p.validate(&error), "cannot evaluate invalid pattern: %s",
                 error.c_str());

    sys::SystemConfig sys_cfg = core::crossDefenseSystemConfig(spec.defense);
    sys_cfg.defense.seed = spec.seed;
    sys::System system(sys_cfg);

    attack::CovertConfig cfg =
        core::crossDefenseChannelConfig(system, spec.defense);
    const std::vector<std::uint32_t> slots = p.expand();
    cfg.sender_sequence.clear();
    cfg.sender_sequence.reserve(slots.size());
    for (const std::uint32_t slot : slots) {
        cfg.sender_sequence.push_back(attack::rowAddress(
            system.mapper(), cfg.sender_channel, 0, 0, 0,
            kPatternRowBase + kPatternRowStride * slot));
    }
    cfg.sender_addr = cfg.sender_sequence.front();
    cfg.sender_gaps = {p.gap};

    const std::vector<bool> bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, spec.message_bytes * 8);
    EvalResult out;
    out.channel = attack::runCovertChannel(system, cfg,
                                           attack::symbolsFromBits(bits, 2));
    out.score = scoreResult(out.channel);
    const std::size_t windows =
        out.channel.sent.empty() ? 1 : out.channel.sent.size();
    out.leakage = static_cast<double>(preventiveActions(out.channel)) /
                  static_cast<double>(windows);
    return out;
}

namespace {

/** Deterministic ranking: score descending, stream origin as the
 *  tie-break (earlier generation/index wins). */
bool betterThan(const PatternScore &a, const PatternScore &b)
{
    if (a.score != b.score) {
        return a.score > b.score;
    }
    return a.origin < b.origin;
}

PatternScore evaluateCandidate(HammerPattern pattern, std::uint64_t origin,
                               const EvalSpec &spec)
{
    const EvalResult r = evaluatePattern(pattern, spec);
    PatternScore out;
    out.pattern = std::move(pattern);
    out.score = r.score;
    out.capacity = r.channel.capacity;
    out.error = r.channel.symbol_error;
    out.actions = preventiveActions(r.channel);
    out.origin = origin;
    return out;
}

} // namespace

CampaignResult runCampaign(const CampaignConfig &cfg)
{
    LEAKY_ASSERT(cfg.population >= 1, "campaign needs a population");
    LEAKY_ASSERT(cfg.generations >= 1, "campaign needs >= 1 generation");
    LEAKY_ASSERT(cfg.elites >= 1 && cfg.elites <= cfg.population,
                 "elites must be in 1..population (%u vs %u)", cfg.elites,
                 cfg.population);

    const PatternBuilder builder(cfg.params);
    const EvalSpec spec{cfg.defense, cfg.message_bytes, cfg.eval_seed};

    CampaignResult result;
    result.stats.reserve(cfg.generations);

    std::vector<PatternScore> pop;
    pop.reserve(cfg.population);
    HammerPattern scratch;
    for (std::uint32_t g = 0; g < cfg.generations; ++g) {
        if (g == 0) {
            for (std::uint32_t i = 0; i < cfg.population; ++i) {
                pop.push_back(evaluateCandidate(builder.generate(i), i, spec));
            }
        } else {
            // Elitist (mu + lambda): keep the best `elites` with their
            // scores, refill the tail with mutants of the elites. The
            // mutation stream index g*population + j never collides
            // across generations, so the whole search is one pure
            // function of (params.seed, eval_seed).
            std::stable_sort(pop.begin(), pop.end(), betterThan);
            pop.resize(cfg.elites);
            for (std::uint32_t j = 0; j + cfg.elites < cfg.population; ++j) {
                const std::uint64_t idx =
                    static_cast<std::uint64_t>(g) * cfg.population + j;
                builder.mutateInto(pop[j % cfg.elites].pattern, idx,
                                   &scratch);
                pop.push_back(evaluateCandidate(scratch, idx, spec));
            }
        }

        const PatternScore &best =
            *std::min_element(pop.begin(), pop.end(),
                              [](const PatternScore &a,
                                 const PatternScore &b) {
                                  return betterThan(a, b);
                              });
        GenerationStat stat;
        stat.generation = g;
        stat.best_score = best.score;
        stat.best_capacity = best.capacity;
        stat.best_error = best.error;
        stat.best_actions = best.actions;
        double sum = 0.0;
        for (const PatternScore &p : pop) {
            sum += p.score;
        }
        stat.mean_score = sum / static_cast<double>(pop.size());
        result.stats.push_back(stat);
    }

    std::stable_sort(pop.begin(), pop.end(), betterThan);
    result.best = pop.front();
    return result;
}

} // namespace leaky::fuzz
