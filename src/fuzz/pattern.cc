#include "fuzz/pattern.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::fuzz {

namespace {

/** Strict unsigned parse: the whole token must be digits. */
bool
parseUint(const std::string &token, std::uint64_t *value,
          std::string *error)
{
    if (token.empty()) {
        *error = "expected an unsigned integer, got ''";
        return false;
    }
    std::uint64_t v = 0;
    for (char c : token) {
        if (c < '0' || c > '9') {
            *error = "expected an unsigned integer, got '" + token + "'";
            return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 0xffffffffffULL) { // Far beyond any field's range.
            *error = "value out of range: '" + token + "'";
            return false;
        }
    }
    *value = v;
    return true;
}

/** `R@F/PxA` aggressor field. */
bool
parseAggressor(const std::string &token, Aggressor *out,
               std::string *error)
{
    const auto at = token.find('@');
    const auto slash = token.find('/', at == std::string::npos ? 0 : at);
    const auto x = token.find('x', slash == std::string::npos ? 0 : slash);
    if (at == std::string::npos || slash == std::string::npos ||
        x == std::string::npos) {
        *error = "malformed aggressor '" + token +
                 "' (expected row@freq/phase" + "xamp)";
        return false;
    }
    std::uint64_t row = 0, freq = 0, phase = 0, amp = 0;
    if (!parseUint(token.substr(0, at), &row, error) ||
        !parseUint(token.substr(at + 1, slash - at - 1), &freq, error) ||
        !parseUint(token.substr(slash + 1, x - slash - 1), &phase,
                   error) ||
        !parseUint(token.substr(x + 1), &amp, error))
        return false;
    out->row = static_cast<std::uint32_t>(row);
    out->freq = static_cast<std::uint32_t>(freq);
    out->phase = static_cast<std::uint32_t>(phase);
    out->amp = static_cast<std::uint32_t>(amp);
    return true;
}

} // namespace

std::string
HammerPattern::str() const
{
    std::string out = "hp1:period=" + std::to_string(period) +
                      ";gap=" + std::to_string(gap);
    for (const auto &agg : aggressors) {
        out += ";agg=" + std::to_string(agg.row) + "@" +
               std::to_string(agg.freq) + "/" +
               std::to_string(agg.phase) + "x" + std::to_string(agg.amp);
    }
    return out;
}

bool
HammerPattern::validate(std::string *error) const
{
    if (period == 0 || period > kMaxPeriod) {
        *error = "period out of range (1.." +
                 std::to_string(kMaxPeriod) + ")";
        return false;
    }
    if (gap > kMaxGap) {
        *error = "gap out of range (0.." + std::to_string(kMaxGap) +
                 " ticks)";
        return false;
    }
    if (aggressors.empty()) {
        *error = "needs at least one aggressor (agg=row@freq/phase" +
                 std::string("xamp)");
        return false;
    }
    if (aggressors.size() > kMaxAggressors) {
        *error = "too many aggressors (max " +
                 std::to_string(kMaxAggressors) + ")";
        return false;
    }
    for (const auto &agg : aggressors) {
        if (agg.row >= kMaxRows) {
            *error = "row index out of range (0.." +
                     std::to_string(kMaxRows - 1) + ")";
            return false;
        }
        if (agg.freq == 0) {
            *error = "frequency must be positive";
            return false;
        }
        if (period % agg.freq != 0) {
            *error = "frequency must divide the period (" +
                     std::to_string(agg.freq) + " vs " +
                     std::to_string(period) + ")";
            return false;
        }
        if (agg.phase >= period / agg.freq) {
            *error = "phase must be below period/frequency (" +
                     std::to_string(agg.phase) + " vs " +
                     std::to_string(period / agg.freq) + ")";
            return false;
        }
        if (agg.amp == 0 || agg.amp > kMaxAmplitude) {
            *error = "amplitude out of range (1.." +
                     std::to_string(kMaxAmplitude) + ")";
            return false;
        }
    }
    if (accessesPerPeriod() > kMaxAccesses) {
        *error = "pattern too dense (> " +
                 std::to_string(kMaxAccesses) +
                 " accesses per period)";
        return false;
    }
    return true;
}

bool
HammerPattern::tryParse(const std::string &text, HammerPattern *out,
                        std::string *error)
{
    if (text.rfind("hp1:", 0) != 0) {
        *error = "unknown pattern grammar (expected 'hp1:...')";
        return false;
    }
    HammerPattern parsed;
    parsed.aggressors.clear();
    bool saw_period = false, saw_gap = false;

    std::size_t pos = 4;
    while (pos <= text.size()) {
        const auto end = text.find(';', pos);
        const std::string field =
            text.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        pos = end == std::string::npos ? text.size() + 1 : end + 1;

        const auto eq = field.find('=');
        if (eq == std::string::npos) {
            *error = "field '" + field + "' has no '='";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "period") {
            if (saw_period) {
                *error = "duplicate field 'period'";
                return false;
            }
            saw_period = true;
            std::uint64_t v = 0;
            if (!parseUint(value, &v, error))
                return false;
            parsed.period = static_cast<std::uint32_t>(v);
        } else if (key == "gap") {
            if (saw_gap) {
                *error = "duplicate field 'gap'";
                return false;
            }
            saw_gap = true;
            std::uint64_t v = 0;
            if (!parseUint(value, &v, error))
                return false;
            parsed.gap = v;
        } else if (key == "agg") {
            Aggressor agg;
            if (!parseAggressor(value, &agg, error))
                return false;
            parsed.aggressors.push_back(agg);
        } else {
            *error = "unknown field '" + key + "'";
            return false;
        }
    }
    if (!saw_period) {
        *error = "pattern needs a period (period=<slots>)";
        return false;
    }
    if (!parsed.validate(error))
        return false;
    *out = std::move(parsed);
    return true;
}

HammerPattern
HammerPattern::parse(const std::string &text)
{
    HammerPattern out;
    std::string error;
    const bool ok = tryParse(text, &out, &error);
    LEAKY_ASSERT(ok, "invalid hammer pattern '%s': %s", text.c_str(),
                 error.c_str());
    return out;
}

std::uint32_t
HammerPattern::rowCount() const
{
    std::uint32_t count = 0;
    for (const auto &agg : aggressors)
        count = std::max(count, agg.row + 1);
    return count;
}

std::size_t
HammerPattern::accessesPerPeriod() const
{
    std::size_t total = 0;
    for (const auto &agg : aggressors)
        total += static_cast<std::size_t>(agg.freq) * agg.amp;
    return total;
}

void
HammerPattern::expandInto(std::vector<std::uint32_t> *slots) const
{
    slots->clear();
    for (std::uint32_t s = 0; s < period; ++s) {
        for (const auto &agg : aggressors) {
            const std::uint32_t step = period / agg.freq;
            if (s % step != agg.phase)
                continue;
            for (std::uint32_t a = 0; a < agg.amp; ++a)
                slots->push_back(agg.row);
        }
    }
}

std::vector<std::uint32_t>
HammerPattern::expand() const
{
    std::vector<std::uint32_t> slots;
    slots.reserve(accessesPerPeriod());
    expandInto(&slots);
    return slots;
}

} // namespace leaky::fuzz
