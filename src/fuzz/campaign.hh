/**
 * @file
 * The fuzzing loop (ROADMAP item 1): drive generated HammerPatterns
 * through sys::System against the defense families and score them by
 * covert capacity + preventive-action leakage. One fuzz::Campaign is a
 * small evolutionary search against ONE defense — deliberately
 * sequential, so a campaign is a pure function of its config and runs
 * as a single sweep job; the fuzz-search figure and `leakyhammer fuzz`
 * fan the seven campaigns out over the work-stealing SweepPool, which
 * makes the whole search bit-identical for any thread count.
 *
 * The evaluation cell is exactly core::runCrossDefenseCell's system
 * and receiver (crossDefenseSystemConfig / crossDefenseChannelConfig);
 * only the sender differs: it replays the pattern's expanded access
 * sequence (CovertConfig::sender_sequence) instead of the hand-written
 * single-row hammer, with the pattern's gap as pacing.
 */

#ifndef LEAKY_FUZZ_CAMPAIGN_HH
#define LEAKY_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "attack/covert.hh"
#include "defense/factory.hh"
#include "fuzz/builder.hh"
#include "fuzz/pattern.hh"

namespace leaky::fuzz {

/** The seven defenses the fuzzer searches against: the paper's
 *  alert/RFM family (PRAC, PRAC-RIAC, PRFM, FR-RFM, PARA) plus the
 *  tracker family (Graphene, Hydra). */
const std::vector<defense::DefenseKind> &campaignDefenses();

/**
 * The evaluation seed of defense @p kind under campaign base seed
 * @p base (seed fan-out by defense kind). One shared rule, so a
 * pattern discovered by the fuzz-search campaign replays under the
 * SAME defense seed in the fuzz-replay figure and in tests — scores
 * transfer exactly instead of re-rolling a seed-sensitive cell.
 */
std::uint64_t evalSeedFor(std::uint64_t base, defense::DefenseKind kind);

/** One pattern evaluation point: defense + message size + seed. */
struct EvalSpec {
    defense::DefenseKind defense = defense::DefenseKind::kGraphene;
    std::size_t message_bytes = 4;
    std::uint64_t seed = 1;
};

/** Outcome of evaluating one pattern. */
struct EvalResult {
    attack::ChannelResult channel;
    double score = 0.0;   ///< scoreResult(channel).
    double leakage = 0.0; ///< Preventive actions per window.
};

/** Ground-truth preventive actions of a run (back-offs + RFMs +
 *  targeted refreshes; counter fetches are sub-band traffic, not
 *  preventive actions). */
std::uint64_t preventiveActions(const attack::ChannelResult &r);

/**
 * Fuzzing objective: covert capacity (bits/s) plus a small
 * preventive-action-leakage tie-break (actions per window, x1e-3) so
 * that among equal-capacity patterns the search prefers the one with
 * the stronger observable margin. Pure arithmetic — allocation-free
 * (the fuzz hot-loop pin covers it).
 */
double scoreResult(const attack::ChannelResult &r);

/** Evaluate @p p in the cross-defense cell of @p spec.defense. */
EvalResult evaluatePattern(const HammerPattern &p, const EvalSpec &spec);

/** One campaign: an elitist (mu + lambda) search against one defense. */
struct CampaignConfig {
    defense::DefenseKind defense = defense::DefenseKind::kGraphene;
    FuzzParams params;  ///< params.seed drives the pattern stream.
    std::uint32_t population = 6;
    std::uint32_t generations = 3;
    std::uint32_t elites = 2;
    std::size_t message_bytes = 4;
    std::uint64_t eval_seed = 1; ///< Defense seed, fixed per campaign.
};

/** A scored pattern (origin = stream index, the deterministic
 *  tie-break). */
struct PatternScore {
    HammerPattern pattern;
    double score = 0.0;
    double capacity = 0.0;
    double error = 0.0;
    std::uint64_t actions = 0;
    std::uint64_t origin = 0;
};

/** Per-generation search progress (the fuzz-search figure's rows). */
struct GenerationStat {
    std::uint32_t generation = 0;
    double best_score = 0.0;
    double best_capacity = 0.0;
    double best_error = 0.0;
    double mean_score = 0.0;
    std::uint64_t best_actions = 0;
};

struct CampaignResult {
    std::vector<GenerationStat> stats; ///< One entry per generation.
    PatternScore best;                 ///< Best of the final population.
};

/** Run one campaign to completion (sequential, deterministic). */
CampaignResult runCampaign(const CampaignConfig &cfg);

} // namespace leaky::fuzz

#endif // LEAKY_FUZZ_CAMPAIGN_HH
