#include "ml/metrics.hh"

#include <cmath>

#include "sim/logging.hh"

namespace leaky::ml {

ConfusionMatrix::ConfusionMatrix(int n_classes)
    : n_classes_(n_classes),
      cells_(static_cast<std::size_t>(n_classes) *
                 static_cast<std::size_t>(n_classes),
             0)
{
    LEAKY_ASSERT(n_classes > 0, "need at least one class");
}

void
ConfusionMatrix::add(int truth, int predicted)
{
    LEAKY_ASSERT(truth >= 0 && truth < n_classes_ && predicted >= 0 &&
                     predicted < n_classes_,
                 "label out of range");
    cells_[static_cast<std::size_t>(truth) *
               static_cast<std::size_t>(n_classes_) +
           static_cast<std::size_t>(predicted)] += 1;
    total_ += 1;
    if (truth == predicted)
        correct_ += 1;
}

std::uint64_t
ConfusionMatrix::count(int truth, int predicted) const
{
    return cells_[static_cast<std::size_t>(truth) *
                      static_cast<std::size_t>(n_classes_) +
                  static_cast<std::size_t>(predicted)];
}

double
ConfusionMatrix::accuracy() const
{
    return total_ ? static_cast<double>(correct_) /
                        static_cast<double>(total_)
                  : 0.0;
}

double
ConfusionMatrix::macroPrecision() const
{
    double sum = 0.0;
    for (int c = 0; c < n_classes_; ++c) {
        std::uint64_t tp = count(c, c);
        std::uint64_t predicted = 0;
        for (int t = 0; t < n_classes_; ++t)
            predicted += count(t, c);
        sum += predicted ? static_cast<double>(tp) /
                               static_cast<double>(predicted)
                         : 0.0;
    }
    return sum / static_cast<double>(n_classes_);
}

double
ConfusionMatrix::macroRecall() const
{
    double sum = 0.0;
    for (int c = 0; c < n_classes_; ++c) {
        std::uint64_t tp = count(c, c);
        std::uint64_t actual = 0;
        for (int p = 0; p < n_classes_; ++p)
            actual += count(c, p);
        sum += actual ? static_cast<double>(tp) /
                            static_cast<double>(actual)
                      : 0.0;
    }
    return sum / static_cast<double>(n_classes_);
}

double
ConfusionMatrix::macroF1() const
{
    double sum = 0.0;
    for (int c = 0; c < n_classes_; ++c) {
        std::uint64_t tp = count(c, c);
        std::uint64_t predicted = 0;
        std::uint64_t actual = 0;
        for (int t = 0; t < n_classes_; ++t) {
            predicted += count(t, c);
            actual += count(c, t);
        }
        const double p = predicted ? static_cast<double>(tp) /
                                         static_cast<double>(predicted)
                                   : 0.0;
        const double r = actual ? static_cast<double>(tp) /
                                      static_cast<double>(actual)
                                : 0.0;
        sum += p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
    }
    return sum / static_cast<double>(n_classes_);
}

ConfusionMatrix
evaluate(const Classifier &model, const Dataset &test)
{
    ConfusionMatrix cm(test.n_classes);
    for (std::size_t i = 0; i < test.size(); ++i)
        cm.add(test.y[i], model.predict(test.x[i]));
    return cm;
}

namespace {

CrossValScore
summarize(const std::vector<double> &scores)
{
    double sum = 0.0;
    for (double s : scores)
        sum += s;
    const double mean = sum / static_cast<double>(scores.size());
    double var = 0.0;
    for (double s : scores)
        var += (s - mean) * (s - mean);
    var /= static_cast<double>(scores.size());
    return {mean, std::sqrt(var)};
}

} // namespace

CrossValResult
crossValidate(const std::function<std::unique_ptr<Classifier>()> &make_model,
              const Dataset &data, std::uint32_t folds, std::uint64_t seed)
{
    std::vector<double> acc;
    std::vector<double> f1;
    std::vector<double> precision;
    std::vector<double> recall;
    for (const auto &split : kFold(data, folds, seed)) {
        auto model = make_model();
        model->fit(split.train);
        const auto cm = evaluate(*model, split.test);
        acc.push_back(cm.accuracy());
        f1.push_back(cm.macroF1());
        precision.push_back(cm.macroPrecision());
        recall.push_back(cm.macroRecall());
    }
    CrossValResult result;
    result.accuracy = summarize(acc);
    result.f1 = summarize(f1);
    result.precision = summarize(precision);
    result.recall = summarize(recall);
    result.folds = folds;
    return result;
}

} // namespace leaky::ml
