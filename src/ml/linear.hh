/**
 * @file
 * Linear one-vs-rest classifiers for the Fig. 10 model zoo: logistic
 * regression, linear SVM (hinge loss), and the classic perceptron, all
 * trained with deterministic SGD on z-scored features.
 */

#ifndef LEAKY_ML_LINEAR_HH
#define LEAKY_ML_LINEAR_HH

#include "ml/classifier.hh"

namespace leaky::ml {

/** Shared SGD hyperparameters. */
struct LinearConfig {
    std::uint32_t epochs = 40;
    double learning_rate = 0.05;
    double l2 = 1e-4;
    std::uint64_t seed = 5;
};

/** Base for one-vs-rest linear models (one weight row per class). */
class LinearOvR : public Classifier
{
  public:
    explicit LinearOvR(const LinearConfig &cfg) : cfg_(cfg) {}

    void fit(const Dataset &data) final;
    int predict(const std::vector<double> &row) const final;

  protected:
    /**
     * Per-sample update for class @p cls with target y in {-1, +1} and
     * margin m = y * score. Returns the gradient scale g such that
     * w += lr * g * y * x (g = 0 means no update).
     */
    virtual double gradientScale(double margin) const = 0;

    LinearConfig cfg_;
    Standardizer scaler_;
    std::vector<std::vector<double>> weights_; ///< [class][feature+1].
    int n_classes_ = 0;
};

/** Logistic regression (log-loss SGD). */
class LogisticRegression final : public LinearOvR
{
  public:
    explicit LogisticRegression(const LinearConfig &cfg = {})
        : LinearOvR(cfg)
    {
    }
    std::string name() const override { return "LogisticRegression"; }

  protected:
    double gradientScale(double margin) const override;
};

/** Linear support vector machine (hinge-loss SGD). */
class LinearSvm final : public LinearOvR
{
  public:
    explicit LinearSvm(const LinearConfig &cfg = {}) : LinearOvR(cfg) {}
    std::string name() const override { return "SVM"; }

  protected:
    double gradientScale(double margin) const override;
};

/** Rosenblatt perceptron (mistake-driven updates). */
class Perceptron final : public LinearOvR
{
  public:
    explicit Perceptron(const LinearConfig &cfg = {}) : LinearOvR(cfg) {}
    std::string name() const override { return "Perceptron"; }

  protected:
    double gradientScale(double margin) const override;
};

/** k-nearest-neighbours (Euclidean on z-scored features). */
class KNearestNeighbors final : public Classifier
{
  public:
    explicit KNearestNeighbors(std::uint32_t k = 5) : k_(k) {}

    void fit(const Dataset &data) override;
    int predict(const std::vector<double> &row) const override;
    std::string name() const override { return "KNN"; }

  private:
    std::uint32_t k_;
    Standardizer scaler_;
    Dataset train_;
};

} // namespace leaky::ml

#endif // LEAKY_ML_LINEAR_HH
