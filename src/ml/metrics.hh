/**
 * @file
 * Classification metrics (paper Table 2): accuracy, confusion matrix,
 * macro-averaged precision/recall/F1, and a k-fold cross-validation
 * driver reporting per-fold mean and standard deviation.
 */

#ifndef LEAKY_ML_METRICS_HH
#define LEAKY_ML_METRICS_HH

#include <functional>
#include <memory>
#include <vector>

#include "ml/classifier.hh"

namespace leaky::ml {

/** Counts of (true class, predicted class) pairs. */
class ConfusionMatrix
{
  public:
    explicit ConfusionMatrix(int n_classes);

    void add(int truth, int predicted);

    double accuracy() const;
    double macroPrecision() const;
    double macroRecall() const;
    double macroF1() const;
    std::uint64_t count(int truth, int predicted) const;
    int classes() const { return n_classes_; }

  private:
    int n_classes_;
    std::vector<std::uint64_t> cells_;
    std::uint64_t total_ = 0;
    std::uint64_t correct_ = 0;
};

/** Evaluate a fitted classifier on a test set. */
ConfusionMatrix evaluate(const Classifier &model, const Dataset &test);

/** Mean and standard deviation of per-fold scores. */
struct CrossValScore {
    double mean = 0.0;
    double stddev = 0.0;
};

/** Per-fold cross-validation summary (paper Table 2 columns). */
struct CrossValResult {
    CrossValScore accuracy;
    CrossValScore f1;
    CrossValScore precision;
    CrossValScore recall;
    std::uint32_t folds = 0;
};

/**
 * k-fold cross-validation: @p make_model builds a fresh classifier per
 * fold (so folds never share state).
 */
CrossValResult
crossValidate(const std::function<std::unique_ptr<Classifier>()> &make_model,
              const Dataset &data, std::uint32_t folds,
              std::uint64_t seed = 11);

} // namespace leaky::ml

#endif // LEAKY_ML_METRICS_HH
