#include "ml/classifier.hh"

#include "ml/ensemble.hh"
#include "ml/linear.hh"
#include "ml/tree.hh"

namespace leaky::ml {

std::vector<std::unique_ptr<Classifier>>
makeFig10Models(std::uint64_t seed)
{
    std::vector<std::unique_ptr<Classifier>> models;

    TreeConfig dt;
    dt.max_depth = 12; // Regularised: fingerprint features are noisy.
    dt.min_samples_split = 6;
    dt.seed = seed;
    models.push_back(std::make_unique<DecisionTree>(dt));

    ForestConfig rf;
    rf.seed = seed + 1;
    models.push_back(std::make_unique<RandomForest>(rf));

    BoostConfig gb;
    gb.seed = seed + 2;
    models.push_back(std::make_unique<GradientBoosting>(gb));

    models.push_back(std::make_unique<KNearestNeighbors>(5));

    LinearConfig svm;
    svm.seed = seed + 3;
    models.push_back(std::make_unique<LinearSvm>(svm));

    LinearConfig lr;
    lr.seed = seed + 4;
    models.push_back(std::make_unique<LogisticRegression>(lr));

    AdaBoostConfig ada;
    ada.seed = seed + 5;
    models.push_back(std::make_unique<AdaBoost>(ada));

    LinearConfig perc;
    perc.seed = seed + 6;
    models.push_back(std::make_unique<Perceptron>(perc));

    return models;
}

} // namespace leaky::ml
