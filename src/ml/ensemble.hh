/**
 * @file
 * Ensemble classifiers for the Fig. 10 model zoo: random forest
 * (bootstrap-aggregated CART with feature subsampling), one-vs-rest
 * gradient boosting over regression trees (logistic loss), and
 * multi-class AdaBoost (SAMME with shallow trees via weighted
 * resampling).
 */

#ifndef LEAKY_ML_ENSEMBLE_HH
#define LEAKY_ML_ENSEMBLE_HH

#include <memory>

#include "ml/tree.hh"

namespace leaky::ml {

/** Random forest hyperparameters. */
struct ForestConfig {
    std::uint32_t n_trees = 60;
    std::uint32_t max_depth = 20;
    std::uint32_t min_samples_split = 4;
    std::uint64_t seed = 2;
};

/** Bagged CART forest with sqrt-feature subsampling. */
class RandomForest final : public Classifier
{
  public:
    explicit RandomForest(const ForestConfig &cfg = {});

    void fit(const Dataset &data) override;
    int predict(const std::vector<double> &row) const override;
    std::string name() const override { return "RandomForest"; }

  private:
    ForestConfig cfg_;
    std::vector<DecisionTree> trees_;
    int n_classes_ = 0;
};

/** Gradient boosting hyperparameters. */
struct BoostConfig {
    std::uint32_t n_rounds = 20;
    std::uint32_t max_depth = 3;
    double learning_rate = 0.3;
    double subsample = 0.7;
    std::uint64_t seed = 3;
};

/** One-vs-rest gradient-boosted trees with logistic loss. */
class GradientBoosting final : public Classifier
{
  public:
    explicit GradientBoosting(const BoostConfig &cfg = {});

    void fit(const Dataset &data) override;
    int predict(const std::vector<double> &row) const override;
    std::string name() const override { return "GradientBoosting"; }

  private:
    double score(const std::vector<double> &row, int cls) const;

    BoostConfig cfg_;
    // [class][round] weak learners plus per-class bias.
    std::vector<std::vector<RegressionTree>> stages_;
    std::vector<double> bias_;
    int n_classes_ = 0;
};

/** AdaBoost (SAMME) hyperparameters. */
struct AdaBoostConfig {
    std::uint32_t n_rounds = 80;
    std::uint32_t max_depth = 2; ///< Shallow weak learners.
    std::uint64_t seed = 4;
};

/** Multi-class AdaBoost.SAMME with weighted-resampling weak learners. */
class AdaBoost final : public Classifier
{
  public:
    explicit AdaBoost(const AdaBoostConfig &cfg = {});

    void fit(const Dataset &data) override;
    int predict(const std::vector<double> &row) const override;
    std::string name() const override { return "AdaBoost"; }

  private:
    AdaBoostConfig cfg_;
    std::vector<DecisionTree> learners_;
    std::vector<double> alphas_;
    int n_classes_ = 0;
};

} // namespace leaky::ml

#endif // LEAKY_ML_ENSEMBLE_HH
