#include "ml/ensemble.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace leaky::ml {

// ---------------------------------------------------------------- forest

RandomForest::RandomForest(const ForestConfig &cfg) : cfg_(cfg)
{
}

void
RandomForest::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    trees_.clear();
    n_classes_ = data.n_classes;
    sim::Rng rng(cfg_.seed);
    const auto max_features = static_cast<std::uint32_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.features()))));

    for (std::uint32_t t = 0; t < cfg_.n_trees; ++t) {
        // Bootstrap sample.
        std::vector<std::size_t> sample(data.size());
        for (auto &idx : sample)
            idx = rng.below(data.size());
        Dataset boot = data.select(sample);
        boot.n_classes = n_classes_;

        TreeConfig tree_cfg;
        tree_cfg.max_depth = cfg_.max_depth;
        tree_cfg.min_samples_split = cfg_.min_samples_split;
        tree_cfg.max_features = max_features;
        tree_cfg.seed = rng();
        trees_.emplace_back(tree_cfg);
        trees_.back().fit(boot);
    }
}

int
RandomForest::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(!trees_.empty(), "predict before fit");
    std::vector<std::uint32_t> votes(
        static_cast<std::size_t>(n_classes_), 0);
    for (const auto &tree : trees_)
        votes[static_cast<std::size_t>(tree.predict(row))] += 1;
    return static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
}

// -------------------------------------------------------------- boosting

GradientBoosting::GradientBoosting(const BoostConfig &cfg) : cfg_(cfg)
{
}

void
GradientBoosting::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    n_classes_ = data.n_classes;
    stages_.assign(static_cast<std::size_t>(n_classes_), {});
    bias_.assign(static_cast<std::size_t>(n_classes_), 0.0);
    sim::Rng rng(cfg_.seed);

    const auto n = data.size();
    for (int cls = 0; cls < n_classes_; ++cls) {
        // Binary one-vs-rest logistic boosting.
        std::vector<double> target(n);
        double positives = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            target[i] = data.y[i] == cls ? 1.0 : 0.0;
            positives += target[i];
        }
        const double prior =
            std::clamp(positives / static_cast<double>(n), 1e-4,
                       1.0 - 1e-4);
        bias_[static_cast<std::size_t>(cls)] =
            std::log(prior / (1.0 - prior));

        std::vector<double> score(n,
                                  bias_[static_cast<std::size_t>(cls)]);
        auto &stage = stages_[static_cast<std::size_t>(cls)];
        for (std::uint32_t round = 0; round < cfg_.n_rounds; ++round) {
            std::vector<double> residual(n);
            for (std::size_t i = 0; i < n; ++i) {
                const double p = 1.0 / (1.0 + std::exp(-score[i]));
                residual[i] = target[i] - p;
            }
            // Stochastic subsample for this round.
            std::vector<std::size_t> indices;
            indices.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                if (rng.uniform() < cfg_.subsample)
                    indices.push_back(i);
            }
            if (indices.size() < 2)
                continue;
            RegressionTree tree(cfg_.max_depth);
            tree.fit(data.x, residual, indices);
            for (std::size_t i = 0; i < n; ++i)
                score[i] += cfg_.learning_rate * tree.predict(data.x[i]);
            stage.push_back(std::move(tree));
        }
    }
}

double
GradientBoosting::score(const std::vector<double> &row, int cls) const
{
    double s = bias_[static_cast<std::size_t>(cls)];
    for (const auto &tree : stages_[static_cast<std::size_t>(cls)])
        s += cfg_.learning_rate * tree.predict(row);
    return s;
}

int
GradientBoosting::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(n_classes_ > 0, "predict before fit");
    int best = 0;
    double best_score = score(row, 0);
    for (int cls = 1; cls < n_classes_; ++cls) {
        const double s = score(row, cls);
        if (s > best_score) {
            best_score = s;
            best = cls;
        }
    }
    return best;
}

// -------------------------------------------------------------- adaboost

AdaBoost::AdaBoost(const AdaBoostConfig &cfg) : cfg_(cfg)
{
}

void
AdaBoost::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    learners_.clear();
    alphas_.clear();
    n_classes_ = data.n_classes;
    const auto n = data.size();
    const double k = static_cast<double>(n_classes_);
    std::vector<double> weights(n, 1.0 / static_cast<double>(n));
    sim::Rng rng(cfg_.seed);

    for (std::uint32_t round = 0; round < cfg_.n_rounds; ++round) {
        // Weighted resampling stands in for weighted impurity: draw a
        // bootstrap sample proportional to the weights.
        std::vector<double> cumulative(n);
        std::partial_sum(weights.begin(), weights.end(),
                         cumulative.begin());
        const double total = cumulative.back();
        std::vector<std::size_t> sample(n);
        for (auto &idx : sample) {
            const double r = rng.uniform() * total;
            idx = static_cast<std::size_t>(
                std::lower_bound(cumulative.begin(), cumulative.end(),
                                 r) -
                cumulative.begin());
            idx = std::min(idx, n - 1);
        }
        Dataset boot = data.select(sample);
        boot.n_classes = n_classes_;

        TreeConfig tree_cfg;
        tree_cfg.max_depth = cfg_.max_depth;
        tree_cfg.seed = rng();
        DecisionTree learner(tree_cfg);
        learner.fit(boot);

        double err = 0.0;
        std::vector<bool> wrong(n);
        for (std::size_t i = 0; i < n; ++i) {
            wrong[i] = learner.predict(data.x[i]) != data.y[i];
            if (wrong[i])
                err += weights[i];
        }
        // SAMME requires err < 1 - 1/K; skip useless learners.
        if (err >= 1.0 - 1.0 / k || err <= 0.0) {
            if (err <= 0.0) {
                learners_.push_back(std::move(learner));
                alphas_.push_back(6.0); // Effectively decisive.
                break;
            }
            continue;
        }
        const double alpha =
            std::log((1.0 - err) / err) + std::log(k - 1.0);
        for (std::size_t i = 0; i < n; ++i) {
            if (wrong[i])
                weights[i] *= std::exp(alpha);
        }
        double sum = 0.0;
        for (double w : weights)
            sum += w;
        for (auto &w : weights)
            w /= sum;
        learners_.push_back(std::move(learner));
        alphas_.push_back(alpha);
    }
    if (learners_.empty()) {
        // Degenerate data: fall back to one unweighted learner.
        TreeConfig tree_cfg;
        tree_cfg.max_depth = cfg_.max_depth;
        learners_.emplace_back(tree_cfg);
        learners_.back().fit(data);
        alphas_.push_back(1.0);
    }
}

int
AdaBoost::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(!learners_.empty(), "predict before fit");
    std::vector<double> votes(static_cast<std::size_t>(n_classes_), 0.0);
    for (std::size_t i = 0; i < learners_.size(); ++i)
        votes[static_cast<std::size_t>(learners_[i].predict(row))] +=
            alphas_[i];
    return static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
}

} // namespace leaky::ml
