#include "ml/dataset.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace leaky::ml {

Dataset
Dataset::select(const std::vector<std::size_t> &indices) const
{
    Dataset out;
    out.n_classes = n_classes;
    for (auto i : indices) {
        out.x.push_back(x[i]);
        out.y.push_back(y[i]);
    }
    return out;
}

namespace {

/** Per-class index lists, each shuffled deterministically. */
std::vector<std::vector<std::size_t>>
classIndices(const Dataset &data, std::uint64_t seed)
{
    std::vector<std::vector<std::size_t>> by_class(
        static_cast<std::size_t>(data.n_classes));
    for (std::size_t i = 0; i < data.size(); ++i)
        by_class[static_cast<std::size_t>(data.y[i])].push_back(i);
    sim::Rng rng(seed);
    for (auto &indices : by_class) {
        for (std::size_t i = indices.size(); i > 1; --i)
            std::swap(indices[i - 1], indices[rng.below(i)]);
    }
    return by_class;
}

} // namespace

Split
stratifiedSplit(const Dataset &data, double test_fraction,
                std::uint64_t seed)
{
    LEAKY_ASSERT(test_fraction > 0.0 && test_fraction < 1.0,
                 "test fraction must be in (0, 1)");
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;
    for (const auto &indices : classIndices(data, seed)) {
        const auto n_test = static_cast<std::size_t>(
            std::ceil(static_cast<double>(indices.size()) *
                      test_fraction));
        for (std::size_t i = 0; i < indices.size(); ++i) {
            (i < n_test ? test_idx : train_idx).push_back(indices[i]);
        }
    }
    return {data.select(train_idx), data.select(test_idx)};
}

std::vector<Split>
kFold(const Dataset &data, std::uint32_t folds, std::uint64_t seed)
{
    LEAKY_ASSERT(folds >= 2, "need at least two folds");
    const auto by_class = classIndices(data, seed);
    std::vector<std::vector<std::size_t>> fold_idx(folds);
    for (const auto &indices : by_class) {
        for (std::size_t i = 0; i < indices.size(); ++i)
            fold_idx[i % folds].push_back(indices[i]);
    }
    std::vector<Split> splits;
    for (std::uint32_t f = 0; f < folds; ++f) {
        std::vector<std::size_t> train_idx;
        for (std::uint32_t g = 0; g < folds; ++g) {
            if (g == f)
                continue;
            train_idx.insert(train_idx.end(), fold_idx[g].begin(),
                             fold_idx[g].end());
        }
        splits.push_back(
            {data.select(train_idx), data.select(fold_idx[f])});
    }
    return splits;
}

void
Standardizer::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "cannot fit on empty data");
    const auto n_features = data.features();
    mean_.assign(n_features, 0.0);
    stddev_.assign(n_features, 0.0);
    for (const auto &row : data.x) {
        for (std::size_t f = 0; f < n_features; ++f)
            mean_[f] += row[f];
    }
    for (auto &m : mean_)
        m /= static_cast<double>(data.size());
    for (const auto &row : data.x) {
        for (std::size_t f = 0; f < n_features; ++f) {
            const double d = row[f] - mean_[f];
            stddev_[f] += d * d;
        }
    }
    for (auto &s : stddev_) {
        s = std::sqrt(s / static_cast<double>(data.size()));
        if (s < 1e-12)
            s = 1.0;
    }
}

std::vector<double>
Standardizer::apply(const std::vector<double> &row) const
{
    std::vector<double> out(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
        out[f] = (row[f] - mean_[f]) / stddev_[f];
    return out;
}

Dataset
Standardizer::apply(const Dataset &data) const
{
    Dataset out;
    out.n_classes = data.n_classes;
    out.y = data.y;
    out.x.reserve(data.size());
    for (const auto &row : data.x)
        out.x.push_back(apply(row));
    return out;
}

} // namespace leaky::ml
