/**
 * @file
 * CART decision trees: a gini-impurity classification tree (the paper's
 * best fingerprinting model, Fig. 10) and a variance-reduction
 * regression tree used as the weak learner inside gradient boosting.
 */

#ifndef LEAKY_ML_TREE_HH
#define LEAKY_ML_TREE_HH

#include <cstdint>
#include <vector>

#include "ml/classifier.hh"

namespace leaky::ml {

/** Decision-tree hyperparameters. */
struct TreeConfig {
    std::uint32_t max_depth = 24;
    std::uint32_t min_samples_split = 4;
    /** Features examined per split; 0 = all (set for random forests). */
    std::uint32_t max_features = 0;
    std::uint64_t seed = 1;
};

/** Gini CART classifier. */
class DecisionTree final : public Classifier
{
  public:
    explicit DecisionTree(const TreeConfig &cfg = {});

    void fit(const Dataset &data) override;
    int predict(const std::vector<double> &row) const override;
    std::string name() const override { return "DecisionTree"; }

    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node {
        int feature = -1; ///< -1 = leaf.
        double threshold = 0.0;
        std::int32_t left = -1;
        std::int32_t right = -1;
        int label = 0;
    };

    std::int32_t build(const Dataset &data,
                       std::vector<std::size_t> &indices,
                       std::size_t begin, std::size_t end,
                       std::uint32_t depth, sim::Rng &rng);

    TreeConfig cfg_;
    std::vector<Node> nodes_;
    int n_classes_ = 0;
};

/** Regression tree (variance reduction) for gradient boosting. */
class RegressionTree
{
  public:
    explicit RegressionTree(std::uint32_t max_depth = 3,
                            std::uint32_t min_samples_split = 8);

    /** Fit x -> targets over the subset @p indices. */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &targets,
             const std::vector<std::size_t> &indices);

    double predict(const std::vector<double> &row) const;

  private:
    struct Node {
        int feature = -1;
        double threshold = 0.0;
        std::int32_t left = -1;
        std::int32_t right = -1;
        double value = 0.0;
    };

    std::int32_t build(const std::vector<std::vector<double>> &x,
                       const std::vector<double> &targets,
                       std::vector<std::size_t> &indices,
                       std::size_t begin, std::size_t end,
                       std::uint32_t depth);

    std::uint32_t max_depth_;
    std::uint32_t min_samples_split_;
    std::vector<Node> nodes_;
};

} // namespace leaky::ml

#endif // LEAKY_ML_TREE_HH
