#include "ml/tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "sim/logging.hh"

namespace leaky::ml {

DecisionTree::DecisionTree(const TreeConfig &cfg) : cfg_(cfg)
{
}

void
DecisionTree::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    nodes_.clear();
    n_classes_ = data.n_classes;
    std::vector<std::size_t> indices(data.size());
    std::iota(indices.begin(), indices.end(), 0);
    sim::Rng rng(cfg_.seed);
    build(data, indices, 0, indices.size(), 0, rng);
}

namespace {

/** Gini impurity of class counts over n samples. */
double
gini(const std::vector<std::uint32_t> &counts, double n)
{
    double sum_sq = 0.0;
    for (auto c : counts)
        sum_sq += static_cast<double>(c) * static_cast<double>(c);
    return 1.0 - sum_sq / (n * n);
}

int
majority(const std::vector<std::uint32_t> &counts)
{
    return static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
}

} // namespace

std::int32_t
DecisionTree::build(const Dataset &data, std::vector<std::size_t> &indices,
                    std::size_t begin, std::size_t end,
                    std::uint32_t depth, sim::Rng &rng)
{
    const auto n = end - begin;
    std::vector<std::uint32_t> counts(
        static_cast<std::size_t>(n_classes_), 0);
    for (std::size_t i = begin; i < end; ++i)
        counts[static_cast<std::size_t>(data.y[indices[i]])] += 1;

    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({});
    nodes_[static_cast<std::size_t>(node_index)].label = majority(counts);

    const double parent_gini = gini(counts, static_cast<double>(n));
    if (depth >= cfg_.max_depth || n < cfg_.min_samples_split ||
        parent_gini <= 1e-12) {
        return node_index;
    }

    // Candidate features (optionally a random subset, for forests).
    const auto n_features = data.features();
    std::vector<std::size_t> features(n_features);
    std::iota(features.begin(), features.end(), 0);
    std::size_t n_candidates = n_features;
    if (cfg_.max_features > 0 && cfg_.max_features < n_features) {
        for (std::size_t i = features.size(); i > 1; --i)
            std::swap(features[i - 1], features[rng.below(i)]);
        n_candidates = cfg_.max_features;
    }

    int best_feature = -1;
    double best_threshold = 0.0;
    double best_impurity = parent_gini;
    std::vector<std::size_t> sorted(indices.begin() +
                                        static_cast<std::ptrdiff_t>(begin),
                                    indices.begin() +
                                        static_cast<std::ptrdiff_t>(end));

    for (std::size_t fi = 0; fi < n_candidates; ++fi) {
        const auto f = features[fi];
        std::sort(sorted.begin(), sorted.end(),
                  [&data, f](std::size_t a, std::size_t b) {
                      return data.x[a][f] < data.x[b][f];
                  });
        std::vector<std::uint32_t> left(counts.size(), 0);
        std::vector<std::uint32_t> right = counts;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            const auto cls =
                static_cast<std::size_t>(data.y[sorted[i]]);
            left[cls] += 1;
            right[cls] -= 1;
            const double lo = data.x[sorted[i]][f];
            const double hi = data.x[sorted[i + 1]][f];
            if (hi <= lo)
                continue; // No split point between equal values.
            const double nl = static_cast<double>(i + 1);
            const double nr = static_cast<double>(sorted.size() - i - 1);
            const double impurity =
                (nl * gini(left, nl) + nr * gini(right, nr)) /
                static_cast<double>(sorted.size());
            if (impurity + 1e-12 < best_impurity) {
                best_impurity = impurity;
                best_feature = static_cast<int>(f);
                best_threshold = (lo + hi) / 2.0;
            }
        }
    }

    if (best_feature < 0)
        return node_index;

    // Partition indices in place around the chosen split.
    const auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(begin),
        indices.begin() + static_cast<std::ptrdiff_t>(end),
        [&data, best_feature, best_threshold](std::size_t i) {
            return data.x[i][static_cast<std::size_t>(best_feature)] <=
                   best_threshold;
        });
    const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == begin || mid == end)
        return node_index;

    nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
    nodes_[static_cast<std::size_t>(node_index)].threshold =
        best_threshold;
    const auto left_child = build(data, indices, begin, mid, depth + 1,
                                  rng);
    nodes_[static_cast<std::size_t>(node_index)].left = left_child;
    const auto right_child = build(data, indices, mid, end, depth + 1,
                                   rng);
    nodes_[static_cast<std::size_t>(node_index)].right = right_child;
    return node_index;
}

int
DecisionTree::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(!nodes_.empty(), "predict before fit");
    std::int32_t node = 0;
    while (true) {
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        if (n.feature < 0)
            return n.label;
        node = row[static_cast<std::size_t>(n.feature)] <= n.threshold
                   ? n.left
                   : n.right;
    }
}

RegressionTree::RegressionTree(std::uint32_t max_depth,
                               std::uint32_t min_samples_split)
    : max_depth_(max_depth), min_samples_split_(min_samples_split)
{
}

void
RegressionTree::fit(const std::vector<std::vector<double>> &x,
                    const std::vector<double> &targets,
                    const std::vector<std::size_t> &indices)
{
    LEAKY_ASSERT(!indices.empty(), "empty regression fit");
    nodes_.clear();
    std::vector<std::size_t> work = indices;
    build(x, targets, work, 0, work.size(), 0);
}

std::int32_t
RegressionTree::build(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &targets,
                      std::vector<std::size_t> &indices,
                      std::size_t begin, std::size_t end,
                      std::uint32_t depth)
{
    const auto n = end - begin;
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        sum += targets[indices[i]];
    const double mean = sum / static_cast<double>(n);

    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({});
    nodes_[static_cast<std::size_t>(node_index)].value = mean;
    if (depth >= max_depth_ || n < min_samples_split_)
        return node_index;

    const auto n_features = x[indices[begin]].size();
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = -1e-12; // Required variance-reduction gain.

    std::vector<std::size_t> sorted(indices.begin() +
                                        static_cast<std::ptrdiff_t>(begin),
                                    indices.begin() +
                                        static_cast<std::ptrdiff_t>(end));
    for (std::size_t f = 0; f < n_features; ++f) {
        std::sort(sorted.begin(), sorted.end(),
                  [&x, f](std::size_t a, std::size_t b) {
                      return x[a][f] < x[b][f];
                  });
        double left_sum = 0.0;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            left_sum += targets[sorted[i]];
            const double lo = x[sorted[i]][f];
            const double hi = x[sorted[i + 1]][f];
            if (hi <= lo)
                continue;
            const double nl = static_cast<double>(i + 1);
            const double nr = static_cast<double>(sorted.size() - i - 1);
            const double right_sum = sum - left_sum;
            // Maximising sum-of-squares of child means equals maximum
            // variance reduction.
            const double score = left_sum * left_sum / nl +
                                 right_sum * right_sum / nr -
                                 sum * sum / static_cast<double>(n);
            if (score > best_score + 1e-12) {
                best_score = score;
                best_feature = static_cast<int>(f);
                best_threshold = (lo + hi) / 2.0;
            }
        }
    }
    if (best_feature < 0)
        return node_index;

    const auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(begin),
        indices.begin() + static_cast<std::ptrdiff_t>(end),
        [&x, best_feature, best_threshold](std::size_t i) {
            return x[i][static_cast<std::size_t>(best_feature)] <=
                   best_threshold;
        });
    const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == begin || mid == end)
        return node_index;

    nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
    nodes_[static_cast<std::size_t>(node_index)].threshold =
        best_threshold;
    const auto left_child =
        build(x, targets, indices, begin, mid, depth + 1);
    nodes_[static_cast<std::size_t>(node_index)].left = left_child;
    const auto right_child =
        build(x, targets, indices, mid, end, depth + 1);
    nodes_[static_cast<std::size_t>(node_index)].right = right_child;
    return node_index;
}

double
RegressionTree::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(!nodes_.empty(), "predict before fit");
    std::int32_t node = 0;
    while (true) {
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        if (n.feature < 0)
            return n.value;
        node = row[static_cast<std::size_t>(n.feature)] <= n.threshold
                   ? n.left
                   : n.right;
    }
}

} // namespace leaky::ml
