#include "ml/linear.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace leaky::ml {

void
LinearOvR::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    n_classes_ = data.n_classes;
    scaler_.fit(data);
    const Dataset scaled = scaler_.apply(data);
    const auto n_features = scaled.features();
    weights_.assign(static_cast<std::size_t>(n_classes_),
                    std::vector<double>(n_features + 1, 0.0));

    std::vector<std::size_t> order(scaled.size());
    std::iota(order.begin(), order.end(), 0);
    sim::Rng rng(cfg_.seed);

    for (std::uint32_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        const double lr =
            cfg_.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
        for (auto idx : order) {
            const auto &row = scaled.x[idx];
            for (int cls = 0; cls < n_classes_; ++cls) {
                auto &w = weights_[static_cast<std::size_t>(cls)];
                double score = w[n_features]; // Bias.
                for (std::size_t f = 0; f < n_features; ++f)
                    score += w[f] * row[f];
                const double y = scaled.y[idx] == cls ? 1.0 : -1.0;
                const double g = gradientScale(y * score);
                if (g != 0.0) {
                    for (std::size_t f = 0; f < n_features; ++f)
                        w[f] += lr * (g * y * row[f] - cfg_.l2 * w[f]);
                    w[n_features] += lr * g * y;
                }
            }
        }
    }
}

int
LinearOvR::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(!weights_.empty(), "predict before fit");
    const auto scaled = scaler_.apply(row);
    int best = 0;
    double best_score = -1e300;
    for (int cls = 0; cls < n_classes_; ++cls) {
        const auto &w = weights_[static_cast<std::size_t>(cls)];
        double score = w[scaled.size()];
        for (std::size_t f = 0; f < scaled.size(); ++f)
            score += w[f] * scaled[f];
        if (score > best_score) {
            best_score = score;
            best = cls;
        }
    }
    return best;
}

double
LogisticRegression::gradientScale(double margin) const
{
    // d/dw log(1 + exp(-m)) -> sigma(-m).
    return 1.0 / (1.0 + std::exp(margin));
}

double
LinearSvm::gradientScale(double margin) const
{
    return margin < 1.0 ? 1.0 : 0.0;
}

double
Perceptron::gradientScale(double margin) const
{
    return margin <= 0.0 ? 1.0 : 0.0;
}

void
KNearestNeighbors::fit(const Dataset &data)
{
    LEAKY_ASSERT(data.size() > 0, "empty training set");
    scaler_.fit(data);
    train_ = scaler_.apply(data);
}

int
KNearestNeighbors::predict(const std::vector<double> &row) const
{
    LEAKY_ASSERT(train_.size() > 0, "predict before fit");
    const auto scaled = scaler_.apply(row);
    const auto k = std::min<std::size_t>(k_, train_.size());

    // Partial selection of the k nearest.
    std::vector<std::pair<double, int>> dist;
    dist.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
        double d = 0.0;
        for (std::size_t f = 0; f < scaled.size(); ++f) {
            const double diff = scaled[f] - train_.x[i][f];
            d += diff * diff;
        }
        dist.emplace_back(d, train_.y[i]);
    }
    std::nth_element(dist.begin(),
                     dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());
    std::vector<std::uint32_t> votes(
        static_cast<std::size_t>(train_.n_classes), 0);
    for (std::size_t i = 0; i < k; ++i)
        votes[static_cast<std::size_t>(dist[i].second)] += 1;
    return static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
}

} // namespace leaky::ml
