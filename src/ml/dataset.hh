/**
 * @file
 * Minimal dataset handling for the website-fingerprinting classifiers
 * (paper §8): feature matrices with integer labels, deterministic
 * shuffling, stratified train/test splits and k-fold cross-validation,
 * and z-score standardisation (fitted on training data only).
 */

#ifndef LEAKY_ML_DATASET_HH
#define LEAKY_ML_DATASET_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace leaky::ml {

/** Labelled feature matrix. */
struct Dataset {
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    int n_classes = 0;

    std::size_t size() const { return x.size(); }
    std::size_t features() const { return x.empty() ? 0 : x[0].size(); }

    void
    add(std::vector<double> row, int label)
    {
        x.push_back(std::move(row));
        y.push_back(label);
        if (label + 1 > n_classes)
            n_classes = label + 1;
    }

    /** Subset by indices (keeps n_classes). */
    Dataset select(const std::vector<std::size_t> &indices) const;
};

/** One train/test partition. */
struct Split {
    Dataset train;
    Dataset test;
};

/** Deterministic stratified train/test split. */
Split stratifiedSplit(const Dataset &data, double test_fraction,
                      std::uint64_t seed);

/** Stratified k-fold partitions (fold i is the test set of split i). */
std::vector<Split> kFold(const Dataset &data, std::uint32_t folds,
                         std::uint64_t seed);

/** Z-score standardiser (fit on train, apply to both). */
class Standardizer
{
  public:
    void fit(const Dataset &data);
    std::vector<double> apply(const std::vector<double> &row) const;
    Dataset apply(const Dataset &data) const;

  private:
    std::vector<double> mean_;
    std::vector<double> stddev_;
};

} // namespace leaky::ml

#endif // LEAKY_ML_DATASET_HH
