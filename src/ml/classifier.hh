/**
 * @file
 * Common classifier interface for the §8 fingerprinting models.
 */

#ifndef LEAKY_ML_CLASSIFIER_HH
#define LEAKY_ML_CLASSIFIER_HH

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace leaky::ml {

/** Supervised multi-class classifier. */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /** Train on @p data (fully replaces prior state). */
    virtual void fit(const Dataset &data) = 0;

    /** Predict the class of one sample. */
    virtual int predict(const std::vector<double> &row) const = 0;

    /** Human-readable model name (paper Fig. 10 labels). */
    virtual std::string name() const = 0;

    /** Predict a batch. */
    std::vector<int>
    predictAll(const Dataset &data) const
    {
        std::vector<int> out;
        out.reserve(data.size());
        for (const auto &row : data.x)
            out.push_back(predict(row));
        return out;
    }
};

/** The paper's Fig. 10 model zoo, in plot order. */
std::vector<std::unique_ptr<Classifier>> makeFig10Models(
    std::uint64_t seed = 9);

} // namespace leaky::ml

#endif // LEAKY_ML_CLASSIFIER_HH
