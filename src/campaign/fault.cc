#include "campaign/fault.hh"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "runner/flags.hh"

namespace leaky::campaign {

bool
FaultPlan::parse(const std::string &text, FaultPlan *plan,
                 std::string *error)
{
    const auto at = text.find('@');
    if (at == std::string::npos) {
        *error = "fault spec '" + text +
                 "' must be crash|throw|hang@<n>[:ms]";
        return false;
    }
    const std::string kind = text.substr(0, at);
    std::string count = text.substr(at + 1);

    FaultPlan parsed;
    if (kind == "crash") {
        parsed.kind = FaultKind::kCrash;
    } else if (kind == "throw") {
        parsed.kind = FaultKind::kThrow;
    } else if (kind == "hang") {
        parsed.kind = FaultKind::kHang;
    } else {
        *error = "unknown fault kind '" + kind +
                 "' (crash | throw | hang)";
        return false;
    }

    const auto colon = count.find(':');
    if (colon != std::string::npos) {
        if (parsed.kind != FaultKind::kHang) {
            *error = "only hang faults take a :ms suffix";
            return false;
        }
        std::uint32_t ms = 0;
        if (!runner::parseUint32(count.substr(colon + 1), &ms)) {
            *error = "bad hang duration in '" + text + "'";
            return false;
        }
        parsed.hang_ms = ms;
        count.resize(colon);
    }

    std::uint64_t n = 0;
    if (!runner::parseUint64(count, &n) || n == 0) {
        *error = "bad job count in fault spec '" + text +
                 "' (need a positive integer)";
        return false;
    }
    parsed.at_job = n;
    *plan = parsed;
    return true;
}

void
FaultInjector::onJobStart()
{
    if (!plan_.armed())
        return;
    const auto n = started_.fetch_add(1) + 1;
    if (n != plan_.at_job)
        return;
    switch (plan_.kind) {
      case FaultKind::kCrash:
        // A kill: no unwinding, no stream flush — exactly what a
        // SIGKILL or OOM leaves behind. Committed manifest records
        // were flushed per job, so only in-flight work is lost.
        std::_Exit(kCrashExitCode);
      case FaultKind::kThrow:
        throw std::runtime_error("injected fault: throw at job " +
                                 std::to_string(n));
      case FaultKind::kHang:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan_.hang_ms));
        return;
      case FaultKind::kNone:
        return;
    }
}

} // namespace leaky::campaign
