/**
 * @file
 * Fault-tolerant campaign driver: the layer that makes million-job
 * studies (the fuzzer, the full registry × defenses × standards ×
 * channels matrix) survivable. A campaign wraps one SweepSpec and
 *
 * - **shards** it by contiguous job-index range across processes
 *   (per-job seeds are a splitmix64 fan-out of (base_seed, index), so
 *   shard boundaries cannot change any result),
 * - **checkpoints** every completed job through an append-only
 *   manifest and **resumes** after a kill by replaying it and running
 *   only the missing jobs,
 * - **isolates faults**: a throwing job is retried a bounded number
 *   of times (jobs are deterministic functions of their seed, so a
 *   retry is a re-execution, not a gamble) and then recorded as
 *   failed instead of poisoning the sweep; SIGINT/SIGTERM drain
 *   gracefully — started jobs finish and commit, queued jobs stay
 *   queued for the resume,
 * - **merges** shard outputs into the final CSV with the runner's
 *   determinism contract intact: for any shard count and any
 *   kill/resume schedule, the merged file is byte-identical to the
 *   single-process single-thread CSV.
 */

#ifndef LEAKY_CAMPAIGN_CAMPAIGN_HH
#define LEAKY_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/fault.hh"
#include "campaign/manifest.hh"
#include "campaign/shard.hh"
#include "runner/sweep.hh"

namespace leaky::campaign {

/** How to run shards of a campaign. */
struct CampaignConfig {
    std::string dir;          ///< Campaign state directory.
    unsigned threads = 0;     ///< Pool workers per shard (0 = hw).
    unsigned retries = 2;     ///< Extra attempts after a job throws.
    unsigned deadline_ms = 0; ///< Per-job soft deadline (0 = none).
    FaultPlan fault;          ///< Injected fault (tests / CI).
};

/** What one runShard() invocation did and left behind. */
struct ShardReport {
    std::size_t shard = 0;
    std::size_t owned = 0;     ///< Jobs in the shard's range.
    std::size_t completed = 0; ///< Done after this run (incl. resumed).
    std::size_t ran = 0;       ///< Jobs executed by this invocation.
    std::size_t failed = 0;    ///< Jobs whose retries are exhausted.
    std::size_t skipped = 0;   ///< Drained by a stop request.
    bool stopped = false;      ///< A stop request ended the run early.

    bool complete() const { return completed == owned; }
};

/** One shard's health as read back from its manifest. */
struct ShardStatus {
    std::size_t shard = 0;
    std::size_t owned = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t remaining = 0; ///< Neither done nor failed.
    /** Failing jobs (index -> last attempt count + message). */
    std::map<std::size_t, FailRecord> failures;
};

/** Whole-campaign health, derived from meta + every manifest. */
struct CampaignStatus {
    ManifestMeta meta;
    std::vector<ShardStatus> shards;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t remaining = 0;

    bool complete() const { return failed == 0 && remaining == 0; }
};

/** Derive the persisted identity of a campaign over @p spec. */
ManifestMeta makeMeta(const runner::SweepSpec &spec, std::size_t shards,
                      const std::string &csv_name,
                      const std::string &scale);

/**
 * Create @p dir (and its meta file) for @p meta, or validate that the
 * existing meta matches — resuming with different flags (figure,
 * scale, seed, shard count) is refused with a runtime_error rather
 * than silently producing a mixed, unmergeable campaign.
 */
void openCampaign(const ManifestMeta &meta, const std::string &dir);

/**
 * Run (or resume) one shard: replay its manifest, execute only the
 * missing jobs on a work-stealing pool, and commit each job to the
 * manifest as it completes. Failed jobs from a previous run are
 * re-attempted. When the shard finishes cleanly its header-less CSV
 * slice is atomically renamed into `shard_<k>.csv`.
 */
ShardReport runShard(const runner::SweepSpec &spec,
                     const ManifestMeta &meta,
                     const CampaignConfig &config, std::size_t shard);

/** Read back campaign health from @p dir (meta + all manifests). */
CampaignStatus campaignStatus(const std::string &dir);

/**
 * Render the merged final CSV (header + every job's rows in global
 * job-index order) from the shard manifests. Throws if any job is
 * missing or failed — merging a partial campaign would silently
 * violate the determinism contract.
 */
std::string mergedCsv(const std::string &dir);

/** mergedCsv() written atomically to `<dir>/<csv_name>`; returns the
 *  path. Also (re)writes any missing shard_<k>.csv slices. */
std::string writeMergedCsv(const std::string &dir);

// ----------------------------------------------- graceful shutdown
// SIGINT/SIGTERM (via installStopSignalHandlers) or requestStop() flip
// a process-wide flag; workers finish the job they are on, skip the
// rest, and runShard returns with stopped=true. Everything committed
// so far is on disk, so the campaign resumes exactly where it drained.

/** Install SIGINT/SIGTERM handlers that call requestStop(). */
void installStopSignalHandlers();

void requestStop();
bool stopRequested();
void clearStopRequest(); ///< Tests re-arm between scenarios.

} // namespace leaky::campaign

#endif // LEAKY_CAMPAIGN_CAMPAIGN_HH
