/**
 * @file
 * Kill-safe campaign persistence. Two file kinds live in a campaign
 * directory:
 *
 * - `campaign.meta` — the campaign identity (figure, scale, seed,
 *   shard count, job count, CSV columns), written once with an atomic
 *   rename. Resume validates it so shards of different campaigns can
 *   never be mixed or merged.
 * - `manifest_<k>.log` — one append-only manifest per shard. Every
 *   completed job appends a single self-contained `done` record
 *   carrying its already-rendered CSV row cells; every exhausted
 *   retry appends a `fail` record. Records end with a literal ` ok`
 *   token and a newline, so a record torn by a kill mid-append simply
 *   fails the suffix check and the job is re-run on resume — no fsync
 *   choreography, no partial state.
 *
 * Loading replays the log in order: the last record per job index
 * wins, a `done` erases an earlier `fail`, and unparseable or torn
 * lines are skipped. Because row cells are rendered with
 * runner::csvCell at commit time, a merge of manifests reproduces the
 * single-process CSV byte for byte.
 */

#ifndef LEAKY_CAMPAIGN_MANIFEST_HH
#define LEAKY_CAMPAIGN_MANIFEST_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace leaky::campaign {

/** Campaign identity, persisted as `campaign.meta`. */
struct ManifestMeta {
    std::string figure;   ///< Figure / sweep name.
    std::string csv_name; ///< Final merged artifact file name.
    std::string scale;    ///< smoke | default | full.
    std::uint64_t seed = 1;
    std::size_t shards = 1;
    std::size_t jobs = 0;
    std::vector<std::string> columns;

    std::string serialize() const;
    /** Parse a serialized meta; throws std::runtime_error on damage. */
    static ManifestMeta parse(const std::string &text);
    /** One-line human description for mismatch errors. */
    std::string describe() const;

    bool operator==(const ManifestMeta &other) const;
    bool operator!=(const ManifestMeta &other) const
    {
        return !(*this == other);
    }
};

/** Last recorded failure of a job that is not (yet) done. */
struct FailRecord {
    unsigned attempts = 0;
    std::string message;
};

/** Replayed view of one shard manifest. */
struct ManifestState {
    /** Job index -> rendered CSV row lines (cells already joined). */
    std::map<std::size_t, std::vector<std::string>> done;
    /** Job index -> last failure; never overlaps `done`. */
    std::map<std::size_t, FailRecord> failed;

    /** Replay @p path; a missing file is an empty (fresh) state. */
    static ManifestState load(const std::string &path);
};

/**
 * Append-only manifest writer. Thread-safe: workers commit jobs
 * concurrently and each record is written and flushed under one lock,
 * so records never interleave. Opening an existing manifest first
 * terminates any torn trailing line so new records start clean.
 */
class ManifestWriter
{
  public:
    /** Open (or create, with a header record) the shard manifest.
     *  Throws std::runtime_error when the file cannot be opened. */
    ManifestWriter(const std::string &path, std::size_t shard,
                   std::size_t shards, std::size_t range_begin,
                   std::size_t range_end);

    /** Commit a completed job: one `done` record with its rows. */
    void jobDone(std::size_t index,
                 const std::vector<std::string> &rows);

    /** Record a job whose bounded retries are exhausted. */
    void jobFailed(std::size_t index, unsigned attempts,
                   const std::string &message);

  private:
    void append(const std::string &record);

    std::mutex mutex_;
    std::ofstream file_;
    std::string path_;
};

/** Read a whole file; throws std::runtime_error when unreadable. */
std::string readFileOrThrow(const std::string &path);

} // namespace leaky::campaign

#endif // LEAKY_CAMPAIGN_MANIFEST_HH
