#include "campaign/manifest.hh"

#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace leaky::campaign {

namespace {

// Every manifest record ends with this token (then a newline). A
// record torn by a kill loses its tail, fails the suffix check, and
// is skipped on replay — the cheapest possible commit marker.
constexpr const char kRecordEnd[] = " ok";
constexpr std::size_t kRecordEndLen = 3;

std::string
joinColumns(const std::vector<std::string> &columns)
{
    std::string out;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            out += ',';
        out += columns[c];
    }
    return out;
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (true) {
        const auto next = text.find(sep, pos);
        parts.push_back(text.substr(
            pos, next == std::string::npos ? std::string::npos
                                           : next - pos));
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return parts;
}

/** Newlines inside record payloads would forge record boundaries. */
std::string
sanitize(const std::string &text)
{
    std::string out = text;
    for (auto &ch : out)
        if (ch == '\n' || ch == '\r')
            ch = ' ';
    return out;
}

/** Strip the trailing ` ok` marker; false = torn or foreign line. */
bool
stripRecordEnd(std::string *line)
{
    if (line->size() < kRecordEndLen ||
        line->compare(line->size() - kRecordEndLen, kRecordEndLen,
                      kRecordEnd) != 0)
        return false;
    line->resize(line->size() - kRecordEndLen);
    return true;
}

/** The remainder of @p iss after the leading space, or "" if none. */
std::string
restOf(std::istringstream &iss)
{
    std::string rest;
    std::getline(iss, rest);
    if (!rest.empty() && rest.front() == ' ')
        rest.erase(0, 1);
    return rest;
}

} // namespace

// ---------------------------------------------------------------- meta

std::string
ManifestMeta::serialize() const
{
    std::ostringstream out;
    out << "campaign-meta v1\n"
        << "figure " << figure << "\n"
        << "csv " << csv_name << "\n"
        << "scale " << scale << "\n"
        << "seed " << seed << "\n"
        << "shards " << shards << "\n"
        << "jobs " << jobs << "\n"
        << "columns " << joinColumns(columns) << "\n";
    return out.str();
}

ManifestMeta
ManifestMeta::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "campaign-meta v1")
        throw std::runtime_error(
            "campaign meta is damaged (bad version line)");

    ManifestMeta meta;
    bool saw_columns = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string key;
        iss >> key;
        const std::string value = restOf(iss);
        if (key == "figure") {
            meta.figure = value;
        } else if (key == "csv") {
            meta.csv_name = value;
        } else if (key == "scale") {
            meta.scale = value;
        } else if (key == "seed") {
            meta.seed = std::stoull(value);
        } else if (key == "shards") {
            meta.shards = std::stoull(value);
        } else if (key == "jobs") {
            meta.jobs = std::stoull(value);
        } else if (key == "columns") {
            meta.columns = splitList(value, ',');
            saw_columns = true;
        } else {
            throw std::runtime_error(
                "campaign meta is damaged (unknown key '" + key + "')");
        }
    }
    if (meta.figure.empty() || meta.csv_name.empty() ||
        meta.shards == 0 || !saw_columns)
        throw std::runtime_error(
            "campaign meta is damaged (missing fields)");
    return meta;
}

std::string
ManifestMeta::describe() const
{
    std::ostringstream out;
    out << "figure=" << figure << " scale=" << scale << " seed=" << seed
        << " shards=" << shards << " jobs=" << jobs;
    return out.str();
}

bool
ManifestMeta::operator==(const ManifestMeta &other) const
{
    return figure == other.figure && csv_name == other.csv_name &&
           scale == other.scale && seed == other.seed &&
           shards == other.shards && jobs == other.jobs &&
           columns == other.columns;
}

// --------------------------------------------------------------- state

ManifestState
ManifestState::load(const std::string &path)
{
    ManifestState state;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return state; // Fresh shard: nothing recorded yet.
    std::string content((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    while (pos < content.size()) {
        const auto nl = content.find('\n', pos);
        std::string line = content.substr(
            pos,
            nl == std::string::npos ? std::string::npos : nl - pos);
        pos = nl == std::string::npos ? content.size() : nl + 1;

        // Torn (killed mid-append) and foreign lines lack the end
        // marker and are skipped; the job involved is simply re-run.
        if (!stripRecordEnd(&line))
            continue;
        std::istringstream iss(line);
        std::string tag;
        iss >> tag;
        if (tag == "done") {
            std::size_t index = 0, nrows = 0;
            if (!(iss >> index >> nrows))
                continue;
            const std::string payload = restOf(iss);
            std::vector<std::string> rows;
            if (nrows > 0) {
                rows = splitList(payload, ';');
                bool well_formed = rows.size() == nrows;
                for (const auto &row : rows)
                    well_formed = well_formed && !row.empty();
                if (!well_formed)
                    continue;
            } else if (!payload.empty()) {
                continue;
            }
            state.done[index] = std::move(rows);
            state.failed.erase(index);
        } else if (tag == "fail") {
            std::size_t index = 0;
            unsigned attempts = 0;
            if (!(iss >> index >> attempts))
                continue;
            if (state.done.count(index))
                continue; // A completed job stays completed.
            state.failed[index] = {attempts, restOf(iss)};
        }
        // Header and unknown tags: identity only, nothing to replay.
    }
    return state;
}

// -------------------------------------------------------------- writer

ManifestWriter::ManifestWriter(const std::string &path, std::size_t shard,
                               std::size_t shards,
                               std::size_t range_begin,
                               std::size_t range_end)
    : path_(path)
{
    // A kill mid-append can leave the file without a trailing newline;
    // terminate that torn line so the next record starts clean.
    bool needs_newline = false;
    bool fresh = true;
    {
        std::ifstream existing(path, std::ios::binary | std::ios::ate);
        if (existing && existing.tellg() > 0) {
            fresh = false;
            existing.seekg(-1, std::ios::end);
            char last = '\n';
            existing.get(last);
            needs_newline = last != '\n';
        }
    }
    file_.open(path, std::ios::binary | std::ios::app);
    if (!file_)
        throw std::runtime_error("cannot open campaign manifest " +
                                 path + " for appending");
    if (needs_newline)
        append("");
    if (fresh) {
        std::ostringstream header;
        header << "campaign-manifest v1 shard " << shard << " of "
               << shards << " range " << range_begin << " "
               << range_end << kRecordEnd;
        append(header.str());
    }
}

void
ManifestWriter::jobDone(std::size_t index,
                        const std::vector<std::string> &rows)
{
    std::ostringstream record;
    record << "done " << index << " " << rows.size() << " ";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r)
            record << ';';
        record << rows[r];
    }
    record << kRecordEnd;
    append(record.str());
}

void
ManifestWriter::jobFailed(std::size_t index, unsigned attempts,
                          const std::string &message)
{
    std::ostringstream record;
    record << "fail " << index << " " << attempts << " "
           << sanitize(message) << kRecordEnd;
    append(record.str());
}

void
ManifestWriter::append(const std::string &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    file_ << record << '\n';
    file_.flush();
    if (!file_)
        throw std::runtime_error("append to campaign manifest " +
                                 path_ + " failed");
}

// ------------------------------------------------------------- utility

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw std::runtime_error("cannot read " + path);
    return std::string((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
}

} // namespace leaky::campaign
