/**
 * @file
 * Deterministic fault injection for the campaign layer. A FaultPlan
 * names one fault — crash the process, throw, or hang past the per-job
 * deadline — and the (1-based) job execution at which it fires within
 * the current process. Plans are selectable from tests (construct the
 * struct), from the CLI (`--fault crash@3`) and from the environment
 * (`LEAKY_CAMPAIGN_FAULT`), so the kill-and-resume, retry, and
 * shard-merge paths are exercised reproducibly in tier-1 tests and CI
 * rather than only by real outages.
 */

#ifndef LEAKY_CAMPAIGN_FAULT_HH
#define LEAKY_CAMPAIGN_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace leaky::campaign {

/** Exit code of an injected crash (distinct from every CLI status, so
 *  CI can assert the kill really was the injected one). */
constexpr int kCrashExitCode = 42;

/** Environment variable holding a fault spec (`crash|throw|hang@N[:ms]`). */
constexpr const char *kFaultEnvVar = "LEAKY_CAMPAIGN_FAULT";

enum class FaultKind {
    kNone,
    kCrash, ///< _Exit(kCrashExitCode): a kill, nothing flushed or unwound.
    kThrow, ///< Throw std::runtime_error: exercises the retry path.
    kHang,  ///< Sleep hang_ms before the job runs: trips the deadline.
};

/** One planned fault, armed at the Nth job execution of this process. */
struct FaultPlan {
    FaultKind kind = FaultKind::kNone;
    /** 1-based count of job executions (attempts count separately) at
     *  which the fault fires. 0 with kind != kNone never fires. */
    std::uint64_t at_job = 0;
    unsigned hang_ms = 50; ///< Sleep length of a kHang fault.

    bool armed() const { return kind != FaultKind::kNone && at_job > 0; }

    /**
     * Parse `crash@N`, `throw@N`, or `hang@N[:ms]`. On failure fills
     * @p error and returns false, leaving @p plan untouched.
     */
    static bool parse(const std::string &text, FaultPlan *plan,
                      std::string *error);
};

/** Process-wide attempt counter that fires the plan exactly once. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    /**
     * Call at the start of every job attempt. When the attempt counter
     * reaches the plan's trigger: kCrash calls std::_Exit, kThrow
     * throws, kHang sleeps hang_ms and returns (letting the deadline
     * check fail the attempt). Later attempts pass clean — an injected
     * throw is transient, so bounded retry recovers from it.
     */
    void onJobStart();

  private:
    FaultPlan plan_;
    std::atomic<std::uint64_t> started_{0};
};

} // namespace leaky::campaign

#endif // LEAKY_CAMPAIGN_FAULT_HH
