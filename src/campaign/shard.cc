#include "campaign/shard.hh"

#include <filesystem>

#include "sim/logging.hh"

namespace leaky::campaign {

ShardRange
shardRange(std::size_t jobs, std::size_t shards, std::size_t shard)
{
    LEAKY_ASSERT(shards > 0, "campaign needs at least one shard");
    LEAKY_ASSERT(shard < shards, "shard index out of range");
    ShardRange range;
    range.begin = jobs * shard / shards;
    range.end = jobs * (shard + 1) / shards;
    return range;
}

std::string
metaPath(const std::string &dir)
{
    return (std::filesystem::path(dir) / "campaign.meta").string();
}

std::string
manifestPath(const std::string &dir, std::size_t shard)
{
    return (std::filesystem::path(dir) /
            ("manifest_" + std::to_string(shard) + ".log"))
        .string();
}

std::string
shardCsvPath(const std::string &dir, std::size_t shard)
{
    return (std::filesystem::path(dir) /
            ("shard_" + std::to_string(shard) + ".csv"))
        .string();
}

std::string
mergedCsvPath(const std::string &dir, const std::string &csv_name)
{
    return (std::filesystem::path(dir) / csv_name).string();
}

} // namespace leaky::campaign
