#include "campaign/campaign.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <stdexcept>

#include "runner/pool.hh"
#include "runner/runner.hh"
#include "sim/logging.hh"

namespace leaky::campaign {

namespace {

// sig_atomic_t + lock-free flag: the only state a signal handler may
// touch. Worker threads poll it between jobs.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void
onStopSignal(int)
{
    g_stop_requested = 1;
}

std::string
renderRow(const std::vector<double> &row)
{
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
        if (c)
            out += ',';
        out += runner::csvCell(row[c]);
    }
    return out;
}

/** Shard body: the committed row lines of [range) in index order. */
std::string
shardCsvBody(const ManifestState &state, const ShardRange &range)
{
    std::string body;
    for (std::size_t index = range.begin; index < range.end; ++index) {
        const auto it = state.done.find(index);
        LEAKY_ASSERT(it != state.done.end(),
                     "shard CSV requested for an incomplete shard");
        for (const auto &row : it->second) {
            body += row;
            body += '\n';
        }
    }
    return body;
}

ManifestMeta
loadMeta(const std::string &dir)
{
    return ManifestMeta::parse(readFileOrThrow(metaPath(dir)));
}

} // namespace

ManifestMeta
makeMeta(const runner::SweepSpec &spec, std::size_t shards,
         const std::string &csv_name, const std::string &scale)
{
    ManifestMeta meta;
    meta.figure = spec.name;
    meta.csv_name = csv_name;
    meta.scale = scale.empty() ? "default" : scale;
    meta.seed = spec.base_seed;
    meta.shards = shards;
    meta.jobs = runner::jobCount(spec);
    meta.columns = spec.columns;
    return meta;
}

void
openCampaign(const ManifestMeta &meta, const std::string &dir)
{
    LEAKY_ASSERT(meta.shards > 0, "campaign needs at least one shard");
    std::filesystem::create_directories(dir);
    const auto path = metaPath(dir);
    if (std::filesystem::exists(path)) {
        const auto existing = ManifestMeta::parse(readFileOrThrow(path));
        if (existing != meta)
            throw std::runtime_error(
                "campaign directory " + dir +
                " holds a different campaign (" + existing.describe() +
                ") than requested (" + meta.describe() +
                "); resume with the original flags or use a fresh "
                "directory");
        return;
    }
    runner::writeFile(path, meta.serialize());
}

ShardReport
runShard(const runner::SweepSpec &spec, const ManifestMeta &meta,
         const CampaignConfig &config, std::size_t shard)
{
    LEAKY_ASSERT(shard < meta.shards, "shard index out of range");
    LEAKY_ASSERT(runner::jobCount(spec) == meta.jobs,
                 "sweep spec expands to a different job count than the "
                 "campaign meta");
    LEAKY_ASSERT(spec.columns == meta.columns,
                 "sweep spec columns differ from the campaign meta");

    const auto range = shardRange(meta.jobs, meta.shards, shard);
    const auto path = manifestPath(config.dir, shard);
    const auto state = ManifestState::load(path);

    // Resume = replay the manifest and run only what is missing.
    // Previously *failed* jobs are missing too: a fault-injected or
    // transient failure deserves a fresh bounded-retry budget.
    std::vector<std::size_t> missing;
    for (std::size_t index = range.begin; index < range.end; ++index)
        if (!state.done.count(index))
            missing.push_back(index);

    ShardReport report;
    report.shard = shard;
    report.owned = range.size();
    report.completed = range.size() - missing.size();

    const auto jobs = runner::expandJobs(spec);
    ManifestWriter writer(path, shard, meta.shards, range.begin,
                          range.end);
    FaultInjector fault(config.fault);
    std::atomic<std::size_t> ran{0}, failed{0}, skipped{0};
    const unsigned attempts_max = 1 + config.retries;

    runner::SweepPool pool(config.threads);
    // The per-job fn never throws: every failure path is caught,
    // bounded-retried, and recorded — one poisoned job cannot abort
    // the shard or discard its siblings' committed work.
    pool.forEach(missing.size(), [&](std::size_t i) {
        const auto index = missing[i];
        if (stopRequested()) {
            skipped.fetch_add(1);
            return;
        }
        std::string last_error;
        for (unsigned attempt = 1; attempt <= attempts_max; ++attempt) {
            try {
                // lint:allow(no-wallclock): deadline_ms guards against hung jobs in real time; rows stay tick-determined
                const auto start = std::chrono::steady_clock::now();
                fault.onJobStart();
                const auto rows = spec.job(jobs[index]);
                // lint:allow(no-wallclock): paired with the deadline start timestamp above
                const auto end = std::chrono::steady_clock::now();
                const double elapsed_ms =
                    std::chrono::duration<double, std::milli>(
                        end - start)
                        .count();
                if (config.deadline_ms != 0 &&
                    elapsed_ms > config.deadline_ms)
                    throw std::runtime_error(
                        "job exceeded the " +
                        std::to_string(config.deadline_ms) +
                        " ms deadline");
                std::vector<std::string> lines;
                lines.reserve(rows.size());
                for (const auto &row : rows) {
                    LEAKY_ASSERT(row.size() == spec.columns.size(),
                                 "job row arity != sweep columns");
                    lines.push_back(renderRow(row));
                }
                writer.jobDone(index, lines);
                ran.fetch_add(1);
                return;
            } catch (const std::exception &e) {
                last_error = e.what();
            } catch (...) {
                last_error = "unknown exception";
            }
        }
        writer.jobFailed(index, attempts_max,
                         runner::describeJobParams(jobs[index]) + ": " +
                             last_error);
        failed.fetch_add(1);
    });

    report.ran = ran.load();
    report.failed = failed.load();
    report.skipped = skipped.load();
    report.completed += report.ran;
    report.stopped = stopRequested();

    // A cleanly finished shard leaves its CSV slice behind, atomically
    // renamed so no reader ever sees a partial slice.
    if (report.complete()) {
        const auto final_state = ManifestState::load(path);
        runner::writeFile(shardCsvPath(config.dir, shard),
                          shardCsvBody(final_state, range));
    }
    return report;
}

CampaignStatus
campaignStatus(const std::string &dir)
{
    CampaignStatus status;
    status.meta = loadMeta(dir);
    for (std::size_t shard = 0; shard < status.meta.shards; ++shard) {
        const auto range =
            shardRange(status.meta.jobs, status.meta.shards, shard);
        const auto state =
            ManifestState::load(manifestPath(dir, shard));
        ShardStatus entry;
        entry.shard = shard;
        entry.owned = range.size();
        for (std::size_t index = range.begin; index < range.end;
             ++index) {
            if (state.done.count(index)) {
                ++entry.done;
            } else if (const auto it = state.failed.find(index);
                       it != state.failed.end()) {
                ++entry.failed;
                entry.failures.emplace(index, it->second);
            } else {
                ++entry.remaining;
            }
        }
        status.done += entry.done;
        status.failed += entry.failed;
        status.remaining += entry.remaining;
        status.shards.push_back(std::move(entry));
    }
    return status;
}

std::string
mergedCsv(const std::string &dir)
{
    const auto meta = loadMeta(dir);
    std::string out;
    for (std::size_t c = 0; c < meta.columns.size(); ++c) {
        if (c)
            out += ',';
        out += meta.columns[c];
    }
    out += '\n';
    for (std::size_t shard = 0; shard < meta.shards; ++shard) {
        const auto range = shardRange(meta.jobs, meta.shards, shard);
        const auto state =
            ManifestState::load(manifestPath(dir, shard));
        for (std::size_t index = range.begin; index < range.end;
             ++index) {
            const auto it = state.done.find(index);
            if (it == state.done.end())
                throw std::runtime_error(
                    "cannot merge campaign " + dir + ": job " +
                    std::to_string(index) + " of shard " +
                    std::to_string(shard) +
                    " is not completed (resume the shard first)");
            for (const auto &row : it->second) {
                out += row;
                out += '\n';
            }
        }
    }
    return out;
}

std::string
writeMergedCsv(const std::string &dir)
{
    const auto meta = loadMeta(dir);
    // Regenerate any missing shard slices first (e.g. a shard that
    // completed only via resume on another machine).
    for (std::size_t shard = 0; shard < meta.shards; ++shard) {
        const auto csv = shardCsvPath(dir, shard);
        if (std::filesystem::exists(csv))
            continue;
        const auto range = shardRange(meta.jobs, meta.shards, shard);
        const auto state =
            ManifestState::load(manifestPath(dir, shard));
        bool complete = true;
        for (std::size_t index = range.begin;
             complete && index < range.end; ++index)
            complete = state.done.count(index) != 0;
        if (complete)
            runner::writeFile(csv, shardCsvBody(state, range));
    }
    const auto path = mergedCsvPath(dir, meta.csv_name);
    runner::writeFile(path, mergedCsv(dir));
    return path;
}

void
installStopSignalHandlers()
{
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
}

void
requestStop()
{
    g_stop_requested = 1;
}

bool
stopRequested()
{
    return g_stop_requested != 0;
}

void
clearStopRequest()
{
    g_stop_requested = 0;
}

} // namespace leaky::campaign
