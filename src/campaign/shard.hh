/**
 * @file
 * Shard geometry and campaign-directory layout. A campaign partitions
 * the job-index space [0, jobs) into `shards` contiguous ranges, one
 * per (potentially separate-process) shard. Because every job's seed
 * is a splitmix64 fan-out of (base_seed, index) — never of anything
 * schedule- or shard-dependent — the partition boundaries cannot
 * change any job's result, and concatenating shard outputs in shard
 * order reproduces the single-process job-index order exactly.
 */

#ifndef LEAKY_CAMPAIGN_SHARD_HH
#define LEAKY_CAMPAIGN_SHARD_HH

#include <cstddef>
#include <string>

namespace leaky::campaign {

/** Half-open job-index range [begin, end) owned by one shard. */
struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool contains(std::size_t index) const
    {
        return index >= begin && index < end;
    }
};

/**
 * The contiguous range shard @p shard of @p shards owns over @p jobs
 * jobs: [floor(shard * jobs / shards), floor((shard+1) * jobs /
 * shards)). Ranges tile the index space exactly and differ in size by
 * at most one job. Asserts shard < shards.
 */
ShardRange shardRange(std::size_t jobs, std::size_t shards,
                      std::size_t shard);

// ------------------------------------------------- directory layout
// All campaign state lives flat in one directory so a campaign can be
// inspected, resumed, or archived by path alone.

/** `<dir>/campaign.meta` — the campaign identity record. */
std::string metaPath(const std::string &dir);

/** `<dir>/manifest_<shard>.log` — the shard's append-only manifest. */
std::string manifestPath(const std::string &dir, std::size_t shard);

/** `<dir>/shard_<shard>.csv` — the shard's header-less row slice,
 *  atomically renamed into place when the shard completes. */
std::string shardCsvPath(const std::string &dir, std::size_t shard);

/** `<dir>/<csv_name>` — the merged, header-ed final artifact. */
std::string mergedCsvPath(const std::string &dir,
                          const std::string &csv_name);

} // namespace leaky::campaign

#endif // LEAKY_CAMPAIGN_SHARD_HH
