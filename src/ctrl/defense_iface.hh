/**
 * @file
 * Interface between the memory controller and controller-side RowHammer
 * defenses (PRFM, FR-RFM). The controller reports activations and asks
 * the defense which RFM commands are due; the defense never touches the
 * channel directly so it cannot violate timing.
 */

#ifndef LEAKY_CTRL_DEFENSE_IFACE_HH
#define LEAKY_CTRL_DEFENSE_IFACE_HH

#include <optional>

#include "dram/types.hh"
#include "sim/tick.hh"

namespace leaky::ctrl {

using dram::Address;
using dram::Command;
using sim::Tick;

/**
 * What a controller-side defense action *is*, independent of the DRAM
 * command that implements it. The controller keeps per-kind counters
 * (CtrlStats) and emits per-kind PreventiveEvents, so attacks can
 * distinguish the observables: RFM windows (PRFM / FR-RFM), targeted
 * victim-row refreshes (Graphene / Hydra / PARA's neighbour refresh),
 * and Hydra's counter-cache fill traffic.
 */
enum class PreventiveActionKind : std::uint8_t {
    kRfm,           ///< Refresh-management window (RFMab/sb/pb).
    kVictimRefresh, ///< Targeted refresh of one aggressor's victims.
    kCounterFetch   ///< Counter-cache miss: fetch a row counter from DRAM.
};

/** An RFM-like command the defense wants the controller to issue. */
struct RfmRequest {
    Command kind = Command::kRfmAll;
    /** What the command models (stats / listener classification). */
    PreventiveActionKind action = PreventiveActionKind::kRfm;
    Address target;          ///< rank (+ bank for kRfmSameBank).
    bool all_ranks = false;  ///< Issue to every rank (channel scope).
    /**
     * Precise scheduling (FR-RFM): the RFM must be issued exactly at
     * @p scheduled_at; the controller starts draining early enough to
     * make that deadline. Non-precise RFMs are issued as soon as the
     * target banks can be closed.
     */
    bool precise = false;
    Tick scheduled_at = 0;
    Tick latency_override = 0; ///< 0 selects the config default (tRFM).
};

/** Controller-side defense observation and command-injection points. */
class ControllerDefense
{
  public:
    virtual ~ControllerDefense() = default;

    /** The controller issued an ACT to @p addr. */
    virtual void onActivate(const Address &addr, Tick now) = 0;

    /** Next RFM the defense needs, if any is due at/around @p now. */
    virtual std::optional<RfmRequest> pendingRfm(Tick now) = 0;

    /** The controller finished issuing @p req (window ends at @p end). */
    virtual void onRfmIssued(const RfmRequest &req, Tick issued,
                             Tick end) = 0;

    /** Next tick the defense needs the controller awake (timers). */
    virtual Tick nextEventTick(Tick now) const = 0;
};

/** Defense that never requests anything (baseline / device-side only). */
class NullControllerDefense final : public ControllerDefense
{
  public:
    void onActivate(const Address &, Tick) override {}
    std::optional<RfmRequest> pendingRfm(Tick) override
    {
        return std::nullopt;
    }
    void onRfmIssued(const RfmRequest &, Tick, Tick) override {}
    Tick nextEventTick(Tick) const override { return sim::kTickMax; }
};

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_DEFENSE_IFACE_HH
