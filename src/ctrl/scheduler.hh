/**
 * @file
 * FR-FCFS request scheduler with a column-access cap (paper Table 1:
 * FR-FCFS with a column cap of 16). Row-buffer hits are prioritised over
 * older requests until a bank has served `cap` consecutive hits while an
 * older non-hit request waits for the same bank; then the older request
 * wins, bounding hit-streak starvation.
 */

#ifndef LEAKY_CTRL_SCHEDULER_HH
#define LEAKY_CTRL_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ctrl/request.hh"
#include "dram/channel.hh"

namespace leaky::ctrl {

/** A queued request plus bookkeeping. */
struct QueueEntry {
    Request req;
    Tick arrival = 0;
    std::uint64_t order = 0; ///< Global FCFS sequence number.
    bool classified = false; ///< Hit/miss/conflict stat recorded yet?
};

/**
 * Controller request queue with compact scan mirrors. Entries carry a
 * ~130-byte Request (address, completion std::function, stats fields),
 * so an FR-FCFS scan over full entries touches two cache lines per
 * element. The queue therefore mirrors exactly the fields the scan
 * reads -- order, flat bank, row -- into packed side arrays kept in
 * lockstep with the entry storage: a 64-entry scan reads ~1 KiB of
 * contiguous data instead of ~8 KiB of scattered entries. push()
 * annotates the address (fills the flat-index caches) so the mirrors
 * are always valid.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(const dram::Organization &org,
                          std::size_t reserve_depth = 0)
        : org_(&org)
    {
        entries_.reserve(reserve_depth);
        order_.reserve(reserve_depth);
        flat_bank_.reserve(reserve_depth);
        row_.reserve(reserve_depth);
    }

    void
    push(QueueEntry &&e)
    {
        org_->annotate(e.req.addr);
        order_.push_back(e.order);
        flat_bank_.push_back(e.req.addr.flat_bank);
        row_.push_back(e.req.addr.row);
        entries_.push_back(std::move(e));
    }

    void
    erase(std::size_t idx)
    {
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(idx));
        flat_bank_.erase(flat_bank_.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        row_.erase(row_.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    QueueEntry &operator[](std::size_t i) { return entries_[i]; }
    const QueueEntry &operator[](std::size_t i) const { return entries_[i]; }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    // Packed scan views, one element per entry (same index space).
    const std::uint64_t *orders() const { return order_.data(); }
    const std::uint32_t *flatBanks() const { return flat_bank_.data(); }
    const std::uint32_t *rows() const { return row_.data(); }

  private:
    const dram::Organization *org_;
    std::vector<QueueEntry> entries_;
    std::vector<std::uint64_t> order_;
    std::vector<std::uint32_t> flat_bank_;
    std::vector<std::uint32_t> row_;
};

/**
 * Predicate over banks the scheduler must not activate (pending RFM /
 * bank-level back-off). A plain (function pointer, context) pair so the
 * controller can pass it on every tick without constructing a
 * std::function; default-constructed means "nothing blocked".
 */
struct BankFilter {
    using Fn = bool (*)(const void *ctx, const Address &);

    Fn fn = nullptr;
    const void *ctx = nullptr;

    bool
    operator()(const Address &a) const
    {
        return fn != nullptr && fn(ctx, a);
    }
};

/** First DRAM command needed to serve a request given row-buffer state. */
dram::Command nextCommandFor(const Request &req, dram::RowStatus status);

/** The scheduler's choice: which entry to serve and with which command. */
struct SchedDecision {
    std::size_t index = 0;      ///< Index into the queue.
    dram::Command cmd{};        ///< Next command for that request.
    Tick earliest = 0;          ///< When the command may issue.
};

/** FR-FCFS with a per-bank consecutive-row-hit cap. */
class FrFcfsScheduler
{
  public:
    FrFcfsScheduler(const dram::Organization &org, std::uint32_t column_cap);

    /**
     * Pick the next (entry, command) from @p queue.
     *
     * @param queue Queue to schedule from.
     * @param chan Channel state (row-buffer status + timings).
     * @param blocked Predicate: true if the request's bank must not be
     *        scheduled (draining for RFM / bank-level back-off).
     * @param now Current tick.
     * @return Decision with the earliest issue tick (possibly in the
     *         future), or nullopt when the queue has no schedulable entry.
     */
    std::optional<SchedDecision>
    pick(const RequestQueue &queue, const dram::DramChannel &chan,
         const BankFilter &blocked, Tick now) const;

    /** Record that a command was issued for streak accounting. */
    void onIssue(const Address &addr, dram::Command cmd, bool was_hit);

    /** Reset all hit streaks (e.g., after refresh drains). */
    void resetStreaks();

  private:
    dram::Organization org_;
    std::uint32_t cap_;
    std::vector<std::uint32_t> hit_streak_; ///< Per flat bank.

    // Per-pick scratch, reused across calls to keep the hot path free
    // of heap allocation (pick() runs at least twice per controller
    // tick: once to serve, once to compute the next wake-up).
    mutable std::vector<std::uint64_t> oldest_nonhit_; ///< Per flat bank.
    mutable std::vector<std::uint8_t> status_;         ///< Per queue slot.
};

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_SCHEDULER_HH
