#include "ctrl/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::ctrl {

using dram::Command;
using dram::RowStatus;

FrFcfsScheduler::FrFcfsScheduler(const dram::Organization &org,
                                 std::uint32_t column_cap)
    : org_(org), cap_(column_cap), hit_streak_(org.totalBanks(), 0),
      oldest_nonhit_(org.totalBanks(), ~std::uint64_t{0})
{
}

Command
nextCommandFor(const Request &req, RowStatus status)
{
    switch (status) {
      case RowStatus::kHit:
        return req.type == Request::Type::kRead ? Command::kRd
                                                : Command::kWr;
      case RowStatus::kEmpty:
        return Command::kAct;
      case RowStatus::kConflict:
        return Command::kPre;
    }
    sim::panic("bad row status");
}

std::optional<SchedDecision>
FrFcfsScheduler::pick(const RequestQueue &queue,
                      const dram::DramChannel &chan,
                      const BankFilter &blocked, Tick now) const
{
    const std::size_t n = queue.size();
    if (n == 0)
        return std::nullopt;

    // Pass 1: classify every entry once (row status is cached in
    // status_ for the second pass) and track, per bank, the oldest
    // non-hit entry -- the column cap needs it. A "blocked" bank
    // (pending RFM / bank back-off) may still serve column accesses to
    // its open row -- only new activations must wait, mirroring DDR5
    // RAA semantics where the open row remains usable until the RFM is
    // slotted in.
    //
    // The scan walks the queue's packed (flat bank, row, order)
    // mirrors against the channel's packed open-row array; the full
    // 130-byte entries stay cold until a decision is made.
    constexpr std::uint8_t kUnusable = 0xff;
    status_.resize(n);
    std::fill(oldest_nonhit_.begin(), oldest_nonhit_.end(),
              ~std::uint64_t{0});

    const std::int32_t *open_rows = chan.openRows();
    const std::uint32_t *fbs = queue.flatBanks();
    const std::uint32_t *rows = queue.rows();
    const std::uint64_t *orders = queue.orders();
    const bool any_blocked = blocked.fn != nullptr;

    std::optional<std::size_t> best_hit;
    std::optional<std::size_t> oldest_any;

    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t open = open_rows[fbs[i]];
        const RowStatus st =
            open == dram::DramChannel::kNoRow
                ? RowStatus::kEmpty
                : (open == static_cast<std::int32_t>(rows[i])
                       ? RowStatus::kHit
                       : RowStatus::kConflict);
        if (st != RowStatus::kHit && any_blocked &&
            blocked(queue[i].req.addr)) {
            status_[i] = kUnusable;
            continue;
        }
        status_[i] = static_cast<std::uint8_t>(st);
        if (!oldest_any || orders[*oldest_any] > orders[i])
            oldest_any = i;
        if (st != RowStatus::kHit) {
            oldest_nonhit_[fbs[i]] =
                std::min(oldest_nonhit_[fbs[i]], orders[i]);
        }
    }

    // Pass 2: oldest row-hit whose bank's streak is under the cap,
    // unless an older non-hit request waits on the same bank past the
    // cap.
    for (std::size_t i = 0; i < n; ++i) {
        if (status_[i] != static_cast<std::uint8_t>(RowStatus::kHit))
            continue;
        const auto fb = fbs[i];
        const bool capped = hit_streak_[fb] >= cap_ &&
                            oldest_nonhit_[fb] < orders[i];
        if (capped)
            continue;
        if (!best_hit || orders[*best_hit] > orders[i])
            best_hit = i;
    }

    const std::optional<std::size_t> choice =
        best_hit ? best_hit : oldest_any;
    if (!choice)
        return std::nullopt;

    const auto &entry = queue[*choice];
    const Command cmd = nextCommandFor(
        entry.req, static_cast<RowStatus>(status_[*choice]));
    SchedDecision d;
    d.index = *choice;
    d.cmd = cmd;
    d.earliest = std::max(now, chan.earliestIssue(cmd, entry.req.addr));
    return d;
}

void
FrFcfsScheduler::onIssue(const Address &addr, dram::Command cmd,
                         bool was_hit)
{
    const auto fb = org_.flatOf(addr);
    if ((cmd == Command::kRd || cmd == Command::kWr) && was_hit) {
        hit_streak_[fb] += 1;
    } else if (cmd == Command::kAct) {
        hit_streak_[fb] = 0;
    }
}

void
FrFcfsScheduler::resetStreaks()
{
    std::fill(hit_streak_.begin(), hit_streak_.end(), 0);
}

} // namespace leaky::ctrl
