#include "ctrl/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::ctrl {

using dram::Command;
using dram::RowStatus;

FrFcfsScheduler::FrFcfsScheduler(const dram::Organization &org,
                                 std::uint32_t column_cap)
    : org_(org), cap_(column_cap), hit_streak_(org.totalBanks(), 0)
{
}

Command
nextCommandFor(const Request &req, RowStatus status)
{
    switch (status) {
      case RowStatus::kHit:
        return req.type == Request::Type::kRead ? Command::kRd
                                                : Command::kWr;
      case RowStatus::kEmpty:
        return Command::kAct;
      case RowStatus::kConflict:
        return Command::kPre;
    }
    sim::panic("bad row status");
}

std::optional<SchedDecision>
FrFcfsScheduler::pick(const std::deque<QueueEntry> &queue,
                      const dram::DramChannel &chan,
                      const BankFilter &blocked, Tick now) const
{
    // Pass 1: oldest row-hit whose bank's streak is under the cap, unless
    // an older non-hit request waits on the same bank past the cap.
    std::optional<std::size_t> best_hit;
    std::optional<std::size_t> oldest_any;

    // A "blocked" bank (pending RFM / bank back-off) may still serve
    // column accesses to its open row -- only new activations must
    // wait, mirroring DDR5 RAA semantics where the open row remains
    // usable until the RFM is slotted in.
    const auto usable = [&](const QueueEntry &e) {
        return !blocked(e.req.addr) ||
               chan.rowStatus(e.req.addr) == RowStatus::kHit;
    };

    // For the column cap we need, per bank, whether an older-than-the-hit
    // non-hit request exists. Track the oldest non-hit entry per bank.
    std::vector<std::uint64_t> oldest_nonhit(org_.totalBanks(),
                                             ~std::uint64_t{0});
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &e = queue[i];
        if (!usable(e))
            continue;
        if (chan.rowStatus(e.req.addr) != RowStatus::kHit) {
            const auto fb = org_.flatBank(e.req.addr.rank,
                                          e.req.addr.bankgroup,
                                          e.req.addr.bank);
            oldest_nonhit[fb] = std::min(oldest_nonhit[fb], e.order);
        }
    }

    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &e = queue[i];
        if (!usable(e))
            continue;
        if (!oldest_any ||
            queue[*oldest_any].order > e.order) {
            oldest_any = i;
        }
        if (chan.rowStatus(e.req.addr) != RowStatus::kHit)
            continue;
        const auto fb = org_.flatBank(e.req.addr.rank, e.req.addr.bankgroup,
                                      e.req.addr.bank);
        const bool capped = hit_streak_[fb] >= cap_ &&
                            oldest_nonhit[fb] < e.order;
        if (capped)
            continue;
        if (!best_hit || queue[*best_hit].order > e.order)
            best_hit = i;
    }

    const std::optional<std::size_t> choice =
        best_hit ? best_hit : oldest_any;
    if (!choice)
        return std::nullopt;

    const auto &entry = queue[*choice];
    const Command cmd = nextCommandFor(entry.req,
                                       chan.rowStatus(entry.req.addr));
    SchedDecision d;
    d.index = *choice;
    d.cmd = cmd;
    d.earliest = std::max(now, chan.earliestIssue(cmd, entry.req.addr));
    return d;
}

void
FrFcfsScheduler::onIssue(const Address &addr, dram::Command cmd,
                         bool was_hit)
{
    const auto fb = org_.flatBank(addr.rank, addr.bankgroup, addr.bank);
    if ((cmd == Command::kRd || cmd == Command::kWr) && was_hit) {
        hit_streak_[fb] += 1;
    } else if (cmd == Command::kAct) {
        hit_streak_[fb] = 0;
    }
}

void
FrFcfsScheduler::resetStreaks()
{
    std::fill(hit_streak_.begin(), hit_streak_.end(), 0);
}

} // namespace leaky::ctrl
