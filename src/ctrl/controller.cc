#include "ctrl/controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::ctrl {

using dram::Command;
using dram::RowStatus;
using sim::kTickMax;

MemoryController::MemoryController(sim::EventQueue &eq, const CtrlConfig &cfg,
                                   std::uint32_t channel_id)
    : eq_(eq), cfg_(cfg), channel_id_(channel_id), chan_(cfg.dram),
      sched_(cfg.dram.org, cfg.column_cap),
      refresh_(cfg.dram.timing.tREFI, cfg.deterministic_refresh ? 1 : 2),
      defense_(&null_defense_),
      read_q_(cfg_.dram.org, cfg.read_queue_depth),
      write_q_(cfg_.dram.org, cfg.write_queue_depth),
      ref_issued_(cfg.dram.org.ranks, false),
      abo_rfms_left_(cfg.dram.org.ranks, 0),
      next_det_ref_(cfg.dram.timing.tREFI),
      tick_event_(sim::memberEvent<&MemoryController::tick>(this)),
      abo_timer_(sim::memberEvent<&MemoryController::onAboDeadline>(this))
{
    // Self-clock from t=0 so timers (periodic refresh, FR-RFM grids)
    // run even on an otherwise idle system.
    eq_.schedule(tick_event_, eq_.now());
}

void
MemoryController::setControllerDefense(ControllerDefense *defense)
{
    defense_ = defense ? defense : &null_defense_;
}

void
MemoryController::setDeviceHooks(dram::DeviceHooks *hooks)
{
    chan_.setHooks(hooks);
}

void
MemoryController::notify(PreventiveEvent ev, Tick start, Tick end,
                         const Address &addr)
{
    if (listener_)
        listener_(ev, start, end, addr);
}

bool
MemoryController::enqueue(Request &&req)
{
    const bool is_read = req.type == Request::Type::kRead;
    auto &q = is_read ? read_q_ : write_q_;
    const auto depth = is_read ? cfg_.read_queue_depth
                               : cfg_.write_queue_depth;
    if (q.size() >= depth)
        return false;

    QueueEntry entry;
    entry.arrival = eq_.now();
    entry.order = next_order_++;
    entry.req = std::move(req); // push() annotates the address.

    if (!is_read && entry.req.on_complete) {
        // Posted write: completes (from the CPU's view) on acceptance.
        // The callback is moved out of the request -- nothing else needs
        // it -- so no Request copy is captured.
        const Tick now = eq_.now();
        eq_.schedule(now, [cb = std::move(entry.req.on_complete),
                           now] { cb(now); });
    }
    q.push(std::move(entry));
    last_activity_ = eq_.now();
    scheduleWake(std::max(eq_.now(), next_cmd_at_));
    return true;
}

void
MemoryController::raiseAlert(const dram::AlertInfo &info)
{
    const Tick now = eq_.now();
    const auto &t = cfg_.dram.timing;

    if (info.bank_scoped) {
        BankTask task;
        task.rfm.kind = Command::kRfmOneBank;
        task.rfm.target = info.bank;
        cfg_.dram.org.annotate(task.rfm.target);
        task.rfm.latency_override = t.tRFM_backoff;
        task.remaining = cfg_.rfms_per_backoff;
        task.active_after = now + t.tAlert + t.tABOACT;
        task.start = now + t.tAlert;
        task.from_alert = true;
        bank_tasks_.push_back(task);
        scheduleWake(task.active_after);
        return;
    }

    alert_wait_ = true;
    alert_at_ = now + t.tAlert;
    abo_deadline_ = alert_at_ + t.tABOACT;
    eq_.reschedule(abo_timer_, abo_deadline_);
}

void
MemoryController::onAboDeadline()
{
    alert_wait_ = false;
    abo_pending_ = true;
    maybeStartAbo();
    tick();
}

void
MemoryController::maybeStartAbo()
{
    if (!abo_pending_ || mode_ != Mode::kNormal)
        return;
    abo_pending_ = false;
    mode_ = Mode::kAboDrain;
    abo_start_ = eq_.now();
    abo_last_end_ = 0;
    std::fill(abo_rfms_left_.begin(), abo_rfms_left_.end(),
              cfg_.rfms_per_backoff);
}

void
MemoryController::scheduleWake(Tick when)
{
    // A drain step can become ready "now" right after another command
    // issued; the wake then lands at next_cmd_at_, which may sit just
    // behind the clock. Clamp rather than schedule into the past.
    when = std::max(when, eq_.now());
    if (tick_event_.scheduled() && tick_event_.when() <= when)
        return;
    eq_.reschedule(tick_event_, when);
}

void
MemoryController::tick()
{
    const Tick now = eq_.now();
    idle_pick_valid_ = false;
    refresh_.update(now);

    // Batched issue: drain every command issuable at this tick in one
    // wake-up instead of re-entering through the event queue once per
    // command. With a non-zero cmd_gap the body runs at most once per
    // tick (issuing moves next_cmd_at_ past now); with cmd_gap == 0 a
    // same-tick batch issues atomically, before any other event
    // scheduled at this tick runs.
    bool issued = false;
    while (now >= next_cmd_at_ && tryIssueOne(now))
        issued = true;

    if (issued || now != last_tick_at_) {
        last_tick_at_ = now;
        stalled_ticks_ = 0;
    } else if (++stalled_ticks_ > 100'000) {
        sim::panic("controller livelocked at tick %llu "
                   "(mode=%d rq=%zu wq=%zu tasks=%zu precise=%d)",
                   static_cast<unsigned long long>(now),
                   static_cast<int>(mode_), read_q_.size(),
                   write_q_.size(), bank_tasks_.size(),
                   precise_.has_value() ? 1 : 0);
    }
    scheduleWake(computeNextWake(eq_.now()));
}

bool
MemoryController::tryIssueOne(Tick now)
{
    switch (mode_) {
      case Mode::kRefDrain:
        return progressRefDrain(now);
      case Mode::kAboDrain:
        return progressAboDrain(now);
      case Mode::kPreciseDrain:
        return progressPreciseDrain(now);
      case Mode::kNormal:
        break;
    }

    pollDefense(now);
    if (mode_ == Mode::kPreciseDrain)
        return progressPreciseDrain(now);

    if (!cfg_.deterministic_refresh) {
        const bool idle = read_q_.empty() && write_q_.empty() &&
                          bank_tasks_.empty() &&
                          now >= last_activity_ +
                                     cfg_.refresh_idle_threshold;
        if (refresh_.mustRefresh() || (refresh_.canRefresh() && idle)) {
            mode_ = Mode::kRefDrain;
            ref_rounds_left_ = refresh_.owed();
            ref_start_ = now;
            std::fill(ref_issued_.begin(), ref_issued_.end(), false);
            return progressRefDrain(now);
        }
    }

    if (progressBankTasks(now))
        return true;
    return serveQueues(now);
}

void
MemoryController::pollDefense(Tick now)
{
    // Deterministic (pattern-independent) refresh takes priority so that
    // its grid never depends on what the defense wants.
    if (cfg_.deterministic_refresh && !precise_ &&
        now + cfg_.drain_lead >= next_det_ref_) {
        PreciseTask task;
        task.at = next_det_ref_;
        task.is_ref = true;
        next_det_ref_ += cfg_.dram.timing.tREFI;
        precise_ = task;
        std::fill(ref_issued_.begin(), ref_issued_.end(), false);
        mode_ = Mode::kPreciseDrain;
        return;
    }

    while (auto rfm = defense_->pendingRfm(now)) {
        if (rfm->precise) {
            PreciseTask task;
            task.at = rfm->scheduled_at;
            task.is_ref = false;
            task.rfm = *rfm;
            precise_ = task;
            std::fill(ref_issued_.begin(), ref_issued_.end(), false);
            mode_ = Mode::kPreciseDrain;
            return;
        }
        BankTask task;
        task.rfm = *rfm;
        cfg_.dram.org.annotate(task.rfm.target);
        task.remaining = 1;
        task.active_after = now;
        task.from_alert = false;
        bank_tasks_.push_back(task);
    }
}

bool
MemoryController::progressRefDrain(Tick now)
{
    const auto ranks = cfg_.dram.org.ranks;
    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (chan_.allBanksClosed(r))
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        if (chan_.earliestIssue(Command::kPreAll, a) > now)
            continue;
        chan_.issue(Command::kPreAll, a, now);
        next_cmd_at_ = now + cfg_.cmd_gap;
        return true;
    }
    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (ref_issued_[r])
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        if (!chan_.allBanksClosed(r) ||
            chan_.earliestIssue(Command::kRef, a) > now) {
            continue;
        }
        const Tick end = chan_.issue(Command::kRef, a, now);
        ref_issued_[r] = true;
        next_cmd_at_ = now + cfg_.cmd_gap;
        const bool round_done =
            std::all_of(ref_issued_.begin(), ref_issued_.end(),
                        [](bool b) { return b; });
        if (round_done) {
            refresh_.onRefIssued();
            stats_.refreshes += 1;
            notify(PreventiveEvent::kRefresh, ref_start_, end, a);
            ref_rounds_left_ -= 1;
            if (ref_rounds_left_ > 0 && refresh_.canRefresh()) {
                std::fill(ref_issued_.begin(), ref_issued_.end(), false);
            } else {
                mode_ = Mode::kNormal;
                sched_.resetStreaks();
                maybeStartAbo();
            }
        }
        return true;
    }
    return false;
}

bool
MemoryController::progressAboDrain(Tick now)
{
    const auto ranks = cfg_.dram.org.ranks;
    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (chan_.allBanksClosed(r))
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        if (chan_.earliestIssue(Command::kPreAll, a) > now)
            continue;
        chan_.issue(Command::kPreAll, a, now);
        next_cmd_at_ = now + cfg_.cmd_gap;
        return true;
    }
    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (abo_rfms_left_[r] == 0)
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        if (!chan_.allBanksClosed(r) ||
            chan_.earliestIssue(Command::kRfmAll, a) > now) {
            continue;
        }
        const Tick end = chan_.issue(Command::kRfmAll, a, now,
                                     cfg_.dram.timing.tRFM_backoff,
                                     /*during_backoff=*/true);
        abo_last_end_ = std::max(abo_last_end_, end);
        abo_rfms_left_[r] -= 1;
        next_cmd_at_ = now + cfg_.cmd_gap;
        const bool done =
            std::all_of(abo_rfms_left_.begin(), abo_rfms_left_.end(),
                        [](std::uint32_t n) { return n == 0; });
        if (done) {
            stats_.backoffs += 1;
            notify(PreventiveEvent::kBackoff, alert_at_, abo_last_end_, a);
            mode_ = Mode::kNormal;
            sched_.resetStreaks();
        }
        return true;
    }
    return false;
}

bool
MemoryController::progressPreciseDrain(Tick now)
{
    LEAKY_ASSERT(precise_.has_value(), "precise drain without a task");
    const auto ranks = cfg_.dram.org.ranks;
    PreciseTask &task = *precise_;

    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (chan_.allBanksClosed(r))
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        if (chan_.earliestIssue(Command::kPreAll, a) > now)
            continue;
        chan_.issue(Command::kPreAll, a, now);
        next_cmd_at_ = now + cfg_.cmd_gap;
        return true;
    }
    if (now < task.at)
        return false;

    for (std::uint32_t r = 0; r < ranks; ++r) {
        if (ref_issued_[r])
            continue;
        Address a;
        a.channel = channel_id_;
        a.rank = r;
        const Command cmd = task.is_ref ? Command::kRef : Command::kRfmAll;
        if (!chan_.allBanksClosed(r) ||
            chan_.earliestIssue(cmd, a) > now) {
            continue;
        }
        Tick end;
        if (task.is_ref) {
            end = chan_.issue(Command::kRef, a, now);
        } else {
            end = chan_.issue(Command::kRfmAll, a, now,
                              task.rfm.latency_override,
                              /*during_backoff=*/false);
        }
        ref_issued_[r] = true;
        next_cmd_at_ = now + cfg_.cmd_gap;
        if (r == 0 && now > task.at)
            stats_.precise_slips += 1;
        const bool done =
            std::all_of(ref_issued_.begin(), ref_issued_.end(),
                        [](bool b) { return b; });
        if (done) {
            if (task.is_ref) {
                refresh_.update(now);
                refresh_.onRefIssued();
                stats_.refreshes += 1;
                notify(PreventiveEvent::kRefresh, task.at, end, a);
            } else {
                stats_.rfms += 1;
                defense_->onRfmIssued(task.rfm, task.at, end);
                notify(PreventiveEvent::kRfm, task.at, end, a);
            }
            precise_.reset();
            mode_ = Mode::kNormal;
            sched_.resetStreaks();
            maybeStartAbo();
        }
        return true;
    }
    return false;
}

const std::vector<Address> &
MemoryController::taskBanks(const BankTask &task) const
{
    auto &banks = task_banks_scratch_;
    banks.clear();
    if (task.rfm.kind == Command::kRfmSameBank) {
        for (std::uint32_t bg = 0; bg < cfg_.dram.org.bankgroups; ++bg) {
            Address a = task.rfm.target;
            a.bankgroup = bg;
            cfg_.dram.org.annotate(a);
            banks.push_back(a);
        }
    } else {
        banks.push_back(task.rfm.target);
    }
    return banks;
}

bool
MemoryController::progressBankTasks(Tick now)
{
    for (std::size_t i = 0; i < bank_tasks_.size(); ++i) {
        BankTask &task = bank_tasks_[i];
        if (now < task.active_after)
            continue;

        bool any_open = false;
        for (const Address &b : taskBanks(task)) {
            if (chan_.openRow(b) == dram::DramChannel::kNoRow)
                continue;
            any_open = true;
            if (chan_.earliestIssue(Command::kPre, b) <= now) {
                chan_.issue(Command::kPre, b, now);
                next_cmd_at_ = now + cfg_.cmd_gap;
                return true;
            }
        }
        if (any_open)
            continue; // PRE pending; try other tasks.

        if (chan_.earliestIssue(task.rfm.kind, task.rfm.target) > now)
            continue;
        const Tick end = chan_.issue(task.rfm.kind, task.rfm.target, now,
                                     task.rfm.latency_override,
                                     task.from_alert);
        if (task.start == 0)
            task.start = now;
        next_cmd_at_ = now + cfg_.cmd_gap;
        task.remaining -= 1;
        if (task.remaining == 0) {
            if (task.from_alert) {
                stats_.bank_backoffs += 1;
                notify(PreventiveEvent::kBankBackoff, task.start, end,
                       task.rfm.target);
            } else {
                PreventiveEvent ev = PreventiveEvent::kRfm;
                switch (task.rfm.action) {
                  case PreventiveActionKind::kRfm:
                    stats_.rfms += 1;
                    break;
                  case PreventiveActionKind::kVictimRefresh:
                    stats_.targeted_refreshes += 1;
                    ev = PreventiveEvent::kTargetedRefresh;
                    break;
                  case PreventiveActionKind::kCounterFetch:
                    stats_.counter_fetches += 1;
                    ev = PreventiveEvent::kCounterFetch;
                    break;
                }
                defense_->onRfmIssued(task.rfm, task.start, end);
                notify(ev, task.start, end, task.rfm.target);
            }
            bank_tasks_.erase(bank_tasks_.begin() +
                              static_cast<std::ptrdiff_t>(i));
        }
        return true;
    }
    return false;
}

bool
MemoryController::bankFilterThunk(const void *ctx, const Address &addr)
{
    const auto *mc = static_cast<const MemoryController *>(ctx);
    return mc->bankBlocked(addr, mc->filter_now_);
}

BankFilter
MemoryController::bankFilter(Tick now) const
{
    if (bank_tasks_.empty())
        return BankFilter{};
    filter_now_ = now;
    return BankFilter{&MemoryController::bankFilterThunk, this};
}

bool
MemoryController::bankBlocked(const Address &addr, Tick now) const
{
    for (const auto &task : bank_tasks_) {
        if (now < task.active_after)
            continue;
        if (task.rfm.kind == Command::kRfmSameBank) {
            if (addr.rank == task.rfm.target.rank &&
                addr.bank == task.rfm.target.bank) {
                return true;
            }
        } else if (addr.rank == task.rfm.target.rank &&
                   addr.bankgroup == task.rfm.target.bankgroup &&
                   addr.bank == task.rfm.target.bank) {
            return true;
        }
    }
    return false;
}

RequestQueue &
MemoryController::activeQueue()
{
    return servingWrites() ? write_q_ : read_q_;
}

bool
MemoryController::servingWrites()
{
    if (write_q_.size() >= cfg_.wq_drain_high)
        draining_writes_ = true;
    if (draining_writes_ && write_q_.size() <= cfg_.wq_drain_low)
        draining_writes_ = false;
    return draining_writes_ || (read_q_.empty() && !write_q_.empty());
}

bool
MemoryController::serveQueues(Tick now)
{
    auto &q = activeQueue();
    if (q.empty()) {
        idle_pick_.reset();
        idle_pick_valid_ = true;
        return false;
    }

    const auto decision = sched_.pick(q, chan_, bankFilter(now), now);
    if (!decision || decision->earliest > now) {
        // Nothing issued, so no state changed between here and the
        // wake-up computation at the end of this tick: let it reuse
        // the decision instead of re-scanning the queue.
        idle_pick_ = decision;
        idle_pick_valid_ = true;
        return false;
    }

    QueueEntry &entry = q[decision->index];
    issueAndAccount(decision->cmd, entry, now);
    if (decision->cmd == Command::kRd || decision->cmd == Command::kWr)
        q.erase(decision->index);
    return true;
}

void
MemoryController::issueAndAccount(Command cmd, QueueEntry &entry, Tick now)
{
    // NOTE: `entry` aliases into the queue; take what we need up front
    // because chan_.issue() may reenter raiseAlert().
    const Address addr = entry.req.addr;
    const RowStatus status = chan_.rowStatus(addr);
    const bool was_hit = status == RowStatus::kHit;

    if (!entry.classified) {
        entry.classified = true;
        switch (status) {
          case RowStatus::kHit: stats_.row_hits += 1; break;
          case RowStatus::kEmpty: stats_.row_misses += 1; break;
          case RowStatus::kConflict: stats_.row_conflicts += 1; break;
        }
    }

    const Tick done = chan_.issue(cmd, addr, now);
    next_cmd_at_ = now + cfg_.cmd_gap;
    sched_.onIssue(addr, cmd, was_hit);

    if (cmd == Command::kAct) {
        defense_->onActivate(addr, now);
    } else if (cmd == Command::kRd) {
        stats_.reads_served += 1;
        stats_.read_latency_sum += done - entry.arrival;
        if (entry.req.on_complete) {
            // The entry is erased right after this returns; move the
            // callback into the completion event instead of copying
            // the whole request.
            eq_.schedule(done, [cb = std::move(entry.req.on_complete),
                                done] { cb(done); });
        }
    } else if (cmd == Command::kWr) {
        stats_.writes_served += 1;
    }
}

Tick
MemoryController::computeNextWake(Tick now)
{
    Tick wake = kTickMax;
    const auto consider = [&wake](Tick t) { wake = std::min(wake, t); };
    const auto ranks = cfg_.dram.org.ranks;

    const auto considerDrainStep = [&](bool issuing_ref,
                                       bool during_backoff) {
        for (std::uint32_t r = 0; r < ranks; ++r) {
            Address a;
            a.channel = channel_id_;
            a.rank = r;
            if (!chan_.allBanksClosed(r)) {
                consider(chan_.earliestIssue(Command::kPreAll, a));
            } else if (issuing_ref) {
                if (!ref_issued_[r])
                    consider(chan_.earliestIssue(Command::kRef, a));
            } else if (during_backoff) {
                if (abo_rfms_left_[r] > 0)
                    consider(chan_.earliestIssue(Command::kRfmAll, a));
            } else {
                if (!ref_issued_[r])
                    consider(chan_.earliestIssue(Command::kRfmAll, a));
            }
        }
    };

    switch (mode_) {
      case Mode::kRefDrain:
        considerDrainStep(/*issuing_ref=*/true, false);
        break;
      case Mode::kAboDrain:
        considerDrainStep(/*issuing_ref=*/false, /*during_backoff=*/true);
        break;
      case Mode::kPreciseDrain: {
        LEAKY_ASSERT(precise_.has_value(), "precise drain without task");
        // Drain steps (PREA) may proceed immediately, but the REF/RFM
        // itself is gated on the scheduled tick: before precise_->at,
        // only the deadline itself is a valid wake-up for it.
        for (std::uint32_t r = 0; r < ranks; ++r) {
            Address a;
            a.channel = channel_id_;
            a.rank = r;
            if (!chan_.allBanksClosed(r)) {
                consider(chan_.earliestIssue(Command::kPreAll, a));
            } else if (!ref_issued_[r] && now >= precise_->at) {
                consider(chan_.earliestIssue(
                    precise_->is_ref ? Command::kRef : Command::kRfmAll,
                    a));
            }
        }
        if (now < precise_->at)
            consider(precise_->at);
        break;
      }
      case Mode::kNormal: {
        // Queued requests. If serveQueues() already ran this tick and
        // issued nothing, its decision is still valid; otherwise scan.
        auto &q = activeQueue();
        const std::optional<SchedDecision> d =
            idle_pick_valid_ ? idle_pick_
                             : sched_.pick(q, chan_, bankFilter(now), now);
        if (d) {
            // Early out: the final wake is max(min(candidates),
            // next_cmd_at_), so any candidate at or before
            // next_cmd_at_ pins it there exactly -- the remaining
            // candidates can only lower the (clamped-away) minimum.
            if (d->earliest <= next_cmd_at_)
                return next_cmd_at_;
            consider(d->earliest);
        }

        // Bank tasks (RFMsb / bank back-offs).
        for (const auto &task : bank_tasks_) {
            if (now < task.active_after) {
                consider(task.active_after);
                continue;
            }
            bool any_open = false;
            for (const Address &b : taskBanks(task)) {
                if (chan_.openRow(b) != dram::DramChannel::kNoRow) {
                    any_open = true;
                    consider(chan_.earliestIssue(Command::kPre, b));
                }
            }
            if (!any_open)
                consider(chan_.earliestIssue(task.rfm.kind,
                                             task.rfm.target));
        }

        // Refresh and defense timers.
        if (cfg_.deterministic_refresh) {
            consider(next_det_ref_ > cfg_.drain_lead
                         ? next_det_ref_ - cfg_.drain_lead
                         : 0);
        } else {
            consider(refresh_.nextDue());
            if (refresh_.canRefresh() && read_q_.empty() &&
                write_q_.empty() && bank_tasks_.empty()) {
                consider(last_activity_ + cfg_.refresh_idle_threshold);
            }
        }
        consider(defense_->nextEventTick(now));
        break;
      }
    }

    if (wake == kTickMax)
        return kTickMax;
    return std::max(wake, next_cmd_at_);
}

} // namespace leaky::ctrl
