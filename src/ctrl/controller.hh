/**
 * @file
 * Per-channel memory controller. Implements the paper's evaluated
 * controller (Table 1): 64-entry read/write queues, FR-FCFS scheduling
 * with a column cap of 16, refresh postponing with back-to-back catch-up
 * REFs, plus the RowHammer-defense machinery the attacks target:
 *
 *  - the ABO back-off protocol (alert ~5 ns after PRE, tABOACT window of
 *    normal traffic, N back-to-back recovery RFMs blocking the channel);
 *  - bank-scoped back-offs for Bank-Level PRAC (§11.3);
 *  - controller-side RFM injection for PRFM (§7) and precisely
 *    scheduled, pattern-independent RFMs for FR-RFM (§11.1).
 */

#ifndef LEAKY_CTRL_CONTROLLER_HH
#define LEAKY_CTRL_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "ctrl/refresh.hh"
#include "ctrl/request.hh"
#include "ctrl/scheduler.hh"
#include "dram/channel.hh"
#include "dram/hooks.hh"
#include "sim/event_queue.hh"

namespace leaky::ctrl {

/** Controller configuration on top of the DRAM config. */
struct CtrlConfig {
    dram::DramConfig dram;
    std::uint32_t read_queue_depth = 64;
    std::uint32_t write_queue_depth = 64;
    std::uint32_t column_cap = 16;
    std::uint32_t wq_drain_high = 48; ///< Start draining writes here.
    std::uint32_t wq_drain_low = 16;  ///< Stop draining writes here.
    std::uint32_t rfms_per_backoff = 4; ///< Paper §6.1 assumption.
    sim::Tick cmd_gap = 832;          ///< Min gap between commands (2 tCK).
    sim::Tick drain_lead = 80'000;    ///< Precise-RFM drain lead time.
    /** The controller only refreshes opportunistically (owed < max)
     *  after this much quiet time, so busy periods postpone REFs until
     *  two are owed and issued back-to-back (paper §6.2, footnote 3). */
    sim::Tick refresh_idle_threshold = 200'000;
    /**
     * When true (FR-RFM systems), periodic refreshes are also pinned to
     * the tREFI grid with a drain lead, so neither REF nor RFM timing
     * depends on the access pattern (§11.1 security argument).
     */
    bool deterministic_refresh = false;
};

/** Timeline event kinds exposed to listeners (attack ground truth). */
enum class PreventiveEvent : std::uint8_t {
    kRefresh,         ///< Periodic REF window.
    kBackoff,         ///< Channel-scope ABO recovery (PRAC).
    kBankBackoff,     ///< Bank-scope ABO recovery (Bank-Level PRAC).
    kRfm,             ///< Standalone RFM (PRFM / FR-RFM).
    kTargetedRefresh, ///< Victim-row refresh (Graphene / Hydra).
    kCounterFetch     ///< Hydra counter-cache fill traffic.
};

/** One memory channel's controller. */
class MemoryController final : public dram::AlertSink
{
  public:
    using Listener = std::function<void(PreventiveEvent, Tick start,
                                        Tick end, const Address &)>;

    MemoryController(sim::EventQueue &eq, const CtrlConfig &cfg,
                     std::uint32_t channel_id = 0);

    /** Install a controller-side defense (PRFM / FR-RFM); may be null. */
    void setControllerDefense(ControllerDefense *defense);

    /** Install device-side hooks (PRAC family); may be null. */
    void setDeviceHooks(dram::DeviceHooks *hooks);

    /** Observe preventive actions (tests, ground-truth traces). */
    void setListener(Listener listener) { listener_ = std::move(listener); }

    /**
     * Present a request. @return false when the matching queue is full
     * (the caller retries later; the request is left intact so it can
     * be re-presented without copying). Write completions fire
     * immediately (posted writes); read completions fire at data-burst
     * end.
     */
    bool enqueue(Request &&req);

    /** True when a request of @p type would be rejected right now.
     *  Inline so retry storms can poll without the full enqueue()
     *  call — enqueue() fails for exactly this condition. */
    bool
    queueFull(Request::Type type) const
    {
        return type == Request::Type::kRead
                   ? read_q_.size() >= cfg_.read_queue_depth
                   : write_q_.size() >= cfg_.write_queue_depth;
    }

    /** Convenience overload for lvalue requests (copies). */
    bool
    enqueue(const Request &req)
    {
        Request copy = req;
        return enqueue(std::move(copy));
    }

    dram::DramChannel &channel() { return chan_; }
    const dram::DramChannel &channel() const { return chan_; }
    const CtrlConfig &config() const { return cfg_; }
    const CtrlStats &stats() const { return stats_; }
    std::uint32_t channelId() const { return channel_id_; }

    std::size_t readQueueSize() const { return read_q_.size(); }
    std::size_t writeQueueSize() const { return write_q_.size(); }

    // dram::AlertSink
    void raiseAlert(const dram::AlertInfo &info) override;

  private:
    enum class Mode : std::uint8_t {
        kNormal,      ///< Serve requests; RFM tasks progress in parallel.
        kRefDrain,    ///< Precharge all, then issue owed REFs.
        kAboDrain,    ///< Precharge all, then recovery RFMab burst.
        kPreciseDrain ///< Drain toward an exactly-scheduled REF/RFM.
    };

    /** A bank-scoped RFM in flight (PRFM RFMsb / Bank-Level back-off). */
    struct BankTask {
        RfmRequest rfm;
        std::uint32_t remaining = 1; ///< RFM commands left to issue.
        Tick active_after = 0;       ///< Bank back-off: tABOACT window end.
        Tick start = 0;              ///< First RFM issue tick (0 = none).
        bool from_alert = false;     ///< Bank-Level PRAC (vs PRFM).
    };

    /** A precisely scheduled drain target (FR-RFM / deterministic REF). */
    struct PreciseTask {
        Tick at = 0;
        bool is_ref = false;
        RfmRequest rfm;
    };

    void tick();
    void onAboDeadline();
    void scheduleWake(Tick when);
    bool tryIssueOne(Tick now);
    bool progressRefDrain(Tick now);
    bool progressAboDrain(Tick now);
    bool progressPreciseDrain(Tick now);
    bool progressBankTasks(Tick now);
    bool serveQueues(Tick now);
    void pollDefense(Tick now);
    void maybeStartAbo();
    const std::vector<Address> &taskBanks(const BankTask &task) const;
    bool bankBlocked(const Address &addr, Tick now) const;
    /** Scheduler filter for @p now; empty when no bank task is active. */
    BankFilter bankFilter(Tick now) const;
    static bool bankFilterThunk(const void *ctx, const Address &addr);
    Tick computeNextWake(Tick now);
    void issueAndAccount(dram::Command cmd, QueueEntry &entry, Tick now);
    RequestQueue &activeQueue();
    bool servingWrites();
    void notify(PreventiveEvent ev, Tick start, Tick end,
                const Address &addr);

    sim::EventQueue &eq_;
    CtrlConfig cfg_;
    std::uint32_t channel_id_;
    dram::DramChannel chan_;
    FrFcfsScheduler sched_;
    RefreshManager refresh_;
    ControllerDefense *defense_;
    NullControllerDefense null_defense_;
    Listener listener_;

    RequestQueue read_q_;
    RequestQueue write_q_;
    std::uint64_t next_order_ = 0;
    bool draining_writes_ = false;

    /**
     * pick() result carried from serveQueues() to computeNextWake()
     * within one tick(). Valid only when serveQueues() ran this tick
     * and issued nothing: then neither the queues nor the bank state
     * changed, so the wake-up computation can reuse the decision
     * instead of re-scanning the queue. Cleared at every tick() entry.
     */
    std::optional<SchedDecision> idle_pick_;
    bool idle_pick_valid_ = false;

    Mode mode_ = Mode::kNormal;
    Tick next_cmd_at_ = 0;
    Tick last_activity_ = 0;

    // Refresh drain state.
    std::uint32_t ref_rounds_left_ = 0;
    std::vector<bool> ref_issued_; ///< Per rank, current round.
    Tick ref_start_ = 0;

    // Channel-scope ABO state.
    bool alert_wait_ = false;   ///< Alert received, pre-deadline.
    bool abo_pending_ = false;  ///< Deadline passed while another drain ran.
    Tick alert_at_ = 0;
    Tick abo_deadline_ = 0;
    std::vector<std::uint32_t> abo_rfms_left_; ///< Per rank.
    Tick abo_start_ = 0;
    Tick abo_last_end_ = 0;

    // Bank-scoped tasks (PRFM RFMsb, Bank-Level PRAC back-offs).
    std::vector<BankTask> bank_tasks_;

    // Precise (pattern-independent) REF/RFM scheduling.
    std::optional<PreciseTask> precise_;
    Tick next_det_ref_ = 0;

    /** Reusable self-clock event; rescheduled, never re-allocated. */
    sim::Event tick_event_;
    /** Reusable ABO-deadline timer (channel-scope alerts). */
    sim::Event abo_timer_;
    // Livelock detector: consecutive wake-ups at one tick without
    // issuing any command indicate a scheduling bug.
    Tick last_tick_at_ = sim::kTickMax;
    std::uint32_t stalled_ticks_ = 0;

    /** Scratch for taskBanks() (avoids per-call allocation). */
    mutable std::vector<Address> task_banks_scratch_;
    /** Tick the current bankFilter() was built for (thunk context). */
    mutable Tick filter_now_ = 0;

    CtrlStats stats_;
};

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_CONTROLLER_HH
