/**
 * @file
 * Memory requests as seen by the memory controller, plus per-controller
 * statistics used by tests and benchmarks.
 */

#ifndef LEAKY_CTRL_REQUEST_HH
#define LEAKY_CTRL_REQUEST_HH

#include <cstdint>
#include <functional>
#include <tuple>

#include "dram/types.hh"
#include "sim/tick.hh"

namespace leaky::ctrl {

using dram::Address;
using sim::Tick;

/** A cache-line read or write presented to the controller. */
struct Request {
    enum class Type : std::uint8_t { kRead, kWrite };

    /** Completion callback; receives the completion tick. The controller
     *  moves it out of the request when arming the completion event, so
     *  delivering a completion never copies the request. */
    using Callback = std::function<void(Tick completion)>;

    Type type = Type::kRead;
    std::uint64_t phys_addr = 0;
    Address addr; ///< Decoded coordinates (filled by the system front-end).
    std::int32_t source = 0; ///< Requestor id (core/agent) for stats.

    /** Invoked when the data burst completes (reads) or when the write is
     *  accepted into the queue (posted writes). */
    Callback on_complete;
};

/** Aggregate controller statistics. */
struct CtrlStats {
    std::uint64_t reads_served = 0;
    std::uint64_t writes_served = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;   ///< Activations from empty banks.
    std::uint64_t row_conflicts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfms = 0;          ///< All RFM kinds.
    std::uint64_t targeted_refreshes = 0; ///< VRRs (tracker defenses).
    std::uint64_t counter_fetches = 0; ///< Hydra counter-cache fills.
    std::uint64_t backoffs = 0;      ///< ABO recoveries (channel scope).
    std::uint64_t bank_backoffs = 0; ///< Bank-Level PRAC recoveries.
    std::uint64_t precise_slips = 0; ///< Precise REF/RFMs issued late.
    Tick read_latency_sum = 0;       ///< Enqueue -> data completion.

    /** Activation-triggered preventive actions of every kind — the
     *  union of observables the covert receivers key on. */
    std::uint64_t
    preventiveActions() const
    {
        return backoffs + bank_backoffs + rfms + targeted_refreshes;
    }

    /** All fields as one tuple — THE canonical field list. A new
     *  counter must be added here, to operator+= below, and to the
     *  static_assert after the struct (which fails the build until
     *  both are visited). */
    auto
    tied() const
    {
        return std::tie(reads_served, writes_served, row_hits,
                        row_misses, row_conflicts, refreshes, rfms,
                        targeted_refreshes, counter_fetches, backoffs,
                        bank_backoffs, precise_slips,
                        read_latency_sum);
    }

    /** Full field-wise equality (aggregation self-checks). */
    bool
    operator==(const CtrlStats &o) const
    {
        return tied() == o.tied();
    }

    /** Field-wise accumulation (per-channel -> system aggregate). */
    CtrlStats &
    operator+=(const CtrlStats &o)
    {
        reads_served += o.reads_served;
        writes_served += o.writes_served;
        row_hits += o.row_hits;
        row_misses += o.row_misses;
        row_conflicts += o.row_conflicts;
        refreshes += o.refreshes;
        rfms += o.rfms;
        targeted_refreshes += o.targeted_refreshes;
        counter_fetches += o.counter_fetches;
        backoffs += o.backoffs;
        bank_backoffs += o.bank_backoffs;
        precise_slips += o.precise_slips;
        read_latency_sum += o.read_latency_sum;
        return *this;
    }
};

/** Field-drift guard: adding a CtrlStats counter changes the size and
 *  fails this assert until tied() and operator+= visit the field. */
static_assert(sizeof(CtrlStats) == 13 * sizeof(std::uint64_t),
              "update CtrlStats::tied() and operator+= for the new "
              "field, then adjust this size guard");

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_REQUEST_HH
