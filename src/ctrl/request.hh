/**
 * @file
 * Memory requests as seen by the memory controller, plus per-controller
 * statistics used by tests and benchmarks.
 */

#ifndef LEAKY_CTRL_REQUEST_HH
#define LEAKY_CTRL_REQUEST_HH

#include <cstdint>
#include <functional>

#include "dram/types.hh"
#include "sim/tick.hh"

namespace leaky::ctrl {

using dram::Address;
using sim::Tick;

/** A cache-line read or write presented to the controller. */
struct Request {
    enum class Type : std::uint8_t { kRead, kWrite };

    /** Completion callback; receives the completion tick. The controller
     *  moves it out of the request when arming the completion event, so
     *  delivering a completion never copies the request. */
    using Callback = std::function<void(Tick completion)>;

    Type type = Type::kRead;
    std::uint64_t phys_addr = 0;
    Address addr; ///< Decoded coordinates (filled by the system front-end).
    std::int32_t source = 0; ///< Requestor id (core/agent) for stats.

    /** Invoked when the data burst completes (reads) or when the write is
     *  accepted into the queue (posted writes). */
    Callback on_complete;
};

/** Aggregate controller statistics. */
struct CtrlStats {
    std::uint64_t reads_served = 0;
    std::uint64_t writes_served = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;   ///< Activations from empty banks.
    std::uint64_t row_conflicts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfms = 0;          ///< All RFM kinds.
    std::uint64_t targeted_refreshes = 0; ///< VRRs (tracker defenses).
    std::uint64_t counter_fetches = 0; ///< Hydra counter-cache fills.
    std::uint64_t backoffs = 0;      ///< ABO recoveries (channel scope).
    std::uint64_t bank_backoffs = 0; ///< Bank-Level PRAC recoveries.
    std::uint64_t precise_slips = 0; ///< Precise REF/RFMs issued late.
    Tick read_latency_sum = 0;       ///< Enqueue -> data completion.
};

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_REQUEST_HH
