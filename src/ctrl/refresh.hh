/**
 * @file
 * Periodic-refresh bookkeeping. Models the paper's controller (§6.2,
 * footnote 3): one REF is owed every tREFI; the controller may postpone
 * a REF by one interval (to serve pending reads) and then issues the two
 * owed REFs back-to-back, which produces the ~2x tRFC latency spikes the
 * attacks must distinguish from back-offs.
 */

#ifndef LEAKY_CTRL_REFRESH_HH
#define LEAKY_CTRL_REFRESH_HH

#include <cstdint>

#include "sim/tick.hh"

namespace leaky::ctrl {

using sim::Tick;

/** Tracks owed refreshes for one channel (all ranks refresh together). */
class RefreshManager
{
  public:
    /**
     * @param refi Refresh interval (tREFI).
     * @param max_postponed How many owed REFs may accumulate before the
     *        controller must drain and refresh (2 = postpone by one).
     */
    RefreshManager(Tick refi, std::uint32_t max_postponed = 2)
        : refi_(refi), max_postponed_(max_postponed), next_due_(refi)
    {
    }

    /** Accrue owed refreshes up to @p now. */
    void
    update(Tick now)
    {
        while (now >= next_due_) {
            owed_ += 1;
            next_due_ += refi_;
        }
    }

    /** Owed REF count. */
    std::uint32_t owed() const { return owed_; }

    /** True when refresh can no longer be postponed. */
    bool mustRefresh() const { return owed_ >= max_postponed_; }

    /** True when a refresh could be issued opportunistically. */
    bool canRefresh() const { return owed_ > 0; }

    /** Record an issued REF. */
    void
    onRefIssued()
    {
        if (owed_ > 0)
            owed_ -= 1;
    }

    /** Next tick at which a new REF becomes owed. */
    Tick nextDue() const { return next_due_; }

  private:
    Tick refi_;
    std::uint32_t max_postponed_;
    Tick next_due_;
    std::uint32_t owed_ = 0;
};

} // namespace leaky::ctrl

#endif // LEAKY_CTRL_REFRESH_HH
