#include "runner/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "core/report.hh"
#include "fuzz/campaign.hh"
#include "runner/demos.hh"
#include "runner/figures.hh"
#include "runner/figures_internal.hh"
#include "runner/flags.hh"
#include "runner/pool.hh"

namespace leaky::runner {

namespace {

constexpr int kOk = 0;
constexpr int kRuntimeError = 1;
constexpr int kUsageError = 2;
/** A stop signal drained the campaign; resume with the same command. */
constexpr int kInterrupted = 3;

void
printTopUsage()
{
    std::printf(
        "usage: leakyhammer <command> [flags]\n"
        "\n"
        "commands:\n"
        "  list                list reproducible figures and demos\n"
        "  repro --fig <name>  reproduce a paper figure (CSV artifact)\n"
        "  campaign [flags]    sharded, resumable, kill-safe sweeps\n"
        "  run <demo> [flags]  run one narrated scenario demo\n"
        "  fuzz [flags]        search the aggressor-pattern space\n"
        "  bench [flags]       measure sweep-runner throughput\n"
        "  help                this text\n"
        "\n"
        "run `leakyhammer help <command>` for per-command flags.\n");
}

int
usageError(const std::string &message, const char *command = nullptr)
{
    std::fprintf(stderr, "leakyhammer: %s\n", message.c_str());
    if (command != nullptr)
        std::fprintf(stderr,
                     "run `leakyhammer help %s` for usage\n", command);
    else
        printTopUsage();
    return kUsageError;
}

// --------------------------------------------------------------- list

/** Jobs the figure expands to at smoke / default / full scale. */
std::string
scaleSetOf(const Figure &figure)
{
    RunOptions smoke, dflt, full;
    smoke.smoke = true;
    full.full = true;
    std::string set;
    for (const RunOptions *opts : {&smoke, &dflt, &full}) {
        if (!set.empty())
            set += "/";
        set += std::to_string(jobCount(figure.make(*opts)));
    }
    return set;
}

int
cmdList(int argc, char **argv)
{
    bool names_only = false;
    FlagParser parser;
    parser.addBool("names", &names_only,
                   "print just the figure names, one per line");
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(error, "list");

    if (names_only) {
        for (const auto &figure : figures())
            std::printf("%s\n", figure.name.c_str());
        return kOk;
    }

    // The `jobs` column is the scale set: how many sweep jobs the
    // figure expands to at --smoke / default / --full. It is derived
    // from the registry itself, so docs/FIGURES.md can be checked
    // against this output (tools/check_docs.py).
    core::Table figs({"figure", "paper", "jobs (s/d/f)", "artifact",
                      "title"});
    for (const auto &figure : figures())
        figs.addRow({figure.name, figure.paper_ref, scaleSetOf(figure),
                     figure.csv_name, figure.title});
    std::printf("figures (leakyhammer repro --fig <name>):\n%s\n",
                figs.str().c_str());

    core::Table demos({"demo", "flags", "scenario"});
    demos.addRow({"quickstart", "-",
                  "Listing-1 latency probe, Fig. 2 bands"});
    demos.addRow({"covert", "--message <s>",
                  "transmit text over both covert channels"});
    demos.addRow({"fingerprint", "--sites <n> --loads <n>",
                  "website fingerprinting + classifier"});
    demos.addRow({"mitigation", "--nrh <n>",
                  "security/performance trade-off per defense"});
    std::printf("demos (leakyhammer run <demo>):\n%s",
                demos.str().c_str());
    return kOk;
}

// -------------------------------------------------------------- repro

void
addReproFlags(FlagParser &parser, std::string *fig, unsigned *threads,
              bool *smoke, bool *full, std::uint64_t *seed,
              std::string *out_dir, bool *update_golden,
              std::string *golden_dir)
{
    parser.addString("fig", fig,
                     "figure to reproduce, or 'all' (see `list`)");
    parser.addUint("threads", threads,
                   "pool workers (0 = hardware concurrency)");
    parser.addBool("smoke", smoke, "CI scale: tiny but complete sweep");
    parser.addBool("full", full, "paper scale (hours of simulation)");
    parser.addUint64("seed", seed, "base seed (0 = figure default)");
    parser.addString("out", out_dir, "output directory for CSVs");
    parser.addBool("update-golden", update_golden,
                   "regenerate the smoke-scale golden CSVs the "
                   "differential test compares against (forces "
                   "--smoke, default seed)");
    parser.addString("golden-dir", golden_dir,
                     "where golden CSVs live (with --update-golden)");
}

// Regenerate `<golden_dir>/<name>.csv` for the selected figures and
// delete stale goldens that no longer name a registered figure, so
// `tests/test_golden_figures.cc` and tools/check_docs.py stay in sync
// with the registry by construction.
int
updateGoldens(const std::string &fig_name, const RunOptions &opts,
              const std::string &golden_dir)
{
    namespace fs = std::filesystem;
    std::vector<const Figure *> selected;
    if (fig_name.empty() || fig_name == "all") {
        for (const auto &figure : figures())
            selected.push_back(&figure);
    } else {
        const Figure *figure = findFigure(fig_name);
        if (figure == nullptr)
            return usageError("unknown figure '" + fig_name + "'",
                              "repro");
        selected.push_back(figure);
    }

    fs::create_directories(golden_dir);
    for (const Figure *figure : selected) {
        const std::string path = goldenPath(golden_dir, *figure);
        writeFile(path, goldenCsv(*figure, opts.threads));
        std::printf("golden: wrote %s\n", path.c_str());
    }

    if (fig_name.empty() || fig_name == "all") {
        for (const auto &entry : fs::directory_iterator(golden_dir)) {
            if (entry.path().extension() != ".csv")
                continue;
            const std::string stem = entry.path().stem().string();
            if (findFigure(stem) == nullptr) {
                fs::remove(entry.path());
                std::printf("golden: removed stale %s\n",
                            entry.path().string().c_str());
            }
        }
    }
    return kOk;
}

int
reproduceOne(const Figure &figure, const RunOptions &opts)
{
    std::printf("== %s: %s (%s) ==\n", figure.name.c_str(),
                figure.title.c_str(), figure.paper_ref.c_str());
    const auto outcome = reproduceFigure(figure, opts);
    const double rate =
        outcome.sweep.wall_seconds > 0.0
            ? static_cast<double>(outcome.sweep.jobs) /
                  outcome.sweep.wall_seconds
            : 0.0;
    std::printf("%zu jobs on %u threads in %.2f s (%.1f jobs/s)\n",
                outcome.sweep.jobs,
                SweepPool::resolveThreads(opts.threads),
                outcome.sweep.wall_seconds, rate);
    std::printf("wrote %s (%zu rows)\n\n%s\n",
                outcome.csv_path.c_str(), outcome.sweep.rows.size(),
                outcome.summary.c_str());
    return kOk;
}

int
cmdRepro(int argc, char **argv)
{
    std::string fig_name;
    RunOptions opts;
    bool update_golden = false;
    std::string golden_dir = "tests/golden";
    FlagParser parser;
    addReproFlags(parser, &fig_name, &opts.threads, &opts.smoke,
                  &opts.full, &opts.seed, &opts.out_dir,
                  &update_golden, &golden_dir);
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(error, "repro");
    if (update_golden)
        return updateGoldens(fig_name, opts, golden_dir);
    if (fig_name.empty())
        return usageError("repro needs --fig <name> (or --fig all)",
                          "repro");

    if (fig_name == "all") {
        for (const auto &figure : figures())
            reproduceOne(figure, opts);
        return kOk;
    }
    const Figure *figure = findFigure(fig_name);
    if (figure == nullptr)
        return usageError("unknown figure '" + fig_name + "'", "repro");
    return reproduceOne(*figure, opts);
}

// ----------------------------------------------------------- campaign

constexpr std::uint32_t kAllShards = 0xffffffffu;

void
addCampaignFlags(FlagParser &parser, std::string *fig, std::string *dir,
                 std::uint32_t *shards, std::uint32_t *shard,
                 unsigned *threads, bool *smoke, bool *full,
                 std::uint64_t *seed, std::uint32_t *retries,
                 std::uint32_t *deadline_ms, std::string *fault,
                 std::string *status_dir, std::string *merge_dir)
{
    parser.addString("fig", fig, "figure to run as a campaign");
    parser.addString("dir", dir,
                     "campaign state directory (manifests, shard CSVs, "
                     "merged artifact)");
    parser.addUint("shards", shards,
                   "number of job-range shards (default 1)");
    parser.addUint("shard", shard,
                   "run only this shard, 0-based (default: all shards "
                   "in this process)");
    parser.addUint("threads", threads,
                   "pool workers per shard (0 = hardware concurrency)");
    parser.addBool("smoke", smoke, "CI scale: tiny but complete sweep");
    parser.addBool("full", full, "paper scale (hours of simulation)");
    parser.addUint64("seed", seed, "base seed (0 = figure default)");
    parser.addUint("retries", retries,
                   "deterministic re-attempts after a job throws "
                   "(default 2)");
    parser.addUint("deadline-ms", deadline_ms,
                   "per-job soft deadline in ms; exceeding it counts "
                   "as a failure (0 = none)");
    parser.addString("fault", fault,
                     "inject a fault: crash|throw|hang@<n>[:ms] "
                     "(also via LEAKY_CAMPAIGN_FAULT)");
    parser.addString("status", status_dir,
                     "print campaign health for <dir> and exit "
                     "(non-zero if any job failed)");
    parser.addString("merge", merge_dir,
                     "merge the completed campaign in <dir> and exit");
}

int
campaignStatusMain(const std::string &dir)
{
    const auto status = campaign::campaignStatus(dir);
    std::printf("campaign %s (%s, seed %llu): %zu jobs over %zu "
                "shard(s)\n",
                status.meta.figure.c_str(), status.meta.scale.c_str(),
                static_cast<unsigned long long>(status.meta.seed),
                status.meta.jobs, status.meta.shards);
    core::Table table({"shard", "jobs", "done", "failed", "remaining"});
    for (const auto &shard : status.shards)
        table.addRow({std::to_string(shard.shard),
                      std::to_string(shard.owned),
                      std::to_string(shard.done),
                      std::to_string(shard.failed),
                      std::to_string(shard.remaining)});
    std::printf("%s", table.str().c_str());
    std::printf("total: %zu done, %zu failed, %zu remaining\n",
                status.done, status.failed, status.remaining);
    for (const auto &shard : status.shards)
        for (const auto &[index, fail] : shard.failures)
            std::printf("  failed job %zu (shard %zu, %u attempts): "
                        "%s\n",
                        index, shard.shard, fail.attempts,
                        fail.message.c_str());
    if (status.failed > 0) {
        std::fprintf(stderr,
                     "leakyhammer: %zu job(s) failed — campaign is "
                     "unhealthy\n",
                     status.failed);
        return kRuntimeError;
    }
    return kOk;
}

int
campaignMergeMain(const std::string &dir)
{
    const auto path = campaign::writeMergedCsv(dir);
    std::printf("merged campaign CSV: %s\n", path.c_str());
    return kOk;
}

int
cmdCampaign(int argc, char **argv)
{
    std::string fig_name, dir, fault_spec, status_dir, merge_dir;
    RunOptions opts;
    std::uint32_t shards = 1, shard = kAllShards;
    std::uint32_t retries = 2, deadline_ms = 0;
    FlagParser parser;
    addCampaignFlags(parser, &fig_name, &dir, &shards, &shard,
                     &opts.threads, &opts.smoke, &opts.full, &opts.seed,
                     &retries, &deadline_ms, &fault_spec, &status_dir,
                     &merge_dir);
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(error, "campaign");

    if (!status_dir.empty())
        return campaignStatusMain(status_dir);
    if (!merge_dir.empty())
        return campaignMergeMain(merge_dir);

    if (fig_name.empty() || dir.empty())
        return usageError("campaign needs --fig <name> and --dir <dir> "
                          "(or --status/--merge <dir>)",
                          "campaign");
    const Figure *figure = findFigure(fig_name);
    if (figure == nullptr)
        return usageError("unknown figure '" + fig_name + "'",
                          "campaign");
    if (shards == 0)
        return usageError("--shards must be positive", "campaign");
    if (shard != kAllShards && shard >= shards)
        return usageError("--shard must be < --shards", "campaign");

    campaign::CampaignConfig config;
    config.dir = dir;
    config.threads = opts.threads;
    config.retries = retries;
    config.deadline_ms = deadline_ms;
    if (fault_spec.empty())
        if (const char *env = std::getenv(campaign::kFaultEnvVar))
            fault_spec = env;
    if (!fault_spec.empty() &&
        !campaign::FaultPlan::parse(fault_spec, &config.fault, &error))
        return usageError(error, "campaign");

    const SweepSpec spec = figure->make(opts);
    const std::string scale =
        opts.full ? "full" : (opts.smoke ? "smoke" : "default");
    const auto meta =
        campaign::makeMeta(spec, shards, figure->csv_name, scale);
    campaign::openCampaign(meta, dir);
    campaign::installStopSignalHandlers();

    std::printf("campaign %s (%s): %zu jobs over %u shard(s) in %s\n",
                meta.figure.c_str(), meta.scale.c_str(), meta.jobs,
                shards, dir.c_str());
    std::vector<std::size_t> to_run;
    if (shard == kAllShards)
        for (std::size_t s = 0; s < shards; ++s)
            to_run.push_back(s);
    else
        to_run.push_back(shard);

    std::size_t failed = 0;
    bool stopped = false;
    for (const auto s : to_run) {
        const auto report = campaign::runShard(spec, meta, config, s);
        std::printf("shard %zu: %zu/%zu done (%zu run now, %zu failed, "
                    "%zu skipped)%s\n",
                    report.shard, report.completed, report.owned,
                    report.ran, report.failed, report.skipped,
                    report.stopped ? " [stopped]" : "");
        failed += report.failed;
        stopped = stopped || report.stopped;
        if (stopped)
            break;
    }

    const auto status = campaign::campaignStatus(dir);
    if (status.complete()) {
        const auto path = campaign::writeMergedCsv(dir);
        std::printf("campaign complete: merged CSV at %s\n",
                    path.c_str());
        return kOk;
    }
    if (stopped) {
        std::printf("campaign interrupted after checkpoint: %zu done, "
                    "%zu remaining — rerun the same command to "
                    "resume\n",
                    status.done, status.remaining);
        return kInterrupted;
    }
    if (failed > 0 || status.failed > 0) {
        std::fprintf(stderr,
                     "leakyhammer: %zu job(s) failed (see `campaign "
                     "--status %s`)\n",
                     status.failed, dir.c_str());
        return kRuntimeError;
    }
    std::printf("shard(s) done: campaign at %zu/%zu jobs — run the "
                "remaining shards, then `campaign --merge %s`\n",
                status.done, status.meta.jobs, dir.c_str());
    return kOk;
}

// ---------------------------------------------------------------- run

int
cmdRun(int argc, char **argv)
{
    if (argc < 1 || std::string(argv[0]).rfind("--", 0) == 0)
        return usageError(
            "run needs a demo name (quickstart, covert, fingerprint, "
            "mitigation)",
            "run");
    // Flag parsing and validation are shared with the example
    // binaries (runner/demos.cc), so defaults and bounds live once.
    const std::string demo = argv[0];
    const std::string prog = "leakyhammer run " + demo;
    if (demo == "quickstart")
        return quickstartMain(argc - 1, argv + 1, prog.c_str());
    if (demo == "covert")
        return covertMain(argc - 1, argv + 1, prog.c_str());
    if (demo == "fingerprint")
        return fingerprintMain(argc - 1, argv + 1, prog.c_str());
    if (demo == "mitigation")
        return mitigationMain(argc - 1, argv + 1, prog.c_str());
    return usageError("unknown demo '" + demo + "'", "run");
}

// --------------------------------------------------------------- fuzz

void
addFuzzFlags(FlagParser &parser, unsigned *threads, bool *smoke,
             bool *full, std::uint64_t *seed, std::string *out_dir)
{
    parser.addUint("threads", threads,
                   "pool workers (0 = hardware concurrency)");
    parser.addBool("smoke", smoke, "CI scale: tiny search budget");
    parser.addBool("full", full, "paper scale (hours of simulation)");
    parser.addUint64("seed", seed,
                     "search seed (0 = default 1); drives both the "
                     "pattern stream and the defense seeds");
    parser.addString("out", out_dir, "output directory for artifacts");
}

int
cmdFuzz(int argc, char **argv)
{
    RunOptions opts;
    FlagParser parser;
    addFuzzFlags(parser, &opts.threads, &opts.smoke, &opts.full,
                 &opts.seed, &opts.out_dir);
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(error, "fuzz");

    // One sweep job per defense = one complete sequential campaign, so
    // both artifacts are byte-identical for any --threads value: the
    // CSV because rows merge in job-index order, the best-pattern file
    // because `best` slots are indexed by job, never by completion.
    std::vector<fuzz::CampaignResult> best;
    const SweepSpec spec = fuzzSearchSpec(opts, &best);
    const std::vector<Job> jobs = expandJobs(spec);
    std::printf("fuzz: %zu campaign(s), seed %llu\n", jobs.size(),
                static_cast<unsigned long long>(spec.base_seed));
    const SweepResult result = runSweep(spec, opts.threads);

    if (!opts.out_dir.empty() && opts.out_dir != ".")
        std::filesystem::create_directories(opts.out_dir);
    const std::string csv_path =
        (std::filesystem::path(opts.out_dir) / "fig_fuzz_search.csv")
            .string();
    writeFile(csv_path, toCsv(result));

    std::string report;
    core::Table table({"defense", "best score", "capacity (Kbps)",
                       "error", "actions", "pattern"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto kind = static_cast<defense::DefenseKind>(
            static_cast<int>(jobs[i].param("defense")));
        const fuzz::PatternScore &top = best[i].best;
        report += std::string("defense=") + defense::defenseName(kind) +
                  " score=" + csvCell(top.score) +
                  " capacity=" + csvCell(top.capacity) +
                  " error=" + csvCell(top.error) +
                  " actions=" + std::to_string(top.actions) +
                  " pattern=" + top.pattern.str() + "\n";
        table.addRow({defense::defenseName(kind),
                      core::fmt(top.score / 1000.0, 1),
                      core::fmt(top.capacity / 1000.0, 1),
                      core::fmt(top.error, 3),
                      std::to_string(top.actions), top.pattern.str()});
    }
    const std::string best_path =
        (std::filesystem::path(opts.out_dir) / "fuzz_best.txt").string();
    writeFile(best_path, report);

    std::printf("%zu jobs in %.2f s\nwrote %s (%zu rows)\nwrote %s\n\n%s",
                result.jobs, result.wall_seconds, csv_path.c_str(),
                result.rows.size(), best_path.c_str(),
                table.str().c_str());
    return kOk;
}

// -------------------------------------------------------------- bench

int
cmdBench(int argc, char **argv)
{
    std::uint32_t jobs = 512;
    std::uint32_t spin = 20'000;
    FlagParser parser;
    parser.addUint("jobs", &jobs, "synthetic jobs per batch");
    parser.addUint("spin", &spin, "RNG draws of work per job");
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(error, "bench");
    if (jobs == 0)
        return usageError("--jobs must be positive", "bench");

    const SweepSpec spec = syntheticBenchSpec(jobs, spin);

    const unsigned hw = SweepPool::resolveThreads(0);
    std::vector<unsigned> counts = {1};
    if (hw >= 4)
        counts.push_back(4);
    if (hw != 1 && hw != 4)
        counts.push_back(hw);

    core::Table table({"threads", "jobs", "wall (s)", "jobs/s"});
    for (unsigned threads : counts) {
        const auto result = runSweep(spec, threads);
        const double rate =
            result.wall_seconds > 0.0
                ? static_cast<double>(result.jobs) / result.wall_seconds
                : 0.0;
        table.addRow({std::to_string(threads), std::to_string(jobs),
                      core::fmt(result.wall_seconds, 3),
                      core::fmt(rate, 0)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n(BM_SweepRunner in bench/micro_simulator_throughput "
                "tracks this number in BENCH_kernel.json.)\n");
    return kOk;
}

// --------------------------------------------------------------- help

int
cmdHelp(int argc, char **argv)
{
    const std::string topic = argc > 0 ? argv[0] : "";
    if (topic.empty()) {
        printTopUsage();
        return kOk;
    }
    FlagParser parser;
    if (topic == "repro") {
        std::string s1, s2, s3;
        unsigned u = 0;
        bool b1 = false, b2 = false, b3 = false;
        std::uint64_t seed = 0;
        addReproFlags(parser, &s1, &u, &b1, &b2, &seed, &s2, &b3, &s3);
        std::printf("usage: leakyhammer repro --fig <name> [flags]\n%s",
                    parser.helpText().c_str());
        return kOk;
    }
    if (topic == "campaign") {
        std::string s1, s2, s3, s4, s5;
        unsigned threads = 0;
        std::uint32_t shards = 0, shard = 0, retries = 0, deadline = 0;
        bool smoke = false, full = false;
        std::uint64_t seed = 0;
        addCampaignFlags(parser, &s1, &s2, &shards, &shard, &threads,
                         &smoke, &full, &seed, &retries, &deadline,
                         &s3, &s4, &s5);
        std::printf(
            "usage: leakyhammer campaign --fig <name> --dir <dir> "
            "[flags]\n"
            "       leakyhammer campaign --status <dir>\n"
            "       leakyhammer campaign --merge <dir>\n%s"
            "\nA campaign shards a figure's sweep by job-index range,\n"
            "checkpoints every completed job to an append-only\n"
            "manifest, and resumes after a kill by running only the\n"
            "missing jobs. The merged CSV is byte-identical to a\n"
            "single-process `repro` run for any shard count and any\n"
            "kill/resume schedule.\n"
            "exit codes: 0 ok, 1 failed jobs, 2 usage, 3 interrupted "
            "(resumable), 42 injected crash\n",
            parser.helpText().c_str());
        return kOk;
    }
    if (topic == "run") {
        std::printf(
            "usage: leakyhammer run <demo> [flags]\n"
            "  quickstart                 no flags\n"
            "  covert [--message <s>]     default MICRO\n"
            "  fingerprint [--sites <n>] [--loads <n>]\n"
            "  mitigation [--nrh <n>]     default 256\n");
        return kOk;
    }
    if (topic == "fuzz") {
        unsigned threads = 0;
        bool smoke = false, full = false;
        std::uint64_t seed = 0;
        std::string out_dir;
        addFuzzFlags(parser, &threads, &smoke, &full, &seed, &out_dir);
        std::printf(
            "usage: leakyhammer fuzz [flags]\n%s"
            "\nRuns one evolutionary pattern campaign per defense on\n"
            "the sweep pool and writes fig_fuzz_search.csv plus\n"
            "fuzz_best.txt (the best discovered pattern per defense,\n"
            "serialized — feed it back through the fuzz-replay\n"
            "catalogue or parse it in code). Identical --seed gives\n"
            "byte-identical artifacts for any --threads.\n",
            parser.helpText().c_str());
        return kOk;
    }
    if (topic == "bench") {
        std::printf("usage: leakyhammer bench [--jobs <n>] "
                    "[--spin <n>]\n");
        return kOk;
    }
    if (topic == "list") {
        std::printf("usage: leakyhammer list [--names]\n"
                    "  --names   print just the figure names, one per "
                    "line (for scripts)\n");
        return kOk;
    }
    return usageError("unknown help topic '" + topic + "'");
}

} // namespace

int
cliMain(int argc, char **argv)
{
    if (argc < 2) {
        printTopUsage();
        return kUsageError;
    }
    const std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList(argc - 2, argv + 2);
        if (command == "repro")
            return cmdRepro(argc - 2, argv + 2);
        if (command == "campaign")
            return cmdCampaign(argc - 2, argv + 2);
        if (command == "run")
            return cmdRun(argc - 2, argv + 2);
        if (command == "fuzz")
            return cmdFuzz(argc - 2, argv + 2);
        if (command == "bench")
            return cmdBench(argc - 2, argv + 2);
        if (command == "help" || command == "--help" || command == "-h")
            return cmdHelp(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "leakyhammer: %s\n", e.what());
        return kRuntimeError;
    }
    return usageError("unknown command '" + command + "'");
}

} // namespace leaky::runner
