/**
 * @file
 * Declarative sweep specification. A SweepSpec names the cartesian axes
 * of an experiment (defense, threshold, noise level, workload, ...), a
 * repetition count, and a job function; expandJobs() unrolls the spec
 * into a flat vector of independent Jobs, each with a stable index and
 * a per-job seed fanned out from the base seed. Because every job
 * builds its own sys::System (the event kernel is per-instance), jobs
 * can run on any thread in any order and the merged result — collected
 * in job-index order — is bit-identical regardless of parallelism.
 */

#ifndef LEAKY_RUNNER_SWEEP_HH
#define LEAKY_RUNNER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace leaky::runner {

/** One cartesian axis: a named parameter and the values it sweeps. */
struct Axis {
    std::string name;
    std::vector<double> values;
};

/** One expanded point of a sweep. */
struct Job {
    /** Stable position in expansion order; results merge by index. */
    std::size_t index = 0;
    std::uint32_t repetition = 0;
    /** Per-job seed (seed fan-out; independent of thread schedule). */
    std::uint64_t seed = 1;
    std::map<std::string, double> params; ///< One value per axis.

    /** Value of axis @p name; asserts the axis exists. */
    double param(const std::string &name) const;
};

/** Rows a job contributes to the figure's CSV (one per data point). */
using JobRows = std::vector<std::vector<double>>;

/** The work of one job. Must be self-contained and thread-safe: build
 *  a fresh System, simulate, return rows aligned with spec.columns. */
using JobFn = std::function<JobRows(const Job &)>;

/** A declarative sweep: axes x repetitions -> independent jobs. */
struct SweepSpec {
    std::string name;
    std::string description;
    /** Expansion is row-major: the FIRST axis varies slowest, the last
     *  fastest, and repetitions fan out innermost. */
    std::vector<Axis> axes;
    std::uint32_t repetitions = 1;
    std::uint64_t base_seed = 1;
    /** CSV header; every row a job returns must have this arity. */
    std::vector<std::string> columns;
    JobFn job;
};

/** Total number of jobs the spec expands to (axes product x reps). */
std::size_t jobCount(const SweepSpec &spec);

/** Unroll the cartesian product into a flat, stably-ordered job list. */
std::vector<Job> expandJobs(const SweepSpec &spec);

/**
 * Seed fan-out: a statistically independent seed per (base, index)
 * pair, stable across runs and thread counts (splitmix64 of the pair).
 */
std::uint64_t jobSeed(std::uint64_t base, std::size_t index);

/**
 * The synthetic runner-overhead probe: @p jobs jobs of @p spin seeded
 * RNG draws each. Shared by `leakyhammer bench` and BM_SweepRunner so
 * the CLI's jobs/s and the tracked BENCH_kernel.json number measure
 * the same workload.
 */
SweepSpec syntheticBenchSpec(std::uint32_t jobs, std::uint32_t spin);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_SWEEP_HH
