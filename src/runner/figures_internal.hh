/**
 * @file
 * Shared machinery of the per-family figure files. The registry in
 * figures.cc concatenates the family factories declared here; the
 * helpers keep scale handling and row aggregation identical across
 * families. Internal to src/runner — not part of the public interface.
 */

#ifndef LEAKY_RUNNER_FIGURES_INTERNAL_HH
#define LEAKY_RUNNER_FIGURES_INTERNAL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "fuzz/campaign.hh"
#include "runner/figures.hh"

namespace leaky::runner {

/** Sweep size requested on the CLI (never changes the physics). */
enum class Scale { kSmoke, kDefault, kFull };

Scale scaleOf(const RunOptions &opts);

std::uint64_t seedOr(const RunOptions &opts, std::uint64_t fallback);

/** {0, 1, ..., count - 1} as axis values. */
std::vector<double> iota(std::uint32_t count);

/** Pick a per-scale value (smoke / default / full). */
template <typename T>
T
byScale(Scale scale, T smoke, T dflt, T full)
{
    if (scale == Scale::kFull)
        return full;
    return scale == Scale::kSmoke ? smoke : dflt;
}

/** Mean of column @p value grouped by the tuple of @p keys columns. */
std::map<std::vector<double>, double>
groupMean(const SweepResult &result, const std::vector<std::size_t> &keys,
          std::size_t value);

// Family factories, in registry presentation order. Each returns its
// figures fully built; figures.cc concatenates them.
std::vector<Figure> covertFigures();         ///< Figs. 2-8, 11-12, §6.3.
std::vector<Figure> fingerprintFigures();    ///< Figs. 9-10, T2, §10.3.
std::vector<Figure> countermeasureFigures(); ///< Fig. 13, §9/11/12, T3.
std::vector<Figure> trackerFigures();        ///< §13 generalisation.
std::vector<Figure> scalingFigures();        ///< §5.2 topology/mapping.
std::vector<Figure> fuzzFigures();           ///< Pattern fuzzer (src/fuzz).

/**
 * The fuzz-search sweep, shared between the fuzz-search figure and
 * `leakyhammer fuzz`. When @p capture is non-null it is resized to the
 * job count and each job ALSO stores its full CampaignResult (including
 * the best pattern's serialization) at its job index — thread-safe
 * because indices are distinct, deterministic because slots are merged
 * by index, never by completion order.
 */
SweepSpec fuzzSearchSpec(const RunOptions &opts,
                         std::vector<fuzz::CampaignResult> *capture);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_FIGURES_INTERNAL_HH
