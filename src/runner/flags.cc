#include "runner/flags.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace leaky::runner {

bool
parseUint64(const std::string &text, std::uint64_t *value)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *value = parsed;
    return true;
}

bool
parseUint32(const std::string &text, std::uint32_t *value)
{
    std::uint64_t wide = 0;
    if (!parseUint64(text, &wide) ||
        wide > std::numeric_limits<std::uint32_t>::max())
        return false;
    *value = static_cast<std::uint32_t>(wide);
    return true;
}

bool
parseDouble(const std::string &text, double *value)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *value = parsed;
    return true;
}

void
FlagParser::addBool(const std::string &name, bool *target,
                    const std::string &help)
{
    flags_.push_back({name, Type::kBool, target, help});
}

void
FlagParser::addUint(const std::string &name, std::uint32_t *target,
                    const std::string &help)
{
    flags_.push_back({name, Type::kUint, target, help});
}

void
FlagParser::addUint64(const std::string &name, std::uint64_t *target,
                      const std::string &help)
{
    flags_.push_back({name, Type::kUint64, target, help});
}

void
FlagParser::addDouble(const std::string &name, double *target,
                      const std::string &help)
{
    flags_.push_back({name, Type::kDouble, target, help});
}

void
FlagParser::addString(const std::string &name, std::string *target,
                      const std::string &help)
{
    flags_.push_back({name, Type::kString, target, help});
}

const FlagParser::Flag *
FlagParser::find(const std::string &name) const
{
    for (const auto &flag : flags_)
        if (flag.name == name)
            return &flag;
    return nullptr;
}

bool
FlagParser::setValue(const Flag &flag, const std::string &text)
{
    switch (flag.type) {
      case Type::kBool:
        return false; // Bools never take a value.
      case Type::kUint:
        return parseUint32(text, static_cast<std::uint32_t *>(flag.target));
      case Type::kUint64:
        return parseUint64(text, static_cast<std::uint64_t *>(flag.target));
      case Type::kDouble:
        return parseDouble(text, static_cast<double *>(flag.target));
      case Type::kString:
        *static_cast<std::string *>(flag.target) = text;
        return true;
    }
    return false;
}

bool
FlagParser::parse(int argc, char **argv, std::string *error)
{
    positionals_.clear();
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            if (positionals_.size() > max_positionals_) {
                *error = "unexpected argument '" + arg + "'";
                return false;
            }
            continue;
        }

        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }

        const Flag *flag = find(name);
        if (flag == nullptr) {
            *error = "unknown flag '--" + name + "'";
            return false;
        }
        if (flag->type == Type::kBool) {
            if (has_inline) {
                *error = "flag '--" + name + "' takes no value";
                return false;
            }
            *static_cast<bool *>(flag->target) = true;
            continue;
        }

        std::string value;
        if (has_inline) {
            value = inline_value;
        } else if (i + 1 < argc) {
            value = argv[++i];
        } else {
            *error = "flag '--" + name + "' needs a value";
            return false;
        }
        if (!setValue(*flag, value)) {
            *error = "bad value '" + value + "' for flag '--" + name + "'";
            return false;
        }
    }
    return true;
}

std::string
FlagParser::helpText() const
{
    static const char *kTypeNames[] = {"", " <n>", " <n>", " <x>",
                                       " <s>"};
    std::string out;
    for (const auto &flag : flags_) {
        std::string head =
            "  --" + flag.name + kTypeNames[static_cast<int>(flag.type)];
        if (head.size() < 24)
            head.resize(24, ' ');
        out += head + " " + flag.help + "\n";
    }
    return out;
}

} // namespace leaky::runner
