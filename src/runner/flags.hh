/**
 * @file
 * Tiny dependency-free command-line flag parser for the leakyhammer
 * CLI and the example binaries. Flags are `--name value` or
 * `--name=value`; bools take no value. Parsing is strict: an unknown
 * flag, a missing value, or a malformed number is an error — callers
 * must exit non-zero instead of silently falling back to defaults.
 */

#ifndef LEAKY_RUNNER_FLAGS_HH
#define LEAKY_RUNNER_FLAGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace leaky::runner {

/** Declarative flag set bound to caller-owned storage. */
class FlagParser
{
  public:
    void addBool(const std::string &name, bool *target,
                 const std::string &help);
    void addUint(const std::string &name, std::uint32_t *target,
                 const std::string &help);
    void addUint64(const std::string &name, std::uint64_t *target,
                   const std::string &help);
    void addDouble(const std::string &name, double *target,
                   const std::string &help);
    void addString(const std::string &name, std::string *target,
                   const std::string &help);

    /** Cap on bare (non-flag) arguments; default none allowed. */
    void allowPositionals(std::size_t max) { max_positionals_ = max; }

    /**
     * Parse argv[0..argc); on failure fills @p error and returns
     * false. Bound targets keep their pre-set values as defaults but
     * are only *kept* when the flag is absent — a present-but-bad
     * value always fails.
     */
    bool parse(int argc, char **argv, std::string *error);

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** One "  --name <type>  help" line per flag. */
    std::string helpText() const;

  private:
    enum class Type { kBool, kUint, kUint64, kDouble, kString };
    struct Flag {
        std::string name;
        Type type;
        void *target;
        std::string help;
    };

    const Flag *find(const std::string &name) const;
    static bool setValue(const Flag &flag, const std::string &text);

    std::vector<Flag> flags_;
    std::vector<std::string> positionals_;
    std::size_t max_positionals_ = 0;
};

/** Strict numeric parses (whole string must convert; no fallback). */
bool parseUint32(const std::string &text, std::uint32_t *value);
bool parseUint64(const std::string &text, std::uint64_t *value);
bool parseDouble(const std::string &text, double *value);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_FLAGS_HH
