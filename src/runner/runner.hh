/**
 * @file
 * Sweep execution and collection: expand a SweepSpec, run every job on
 * a work-stealing pool (one isolated sys::System per job), and merge
 * the per-job rows in job-index order so the result — and the CSV
 * rendered from it — is bit-identical for any thread count.
 */

#ifndef LEAKY_RUNNER_RUNNER_HH
#define LEAKY_RUNNER_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hh"

namespace leaky::runner {

class SweepPool;

/** Merged outcome of one sweep. */
struct SweepResult {
    std::vector<std::string> columns;
    /** All job rows, concatenated in job-index order. */
    std::vector<std::vector<double>> rows;
    std::size_t jobs = 0;
    double wall_seconds = 0.0; ///< Wall clock, diagnostics only.
};

/** Expand and run @p spec on a fresh pool of @p threads workers
 *  (0 = hardware concurrency). Throws if any job throws. */
SweepResult runSweep(const SweepSpec &spec, unsigned threads = 0);

/** Same, on an existing pool (benchmarks reuse one across batches). */
SweepResult runSweep(const SweepSpec &spec, SweepPool &pool);

/** Render columns + rows as CSV. Numeric formatting is locale-free and
 *  round-trip exact, so equal results give byte-equal files. */
std::string toCsv(const SweepResult &result);

/** Format one cell the way toCsv does (shortest round-trip form). */
std::string csvCell(double value);

/** Write @p content to @p path (truncating); throws on I/O failure. */
void writeFile(const std::string &path, const std::string &content);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_RUNNER_HH
