/**
 * @file
 * Sweep execution and collection: expand a SweepSpec, run every job on
 * a work-stealing pool (one isolated sys::System per job), and merge
 * the per-job rows in job-index order so the result — and the CSV
 * rendered from it — is bit-identical for any thread count.
 */

#ifndef LEAKY_RUNNER_RUNNER_HH
#define LEAKY_RUNNER_RUNNER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/sweep.hh"

namespace leaky::runner {

class SweepPool;

/** Merged outcome of one sweep. */
struct SweepResult {
    std::vector<std::string> columns;
    /** All job rows, concatenated in job-index order. */
    std::vector<std::vector<double>> rows;
    std::size_t jobs = 0;
    double wall_seconds = 0.0; ///< Wall clock, diagnostics only.
};

/** One job a sweep lost: which point of the sweep, and why. */
struct JobFailure {
    std::size_t index = 0;
    std::string params; ///< e.g. "intensity=50, pattern=2".
    std::string message;
};

/**
 * Thrown by runSweep when jobs failed. The batch always drains first,
 * so the rows of every *completed* job survive in partial() — a
 * million-job sweep that loses one cell no longer loses the rest —
 * and failures() names every failing job by index and axis values
 * (the first one is quoted in what()).
 */
class SweepError : public std::runtime_error
{
  public:
    SweepError(const std::string &what, SweepResult partial,
               std::vector<JobFailure> failures)
        : std::runtime_error(what), partial_(std::move(partial)),
          failures_(std::move(failures))
    {
    }

    const SweepResult &partial() const { return partial_; }
    const std::vector<JobFailure> &failures() const { return failures_; }

  private:
    SweepResult partial_;
    std::vector<JobFailure> failures_;
};

/** `name=value, ...` rendering of a job's axis point (csvCell form). */
std::string describeJobParams(const Job &job);

/** Expand and run @p spec on a fresh pool of @p threads workers
 *  (0 = hardware concurrency). Throws SweepError (carrying the
 *  completed jobs' rows) if any job throws. */
SweepResult runSweep(const SweepSpec &spec, unsigned threads = 0);

/** Same, on an existing pool (benchmarks reuse one across batches). */
SweepResult runSweep(const SweepSpec &spec, SweepPool &pool);

/** Render columns + rows as CSV. Numeric formatting is locale-free and
 *  round-trip exact, so equal results give byte-equal files. */
std::string toCsv(const SweepResult &result);

/** Format one cell the way toCsv does (shortest round-trip form). */
std::string csvCell(double value);

/**
 * Write @p content to @p path atomically: the bytes land in
 * `<path>.tmp` first and are renamed into place, so a kill mid-write
 * can never leave a truncated artifact behind — readers see either
 * the old file or the complete new one. Throws on I/O failure.
 */
void writeFile(const std::string &path, const std::string &content);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_RUNNER_HH
