#include "runner/demos.hh"

#include <cstdio>
#include <vector>

#include "core/leakyhammer.hh"
#include "runner/flags.hh"

namespace leaky::runner {

namespace {

void
covertOneChannel(attack::ChannelKind kind, const std::string &message,
                 const dram::MappingSpec &mapping)
{
    const char *name =
        kind == attack::ChannelKind::kPrac ? "PRAC" : "RFM (PRFM)";
    core::banner(std::string(name) + " covert channel");

    const auto result = core::runMessageDemo(kind, message, mapping);

    std::printf("sent bits:     ");
    for (bool b : result.sent_bits)
        std::printf("%d", b ? 1 : 0);
    std::printf("\nreceived bits: ");
    for (bool b : result.received_bits)
        std::printf("%d", b ? 1 : 0);
    std::printf("\ndetections:    ");
    for (auto d : result.detections)
        std::printf("%u", d > 9 ? 9 : d);
    std::printf("\ndecoded text:  \"%s\"\n", result.decoded_text.c_str());

    std::size_t errors = 0;
    for (std::size_t i = 0; i < result.sent_bits.size(); ++i)
        errors += result.sent_bits[i] != result.received_bits[i];
    std::printf("bit errors:    %zu / %zu\n", errors,
                result.sent_bits.size());
}

} // namespace

int
runQuickstartDemo()
{
    // 1. A DDR5 system (paper Table 1) protected by PRAC with the
    //    attack-study operating point NBO = 128.
    sys::SystemConfig cfg = core::pracAttackSystem();
    sys::System system(cfg);

    // 2. Two attacker-controlled rows in the same bank. Alternating
    //    loads force a row-buffer conflict -- and thus an activation --
    //    on every access, charging the PRAC counters.
    attack::ProbeConfig probe_cfg;
    probe_cfg.addrs = {
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000),
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000)};
    probe_cfg.iterations = 512;

    attack::LatencyProbe probe(system, probe_cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    // 3. Classify what the user-space loop observed.
    const auto classifier =
        attack::LatencyClassifier::forTiming(cfg.ctrl.dram.timing);
    std::uint64_t by_class[5] = {0, 0, 0, 0, 0};
    for (const auto &sample : probe.samples())
        by_class[static_cast<int>(classifier.classify(sample.latency))]++;

    std::printf("Observed %zu request latencies:\n",
                probe.samples().size());
    const char *names[5] = {"fast (row hit)", "row conflict",
                            "RFM window", "periodic refresh",
                            "PRAC back-off"};
    for (int c = 0; c < 5; ++c)
        std::printf("  %-18s %5llu\n", names[c],
                    static_cast<unsigned long long>(by_class[c]));

    const auto &stats = system.stats(0);
    std::printf("\nGround truth from the controller:\n");
    std::printf("  back-offs: %llu, refreshes: %llu, reads: %llu\n",
                static_cast<unsigned long long>(stats.backoffs),
                static_cast<unsigned long long>(stats.refreshes),
                static_cast<unsigned long long>(stats.reads_served));
    std::printf("\nFirst samples (ns): ");
    for (std::size_t i = 0; i < 12 && i < probe.samples().size(); ++i)
        std::printf("%llu ", static_cast<unsigned long long>(
                                 probe.samples()[i].latency / 1000));
    std::printf("\n");
    return 0;
}

int
runCovertDemo(const std::string &message, const std::string &mapping)
{
    const dram::MappingSpec spec = dram::MappingSpec::parse(mapping);
    std::printf("address mapping: %s\n", spec.str().c_str());
    covertOneChannel(attack::ChannelKind::kPrac, message, spec);
    covertOneChannel(attack::ChannelKind::kRfm, message, spec);
    return 0;
}

int
runFingerprintDemo(std::uint32_t sites, std::uint32_t loads)
{
    core::banner("Website fingerprinting via PRAC back-offs");

    core::FingerprintSpec spec;
    spec.sites = sites;
    spec.loads_per_site = loads;
    spec.duration = 2 * sim::kMs;

    std::printf("collecting %u sites x %u loads (NRH = %u)...\n",
                spec.sites, spec.loads_per_site, spec.nrh);
    const auto raw = core::collectFingerprints(spec);

    // Show one strip per site.
    for (std::uint32_t site = 0; site < spec.sites; ++site) {
        for (const auto &sample : raw) {
            if (sample.site != site || sample.load != 0)
                continue;
            const auto features = attack::extractFeatures(
                sample.backoff_times, sample.duration, 24);
            std::vector<double> strip(features.values.begin(),
                                      features.values.begin() + 24);
            std::printf("%-12s [%s] %3zu back-offs\n",
                        workload::websiteNames()[site].c_str(),
                        core::sparkline(strip).c_str(),
                        sample.backoff_times.size());
        }
    }

    // Train on most loads, classify the held-out ones.
    const auto data = core::fingerprintDataset(raw);
    const auto split = ml::stratifiedSplit(data, 0.25, 99);
    ml::RandomForest model;
    model.fit(split.train);
    const auto cm = ml::evaluate(model, split.test);

    std::printf("\nrandom forest on held-out loads: accuracy %.2f "
                "(chance %.3f)\n",
                cm.accuracy(), 1.0 / data.n_classes);
    std::printf("macro F1 %.2f, precision %.2f, recall %.2f\n",
                cm.macroF1(), cm.macroPrecision(), cm.macroRecall());
    return 0;
}

namespace {

double
channelCapacityAgainst(defense::DefenseKind kind, std::uint32_t nrh)
{
    sys::SystemConfig cfg = core::pracAttackSystem();
    cfg.defense.kind = kind;
    if (kind == defense::DefenseKind::kFrRfm ||
        kind == defense::DefenseKind::kPrfm) {
        cfg.defense.nrh = nrh;
        cfg.defense.nbo_override = 0;
    }
    sys::System system(cfg);
    auto channel_cfg =
        attack::makeChannelConfig(system, attack::ChannelKind::kPrac);

    const auto bits =
        attack::patternBits(attack::MessagePattern::kCheckered0, 160);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    return attack::runCovertChannel(system, channel_cfg, symbols)
        .capacity;
}

} // namespace

int
runMitigationDemo(std::uint32_t nrh)
{
    core::banner("Defense comparison at NRH = " + std::to_string(nrh));

    const auto mixes = workload::makeMixes(3, 4, 7);
    core::Table table({"defense", "channel capacity", "normalized WS"});
    for (auto kind :
         {defense::DefenseKind::kPrac, defense::DefenseKind::kPrfm,
          defense::DefenseKind::kPracRiac, defense::DefenseKind::kFrRfm,
          defense::DefenseKind::kPracBank}) {
        const double capacity = channelCapacityAgainst(kind, nrh);
        const double ws = core::runPerfCell(kind, nrh, mixes, 4, 100'000);
        table.addRow({defense::defenseName(kind),
                      core::fmtKbps(capacity), core::fmt(ws, 3)});
        std::printf("%-10s capacity %-12s normalized WS %.3f\n",
                    defense::defenseName(kind),
                    core::fmtKbps(capacity).c_str(), ws);
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\nFR-RFM closes the channel completely; at low NRH its "
                "performance cost explodes, which is the paper's central "
                "trade-off (§11, Fig. 13).\n");
    return 0;
}

// ------------------------------------------------- argv entry points

namespace {

int
usageError(const char *prog, const std::string &error,
           const char *flag_usage)
{
    std::fprintf(stderr, "%s: %s\nusage: %s %s\n", prog, error.c_str(),
                 prog, flag_usage);
    return 2;
}

} // namespace

int
quickstartMain(int argc, char **argv, const char *prog)
{
    FlagParser parser;
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(prog, error, "");
    return runQuickstartDemo();
}

int
covertMain(int argc, char **argv, const char *prog)
{
    const char *usage = "[--message <text>] [--mapping <spec>]";
    std::string message = "MICRO";
    std::string mapping = "row-interleaved";
    FlagParser parser;
    parser.addString("message", &message, "text to transmit");
    parser.addString("mapping", &mapping,
                     "address mapping (preset|order:...|xor:...)");
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(prog, error, usage);
    if (message.empty())
        return usageError(prog, "--message must be non-empty", usage);
    dram::MappingSpec spec;
    if (!dram::MappingSpec::tryParse(mapping, &spec, &error))
        return usageError(prog, "bad --mapping: " + error, usage);
    return runCovertDemo(message, mapping);
}

int
fingerprintMain(int argc, char **argv, const char *prog)
{
    const char *usage = "[--sites <n>] [--loads <n>]";
    std::uint32_t sites = 6, loads = 8;
    FlagParser parser;
    parser.addUint("sites", &sites, "number of websites");
    parser.addUint("loads", &loads, "loads per site");
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(prog, error, usage);
    const auto max_sites =
        static_cast<std::uint32_t>(workload::websiteNames().size());
    if (sites < 2 || sites > max_sites)
        return usageError(prog,
                          "--sites must be in [2, " +
                              std::to_string(max_sites) + "]",
                          usage);
    if (loads < 2)
        return usageError(prog, "--loads must be >= 2", usage);
    return runFingerprintDemo(sites, loads);
}

int
mitigationMain(int argc, char **argv, const char *prog)
{
    std::uint32_t nrh = 256;
    FlagParser parser;
    parser.addUint("nrh", &nrh, "RowHammer threshold");
    std::string error;
    if (!parser.parse(argc, argv, &error))
        return usageError(prog, error, "[--nrh <n>]");
    if (nrh < 16 || nrh > 65536)
        return usageError(prog, "--nrh must be in [16, 65536]",
                          "[--nrh <n>]");
    return runMitigationDemo(nrh);
}

} // namespace leaky::runner
