/**
 * @file
 * Work-stealing thread pool for sweep jobs. Workers are persistent;
 * each owns a deque of job indices. A worker pops from the back of its
 * own deque and, when empty, steals from the front of a sibling's —
 * long jobs dealt to one worker migrate to idle ones, which matters
 * because sweep cells differ wildly in cost (a 64-NRH fingerprint job
 * simulates far more preventive actions than a 1024-NRH perf cell).
 *
 * The calling thread participates as worker 0, so a pool constructed
 * with threads == 1 spawns nothing and runs jobs inline — the
 * degenerate case the determinism tests compare against.
 */

#ifndef LEAKY_RUNNER_POOL_HH
#define LEAKY_RUNNER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace leaky::runner {

/** One job of a batch that threw: which, and what it said. */
struct JobError {
    std::size_t index = 0;
    std::string message; ///< what() of the exception (or "unknown").
    std::exception_ptr error;
};

/** Persistent work-stealing pool; forEach() runs one batch. */
class SweepPool
{
  public:
    /** @param threads Total workers including the caller (0 = one per
     *  hardware thread). */
    explicit SweepPool(unsigned threads = 0);
    ~SweepPool();

    SweepPool(const SweepPool &) = delete;
    SweepPool &operator=(const SweepPool &) = delete;

    unsigned threads() const { return n_workers_; }

    /**
     * Execute fn(0) ... fn(n - 1) across the pool; blocks until every
     * call returned. Jobs are dealt round-robin and migrate by
     * stealing, so completion order is arbitrary — fn must only touch
     * disjoint state per index. If any call throws, the batch still
     * drains and the lowest-index exception is rethrown here —
     * deterministic, unlike first-to-fail under work stealing.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Fault-isolating variant: every thrown exception is caught and
     * recorded against its job index instead of propagating, so one
     * poisoned job cannot abort the batch or discard its siblings'
     * results. Returns the failures sorted by job index (empty = all
     * jobs succeeded).
     */
    std::vector<JobError>
    forEachIsolated(std::size_t n,
                    const std::function<void(std::size_t)> &fn);

    /** Resolve a thread-count request (0 -> hardware concurrency). */
    static unsigned resolveThreads(unsigned requested);

  private:
    struct Queue {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
    };

    void workerLoop(unsigned id);
    void drain(unsigned id);
    bool take(unsigned id, std::size_t &job);

    unsigned n_workers_ = 1;
    std::vector<std::unique_ptr<Queue>> queues_; ///< One per worker.
    std::vector<std::thread> threads_;           ///< n_workers_ - 1.

    std::mutex run_mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t remaining_ = 0; ///< Jobs not yet finished (run_mutex_).
    unsigned active_ = 0;       ///< Workers inside drain() (run_mutex_).
    std::uint64_t epoch_ = 0;   ///< Bumped per forEach batch.
    bool stop_ = false;
    std::vector<JobError> errors_; ///< This batch's failures (run_mutex_).
};

} // namespace leaky::runner

#endif // LEAKY_RUNNER_POOL_HH
