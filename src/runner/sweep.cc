#include "runner/sweep.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::runner {

double
Job::param(const std::string &name) const
{
    const auto it = params.find(name);
    LEAKY_ASSERT(it != params.end(), "job has no such axis parameter");
    return it->second;
}

std::size_t
jobCount(const SweepSpec &spec)
{
    std::size_t count = spec.repetitions;
    for (const auto &axis : spec.axes) {
        LEAKY_ASSERT(!axis.values.empty(), "sweep axis has no values");
        count *= axis.values.size();
    }
    return count;
}

std::vector<Job>
expandJobs(const SweepSpec &spec)
{
    const std::size_t total = jobCount(spec);
    std::vector<Job> jobs;
    jobs.reserve(total);

    // Odometer over (axes..., repetition), last digit fastest.
    std::vector<std::size_t> digits(spec.axes.size(), 0);
    for (std::size_t index = 0; index < total; ++index) {
        Job job;
        job.index = index;
        job.repetition =
            static_cast<std::uint32_t>(index % spec.repetitions);
        job.seed = jobSeed(spec.base_seed, index);
        for (std::size_t a = 0; a < spec.axes.size(); ++a)
            job.params[spec.axes[a].name] =
                spec.axes[a].values[digits[a]];
        jobs.push_back(std::move(job));

        // Advance the odometer only at repetition boundaries.
        if ((index + 1) % spec.repetitions == 0) {
            for (std::size_t a = spec.axes.size(); a-- > 0;) {
                if (++digits[a] < spec.axes[a].values.size())
                    break;
                digits[a] = 0;
            }
        }
    }
    return jobs;
}

std::uint64_t
jobSeed(std::uint64_t base, std::size_t index)
{
    return sim::seedFanout(base, index);
}

SweepSpec
syntheticBenchSpec(std::uint32_t jobs, std::uint32_t spin)
{
    SweepSpec spec;
    spec.name = "bench";
    spec.description = "synthetic RNG-spin jobs (runner overhead probe)";
    spec.base_seed = 11;
    spec.axes = {{"job", {}}};
    for (std::uint32_t i = 0; i < jobs; ++i)
        spec.axes[0].values.push_back(i);
    spec.columns = {"job", "value"};
    spec.job = [spin](const Job &job) -> JobRows {
        sim::Rng rng(job.seed);
        double acc = 0;
        for (std::uint32_t i = 0; i < spin; ++i)
            acc += rng.uniform();
        return {{job.param("job"), acc}};
    };
    return spec;
}

} // namespace leaky::runner
