/**
 * @file
 * Interactive scenario demos, shared between `leakyhammer run <demo>`
 * and the thin example binaries in examples/. Each demo prints a
 * narrated walk-through of one paper scenario and returns a process
 * exit code (0 on success), so wrappers can forward it from main().
 */

#ifndef LEAKY_RUNNER_DEMOS_HH
#define LEAKY_RUNNER_DEMOS_HH

#include <cstdint>
#include <string>

namespace leaky::runner {

/** Listing-1 latency probe against PRAC; the Fig. 2 bands. */
int runQuickstartDemo();

/** Transmit @p message over the PRAC and RFM covert channels, with
 *  the system decoding through @p mapping (a validated MappingSpec —
 *  preset, order:, or xor: form; see docs/EXPERIMENTS.md). */
int runCovertDemo(const std::string &message,
                  const std::string &mapping = "row-interleaved");

/** Collect fingerprints, train the classifier, report accuracy. */
int runFingerprintDemo(std::uint32_t sites, std::uint32_t loads);

/** Security/performance trade-off of every defense at one NRH. */
int runMitigationDemo(std::uint32_t nrh);

/**
 * argv-style entry points shared by `leakyhammer run <demo>` and the
 * example binaries: strict flag parsing (exit code 2 on any unknown
 * flag, malformed value, or out-of-range setting), then the demo.
 * @p argv excludes the program/demo name; @p prog labels errors.
 */
int quickstartMain(int argc, char **argv, const char *prog);
int covertMain(int argc, char **argv, const char *prog);
int fingerprintMain(int argc, char **argv, const char *prog);
int mitigationMain(int argc, char **argv, const char *prog);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_DEMOS_HH
