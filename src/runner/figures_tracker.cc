/**
 * @file
 * Tracker-defense figure family: the paper's channel analysis says
 * *every* activation-triggered preventive action is a timing channel;
 * these entries test that claim beyond the defenses the paper measured,
 * against the counter-table trackers dominant in the surveys (Graphene's
 * Misra-Gries summaries, Hydra's two-level filter + counter cache).
 *
 *  - `cross-defense`: one covert-capacity comparison across the
 *    alert/RFM family AND the tracker family, at several noise levels,
 *    with the per-action-type ground truth (back-offs, RFMs, targeted
 *    refreshes, counter fetches) in the CSV.
 *  - `tracker-threshold`: the targeted-refresh threshold swept until
 *    the preventive action becomes too rare to carry a symbol per
 *    window -- the tracker analogue of Fig. 11's sensitivity study.
 */

#include "runner/figures_internal.hh"

#include <string>

#include "core/experiments.hh"
#include "core/report.hh"
#include "stats/channel_metrics.hh"

namespace leaky::runner {

namespace {

using defense::DefenseKind;

// -------------------------------------------- cross-defense capacity

Figure
crossDefenseFigure()
{
    Figure fig;
    fig.name = "cross-defense";
    fig.title = "Covert-channel capacity across the alert/RFM and "
                "tracker defense families";
    fig.paper_ref = "§13 (generalisation of §6-§7)";
    fig.csv_name = "fig_cross_defense_capacity.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "cross-defense";
        spec.description = "One sender/receiver pair vs every "
                           "preventive-action mechanism, per noise "
                           "intensity";
        spec.base_seed = seedOr(opts, 1);
        std::vector<double> defenses;
        if (scale == Scale::kSmoke) {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kGraphene),
                        static_cast<double>(DefenseKind::kHydra)};
        } else {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kPrfm),
                        static_cast<double>(DefenseKind::kGraphene),
                        static_cast<double>(DefenseKind::kHydra),
                        static_cast<double>(DefenseKind::kFrRfm)};
        }
        spec.axes = {
            {"defense", std::move(defenses)},
            {"intensity",
             byScale(scale, std::vector<double>{1, 100},
                     std::vector<double>{1, 50, 100},
                     std::vector<double>{1, 25, 50, 75, 88, 100})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        spec.columns = {"defense",   "intensity",
                        "raw_bit_rate", "error_probability",
                        "capacity",  "backoffs",
                        "rfms",      "targeted_refreshes",
                        "counter_fetches"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto kind = static_cast<DefenseKind>(
                static_cast<int>(job.param("defense")));
            const auto result = core::runCrossDefenseCell(
                kind,
                stats::sleepForIntensity(job.param("intensity"),
                                         200'000, 2'000'000),
                bytes, job.seed);
            return {{job.param("defense"), job.param("intensity"),
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms),
                     static_cast<double>(result.targeted_refreshes),
                     static_cast<double>(result.counter_fetches)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"defense", "intensity (%)", "error prob",
                           "capacity (Kbps)", "observable actions"});
        for (const auto &row : result.rows) {
            const auto kind = static_cast<DefenseKind>(
                static_cast<int>(row[0]));
            const double actions = row[5] + row[6] + row[7];
            table.addRow({defense::defenseName(kind),
                          core::fmt(row[1], 0), core::fmt(row[3], 3),
                          core::fmt(row[4] / 1000.0, 1),
                          core::fmt(actions, 0)});
        }
        return table.str() +
               "\nEvery activation-triggered defense (PRAC back-offs, "
               "PRFM RFMs, Graphene/Hydra targeted refreshes) carries "
               "a usable channel; only the time-triggered FR-RFM grid "
               "does not -- the paper's §13 claim, generalised.\n";
    };
    return fig;
}

// ------------------------------------------ tracker threshold sweep

Figure
trackerThresholdFigure()
{
    Figure fig;
    fig.name = "tracker-threshold";
    fig.title = "Tracker covert channel vs targeted-refresh threshold "
                "(Graphene and Hydra)";
    fig.paper_ref = "§13 (Fig. 11 analogue)";
    fig.csv_name = "fig_tracker_threshold.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "tracker-threshold";
        spec.description = "Sparser targeted refreshes degrade the "
                           "channel until no action fits one window";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {
            {"tracker",
             {static_cast<double>(DefenseKind::kGraphene),
              static_cast<double>(DefenseKind::kHydra)}},
            {"threshold",
             byScale(scale, std::vector<double>{80, 512},
                     std::vector<double>{16, 48, 80, 160, 512},
                     std::vector<double>{16, 32, 48, 64, 80, 128, 160,
                                         256, 512})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 16, 50);
        spec.columns = {"tracker", "threshold", "error_probability",
                        "capacity", "targeted_refreshes",
                        "counter_fetches"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto kind = static_cast<DefenseKind>(
                static_cast<int>(job.param("tracker")));
            const auto result = core::runTrackerThresholdCell(
                kind,
                static_cast<std::uint32_t>(job.param("threshold")),
                /*cc_entries=*/0, bytes, job.seed);
            return {{job.param("tracker"), job.param("threshold"),
                     result.symbol_error, result.capacity,
                     static_cast<double>(result.targeted_refreshes),
                     static_cast<double>(result.counter_fetches)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"tracker", "threshold", "error prob",
                           "capacity (Kbps)", "VRRs", "CC fetches"});
        for (const auto &row : result.rows) {
            const auto kind = static_cast<DefenseKind>(
                static_cast<int>(row[0]));
            table.addRow({defense::defenseName(kind),
                          core::fmt(row[1], 0), core::fmt(row[2], 3),
                          core::fmt(row[3] / 1000.0, 1),
                          core::fmt(row[4], 0), core::fmt(row[5], 0)});
        }
        return table.str() +
               "\nLow thresholds give several targeted refreshes per "
               "window (a clean channel); past the per-window "
               "activation budget the action starves and capacity "
               "collapses -- raising the threshold trades RowHammer "
               "safety margin for covert-channel hygiene.\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
trackerFigures()
{
    std::vector<Figure> figures;
    figures.push_back(crossDefenseFigure());
    figures.push_back(trackerThresholdFigure());
    return figures;
}

} // namespace leaky::runner
