/**
 * @file
 * Pattern-fuzzer figure family (ROADMAP item 1): the fuzzer turns the
 * frequency/phase/amplitude pattern space into registry figures.
 *
 *  - `fuzz-search`: one evolutionary campaign per defense, one CSV row
 *    per generation (best/mean score, best capacity/error, preventive
 *    actions of the best) — "does searching the pattern space beat the
 *    hand-written sender, and how fast does it converge".
 *  - `fuzz-replay`: the deterministic replayer as a figure — every
 *    catalogue pattern (hand-written baselines + pinned discoveries)
 *    replayed against each defense under identical cells.
 *
 * One sweep job = one COMPLETE sequential campaign (or one replayed
 * pattern), so both figures are bit-identical for any thread count.
 */

#include "runner/figures_internal.hh"

#include <string>

#include "core/report.hh"
#include "fuzz/campaign.hh"
#include "fuzz/replay.hh"

namespace leaky::runner {

namespace {

using defense::DefenseKind;

/** Search budget per scale; evaluation cost is population +
 *  (generations-1) x (population - elites) covert runs per defense. */
fuzz::CampaignConfig
campaignAt(Scale scale, DefenseKind kind, std::uint64_t stream_seed,
           std::uint64_t base_seed)
{
    fuzz::CampaignConfig cfg;
    cfg.defense = kind;
    cfg.population = byScale<std::uint32_t>(scale, 4, 8, 16);
    cfg.generations = byScale<std::uint32_t>(scale, 3, 5, 8);
    cfg.elites = 2;
    cfg.message_bytes = byScale<std::size_t>(scale, 4, 8, 20);
    cfg.params.seed = stream_seed;
    // Shared seed rule (evalSeedFor): the fuzz-replay figure and the
    // acceptance tests evaluate under the same defense seed, so a
    // discovered pattern's score transfers exactly.
    cfg.eval_seed = fuzz::evalSeedFor(base_seed, kind);
    return cfg;
}

std::vector<double>
fuzzDefenseAxis(Scale scale)
{
    std::vector<double> values;
    if (scale == Scale::kSmoke) {
        // The PRAC family's back-off channel plus both trackers — the
        // cells the acceptance pins (discovered beats baseline).
        for (DefenseKind kind : {DefenseKind::kPrac, DefenseKind::kGraphene,
                                 DefenseKind::kHydra})
            values.push_back(static_cast<double>(kind));
    } else {
        for (DefenseKind kind : fuzz::campaignDefenses())
            values.push_back(static_cast<double>(kind));
    }
    return values;
}

} // namespace

SweepSpec
fuzzSearchSpec(const RunOptions &opts,
               std::vector<fuzz::CampaignResult> *capture)
{
    const Scale scale = scaleOf(opts);
    SweepSpec spec;
    spec.name = "fuzz-search";
    spec.description = "Evolutionary pattern search per defense; one "
                       "row per generation";
    spec.base_seed = seedOr(opts, 1);
    spec.axes = {{"defense", fuzzDefenseAxis(scale)}};
    spec.columns = {"defense",       "generation",  "best_score",
                    "best_capacity", "best_error",  "best_actions",
                    "mean_score"};
    if (capture) {
        capture->assign(jobCount(spec), fuzz::CampaignResult{});
    }
    const std::uint64_t base_seed = spec.base_seed;
    spec.job = [scale, capture, base_seed](const Job &job) -> JobRows {
        const auto kind = static_cast<DefenseKind>(
            static_cast<int>(job.param("defense")));
        const fuzz::CampaignResult result = fuzz::runCampaign(
            campaignAt(scale, kind, job.seed, base_seed));
        JobRows rows;
        rows.reserve(result.stats.size());
        for (const fuzz::GenerationStat &stat : result.stats) {
            rows.push_back({job.param("defense"),
                            static_cast<double>(stat.generation),
                            stat.best_score, stat.best_capacity,
                            stat.best_error,
                            static_cast<double>(stat.best_actions),
                            stat.mean_score});
        }
        if (capture)
            (*capture)[job.index] = result;
        return rows;
    };
    return spec;
}

namespace {

Figure
fuzzSearchFigure()
{
    Figure fig;
    fig.name = "fuzz-search";
    fig.title = "Fuzzer search progress: best pattern score per "
                "generation and defense";
    fig.paper_ref = "§6-§7, §13 (pattern-space search beyond the "
                    "hand-written senders)";
    fig.csv_name = "fig_fuzz_search.csv";
    fig.make = [](const RunOptions &opts) {
        return fuzzSearchSpec(opts, nullptr);
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"defense", "generation", "best score",
                           "best capacity (Kbps)", "best error",
                           "mean score"});
        for (const auto &row : result.rows) {
            const auto kind =
                static_cast<DefenseKind>(static_cast<int>(row[0]));
            table.addRow({defense::defenseName(kind), core::fmt(row[1], 0),
                          core::fmt(row[2] / 1000.0, 1),
                          core::fmt(row[3] / 1000.0, 1),
                          core::fmt(row[4], 3),
                          core::fmt(row[6] / 1000.0, 1)});
        }
        return table.str() +
               "\nThe search only ever improves (elitism), and against "
               "the tracker family it finds multi-row patterns that "
               "beat the single-row hand-written sender — the covert "
               "channel is a property of the pattern SPACE, not of one "
               "crafted attack.\n";
    };
    return fig;
}

Figure
fuzzReplayFigure()
{
    Figure fig;
    fig.name = "fuzz-replay";
    fig.title = "Replayed patterns vs defenses: discovered patterns "
                "against hand-written baselines";
    fig.paper_ref = "§6-§7, §13 (replayable evidence)";
    fig.csv_name = "fig_fuzz_replay.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "fuzz-replay";
        spec.description = "Every catalogue pattern replayed against "
                           "each defense under identical cells";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {
            {"pattern",
             iota(static_cast<std::uint32_t>(fuzz::replayCatalogue()
                                                 .size()))},
            {"defense", fuzzDefenseAxis(scale)}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 8, 20);
        spec.columns = {"pattern",  "defense", "discovered",
                        "capacity", "error_probability", "score",
                        "actions",  "leakage"};
        const std::uint64_t base_seed = spec.base_seed;
        spec.job = [bytes, base_seed](const Job &job) -> JobRows {
            const auto &entry = fuzz::replayCatalogue().at(
                static_cast<std::size_t>(job.param("pattern")));
            fuzz::EvalSpec eval;
            eval.defense = static_cast<DefenseKind>(
                static_cast<int>(job.param("defense")));
            eval.message_bytes = bytes;
            // Same per-defense seed as the search campaigns
            // (evalSeedFor), so discovered scores transfer exactly.
            eval.seed = fuzz::evalSeedFor(base_seed, eval.defense);
            std::vector<double> row = {job.param("pattern"),
                                       job.param("defense"),
                                       entry.discovered ? 1.0 : 0.0};
            for (double value : fuzz::replaySerialized(entry.text, eval))
                row.push_back(value);
            return {row};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"pattern", "origin", "defense", "error prob",
                           "capacity (Kbps)", "actions"});
        for (const auto &row : result.rows) {
            const auto &entry = fuzz::replayCatalogue().at(
                static_cast<std::size_t>(row[0]));
            const auto kind =
                static_cast<DefenseKind>(static_cast<int>(row[1]));
            table.addRow({entry.name,
                          entry.discovered ? "fuzzer" : "hand-written",
                          defense::defenseName(kind),
                          core::fmt(row[4], 3),
                          core::fmt(row[3] / 1000.0, 1),
                          core::fmt(row[6], 0)});
        }
        return table.str() +
               "\nAny serialized pattern is a reproducible experiment: "
               "the pinned fuzzer discoveries replay here against the "
               "same cells as the hand-written baselines they beat.\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
fuzzFigures()
{
    std::vector<Figure> figures;
    figures.push_back(fuzzSearchFigure());
    figures.push_back(fuzzReplayFigure());
    return figures;
}

} // namespace leaky::runner
