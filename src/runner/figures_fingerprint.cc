/**
 * @file
 * Website-fingerprinting figure family: feature collection and the
 * classifier studies (Figs. 9-10, Table 2) plus the §10.3 cache /
 * prefetcher sensitivity study. Collection jobs reduce one (site,
 * load) trace to the 39-feature fingerprint vector; model training
 * happens post-sweep in summarize, over the merged rows.
 */

#include "runner/figures_internal.hh"

#include <cstddef>
#include <memory>
#include <string>

#include "attack/fingerprint.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "ml/dataset.hh"
#include "ml/ensemble.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"
#include "workload/website.hh"

namespace leaky::runner {

namespace {

using attack::ChannelKind;

constexpr std::uint32_t kFingerprintWindows = 32;

/** Shared shape of the collection sweeps: one job per (site, load),
 *  one row of {site, load, backoffs, features...} each. */
SweepSpec
collectionSpec(const char *name, std::uint32_t sites,
               std::uint32_t loads, sim::Tick duration,
               std::uint64_t base_seed, bool large_caches = false)
{
    SweepSpec spec;
    spec.name = name;
    spec.description = "Per-(site, load) back-off traces reduced to "
                       "the 39-feature fingerprint vector";
    spec.base_seed = base_seed;
    spec.axes = {{"site", iota(sites)}, {"load", iota(loads)}};
    spec.columns = {"site", "load", "backoffs"};
    for (std::uint32_t f = 0; f < kFingerprintWindows + 7; ++f)
        spec.columns.push_back("f" + std::to_string(f));
    spec.job = [sites, loads, duration, base_seed,
                large_caches](const Job &job) -> JobRows {
        core::FingerprintSpec fp;
        fp.sites = sites;
        fp.loads_per_site = loads;
        fp.duration = duration;
        fp.large_caches = large_caches;
        // The website trace is a function of (site, load, seed): keep
        // the base seed so loads are the paper's repeated page
        // visits, not fresh sites.
        fp.seed = base_seed;
        const auto sample = core::collectOneFingerprint(
            fp, static_cast<std::uint32_t>(job.param("site")),
            static_cast<std::uint32_t>(job.param("load")));
        const auto features = attack::extractFeatures(
            sample.backoff_times, sample.duration,
            kFingerprintWindows);
        std::vector<double> row = {
            job.param("site"), job.param("load"),
            static_cast<double>(sample.backoff_times.size())};
        row.insert(row.end(), features.values.begin(),
                   features.values.end());
        return {std::move(row)};
    };
    return spec;
}

/** The Fig. 10 / Table 2 collection sizes: both classifier studies
 *  train on the same dataset shape at every scale. */
SweepSpec
classifierCollection(const char *name, const RunOptions &opts)
{
    const Scale scale = scaleOf(opts);
    std::uint32_t sites = 12, loads = 12;
    sim::Tick duration = 2 * sim::kMs;
    if (scale == Scale::kSmoke) {
        sites = 4;
        loads = 4;
        duration = sim::kMs;
    } else if (scale == Scale::kFull) {
        sites = 40;
        loads = 50;
        duration = 4 * sim::kMs;
    }
    return collectionSpec(name, sites, loads, duration,
                          seedOr(opts, 2025));
}

/** Rebuild the ML dataset from merged collection rows. */
ml::Dataset
datasetFromRows(const SweepResult &result)
{
    ml::Dataset data;
    for (const auto &row : result.rows)
        data.add(std::vector<double>(row.begin() + 3, row.end()),
                 static_cast<int>(row[0]));
    return data;
}

// ---------------------------------------------------- Figs. 9 and 10

Figure
fingerprintFigure()
{
    Figure fig;
    fig.name = "fingerprint";
    fig.title = "Website fingerprinting via PRAC back-off traces";
    fig.paper_ref = "Figs. 9 & 10, Table 2";
    fig.csv_name = "fig_website_fingerprint.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        std::uint32_t sites = 8, loads = 10;
        sim::Tick duration = 2 * sim::kMs;
        if (scale == Scale::kSmoke) {
            sites = 4;
            loads = 6;
        } else if (scale == Scale::kFull) {
            sites = 40;
            loads = 50;
            duration = 4 * sim::kMs;
        }
        return collectionSpec("fingerprint", sites, loads, duration,
                              seedOr(opts, 2025));
    };
    fig.summarize = [](const SweepResult &result) {
        // Rebuild the dataset from the merged rows and train the
        // paper's classifier on held-out loads (Fig. 10).
        const auto data = datasetFromRows(result);
        const auto split = ml::stratifiedSplit(data, 0.25, 99);
        ml::RandomForest model;
        model.fit(split.train);
        const auto cm = ml::evaluate(model, split.test);
        core::Table table({"metric", "value"});
        table.addRow({"held-out accuracy", core::fmt(cm.accuracy(), 3)});
        table.addRow({"chance", core::fmt(1.0 / data.n_classes, 3)});
        table.addRow({"macro F1", core::fmt(cm.macroF1(), 3)});
        return table.str() +
               "\npaper reference: ~90% accuracy over 40 sites at "
               "NRH = 64 (Fig. 10).\n";
    };
    return fig;
}

// ------------------------------------------------------------ Fig. 9

Figure
stripsFigure()
{
    Figure fig;
    fig.name = "strips";
    fig.title = "Back-off strips of repeated website loads "
                "(wikipedia / reddit / youtube)";
    fig.paper_ref = "Fig. 9";
    fig.csv_name = "fig_fingerprint_strips.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        // Site indices of wikipedia (34), reddit (24), youtube (38).
        spec = collectionSpec(
            "strips", 40, 2,
            scale == Scale::kFull ? 4 * sim::kMs : 2 * sim::kMs,
            seedOr(opts, 2025));
        spec.axes[0].values = scale == Scale::kSmoke
                                  ? std::vector<double>{34, 24}
                                  : std::vector<double>{34, 24, 38};
        spec.description = "Two loads each of selected sites, as "
                           "per-window back-off strips";
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        std::string out;
        for (const auto &row : result.rows) {
            // The first 24 windowed features are the strip cells.
            std::vector<double> strip(row.begin() + 3,
                                      row.begin() + 3 + 24);
            const auto &name = workload::websiteNames()[
                static_cast<std::size_t>(row[0])];
            out += name + " load " + core::fmt(row[1], 0) + "  [" +
                   core::sparkline(strip) + "]  (" +
                   core::fmt(row[2], 0) + " back-offs)\n";
        }
        return out +
               "\nEach cell is one execution window; darker = more "
               "back-offs. Loads of one site match; sites differ; "
               "early windows look alike (browser startup).\n";
    };
    return fig;
}

// ----------------------------------------------------------- Fig. 10

Figure
classifiersFigure()
{
    Figure fig;
    fig.name = "classifiers";
    fig.title = "Accuracy of the eight classical ML models on "
                "website fingerprints";
    fig.paper_ref = "Fig. 10";
    fig.csv_name = "fig_classifier_accuracy.csv";
    fig.make = [](const RunOptions &opts) {
        return classifierCollection("classifiers", opts);
    };
    fig.summarize = [](const SweepResult &result) {
        const auto data = datasetFromRows(result);
        const auto split = ml::stratifiedSplit(data, 0.25, 77);
        core::Table table({"model", "test accuracy"});
        for (const auto &model : ml::makeFig10Models()) {
            model->fit(split.train);
            const auto cm = ml::evaluate(*model, split.test);
            table.addRow({model->name(), core::fmt(cm.accuracy(), 3)});
        }
        table.addRow({"(chance)", core::fmt(1.0 / data.n_classes, 3)});
        return table.str() +
               "\npaper reference: DT 0.75, RF 0.48, GB 0.47, kNN "
               "0.30, SVM 0.11, LR 0.08, Ada 0.08, Perc 0.06 "
               "(chance 0.025).\n";
    };
    return fig;
}

// ----------------------------------------------------------- Table 2

Figure
fingerprintCvFigure()
{
    Figure fig;
    fig.name = "fingerprint-cv";
    fig.title = "k-fold cross-validation of the decision-tree "
                "fingerprint classifier";
    fig.paper_ref = "Table 2";
    fig.csv_name = "tab_fingerprint_cv.csv";
    fig.make = [](const RunOptions &opts) {
        return classifierCollection("fingerprint-cv", opts);
    };
    fig.summarize = [](const SweepResult &result) {
        const auto data = datasetFromRows(result);
        // Fold count follows the collection size: the paper's 10-fold
        // needs 50 loads per site; smaller scales keep folds <= loads.
        double max_load = 0;
        for (const auto &row : result.rows)
            max_load = row[1] > max_load ? row[1] : max_load;
        const auto loads = static_cast<std::uint32_t>(max_load) + 1;
        const std::uint32_t folds = loads >= 50 ? 10
                                    : loads >= 10 ? 5
                                                  : 3;
        const auto cv = ml::crossValidate(
            [] { return std::make_unique<ml::DecisionTree>(); }, data,
            folds);
        core::Table table({"metric", "mean (%)", "stddev"});
        table.addRow({"F1", core::fmt(cv.f1.mean * 100.0, 1),
                      core::fmt(cv.f1.stddev * 100.0, 1)});
        table.addRow({"Precision",
                      core::fmt(cv.precision.mean * 100.0, 1),
                      core::fmt(cv.precision.stddev * 100.0, 1)});
        table.addRow({"Recall", core::fmt(cv.recall.mean * 100.0, 1),
                      core::fmt(cv.recall.stddev * 100.0, 1)});
        table.addRow({"Accuracy",
                      core::fmt(cv.accuracy.mean * 100.0, 1),
                      core::fmt(cv.accuracy.stddev * 100.0, 1)});
        return table.str() +
               "\npaper reference (10-fold): F1 71.8 (4.2), precision "
               "74.1 (4.4), recall 72.4 (4.2).\n";
    };
    return fig;
}

// ------------------------------------------------------------- §10.3

Figure
cachePrefetchFigure()
{
    Figure fig;
    fig.name = "cache-prefetch";
    fig.title = "Sensitivity to larger caches and Best-Offset "
                "prefetching";
    fig.paper_ref = "§10.3";
    fig.csv_name = "tab_cache_prefetch.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "cache-prefetch";
        spec.description = "Channel capacity and fingerprint accuracy "
                           "with the 256 kB L2 + 6 MB LLC hierarchy";
        spec.base_seed = seedOr(opts, 1);
        // Scenarios: 0 = PRAC channel, 1 = RFM channel,
        // 2 = fingerprint accuracy (default/full only — the whole
        // collection runs inside one job).
        spec.axes = {{"scenario", scale == Scale::kSmoke
                                      ? std::vector<double>{0, 1}
                                      : std::vector<double>{0, 1, 2}},
                     {"large_caches", {0, 1}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        const std::uint32_t fp_sites = scale == Scale::kFull ? 40 : 6;
        const std::uint32_t fp_loads = scale == Scale::kFull ? 50 : 6;
        const sim::Tick fp_duration = 2 * sim::kMs;
        const std::uint64_t base_seed = spec.base_seed;
        spec.columns = {"scenario", "large_caches", "error", "value"};
        spec.job = [bytes, fp_sites, fp_loads, fp_duration,
                    base_seed](const Job &job) -> JobRows {
            const bool large = job.param("large_caches") > 0.5;
            const auto scenario =
                static_cast<int>(job.param("scenario"));
            if (scenario < 2) {
                core::ChannelRunSpec run;
                run.kind = scenario == 0 ? ChannelKind::kPrac
                                         : ChannelKind::kRfm;
                run.message_bytes = bytes;
                run.large_caches = large;
                run.seed = job.seed;
                // A background app exercises the caches/prefetcher.
                run.background = {workload::appsWithIntensity(
                    workload::Intensity::kMedium)[1]};
                const auto sweep = core::runPatternSweep(run);
                return {{job.param("scenario"),
                         job.param("large_caches"),
                         sweep.error_probability, sweep.capacity}};
            }
            core::FingerprintSpec fp;
            fp.sites = fp_sites;
            fp.loads_per_site = fp_loads;
            fp.duration = fp_duration;
            fp.large_caches = large;
            // Website traces are a function of (site, load, seed):
            // the base seed keeps the base/large datasets paired.
            fp.seed = base_seed;
            const auto data = core::fingerprintDataset(
                core::collectFingerprints(fp));
            const auto split = ml::stratifiedSplit(data, 0.25, 77);
            ml::DecisionTree dt;
            dt.fit(split.train);
            const double acc = ml::evaluate(dt, split.test).accuracy();
            return {{job.param("scenario"), job.param("large_caches"),
                     1.0 - acc, acc}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const char *names[] = {"PRAC channel (Kbps)",
                               "RFM channel (Kbps)",
                               "fingerprint accuracy"};
        core::Table table({"attack", "baseline",
                           "large caches + BO", "change"});
        for (int scenario = 0; scenario < 3; ++scenario) {
            double base = 0, large = 0;
            bool seen = false;
            for (const auto &row : result.rows) {
                if (static_cast<int>(row[0]) != scenario)
                    continue;
                seen = true;
                (row[1] > 0.5 ? large : base) = row[3];
            }
            if (!seen)
                continue;
            const bool kbps = scenario < 2;
            const double shown_base = kbps ? base / 1000.0 : base;
            const double shown_large = kbps ? large / 1000.0 : large;
            table.addRow(
                {names[scenario], core::fmt(shown_base, kbps ? 1 : 3),
                 core::fmt(shown_large, kbps ? 1 : 3),
                 base > 0 ? core::fmt((large / base - 1.0) * 100.0, 1)
                                + "%"
                          : "-"});
        }
        return table.str() +
               "\npaper reference: 36.7 Kbps (-5.8%), 47.7 Kbps "
               "(-2.1%), accuracy 71.8% (-4.2%) — larger caches and "
               "prefetching do NOT prevent LeakyHammer.\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
fingerprintFigures()
{
    std::vector<Figure> figures;
    figures.push_back(fingerprintFigure());
    figures.push_back(stripsFigure());
    figures.push_back(classifiersFigure());
    figures.push_back(fingerprintCvFigure());
    figures.push_back(cachePrefetchFigure());
    return figures;
}

} // namespace leaky::runner
