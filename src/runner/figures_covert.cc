/**
 * @file
 * Covert-channel figure family: the latency-observability studies
 * (Figs. 2, 11, 12), the channel demonstrations and capacity sweeps
 * (Figs. 3-8), and the §6.3 multibit encodings. Every entry is a
 * deterministic SweepSpec over core/experiments.hh runners.
 */

#include "runner/figures_internal.hh"

#include <cmath>
#include <string>
#include <utility>

#include "attack/message.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "stats/channel_metrics.hh"
#include "workload/synthetic.hh"

namespace leaky::runner {

namespace {

using attack::ChannelKind;

// ------------------------------------------------------------ Fig. 2

Figure
latencyFigure()
{
    Figure fig;
    fig.name = "latency";
    fig.title = "Latency bands of consecutive attacker requests (PRAC)";
    fig.paper_ref = "Fig. 2";
    fig.csv_name = "fig_latency_bands.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "latency";
        spec.description = "Listing-1 probe latency classes per "
                           "rfms-per-backoff setting";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"rfms_per_backoff",
                      scale == Scale::kSmoke
                          ? std::vector<double>{4}
                          : std::vector<double>{1, 2, 4, 8}}};
        // Two alternating rows split the activations, so the probe
        // needs > 2 x NBO iterations before the first back-off shows.
        const std::uint32_t iterations =
            scale == Scale::kSmoke ? 300 : 512;
        spec.columns = {"rfms_per_backoff",  "iterations",
                        "mean_conflict_ns",  "mean_refresh_ns",
                        "mean_backoff_ns",   "backoffs",
                        "refreshes"};
        spec.job = [iterations](const Job &job) -> JobRows {
            const auto rfms = static_cast<std::uint32_t>(
                job.param("rfms_per_backoff"));
            const auto trace = core::runLatencyTrace(iterations, rfms);
            return {{static_cast<double>(rfms),
                     static_cast<double>(iterations),
                     trace.mean_conflict_latency_ns,
                     trace.mean_refresh_latency_ns,
                     trace.mean_backoff_latency_ns,
                     static_cast<double>(trace.backoffs),
                     static_cast<double>(trace.refreshes)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"RFMs/back-off", "conflict (ns)",
                           "refresh (ns)", "back-off (ns)"});
        for (const auto &row : result.rows)
            table.addRow({core::fmt(row[0], 0), core::fmt(row[2], 0),
                          core::fmt(row[3], 0), core::fmt(row[4], 0)});
        return table.str() +
               "\nThe three separable bands are what makes preventive "
               "actions user-space observable (paper Fig. 2).\n";
    };
    return fig;
}

// ------------------------------------------- Fig. 2 (back-off period)

Figure
backoffPeriodFigure()
{
    Figure fig;
    fig.name = "backoff-period";
    fig.title = "Back-off periodicity under continuous hammering "
                "(2 x NBO - 1 requests)";
    fig.paper_ref = "Fig. 2 (x-axis)";
    fig.csv_name = "fig_backoff_period.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "backoff-period";
        spec.description = "Request indices of consecutive back-offs "
                           "seen by the Listing-1 probe";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"iterations",
                      byScale(scale, std::vector<double>{560},
                              std::vector<double>{560, 1120},
                              std::vector<double>{560, 1120, 2240})}};
        spec.columns = {"iterations", "backoff_ordinal", "position",
                        "delta"};
        spec.job = [](const Job &job) -> JobRows {
            const auto iterations =
                static_cast<std::uint32_t>(job.param("iterations"));
            const auto trace = core::runLatencyTrace(iterations);
            JobRows rows;
            double previous = -1;
            for (std::size_t i = 0; i < trace.samples.size(); ++i) {
                if (trace.classifier.classify(
                        trace.samples[i].latency) !=
                    attack::LatencyClass::kBackoff)
                    continue;
                const auto position = static_cast<double>(i);
                rows.push_back({job.param("iterations"),
                                static_cast<double>(rows.size()),
                                position,
                                previous < 0 ? 0
                                             : position - previous});
                previous = position;
            }
            return rows;
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        double sum = 0;
        std::size_t count = 0;
        for (const auto &row : result.rows) {
            if (row[1] > 0) { // Ordinal 0 has no predecessor.
                sum += row[3];
                count += 1;
            }
        }
        core::Table table({"metric", "value"});
        table.addRow({"back-offs observed",
                      std::to_string(result.rows.size())});
        table.addRow({"mean period (requests)",
                      count ? core::fmt(sum / count, 1) : "-"});
        table.addRow({"expected (2 x NBO - 1)", "255"});
        return table.str() +
               "\nWith two alternating probe rows each back-off "
               "recurs every 2 x NBO - 1 requests (paper Fig. 2).\n";
    };
    return fig;
}

// ------------------------------------------- Figs. 3 and 6 (messages)

Figure
messageFigure(ChannelKind kind)
{
    const bool prac = kind == ChannelKind::kPrac;
    Figure fig;
    fig.name = prac ? "message-prac" : "message-rfm";
    fig.title = std::string("40-bit \"MICRO\" transmission over the ") +
                (prac ? "PRAC" : "RFM") + " covert channel";
    fig.paper_ref = prac ? "Fig. 3" : "Fig. 6";
    fig.csv_name = prac ? "fig_message_prac.csv" : "fig_message_rfm.csv";
    fig.make = [kind](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        // Smoke transmits one character; the paper message is "MICRO".
        const std::string message =
            scale == Scale::kSmoke ? "M" : "MICRO";
        SweepSpec spec;
        spec.name = "message";
        spec.description = "Per-window sent bit, receiver detections, "
                           "and decoded bit";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"message_bits",
                      {static_cast<double>(message.size() * 8)}}};
        spec.columns = {"window", "sent", "detections", "decoded"};
        spec.job = [kind, message](const Job &) -> JobRows {
            const auto demo = core::runMessageDemo(kind, message);
            JobRows rows;
            for (std::size_t i = 0; i < demo.sent_bits.size(); ++i)
                rows.push_back(
                    {static_cast<double>(i),
                     demo.sent_bits[i] ? 1.0 : 0.0,
                     static_cast<double>(demo.detections[i]),
                     demo.received_bits[i] ? 1.0 : 0.0});
            return rows;
        };
        return spec;
    };
    fig.summarize = [prac](const SweepResult &result) {
        std::vector<bool> sent, decoded;
        std::size_t errors = 0;
        for (const auto &row : result.rows) {
            sent.push_back(row[1] != 0);
            decoded.push_back(row[3] != 0);
            errors += row[1] != row[3] ? 1 : 0;
        }
        core::Table table({"metric", "value"});
        table.addRow({"windows", std::to_string(result.rows.size())});
        table.addRow({"bit errors", std::to_string(errors)});
        table.addRow({"sent text", attack::stringFromBits(sent)});
        table.addRow({"decoded text", attack::stringFromBits(decoded)});
        return table.str() +
               (prac ? "\nEach logic-1 window contains exactly one "
                       "back-off; logic-0 windows none (paper Fig. 3)."
                       "\n"
                     : "\nLogic-1 windows show >= Trecv RFM-latency "
                       "events; logic-0 windows fewer (paper Fig. 6)."
                       "\n");
    };
    return fig;
}

// ----------------------------------- Figs. 3 & 6 lower panels (§6/7.3)

Figure
bitrateFigure()
{
    Figure fig;
    fig.name = "bitrate";
    fig.title = "Noise-free raw bit rate over the four message "
                "patterns (PRAC and RFM channels)";
    fig.paper_ref = "§6.3 & §7.3";
    fig.csv_name = "fig_raw_bitrate.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "bitrate";
        spec.description = "Per-pattern channel metrics without noise "
                           "or background load";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"channel", {0, 1}}, {"pattern", {0, 1, 2, 3}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 25, 100);
        spec.columns = {"channel", "pattern", "raw_bit_rate",
                        "error_probability", "capacity", "backoffs",
                        "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = job.param("channel") < 0.5 ? ChannelKind::kPrac
                                                  : ChannelKind::kRfm;
            run.pattern = static_cast<attack::MessagePattern>(
                static_cast<int>(job.param("pattern")));
            run.message_bytes = bytes;
            run.seed = job.seed;
            const auto result = core::runChannel(run);
            return {{job.param("channel"), job.param("pattern"),
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto raw = groupMean(result, {0}, 2);
        const auto error = groupMean(result, {0}, 3);
        const auto capacity = groupMean(result, {0}, 4);
        core::Table table({"channel", "raw (Kbps)", "error prob",
                           "capacity (Kbps)"});
        for (const auto &[key, rate] : raw)
            table.addRow({key[0] < 0.5 ? "PRAC" : "RFM",
                          core::fmt(rate / 1000.0, 1),
                          core::fmt(error.at(key), 3),
                          core::fmt(capacity.at(key) / 1000.0, 1)});
        return table.str() +
               "\npaper reference: raw 39.0 Kbps (PRAC, §6.3) and "
               "48.7 Kbps (RFM, §7.3), averaged over the four "
               "patterns.\n";
    };
    return fig;
}

// ----------------------------------------------------- Figs. 4 and 7

Figure
capacityFigure()
{
    Figure fig;
    fig.name = "capacity";
    fig.title = "Covert-channel capacity vs noise intensity "
                "(PRAC and RFM channels)";
    fig.paper_ref = "Figs. 4 & 7";
    fig.csv_name = "fig_capacity_vs_noise.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "capacity";
        spec.description = "Eq.-2 noise sweep of both channels over "
                           "the four message patterns";
        spec.base_seed = seedOr(opts, 1);
        std::vector<double> intensities;
        switch (scale) {
          case Scale::kSmoke:
            intensities = {1, 50, 100};
            break;
          case Scale::kDefault:
            intensities = {1, 25, 50, 75, 88, 100};
            break;
          case Scale::kFull:
            intensities = {1,  10, 20, 30, 40, 50,
                           60, 70, 80, 88, 95, 100};
            break;
        }
        spec.axes = {{"channel", {0, 1}},
                     {"intensity", std::move(intensities)},
                     {"pattern", {0, 1, 2, 3}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        spec.columns = {"channel",  "intensity",
                        "pattern",  "raw_bit_rate",
                        "error_probability", "capacity",
                        "backoffs", "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = job.param("channel") < 0.5 ? ChannelKind::kPrac
                                                  : ChannelKind::kRfm;
            run.pattern = static_cast<attack::MessagePattern>(
                static_cast<int>(job.param("pattern")));
            run.message_bytes = bytes;
            run.seed = job.seed;
            // Eq. 2: sleep in [0.2 us, 2 us] maps to intensity
            // [100 %, 1 %].
            run.noise_sleep = stats::sleepForIntensity(
                job.param("intensity"), 200'000, 2'000'000);
            const auto result = core::runChannel(run);
            return {{job.param("channel"), job.param("intensity"),
                     job.param("pattern"), result.raw_bit_rate,
                     result.symbol_error, result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        // Average the four patterns per (channel, intensity), as the
        // paper does (§6.3).
        const auto capacity = groupMean(result, {0, 1}, 5);
        const auto error = groupMean(result, {0, 1}, 4);
        core::Table table({"channel", "intensity (%)", "error prob",
                           "capacity (Kbps)"});
        for (const auto &[key, cap] : capacity)
            table.addRow({key[0] < 0.5 ? "PRAC" : "RFM",
                          core::fmt(key[1], 0),
                          core::fmt(error.at(key), 3),
                          core::fmt(cap / 1000.0, 1)});
        return table.str() +
               "\npaper reference: PRAC 28.8 Kbps @1% noise, RFM 46.3 "
               "Kbps @1%; RFM degrades faster with noise.\n";
    };
    return fig;
}

// ----------------------------------------------------- Figs. 5 and 8

Figure
appNoiseFigure()
{
    Figure fig;
    fig.name = "appnoise";
    fig.title = "Covert channels vs concurrent SPEC-like application "
                "noise (PRAC and RFM)";
    fig.paper_ref = "Figs. 5 & 8";
    fig.csv_name = "fig_capacity_vs_appnoise.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "appnoise";
        spec.description = "Channel metrics with one concurrent "
                           "low/medium/high-RBMPKI application";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"channel", {0, 1}}, {"app_intensity", {0, 1, 2}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        spec.columns = {"channel", "app_intensity", "raw_bit_rate",
                        "error_probability", "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = job.param("channel") < 0.5 ? ChannelKind::kPrac
                                                  : ChannelKind::kRfm;
            run.message_bytes = bytes;
            run.seed = job.seed;
            // One concurrent application per run (paper §6.3); the
            // first of the class is a stable, documented selection.
            const auto level = static_cast<workload::Intensity>(
                static_cast<int>(job.param("app_intensity")));
            run.background = {workload::appsWithIntensity(level)[0]};
            const auto sweep = core::runPatternSweep(run);
            return {{job.param("channel"), job.param("app_intensity"),
                     sweep.raw_bit_rate, sweep.error_probability,
                     sweep.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"channel", "intensity", "error prob",
                           "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({row[0] < 0.5 ? "PRAC" : "RFM",
                          workload::intensityName(
                              static_cast<workload::Intensity>(
                                  static_cast<int>(row[1]))),
                          core::fmt(row[3], 3),
                          core::fmt(row[4] / 1000.0, 1)});
        return table.str() +
               "\npaper reference: PRAC 36.0/32.2/31.2 Kbps and RFM "
               "48.1/44.4/43.6 Kbps for L/M/H application noise.\n";
    };
    return fig;
}

// --------------------------------------------------- §6.3 (multibit)

Figure
multibitFigure()
{
    Figure fig;
    fig.name = "multibit";
    fig.title = "Binary, ternary, and quaternary PRAC channel "
                "encodings";
    fig.paper_ref = "§6.3 (multibit)";
    fig.csv_name = "tab_multibit_encodings.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "multibit";
        spec.description = "Symbol-level encodings: the sender's pace "
                           "encodes log2(levels) bits per back-off";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"levels", {2, 3, 4}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 16, 32);
        spec.columns = {"levels", "bits_per_symbol", "raw_bit_rate",
                        "symbol_error", "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = ChannelKind::kPrac;
            run.levels =
                static_cast<std::uint32_t>(job.param("levels"));
            run.message_bytes = bytes;
            // A random payload exercises all symbol values (§6.3).
            run.pattern = attack::MessagePattern::kRandom;
            run.seed = job.seed;
            const auto result = core::runChannel(run);
            return {{job.param("levels"),
                     attack::bitsPerSymbol(run.levels),
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const char *names[] = {"binary", "ternary", "quaternary"};
        core::Table table({"encoding", "bits/symbol", "raw (Kbps)",
                           "sym error", "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({names[static_cast<int>(row[0]) - 2],
                          core::fmt(row[1], 2),
                          core::fmt(row[2] / 1000.0, 1),
                          core::fmt(row[3], 3),
                          core::fmt(row[4] / 1000.0, 1)});
        return table.str() +
               "\npaper reference: raw 39.0 / 61.7 / 76.8 Kbps; "
               "higher rates trade off noise margin (errors 0.00 / "
               "0.04 / 0.29).\n";
    };
    return fig;
}

// ----------------------------------------------------------- Fig. 11

Figure
rfmCountFigure()
{
    Figure fig;
    fig.name = "rfm-count";
    fig.title = "PRAC channel vs recovery RFMs per back-off";
    fig.paper_ref = "Fig. 11";
    fig.csv_name = "fig_rfm_count_sensitivity.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "rfm-count";
        spec.description = "Fewer recovery RFMs shrink the back-off "
                           "latency toward the refresh band";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"rfms_per_backoff", {4, 2, 1}},
                     {"intensity",
                      byScale(scale, std::vector<double>{1, 100},
                              std::vector<double>{1, 50, 100},
                              std::vector<double>{1, 25, 50, 75,
                                                  100})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 16, 50);
        spec.columns = {"rfms_per_backoff", "intensity",
                        "error_probability", "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = ChannelKind::kPrac;
            run.rfms_per_backoff = static_cast<std::uint32_t>(
                job.param("rfms_per_backoff"));
            run.filter_refresh = run.rfms_per_backoff < 4;
            run.noise_sleep = stats::sleepForIntensity(
                job.param("intensity"), 200'000, 2'000'000);
            run.message_bytes = bytes;
            run.seed = job.seed;
            const auto sweep = core::runPatternSweep(run);
            return {{job.param("rfms_per_backoff"),
                     job.param("intensity"), sweep.error_probability,
                     sweep.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"RFMs/back-off", "intensity (%)",
                           "error prob", "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({core::fmt(row[0], 0), core::fmt(row[1], 0),
                          core::fmt(row[2], 3),
                          core::fmt(row[3] / 1000.0, 1)});
        return table.str() +
               "\npaper reference: 2-RFM 0.04 error / 29.95 Kbps at "
               "the lowest noise; 1-RFM worse everywhere (overlaps "
               "the refresh band).\n";
    };
    return fig;
}

// ----------------------------------------------------------- Fig. 12

Figure
actionLatencyFigure()
{
    Figure fig;
    fig.name = "action-latency";
    fig.title = "Channel capacity vs preventive-action latency";
    fig.paper_ref = "Fig. 12";
    fig.csv_name = "fig_capacity_vs_action_latency.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "action-latency";
        spec.description = "Single-RFM back-off with its latency "
                           "swept from 0 to 250 ns";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"latency_ns",
                      byScale(scale, std::vector<double>{0, 96, 250},
                              std::vector<double>{0, 5, 10, 40, 96,
                                                  192, 250},
                              std::vector<double>{0, 2, 5, 10, 20, 40,
                                                  96, 150, 192,
                                                  250})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 16, 50);
        spec.columns = {"latency_ns", "error_probability", "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto ns =
                static_cast<std::uint64_t>(job.param("latency_ns"));
            core::ChannelRunSpec run;
            run.kind = ChannelKind::kPrac;
            run.rfms_per_backoff = 1;
            run.backoff_rfm_latency = ns ? ns * 1000 : 1;
            // Model the preventive action as immediately following
            // the triggering activation (paper Fig. 12 abstraction).
            run.aboact_override = 1'000;
            run.filter_refresh = true;
            // Detection threshold just above the conflict band: the
            // action partially overlaps the access's own precharge,
            // so the observed delta is sub-linear in L.
            run.backoff_min_override = 105'000 + ns * 150;
            run.message_bytes = bytes;
            run.seed = job.seed;
            const auto sweep = core::runPatternSweep(run);
            return {{job.param("latency_ns"), sweep.error_probability,
                     sweep.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table(
            {"latency (ns)", "error prob", "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({core::fmt(row[0], 0), core::fmt(row[1], 3),
                          core::fmt(row[2] / 1000.0, 1)});
        return table.str() +
               "\nvertical reference lines: BR=1 at 96 ns, BR=2 at "
               "192 ns (minimum refresh-based preventive action). "
               "Latencies at or above them never eliminate the "
               "channel (paper Fig. 12).\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
covertFigures()
{
    std::vector<Figure> figures;
    figures.push_back(latencyFigure());
    figures.push_back(backoffPeriodFigure());
    figures.push_back(messageFigure(ChannelKind::kPrac));
    figures.push_back(messageFigure(ChannelKind::kRfm));
    figures.push_back(bitrateFigure());
    figures.push_back(capacityFigure());
    figures.push_back(appNoiseFigure());
    figures.push_back(multibitFigure());
    figures.push_back(rfmCountFigure());
    figures.push_back(actionLatencyFigure());
    return figures;
}

} // namespace leaky::runner
