#include "runner/figures.hh"

#include <filesystem>
#include <iterator>

#include "runner/figures_internal.hh"

namespace leaky::runner {

Scale
scaleOf(const RunOptions &opts)
{
    if (opts.full)
        return Scale::kFull;
    return opts.smoke ? Scale::kSmoke : Scale::kDefault;
}

std::uint64_t
seedOr(const RunOptions &opts, std::uint64_t fallback)
{
    return opts.seed ? opts.seed : fallback;
}

std::vector<double>
iota(std::uint32_t count)
{
    std::vector<double> values;
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(i);
    return values;
}

std::map<std::vector<double>, double>
groupMean(const SweepResult &result, const std::vector<std::size_t> &keys,
          std::size_t value)
{
    std::map<std::vector<double>, std::pair<double, std::size_t>> acc;
    for (const auto &row : result.rows) {
        std::vector<double> key;
        for (auto k : keys)
            key.push_back(row[k]);
        auto &cell = acc[key];
        cell.first += row[value];
        cell.second += 1;
    }
    std::map<std::vector<double>, double> means;
    for (const auto &[key, cell] : acc)
        means[key] = cell.first / static_cast<double>(cell.second);
    return means;
}

const std::vector<Figure> &
figures()
{
    static const std::vector<Figure> registry = [] {
        std::vector<Figure> all;
        for (auto family_of : {covertFigures, fingerprintFigures,
                               countermeasureFigures, trackerFigures,
                               scalingFigures, fuzzFigures}) {
            auto family = family_of();
            all.insert(all.end(),
                       std::make_move_iterator(family.begin()),
                       std::make_move_iterator(family.end()));
        }
        return all;
    }();
    return registry;
}

const Figure *
findFigure(const std::string &name)
{
    for (const auto &figure : figures())
        if (figure.name == name)
            return &figure;
    return nullptr;
}

FigureOutcome
reproduceFigure(const Figure &figure, const RunOptions &opts)
{
    const SweepSpec spec = figure.make(opts);
    FigureOutcome outcome;
    outcome.sweep = runSweep(spec, opts.threads);
    if (!opts.out_dir.empty() && opts.out_dir != ".")
        std::filesystem::create_directories(opts.out_dir);
    outcome.csv_path =
        (std::filesystem::path(opts.out_dir) / figure.csv_name)
            .string();
    writeFile(outcome.csv_path, toCsv(outcome.sweep));
    if (figure.summarize)
        outcome.summary = figure.summarize(outcome.sweep);
    return outcome;
}

std::string
goldenCsv(const Figure &figure, unsigned threads)
{
    RunOptions opts;
    opts.threads = threads;
    opts.smoke = true;
    const SweepSpec spec = figure.make(opts);
    return toCsv(runSweep(spec, threads));
}

std::string
goldenPath(const std::string &golden_dir, const Figure &figure)
{
    return (std::filesystem::path(golden_dir) / (figure.name + ".csv"))
        .string();
}

} // namespace leaky::runner
