#include "runner/figures.hh"

#include <filesystem>
#include <map>
#include <utility>

#include "attack/fingerprint.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "ml/dataset.hh"
#include "ml/ensemble.hh"
#include "ml/metrics.hh"
#include "stats/channel_metrics.hh"
#include "workload/synthetic.hh"

namespace leaky::runner {

namespace {

using attack::ChannelKind;
using defense::DefenseKind;

enum class Scale { kSmoke, kDefault, kFull };

Scale
scaleOf(const RunOptions &opts)
{
    if (opts.full)
        return Scale::kFull;
    return opts.smoke ? Scale::kSmoke : Scale::kDefault;
}

std::uint64_t
seedOr(const RunOptions &opts, std::uint64_t fallback)
{
    return opts.seed ? opts.seed : fallback;
}

std::vector<double>
iota(std::uint32_t count)
{
    std::vector<double> values;
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(i);
    return values;
}

/** Mean of column @p value grouped by the tuple of @p keys columns. */
std::map<std::vector<double>, double>
groupMean(const SweepResult &result, const std::vector<std::size_t> &keys,
          std::size_t value)
{
    std::map<std::vector<double>, std::pair<double, std::size_t>> acc;
    for (const auto &row : result.rows) {
        std::vector<double> key;
        for (auto k : keys)
            key.push_back(row[k]);
        auto &cell = acc[key];
        cell.first += row[value];
        cell.second += 1;
    }
    std::map<std::vector<double>, double> means;
    for (const auto &[key, cell] : acc)
        means[key] = cell.first / static_cast<double>(cell.second);
    return means;
}

// ------------------------------------------------------------ Fig. 2

Figure
latencyFigure()
{
    Figure fig;
    fig.name = "latency";
    fig.title = "Latency bands of consecutive attacker requests (PRAC)";
    fig.paper_ref = "Fig. 2";
    fig.csv_name = "fig_latency_bands.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "latency";
        spec.description = "Listing-1 probe latency classes per "
                           "rfms-per-backoff setting";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"rfms_per_backoff",
                      scale == Scale::kSmoke
                          ? std::vector<double>{4}
                          : std::vector<double>{1, 2, 4, 8}}};
        // Two alternating rows split the activations, so the probe
        // needs > 2 x NBO iterations before the first back-off shows.
        const std::uint32_t iterations =
            scale == Scale::kSmoke ? 300 : 512;
        spec.columns = {"rfms_per_backoff",  "iterations",
                        "mean_conflict_ns",  "mean_refresh_ns",
                        "mean_backoff_ns",   "backoffs",
                        "refreshes"};
        spec.job = [iterations](const Job &job) -> JobRows {
            const auto rfms = static_cast<std::uint32_t>(
                job.param("rfms_per_backoff"));
            const auto trace = core::runLatencyTrace(iterations, rfms);
            return {{static_cast<double>(rfms),
                     static_cast<double>(iterations),
                     trace.mean_conflict_latency_ns,
                     trace.mean_refresh_latency_ns,
                     trace.mean_backoff_latency_ns,
                     static_cast<double>(trace.backoffs),
                     static_cast<double>(trace.refreshes)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"RFMs/back-off", "conflict (ns)",
                           "refresh (ns)", "back-off (ns)"});
        for (const auto &row : result.rows)
            table.addRow({core::fmt(row[0], 0), core::fmt(row[2], 0),
                          core::fmt(row[3], 0), core::fmt(row[4], 0)});
        return table.str() +
               "\nThe three separable bands are what makes preventive "
               "actions user-space observable (paper Fig. 2).\n";
    };
    return fig;
}

// ----------------------------------------------------- Figs. 4 and 7

Figure
capacityFigure()
{
    Figure fig;
    fig.name = "capacity";
    fig.title = "Covert-channel capacity vs noise intensity "
                "(PRAC and RFM channels)";
    fig.paper_ref = "Figs. 4 & 7";
    fig.csv_name = "fig_capacity_vs_noise.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "capacity";
        spec.description = "Eq.-2 noise sweep of both channels over "
                           "the four message patterns";
        spec.base_seed = seedOr(opts, 1);
        std::vector<double> intensities;
        switch (scale) {
          case Scale::kSmoke:
            intensities = {1, 50, 100};
            break;
          case Scale::kDefault:
            intensities = {1, 25, 50, 75, 88, 100};
            break;
          case Scale::kFull:
            intensities = {1,  10, 20, 30, 40, 50,
                           60, 70, 80, 88, 95, 100};
            break;
        }
        spec.axes = {{"channel", {0, 1}},
                     {"intensity", std::move(intensities)},
                     {"pattern", {0, 1, 2, 3}}};
        const std::size_t bytes = scale == Scale::kFull ? 100
                                  : scale == Scale::kDefault ? 20
                                                             : 4;
        spec.columns = {"channel",  "intensity",
                        "pattern",  "raw_bit_rate",
                        "error_probability", "capacity",
                        "backoffs", "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::ChannelRunSpec run;
            run.kind = job.param("channel") < 0.5 ? ChannelKind::kPrac
                                                  : ChannelKind::kRfm;
            run.pattern = static_cast<attack::MessagePattern>(
                static_cast<int>(job.param("pattern")));
            run.message_bytes = bytes;
            run.seed = job.seed;
            // Eq. 2: sleep in [0.2 us, 2 us] maps to intensity
            // [100 %, 1 %].
            run.noise_sleep = stats::sleepForIntensity(
                job.param("intensity"), 200'000, 2'000'000);
            const auto result = core::runChannel(run);
            return {{job.param("channel"), job.param("intensity"),
                     job.param("pattern"), result.raw_bit_rate,
                     result.symbol_error, result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        // Average the four patterns per (channel, intensity), as the
        // paper does (§6.3).
        const auto capacity = groupMean(result, {0, 1}, 5);
        const auto error = groupMean(result, {0, 1}, 4);
        core::Table table({"channel", "intensity (%)", "error prob",
                           "capacity (Kbps)"});
        for (const auto &[key, cap] : capacity)
            table.addRow({key[0] < 0.5 ? "PRAC" : "RFM",
                          core::fmt(key[1], 0),
                          core::fmt(error.at(key), 3),
                          core::fmt(cap / 1000.0, 1)});
        return table.str() +
               "\npaper reference: PRAC 28.8 Kbps @1% noise, RFM 46.3 "
               "Kbps @1%; RFM degrades faster with noise.\n";
    };
    return fig;
}

// ------------------------------------------- capacity vs threshold

Figure
thresholdFigure()
{
    Figure fig;
    fig.name = "threshold";
    fig.title = "Covert-channel capacity vs RowHammer threshold "
                "across defenses";
    fig.paper_ref = "§6, §7, §11 (Figs. 11-13 axis)";
    fig.csv_name = "fig_capacity_vs_threshold.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "threshold";
        spec.description = "Channel capacity against each defense as "
                           "NRH (and the derived NBO/TRFM) scales";
        spec.base_seed = seedOr(opts, 1);
        std::vector<double> defenses;
        if (scale == Scale::kSmoke) {
            defenses = {
                static_cast<double>(DefenseKind::kPrac),
                static_cast<double>(DefenseKind::kPrfm),
                static_cast<double>(DefenseKind::kFrRfm)};
        } else {
            defenses = {
                static_cast<double>(DefenseKind::kPrac),
                static_cast<double>(DefenseKind::kPracRiac),
                static_cast<double>(DefenseKind::kPracBank),
                static_cast<double>(DefenseKind::kPrfm),
                static_cast<double>(DefenseKind::kFrRfm)};
        }
        spec.axes = {
            {"defense", std::move(defenses)},
            {"nrh", scale == Scale::kSmoke
                        ? std::vector<double>{256, 128, 64}
                        : std::vector<double>{1024, 512, 256, 128, 64}}};
        const std::size_t bytes = scale == Scale::kFull ? 100
                                  : scale == Scale::kDefault ? 20
                                                             : 4;
        spec.columns = {"defense", "nrh", "raw_bit_rate",
                        "error_probability", "capacity", "backoffs",
                        "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto kind =
                static_cast<DefenseKind>(static_cast<int>(
                    job.param("defense")));
            const auto nrh =
                static_cast<std::uint32_t>(job.param("nrh"));
            // Secure parameters derive from NRH via policy.hh; only
            // the RIAC variant consumes randomness.
            sys::SystemConfig cfg = sys::SystemConfig::paper(kind, nrh);
            cfg.defense.seed = job.seed;
            sys::System system(cfg);

            // The receiver listens for the defense's own preventive
            // action: back-offs for the PRAC family, RFM latency
            // events for the RFM family.
            const bool rfm_family = kind == DefenseKind::kPrfm ||
                                    kind == DefenseKind::kFrRfm;
            auto channel_cfg = attack::makeChannelConfig(
                system,
                rfm_family ? ChannelKind::kRfm : ChannelKind::kPrac);

            const auto bits = attack::patternBits(
                attack::MessagePattern::kCheckered0, bytes * 8);
            std::vector<std::uint8_t> symbols;
            for (bool b : bits)
                symbols.push_back(b ? 1 : 0);
            const auto result =
                attack::runCovertChannel(system, channel_cfg, symbols);
            return {{job.param("defense"), job.param("nrh"),
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"defense", "NRH", "error prob",
                           "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({defense::defenseName(static_cast<DefenseKind>(
                              static_cast<int>(row[0]))),
                          core::fmt(row[1], 0), core::fmt(row[3], 3),
                          core::fmt(row[4] / 1000.0, 1)});
        return table.str() +
               "\nFR-RFM's fixed grid carries no information "
               "(capacity ~0) at any threshold -- the paper's §11.1 "
               "countermeasure.\n";
    };
    return fig;
}

// ---------------------------------------------------- Figs. 9 and 10

constexpr std::uint32_t kFingerprintWindows = 32;

Figure
fingerprintFigure()
{
    Figure fig;
    fig.name = "fingerprint";
    fig.title = "Website fingerprinting via PRAC back-off traces";
    fig.paper_ref = "Figs. 9 & 10, Table 2";
    fig.csv_name = "fig_website_fingerprint.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        std::uint32_t sites = 8, loads = 10;
        sim::Tick duration = 2 * sim::kMs;
        if (scale == Scale::kSmoke) {
            sites = 4;
            loads = 6;
        } else if (scale == Scale::kFull) {
            sites = 40;
            loads = 50;
            duration = 4 * sim::kMs;
        }
        SweepSpec spec;
        spec.name = "fingerprint";
        spec.description = "Per-(site, load) back-off traces reduced "
                           "to the 39-feature fingerprint vector";
        spec.base_seed = seedOr(opts, 2025);
        spec.axes = {{"site", iota(sites)}, {"load", iota(loads)}};
        spec.columns = {"site", "load", "backoffs"};
        for (std::uint32_t f = 0; f < kFingerprintWindows + 7; ++f)
            spec.columns.push_back("f" + std::to_string(f));
        const std::uint64_t base_seed = spec.base_seed;
        spec.job = [sites, loads, duration,
                    base_seed](const Job &job) -> JobRows {
            core::FingerprintSpec fp;
            fp.sites = sites;
            fp.loads_per_site = loads;
            fp.duration = duration;
            // The website trace is a function of (site, load, seed):
            // keep the base seed so loads are the paper's repeated
            // page visits, not fresh sites.
            fp.seed = base_seed;
            const auto sample = core::collectOneFingerprint(
                fp, static_cast<std::uint32_t>(job.param("site")),
                static_cast<std::uint32_t>(job.param("load")));
            const auto features = attack::extractFeatures(
                sample.backoff_times, sample.duration,
                kFingerprintWindows);
            std::vector<double> row = {
                job.param("site"), job.param("load"),
                static_cast<double>(sample.backoff_times.size())};
            row.insert(row.end(), features.values.begin(),
                       features.values.end());
            return {std::move(row)};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        // Rebuild the dataset from the merged rows and train the
        // paper's classifier on held-out loads (Fig. 10).
        ml::Dataset data;
        for (const auto &row : result.rows)
            data.add(std::vector<double>(row.begin() + 3, row.end()),
                     static_cast<int>(row[0]));
        const auto split = ml::stratifiedSplit(data, 0.25, 99);
        ml::RandomForest model;
        model.fit(split.train);
        const auto cm = ml::evaluate(model, split.test);
        core::Table table({"metric", "value"});
        table.addRow({"held-out accuracy", core::fmt(cm.accuracy(), 3)});
        table.addRow({"chance", core::fmt(1.0 / data.n_classes, 3)});
        table.addRow({"macro F1", core::fmt(cm.macroF1(), 3)});
        return table.str() +
               "\npaper reference: ~90% accuracy over 40 sites at "
               "NRH = 64 (Fig. 10).\n";
    };
    return fig;
}

// ----------------------------------------------------------- Fig. 13

Figure
mitigationFigure()
{
    Figure fig;
    fig.name = "mitigation";
    fig.title = "Performance of RowHammer defenses vs threshold "
                "(normalized weighted speedup)";
    fig.paper_ref = "Fig. 13";
    fig.csv_name = "fig_mitigation_performance.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "mitigation";
        spec.description = "Normalized weighted speedup of each "
                           "defense per NRH and workload mix";
        spec.base_seed = seedOr(opts, 42);
        std::vector<double> defenses;
        std::vector<double> nrhs;
        std::uint32_t mixes = 3;
        std::uint64_t insts = 100'000;
        if (scale == Scale::kSmoke) {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kPrfm),
                        static_cast<double>(DefenseKind::kFrRfm)};
            nrhs = {1024, 64};
            mixes = 1;
            insts = 20'000;
        } else {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kPrfm),
                        static_cast<double>(DefenseKind::kPracRiac),
                        static_cast<double>(DefenseKind::kFrRfm),
                        static_cast<double>(DefenseKind::kPracBank)};
            nrhs = {1024, 512, 256, 128, 64};
            if (scale == Scale::kFull) {
                mixes = 60;
                insts = 200'000;
            }
        }
        spec.axes = {{"defense", std::move(defenses)},
                     {"nrh", std::move(nrhs)},
                     {"mix", iota(mixes)}};
        spec.columns = {"defense", "nrh", "mix", "normalized_ws"};
        // Mix generation is a pure function of the base seed: build
        // the Fig.-13 workload set once and share it across jobs.
        const auto all_mixes =
            workload::makeMixes(mixes, 4, spec.base_seed);
        spec.job = [all_mixes, insts](const Job &job) -> JobRows {
            const auto &mix =
                all_mixes[static_cast<std::size_t>(job.param("mix"))];
            const double ws = core::runPerfCell(
                static_cast<DefenseKind>(
                    static_cast<int>(job.param("defense"))),
                static_cast<std::uint32_t>(job.param("nrh")), {mix}, 4,
                insts);
            return {{job.param("defense"), job.param("nrh"),
                     job.param("mix"), ws}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto mean_ws = groupMean(result, {0, 1}, 3);
        core::Table table({"defense", "NRH", "normalized WS"});
        for (const auto &[key, ws] : mean_ws)
            table.addRow({defense::defenseName(static_cast<DefenseKind>(
                              static_cast<int>(key[0]))),
                          core::fmt(key[1], 0), core::fmt(ws, 3)});
        return table.str() +
               "\npaper reference: FR-RFM costs 18.2x at NRH = 64; "
               "PRAC stays within a few percent (Fig. 13).\n";
    };
    return fig;
}

} // namespace

const std::vector<Figure> &
figures()
{
    static const std::vector<Figure> registry = {
        latencyFigure(), capacityFigure(), thresholdFigure(),
        fingerprintFigure(), mitigationFigure()};
    return registry;
}

const Figure *
findFigure(const std::string &name)
{
    for (const auto &figure : figures())
        if (figure.name == name)
            return &figure;
    return nullptr;
}

FigureOutcome
reproduceFigure(const Figure &figure, const RunOptions &opts)
{
    const SweepSpec spec = figure.make(opts);
    FigureOutcome outcome;
    outcome.sweep = runSweep(spec, opts.threads);
    if (!opts.out_dir.empty() && opts.out_dir != ".")
        std::filesystem::create_directories(opts.out_dir);
    outcome.csv_path =
        (std::filesystem::path(opts.out_dir) / figure.csv_name)
            .string();
    writeFile(outcome.csv_path, toCsv(outcome.sweep));
    if (figure.summarize)
        outcome.summary = figure.summarize(outcome.sweep);
    return outcome;
}

} // namespace leaky::runner
