#include "runner/pool.hh"

#include <algorithm>

namespace leaky::runner {

unsigned
SweepPool::resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

SweepPool::SweepPool(unsigned threads)
    : n_workers_(resolveThreads(threads))
{
    queues_.reserve(n_workers_);
    for (unsigned i = 0; i < n_workers_; ++i)
        queues_.push_back(std::make_unique<Queue>());
    threads_.reserve(n_workers_ - 1);
    for (unsigned id = 1; id < n_workers_; ++id)
        threads_.emplace_back([this, id] { workerLoop(id); });
}

SweepPool::~SweepPool()
{
    {
        std::lock_guard<std::mutex> lock(run_mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
SweepPool::forEach(std::size_t n,
                   const std::function<void(std::size_t)> &fn)
{
    const auto errors = forEachIsolated(n, fn);
    if (!errors.empty())
        std::rethrow_exception(errors.front().error);
}

std::vector<JobError>
SweepPool::forEachIsolated(std::size_t n,
                           const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return {};
    {
        std::lock_guard<std::mutex> lock(run_mutex_);
        errors_.clear();
        fn_ = &fn;
        remaining_ = n;
        ++epoch_;
        // Deal round-robin; stealing rebalances uneven job costs.
        for (std::size_t job = 0; job < n; ++job)
            queues_[job % n_workers_]->jobs.push_back(job);
    }
    start_cv_.notify_all();

    drain(0); // The caller is worker 0.

    std::vector<JobError> errors;
    {
        std::unique_lock<std::mutex> lock(run_mutex_);
        done_cv_.wait(lock,
                      [this] { return remaining_ == 0 && active_ == 0; });
        fn_ = nullptr;
        errors = std::move(errors_);
        errors_.clear();
    }
    // Completion order depends on stealing; report deterministically.
    std::sort(errors.begin(), errors.end(),
              [](const JobError &a, const JobError &b) {
                  return a.index < b.index;
              });
    return errors;
}

void
SweepPool::workerLoop(unsigned id)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(run_mutex_);
            start_cv_.wait(lock,
                           [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
        }
        drain(id);
    }
}

void
SweepPool::drain(unsigned id)
{
    {
        std::lock_guard<std::mutex> lock(run_mutex_);
        ++active_;
    }
    std::size_t job;
    while (take(id, job)) {
        try {
            (*fn_)(job);
        } catch (...) {
            auto error = std::current_exception();
            std::string what;
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                what = e.what();
            } catch (...) {
                what = "unknown exception";
            }
            std::lock_guard<std::mutex> lock(run_mutex_);
            errors_.push_back({job, std::move(what), std::move(error)});
        }
        std::lock_guard<std::mutex> lock(run_mutex_);
        if (--remaining_ == 0)
            done_cv_.notify_all();
    }
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (--active_ == 0 && remaining_ == 0)
        done_cv_.notify_all();
}

bool
SweepPool::take(unsigned id, std::size_t &job)
{
    // Own queue: LIFO back, keeping freshly dealt work local.
    {
        Queue &own = *queues_[id];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.jobs.empty()) {
            job = own.jobs.back();
            own.jobs.pop_back();
            return true;
        }
    }
    // Steal: FIFO front of the next non-empty sibling.
    for (unsigned step = 1; step < n_workers_; ++step) {
        Queue &victim = *queues_[(id + step) % n_workers_];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.jobs.empty()) {
            job = victim.jobs.front();
            victim.jobs.pop_front();
            return true;
        }
    }
    return false;
}

} // namespace leaky::runner
