/**
 * @file
 * The `leakyhammer` command-line interface: one entry point for every
 * scenario in the repo.
 *
 *   leakyhammer list                 figures + demos catalogue
 *   leakyhammer repro --fig <name>   parallel figure reproduction
 *   leakyhammer run <demo> [flags]   narrated single-scenario demos
 *   leakyhammer fuzz [flags]         aggressor-pattern space search
 *   leakyhammer bench [flags]        sweep-runner throughput (jobs/s)
 *   leakyhammer help [command]
 *
 * Exit codes: 0 success, 1 runtime failure, 2 usage error (unknown
 * command, unknown flag, malformed value).
 */

#ifndef LEAKY_RUNNER_CLI_HH
#define LEAKY_RUNNER_CLI_HH

namespace leaky::runner {

/** Full CLI dispatch; returns the process exit code. */
int cliMain(int argc, char **argv);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_CLI_HH
