/**
 * @file
 * Built-in figure-reproduction sweeps: each paper figure the runner can
 * reproduce end-to-end is a named Figure that builds a SweepSpec at the
 * requested scale (smoke / default / full), runs it on the pool, writes
 * a CSV artifact named after the figure, and renders a human summary
 * (including any post-sweep analysis such as classifier training for
 * the fingerprinting figure). `leakyhammer repro --fig <name>` is a
 * thin wrapper around reproduceFigure().
 */

#ifndef LEAKY_RUNNER_FIGURES_HH
#define LEAKY_RUNNER_FIGURES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "runner/sweep.hh"

namespace leaky::runner {

/** How to run a figure reproduction. */
struct RunOptions {
    unsigned threads = 0; ///< Pool workers (0 = hardware concurrency).
    bool smoke = false;   ///< CI scale: minutes of simulation, not hours.
    bool full = false;    ///< Paper scale (overrides smoke).
    std::uint64_t seed = 0; ///< 0 = the figure's default seed.
    std::string out_dir = "."; ///< Where CSV artifacts land.
};

/** One reproducible paper figure. */
struct Figure {
    std::string name;      ///< CLI key (`--fig capacity`).
    std::string title;
    std::string paper_ref; ///< e.g. "Figs. 4 & 7".
    std::string csv_name;  ///< Artifact file name (`fig_*.csv`).
    std::function<SweepSpec(const RunOptions &)> make;
    /** Post-sweep digest over the merged rows (may train models). */
    std::function<std::string(const SweepResult &)> summarize;
};

/** Everything reproduceFigure() produced. */
struct FigureOutcome {
    SweepResult sweep;
    std::string csv_path;
    std::string summary;
};

/** The registry, in presentation order. */
const std::vector<Figure> &figures();

/** Look up by CLI name; nullptr when unknown. */
const Figure *findFigure(const std::string &name);

/** Expand, run, write `<out_dir>/<csv_name>`, and summarize. */
FigureOutcome reproduceFigure(const Figure &figure,
                              const RunOptions &opts);

/**
 * The figure's smoke-scale CSV, exactly as the golden differential
 * harness stores it: forced to Scale::kSmoke and the figure's default
 * seed, rendered with toCsv(). Because runSweep() merges rows in
 * job-index order, the bytes are identical for any @p threads — the
 * golden test exploits that to compare 1-thread and 4-thread runs
 * against one checked-in file.
 */
std::string goldenCsv(const Figure &figure, unsigned threads);

/** `<golden_dir>/<figure.name>.csv` — the golden artifact path. */
std::string goldenPath(const std::string &golden_dir,
                       const Figure &figure);

} // namespace leaky::runner

#endif // LEAKY_RUNNER_FIGURES_HH
