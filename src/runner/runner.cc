#include "runner/runner.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "runner/pool.hh"
#include "sim/logging.hh"

namespace leaky::runner {

SweepResult
runSweep(const SweepSpec &spec, unsigned threads)
{
    SweepPool pool(threads);
    return runSweep(spec, pool);
}

SweepResult
runSweep(const SweepSpec &spec, SweepPool &pool)
{
    const auto jobs = expandJobs(spec);
    const auto start = std::chrono::steady_clock::now();

    // One slot per job: workers write disjoint slots, no locking, and
    // the merge below is independent of completion order.
    std::vector<JobRows> per_job(jobs.size());
    pool.forEach(jobs.size(), [&](std::size_t i) {
        per_job[i] = spec.job(jobs[i]);
        for (const auto &row : per_job[i])
            LEAKY_ASSERT(row.size() == spec.columns.size(),
                         "job row arity != sweep columns");
    });

    SweepResult result;
    result.columns = spec.columns;
    result.jobs = jobs.size();
    for (auto &rows : per_job)
        for (auto &row : rows)
            result.rows.push_back(std::move(row));
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

std::string
csvCell(double value)
{
    // Shortest decimal form that round-trips exactly: equal doubles
    // always render to equal bytes, so reruns diff cleanly.
    char buf[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

std::string
toCsv(const SweepResult &result)
{
    std::string out;
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
        if (c)
            out += ',';
        out += result.columns[c];
    }
    out += '\n';
    for (const auto &row : result.rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ',';
            out += csvCell(row[c]);
        }
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot open " + path + " for writing");
    file << content;
    file.flush();
    if (!file)
        throw std::runtime_error("write to " + path + " failed");
}

} // namespace leaky::runner
