#include "runner/runner.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "runner/pool.hh"
#include "sim/logging.hh"

namespace leaky::runner {

SweepResult
runSweep(const SweepSpec &spec, unsigned threads)
{
    SweepPool pool(threads);
    return runSweep(spec, pool);
}

std::string
describeJobParams(const Job &job)
{
    std::string out;
    for (const auto &[name, value] : job.params) {
        if (!out.empty())
            out += ", ";
        out += name + "=" + csvCell(value);
    }
    return out.empty() ? "no params" : out;
}

SweepResult
runSweep(const SweepSpec &spec, SweepPool &pool)
{
    const auto jobs = expandJobs(spec);
    // lint:allow(no-wallclock): wall_seconds is operator telemetry (how long the sweep took), never a result row
    const auto start = std::chrono::steady_clock::now();

    // One slot per job: workers write disjoint slots, no locking, and
    // the merge below is independent of completion order.
    std::vector<JobRows> per_job(jobs.size());
    const auto errors = pool.forEachIsolated(jobs.size(), [&](std::size_t i) {
        per_job[i] = spec.job(jobs[i]);
        for (const auto &row : per_job[i])
            LEAKY_ASSERT(row.size() == spec.columns.size(),
                         "job row arity != sweep columns");
    });

    // Failed jobs left their slot empty; every completed job's rows
    // are merged (in job-index order) whether or not a sibling threw.
    SweepResult result;
    result.columns = spec.columns;
    result.jobs = jobs.size();
    for (auto &rows : per_job)
        for (auto &row : rows)
            result.rows.push_back(std::move(row));
    // lint:allow(no-wallclock): paired with the start timestamp above
    const auto end = std::chrono::steady_clock::now();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    if (!errors.empty()) {
        std::vector<JobFailure> failures;
        failures.reserve(errors.size());
        for (const auto &error : errors)
            failures.push_back({error.index,
                                describeJobParams(jobs[error.index]),
                                error.message});
        std::string what = "sweep '" + spec.name + "': job " +
                           std::to_string(failures.front().index) +
                           " (" + failures.front().params +
                           ") failed: " + failures.front().message;
        if (failures.size() > 1)
            what += " (+" + std::to_string(failures.size() - 1) +
                    " more failed jobs)";
        what += "; " +
                std::to_string(jobs.size() - failures.size()) + "/" +
                std::to_string(jobs.size()) + " jobs completed";
        throw SweepError(what, std::move(result), std::move(failures));
    }
    return result;
}

std::string
csvCell(double value)
{
    // Shortest decimal form that round-trips exactly: equal doubles
    // always render to equal bytes, so reruns diff cleanly.
    char buf[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

std::string
toCsv(const SweepResult &result)
{
    std::string out;
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
        if (c)
            out += ',';
        out += result.columns[c];
    }
    out += '\n';
    for (const auto &row : result.rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ',';
            out += csvCell(row[c]);
        }
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    // Write-then-rename: rename(2) is atomic, so a kill between the
    // two steps leaves at worst a stale .tmp next to an intact target,
    // never a truncated target.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file)
            throw std::runtime_error("cannot open " + tmp +
                                     " for writing");
        file << content;
        file.flush();
        if (!file)
            throw std::runtime_error("write to " + tmp + " failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot rename " + tmp + " into " +
                                 path);
}

} // namespace leaky::runner
