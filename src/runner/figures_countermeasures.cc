/**
 * @file
 * Countermeasure and leakage-scope figure family: capacity vs
 * RowHammer threshold, the Fig. 13 performance study, the §11.4
 * countermeasure evaluation, the §9.1 counter-value leak, Table 3's
 * colocation-granularity matrix, and the §12 trigger-algorithm
 * taxonomy.
 */

#include "runner/figures_internal.hh"

#include <string>

#include "attack/message.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "sim/rng.hh"
#include "workload/synthetic.hh"

namespace leaky::runner {

namespace {

using attack::ChannelKind;
using defense::DefenseKind;

// ------------------------------------------- capacity vs threshold

Figure
thresholdFigure()
{
    Figure fig;
    fig.name = "threshold";
    fig.title = "Covert-channel capacity vs RowHammer threshold "
                "across defenses";
    fig.paper_ref = "§6, §7, §11 (Figs. 11-13 axis)";
    fig.csv_name = "fig_capacity_vs_threshold.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "threshold";
        spec.description = "Channel capacity against each defense as "
                           "NRH (and the derived NBO/TRFM) scales";
        spec.base_seed = seedOr(opts, 1);
        std::vector<double> defenses;
        if (scale == Scale::kSmoke) {
            defenses = {
                static_cast<double>(DefenseKind::kPrac),
                static_cast<double>(DefenseKind::kPrfm),
                static_cast<double>(DefenseKind::kFrRfm)};
        } else {
            defenses = {
                static_cast<double>(DefenseKind::kPrac),
                static_cast<double>(DefenseKind::kPracRiac),
                static_cast<double>(DefenseKind::kPracBank),
                static_cast<double>(DefenseKind::kPrfm),
                static_cast<double>(DefenseKind::kFrRfm)};
        }
        spec.axes = {
            {"defense", std::move(defenses)},
            {"nrh", scale == Scale::kSmoke
                        ? std::vector<double>{256, 128, 64}
                        : std::vector<double>{1024, 512, 256, 128, 64}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        spec.columns = {"defense", "nrh", "raw_bit_rate",
                        "error_probability", "capacity", "backoffs",
                        "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto kind =
                static_cast<DefenseKind>(static_cast<int>(
                    job.param("defense")));
            const auto nrh =
                static_cast<std::uint32_t>(job.param("nrh"));
            // Secure parameters derive from NRH via policy.hh; only
            // the RIAC variant consumes randomness.
            sys::SystemConfig cfg = sys::SystemConfig::paper(kind, nrh);
            cfg.defense.seed = job.seed;
            sys::System system(cfg);

            // The receiver listens for the defense's own preventive
            // action: back-offs for the PRAC family, RFM latency
            // events for the RFM family.
            const bool rfm_family = kind == DefenseKind::kPrfm ||
                                    kind == DefenseKind::kFrRfm;
            auto channel_cfg = attack::makeChannelConfig(
                system,
                rfm_family ? ChannelKind::kRfm : ChannelKind::kPrac);

            const auto bits = attack::patternBits(
                attack::MessagePattern::kCheckered0, bytes * 8);
            const auto result = attack::runCovertChannel(
                system, channel_cfg, attack::symbolsFromBits(bits, 2));
            return {{job.param("defense"), job.param("nrh"),
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"defense", "NRH", "error prob",
                           "capacity (Kbps)"});
        for (const auto &row : result.rows)
            table.addRow({defense::defenseName(static_cast<DefenseKind>(
                              static_cast<int>(row[0]))),
                          core::fmt(row[1], 0), core::fmt(row[3], 3),
                          core::fmt(row[4] / 1000.0, 1)});
        return table.str() +
               "\nFR-RFM's fixed grid carries no information "
               "(capacity ~0) at any threshold -- the paper's §11.1 "
               "countermeasure.\n";
    };
    return fig;
}

// ----------------------------------------------------------- Fig. 13

Figure
mitigationFigure()
{
    Figure fig;
    fig.name = "mitigation";
    fig.title = "Performance of RowHammer defenses vs threshold "
                "(normalized weighted speedup)";
    fig.paper_ref = "Fig. 13";
    fig.csv_name = "fig_mitigation_performance.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "mitigation";
        spec.description = "Normalized weighted speedup of each "
                           "defense per NRH and workload mix";
        spec.base_seed = seedOr(opts, 42);
        std::vector<double> defenses;
        std::vector<double> nrhs;
        std::uint32_t mixes = 3;
        std::uint64_t insts = 100'000;
        if (scale == Scale::kSmoke) {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kPrfm),
                        static_cast<double>(DefenseKind::kFrRfm)};
            nrhs = {1024, 64};
            mixes = 1;
            insts = 20'000;
        } else {
            defenses = {static_cast<double>(DefenseKind::kPrac),
                        static_cast<double>(DefenseKind::kPrfm),
                        static_cast<double>(DefenseKind::kPracRiac),
                        static_cast<double>(DefenseKind::kFrRfm),
                        static_cast<double>(DefenseKind::kPracBank)};
            nrhs = {1024, 512, 256, 128, 64};
            if (scale == Scale::kFull) {
                mixes = 60;
                insts = 200'000;
            }
        }
        spec.axes = {{"defense", std::move(defenses)},
                     {"nrh", std::move(nrhs)},
                     {"mix", iota(mixes)}};
        spec.columns = {"defense", "nrh", "mix", "normalized_ws"};
        // Mix generation is a pure function of the base seed: build
        // the Fig.-13 workload set once and share it across jobs.
        const auto all_mixes =
            workload::makeMixes(mixes, 4, spec.base_seed);
        spec.job = [all_mixes, insts](const Job &job) -> JobRows {
            const auto &mix =
                all_mixes[static_cast<std::size_t>(job.param("mix"))];
            const double ws = core::runPerfCell(
                static_cast<DefenseKind>(
                    static_cast<int>(job.param("defense"))),
                static_cast<std::uint32_t>(job.param("nrh")), {mix}, 4,
                insts);
            return {{job.param("defense"), job.param("nrh"),
                     job.param("mix"), ws}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto mean_ws = groupMean(result, {0, 1}, 3);
        core::Table table({"defense", "NRH", "normalized WS"});
        for (const auto &[key, ws] : mean_ws)
            table.addRow({defense::defenseName(static_cast<DefenseKind>(
                              static_cast<int>(key[0]))),
                          core::fmt(key[1], 0), core::fmt(ws, 3)});
        return table.str() +
               "\npaper reference: FR-RFM costs 18.2x at NRH = 64; "
               "PRAC stays within a few percent (Fig. 13).\n";
    };
    return fig;
}

// ------------------------------------------------------------- §11.4

/** Scenario axis of the countermeasure study, in presentation order. */
struct CountermeasureScenario {
    const char *name;
    DefenseKind kind;
    bool cross_bank;
};

constexpr CountermeasureScenario kCountermeasureScenarios[] = {
    {"PRAC (insecure baseline)", DefenseKind::kPrac, false},
    {"PRAC-RIAC", DefenseKind::kPracRiac, false},
    {"FR-RFM", DefenseKind::kFrRfm, false},
    {"Bank-PRAC (cross-bank rx)", DefenseKind::kPracBank, true},
    {"Bank-PRAC (same-bank rx)", DefenseKind::kPracBank, false},
};

Figure
countermeasuresFigure()
{
    Figure fig;
    fig.name = "countermeasures";
    fig.title = "PRAC covert channel vs the paper's countermeasures "
                "(capacity reduction)";
    fig.paper_ref = "§11.4";
    fig.csv_name = "tab_countermeasure_capacity.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "countermeasures";
        spec.description = "The PRAC channel against FR-RFM, "
                           "PRAC-RIAC, and Bank-Level PRAC under "
                           "ambient noise";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"scenario", {0, 1, 2, 3, 4}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 25, 100);
        spec.columns = {"scenario", "error_probability", "capacity",
                        "backoffs", "rfms"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto &scenario = kCountermeasureScenarios[
                static_cast<std::size_t>(job.param("scenario"))];
            core::CountermeasureCellSpec cell;
            cell.kind = scenario.kind;
            cell.cross_bank = scenario.cross_bank;
            // Ambient activity (the paper's noisy-environment
            // assumption for the RIAC evaluation, §11.2 footnote 12):
            // the Eq.-2 microbenchmark at 75% intensity, applied
            // identically to every scenario.
            cell.noise_sleep = 650'000;
            cell.message_bytes = bytes;
            cell.seed = job.seed;
            const auto result = core::runCountermeasureCell(cell);
            return {{job.param("scenario"), result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs),
                     static_cast<double>(result.rfms)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        double baseline = 0.0;
        for (const auto &row : result.rows)
            if (row[0] == 0)
                baseline = row[2];
        core::Table table({"defense", "error prob", "capacity (Kbps)",
                           "capacity reduction"});
        for (const auto &row : result.rows) {
            const double reduction =
                baseline > 0.0 ? (1.0 - row[2] / baseline) * 100.0
                               : 0.0;
            table.addRow(
                {kCountermeasureScenarios[static_cast<std::size_t>(
                     row[0])].name,
                 core::fmt(row[1], 3), core::fmt(row[2] / 1000.0, 1),
                 core::fmt(reduction, 0) + "%"});
        }
        return table.str() +
               "\npaper reference: FR-RFM -100%, PRAC-RIAC -86%; "
               "Bank-Level PRAC removes cross-bank visibility but "
               "not same-bank attacks.\n";
    };
    return fig;
}

// -------------------------------------------------------------- §9.1

Figure
counterLeakFigure()
{
    Figure fig;
    fig.name = "counter-leak";
    fig.title = "Leaking a PRAC activation-counter value through a "
                "shared row";
    fig.paper_ref = "§9.1, Table 3 (row)";
    fig.csv_name = "tab_counter_leak.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "counter-leak";
        spec.description = "Per-trial secret vs leaked count and "
                           "leak time (NBO = 128, 7 bits/shot)";
        spec.base_seed = seedOr(opts, 1234);
        spec.axes = {{"trial",
                      iota(byScale<std::uint32_t>(scale, 6, 24, 64))}};
        spec.columns = {"trial", "secret", "leaked", "abs_error",
                        "elapsed_us"};
        spec.job = [](const Job &job) -> JobRows {
            // Secret: victim's activation count, up to ~NBO/2 so
            // neither the priming nor the victim's own row triggers
            // the back-off.
            sim::Rng rng(job.seed);
            const auto secret =
                static_cast<std::uint32_t>(rng.range(4, 60));
            const auto trial = core::runCounterLeakTrial(secret);
            const double err =
                static_cast<double>(trial.leaked) -
                static_cast<double>(trial.secret);
            return {{job.param("trial"),
                     static_cast<double>(trial.secret),
                     static_cast<double>(trial.leaked),
                     err < 0 ? -err : err, trial.elapsed_us}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        double total_us = 0, total_err = 0;
        std::size_t within = 0;
        for (const auto &row : result.rows) {
            total_us += row[4];
            total_err += row[3];
            within += row[3] <= 2 ? 1 : 0;
        }
        const auto n = static_cast<double>(result.rows.size());
        const double mean_us = total_us / n;
        core::Table table({"metric", "value"});
        table.addRow({"trials", core::fmt(n, 0)});
        table.addRow({"mean leak time (us)", core::fmt(mean_us, 1)});
        table.addRow({"mean |error| (counts)",
                      core::fmt(total_err / n, 2)});
        table.addRow({"within +/-2 counts",
                      core::fmt(static_cast<double>(within), 0) + " / "
                          + core::fmt(n, 0)});
        table.addRow({"throughput (Kbps)",
                      core::fmt(7.0 / (mean_us * 1e-6) / 1000.0, 0)});
        return table.str() +
               "\npaper reference: a 7-bit counter value leaks in "
               "13.6 us on average => 501 Kbps.\n";
    };
    return fig;
}

// ----------------------------------------------------------- Table 3

/** Colocation scenarios of Table 3's empirical rows. */
struct GranularityScenario {
    const char *name;
    ChannelKind kind;
    int bankgroup; ///< -1 keeps the same-bank default.
    int bank;
};

constexpr GranularityScenario kGranularityScenarios[] = {
    // PRAC: receiver in an arbitrary other bank (bg 5, bank 3).
    {"PRAC, channel coloc.", ChannelKind::kPrac, 5, 3},
    {"PRAC, same-bank coloc.", ChannelKind::kPrac, -1, -1},
    // RFM: receiver shares the bank index (bg 5, bank 0).
    {"RFM, bank-group coloc.", ChannelKind::kRfm, 5, 0},
    {"RFM, same-bank coloc.", ChannelKind::kRfm, -1, -1},
};

Figure
granularityFigure()
{
    Figure fig;
    fig.name = "granularity";
    fig.title = "Leaked information vs attacker/victim colocation "
                "granularity";
    fig.paper_ref = "Table 3";
    fig.csv_name = "tab_leakage_granularity.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "granularity";
        spec.description = "Channel error with the receiver moved "
                           "across bank groups and banks";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"scenario", {0, 1, 2, 3}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 50);
        spec.columns = {"scenario", "error_probability", "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto &scenario = kGranularityScenarios[
                static_cast<std::size_t>(job.param("scenario"))];
            const auto result = core::runGranularityCell(
                scenario.kind, scenario.bankgroup, scenario.bank,
                bytes, job.seed);
            return {{job.param("scenario"), result.symbol_error,
                     result.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto verdict = [](double error) {
            return std::string(error < 0.15 ? "leaks" : "no signal") +
                   " (err " + core::fmt(error, 2) + ")";
        };
        core::Table table({"attack", "channel/bank-group coloc.",
                           "same-bank coloc.", "row coloc."});
        table.addRow({"LeakyHammer-PRAC",
                      verdict(result.rows[0][1]),
                      verdict(result.rows[1][1]),
                      "activation count (§9.1)"});
        table.addRow({"LeakyHammer-RFM", verdict(result.rows[2][1]),
                      verdict(result.rows[3][1]),
                      "bank activation count"});
        table.addRow({"DRAMA (row-buffer)",
                      "no signal (needs same bank)",
                      "row hit/conflict only", "row hit/conflict only"});
        return table.str() +
               "\npaper reference (Table 3): only LeakyHammer leaks "
               "at channel/bank-group granularity; PRAC leaks counter "
               "values at row granularity.\n";
    };
    return fig;
}

// --------------------------------------------------------------- §12

Figure
triggerFigure()
{
    Figure fig;
    fig.name = "trigger";
    fig.title = "Exact vs random preventive-action trigger algorithms";
    fig.paper_ref = "§12";
    fig.csv_name = "tab_trigger_algorithms.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "trigger";
        spec.description = "PRAC/PRFM exact triggers vs the PARA "
                           "stateless random trigger";
        spec.base_seed = seedOr(opts, 1);
        // Scenario axis: 0 = PRAC, 1 = PRFM, 2.. = PARA at rising p.
        spec.axes = {{"scenario", scale == Scale::kSmoke
                                      ? std::vector<double>{0, 1, 3}
                                      : std::vector<double>{0, 1, 2, 3,
                                                            4}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 3, 24, 64);
        spec.columns = {"scenario", "para_p", "error_probability",
                        "capacity"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto scenario =
                static_cast<int>(job.param("scenario"));
            constexpr double kParaP[] = {0.005, 0.02, 0.08};
            const DefenseKind kind =
                scenario == 0   ? DefenseKind::kPrac
                : scenario == 1 ? DefenseKind::kPrfm
                                : DefenseKind::kPara;
            const double p = scenario >= 2 ? kParaP[scenario - 2] : 0.0;
            const auto result =
                core::runTriggerCell(kind, p, bytes, job.seed);
            return {{job.param("scenario"), p, result.symbol_error,
                     result.capacity}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"defense (trigger class)", "error prob",
                           "capacity (Kbps)"});
        for (const auto &row : result.rows) {
            const auto scenario = static_cast<int>(row[0]);
            const std::string name =
                scenario == 0   ? "PRAC (exact, device)"
                : scenario == 1 ? "PRFM (exact, controller)"
                                : "PARA (random, p=" +
                                      core::fmt(row[1], 3) + ")";
            table.addRow({name, core::fmt(row[2], 3),
                          core::fmt(row[3] / 1000.0, 1)});
        }
        return table.str() +
               "\npaper reference (§12, footnote 7): exact triggers "
               "enable reliable channels; random triggers degrade "
               "the channel at low action rates, though at higher p "
               "a statistical channel persists.\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
countermeasureFigures()
{
    std::vector<Figure> figures;
    figures.push_back(thresholdFigure());
    figures.push_back(mitigationFigure());
    figures.push_back(countermeasuresFigure());
    figures.push_back(counterLeakFigure());
    figures.push_back(granularityFigure());
    figures.push_back(triggerFigure());
    return figures;
}

} // namespace leaky::runner
