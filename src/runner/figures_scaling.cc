/**
 * @file
 * Scaling + mapping-diversity figure family. The paper evaluates one
 * memory channel (Table 1); its §5.2 threat model, however, has
 * attackers choosing channels/ranks/banks after reverse engineering
 * the physical-to-DRAM mapping. These entries open that topology axis:
 *
 *  - `cross-channel`: the negative control the paper's per-channel
 *    claim implies — defenses are instantiated per channel, so a
 *    receiver on another channel must observe nothing and the channel
 *    capacity must collapse to ~0.
 *  - `channel-scaling`: one independent covert pair per channel,
 *    concurrently; aggregate capacity scales with the channel count
 *    because the per-channel defense instances share no state.
 *  - `mapping-order`: the PRAC channel under every (actual, assumed)
 *    mapping-preset pair; off-diagonal cells model an attacker whose
 *    reverse-engineered mapping is wrong. The channel mostly SURVIVES
 *    (same-bank row pairs are permutation-robust) and collapses only
 *    when the assumed row scale straddles the actual bank bits.
 *  - `mapping-recovery`: the DARE-style online attacker learning the
 *    bank/row XOR functions through row-buffer-conflict timing;
 *    probes-to-recovery vs mapping complexity (presets + folded-bit
 *    XOR variants) × defense.
 */

#include "runner/figures_internal.hh"

#include <algorithm>
#include <string>

#include "core/experiments.hh"
#include "core/report.hh"
#include "dram/address_mapper.hh"

namespace leaky::runner {

namespace {

using dram::MappingPreset;

// ------------------------------------------ cross-channel isolation

Figure
crossChannelFigure()
{
    Figure fig;
    fig.name = "cross-channel";
    fig.title = "Cross-channel isolation of the PRAC covert channel "
                "(per-channel defense instances)";
    fig.paper_ref = "§5.2 / §6 (negative control)";
    fig.csv_name = "fig_cross_channel_isolation.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "cross-channel";
        spec.description = "Sender on channel 0 vs a receiver "
                           "colocated (0) or on channel 1";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {
            {"channels",
             byScale(scale, std::vector<double>{2},
                     std::vector<double>{2, 4},
                     std::vector<double>{2, 4})},
            {"placement", {0, 1}}, // 0 = same channel, 1 = cross.
            // Checkered patterns only: Eq. 1 credits a constant (or
            // deterministically inverted) output, so the all-ones /
            // all-zeros patterns cannot falsify a dead channel —
            // alternating bits are the discriminative probe here.
            {"pattern",
             byScale(scale, std::vector<double>{2},
                     std::vector<double>{2, 3},
                     std::vector<double>{2, 3})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 100);
        spec.columns = {"channels",   "placement",
                        "pattern",    "raw_bit_rate",
                        "error_probability", "capacity",
                        "tx_actions", "rx_actions",
                        "aggregate_actions"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::CrossChannelSpec cell;
            cell.channels =
                static_cast<std::uint32_t>(job.param("channels"));
            cell.cross = job.param("placement") > 0.5;
            cell.pattern = static_cast<attack::MessagePattern>(
                static_cast<int>(job.param("pattern")));
            cell.message_bytes = bytes;
            cell.seed = job.seed;
            const auto result = core::runCrossChannelCell(cell);
            return {{job.param("channels"), job.param("placement"),
                     job.param("pattern"), result.channel.raw_bit_rate,
                     result.channel.symbol_error,
                     result.channel.capacity,
                     static_cast<double>(result.tx_actions),
                     static_cast<double>(result.rx_actions),
                     static_cast<double>(result.aggregate_actions)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto capacity = groupMean(result, {0, 1}, 5);
        const auto error = groupMean(result, {0, 1}, 4);
        const auto rx = groupMean(result, {0, 1}, 7);
        core::Table table({"channels", "placement", "error prob",
                           "capacity (Kbps)", "rx-channel actions"});
        for (const auto &[key, cap] : capacity)
            table.addRow({core::fmt(key[0], 0),
                          key[1] < 0.5 ? "same" : "cross",
                          core::fmt(error.at(key), 3),
                          core::fmt(cap / 1000.0, 1),
                          core::fmt(rx.at(key), 0)});
        return table.str() +
               "\nSame-channel capacity matches the noise-free "
               "capacity figure; the ch0->ch1 receiver's channel "
               "carries none of the sender's preventive actions (at "
               "most a rare self-induced one from the receiver's own "
               "refresh-driven activations) and capacity collapses to "
               "~0 -- defenses are per-channel, so the channel never "
               "crosses them.\n";
    };
    return fig;
}

// -------------------------------------- aggregate capacity scaling

Figure
channelScalingFigure()
{
    Figure fig;
    fig.name = "channel-scaling";
    fig.title = "Aggregate covert capacity vs memory-channel count "
                "(one pair per channel)";
    fig.paper_ref = "§5.2 / §6 (scaling)";
    fig.csv_name = "fig_channel_scaling.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "channel-scaling";
        spec.description = "Concurrent per-channel sender/receiver "
                           "pairs; aggregate and worst-channel "
                           "capacity per channel count";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"channels", {1, 2, 4}},
                     {"pattern",
                      byScale(scale, std::vector<double>{2},
                              std::vector<double>{0, 2},
                              std::vector<double>{0, 1, 2, 3})}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 20, 50);
        spec.columns = {"channels",       "pattern",
                        "aggregate_raw_bit_rate", "mean_error",
                        "aggregate_capacity",     "min_channel_capacity",
                        "aggregate_actions"};
        spec.job = [bytes](const Job &job) -> JobRows {
            core::MultiChannelSpec cell;
            cell.channels =
                static_cast<std::uint32_t>(job.param("channels"));
            cell.pattern = static_cast<attack::MessagePattern>(
                static_cast<int>(job.param("pattern")));
            cell.message_bytes = bytes;
            cell.seed = job.seed;
            const auto result = core::runMultiChannelAggregate(cell);
            double min_capacity = result.per_channel.empty()
                                      ? 0.0
                                      : result.per_channel[0].capacity;
            for (const auto &ch : result.per_channel)
                min_capacity = std::min(min_capacity, ch.capacity);
            return {{job.param("channels"), job.param("pattern"),
                     result.aggregate_raw_bit_rate,
                     result.mean_symbol_error,
                     result.aggregate_capacity, min_capacity,
                     static_cast<double>(result.aggregate_actions)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto capacity = groupMean(result, {0}, 4);
        const auto error = groupMean(result, {0}, 3);
        // True worst-channel capacity per channel count: the minimum
        // over patterns of the per-job minima (a mean would mask one
        // pattern's genuinely bad channel).
        std::map<std::vector<double>, double> min_cap;
        for (const auto &row : result.rows) {
            const std::vector<double> key = {row[0]};
            const auto it = min_cap.find(key);
            if (it == min_cap.end())
                min_cap[key] = row[5];
            else
                it->second = std::min(it->second, row[5]);
        }
        core::Table table({"channels", "mean error",
                           "aggregate capacity (Kbps)",
                           "min channel (Kbps)"});
        for (const auto &[key, cap] : capacity)
            table.addRow({core::fmt(key[0], 0),
                          core::fmt(error.at(key), 3),
                          core::fmt(cap / 1000.0, 1),
                          core::fmt(min_cap.at(key) / 1000.0, 1)});
        return table.str() +
               "\nAggregate capacity scales ~linearly with the channel "
               "count: defense instances are per-channel, so "
               "concurrent pairs never contend for counter state.\n";
    };
    return fig;
}

// ------------------------------------- mapping-order sensitivity

Figure
mappingOrderFigure()
{
    Figure fig;
    fig.name = "mapping-order";
    fig.title = "PRAC covert channel vs the attacker's assumed "
                "physical-to-DRAM mapping";
    fig.paper_ref = "§5.2 (mapping diversity)";
    fig.csv_name = "fig_mapping_order.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "mapping-order";
        spec.description = "Channel capacity per (actual, assumed) "
                           "mapper-preset pair; off-diagonal = wrong "
                           "reverse-engineered mapping";
        spec.base_seed = seedOr(opts, 1);
        spec.axes = {{"actual", {0, 1, 2}}, {"assumed", {0, 1, 2}}};
        const std::size_t bytes = byScale<std::size_t>(scale, 4, 16, 50);
        spec.columns = {"actual", "assumed", "match", "raw_bit_rate",
                        "error_probability", "capacity", "backoffs"};
        spec.job = [bytes](const Job &job) -> JobRows {
            const auto actual = static_cast<MappingPreset>(
                static_cast<int>(job.param("actual")));
            const auto assumed = static_cast<MappingPreset>(
                static_cast<int>(job.param("assumed")));
            const auto result = core::runMappingOrderCell(
                actual, assumed, bytes, job.seed);
            return {{job.param("actual"), job.param("assumed"),
                     actual == assumed ? 1.0 : 0.0,
                     result.raw_bit_rate, result.symbol_error,
                     result.capacity,
                     static_cast<double>(result.backoffs)}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        core::Table table({"actual", "assumed", "error prob",
                           "capacity (Kbps)", "back-offs"});
        for (const auto &row : result.rows)
            table.addRow({dram::presetName(static_cast<MappingPreset>(
                              static_cast<int>(row[0]))),
                          dram::presetName(static_cast<MappingPreset>(
                              static_cast<int>(row[1]))),
                          core::fmt(row[4], 3),
                          core::fmt(row[5] / 1000.0, 1),
                          core::fmt(row[6], 0)});
        return table.str() +
               "\nDiagonal cells reproduce the baseline channel. Most "
               "off-diagonal cells SURVIVE: a same-bank pair differing "
               "only in the row field usually stays a same-bank pair "
               "under a permuted order. The channel only collapses "
               "when the assumed order puts the row field at a scale "
               "the actual order maps onto bank bits (row-interleaved "
               "decoding a channel-last-composed pair), scattering the "
               "pair across banks -- mapping diversity alone is a weak "
               "mitigation against the §5.2 attacker.\n";
    };
    return fig;
}

// ------------------------------------- online mapping recovery

Figure
mappingRecoveryFigure()
{
    Figure fig;
    fig.name = "mapping-recovery";
    fig.title = "Online DARE-style mapping recovery: probes to learn "
                "the bank/row XOR functions vs mapping complexity";
    fig.paper_ref = "§5.2 (mapping reverse engineering)";
    fig.csv_name = "fig_mapping_recovery.csv";
    fig.make = [](const RunOptions &opts) {
        const Scale scale = scaleOf(opts);
        SweepSpec spec;
        spec.name = "mapping-recovery";
        spec.description = "Row-buffer-conflict probing + GF(2) "
                           "solving per (mapping, defense) cell";
        spec.base_seed = seedOr(opts, 1);
        // Mapping axis: index into core::recoveryMappings() — the 3
        // presets (complexity 0) plus the folded-bit XOR variants.
        // Defense axis: index into the kinds list below, NOT the
        // DefenseKind enum value, so the CSV encoding is stable even
        // if the enum grows.
        spec.axes = {
            {"mapping", {0, 1, 2, 3, 4, 5}},
            {"defense",
             byScale(scale, std::vector<double>{0},
                     std::vector<double>{0, 1, 2},
                     std::vector<double>{0, 1, 2})}};
        spec.repetitions = byScale<std::uint32_t>(scale, 1, 1, 3);
        spec.columns = {"mapping",        "complexity",
                        "defense",        "probes",
                        "accesses",       "rounds",
                        "final_window",   "bank_recovered",
                        "row_recovered"};
        spec.job = [](const Job &job) -> JobRows {
            static const defense::DefenseKind kKinds[] = {
                defense::DefenseKind::kNone, defense::DefenseKind::kPrac,
                defense::DefenseKind::kGraphene};
            const auto mappings = core::recoveryMappings();
            const auto midx =
                static_cast<std::size_t>(job.param("mapping"));
            const auto didx =
                static_cast<std::size_t>(job.param("defense"));
            const auto result = core::runMappingRecoveryCell(
                mappings.at(midx).spec, kKinds[didx], job.seed);
            return {{job.param("mapping"),
                     static_cast<double>(mappings.at(midx).complexity),
                     job.param("defense"),
                     static_cast<double>(result.recovered.probes),
                     static_cast<double>(result.recovered.accesses),
                     static_cast<double>(result.recovered.rounds),
                     static_cast<double>(result.recovered.final_window),
                     result.bank_match ? 1.0 : 0.0,
                     result.row_match ? 1.0 : 0.0}};
        };
        return spec;
    };
    fig.summarize = [](const SweepResult &result) {
        const auto mappings = core::recoveryMappings();
        const auto probes = groupMean(result, {0, 1}, 3);
        const auto bank_ok = groupMean(result, {0, 1}, 7);
        const auto row_ok = groupMean(result, {0, 1}, 8);
        core::Table table({"mapping", "complexity", "mean probes",
                           "bank recovered", "row recovered"});
        for (const auto &[key, p] : probes) {
            const auto midx = static_cast<std::size_t>(key[0]);
            table.addRow({mappings.at(midx).name, core::fmt(key[1], 0),
                          core::fmt(p, 0), core::fmt(bank_ok.at(key), 2),
                          core::fmt(row_ok.at(key), 2)});
        }
        return table.str() +
               "\nThe attacker recovers the true bank functions (and "
               "row functions modulo bank) for every preset from "
               "conflict timing alone. Folding higher row bits into "
               "bank masks defeats each difference window in turn, so "
               "probes-to-recovery grows with mapping complexity -- "
               "XOR mappings raise the attack's cost but, like "
               "mapping diversity, do not stop the SS5.2 attacker.\n";
    };
    return fig;
}

} // namespace

std::vector<Figure>
scalingFigures()
{
    std::vector<Figure> figures;
    figures.push_back(crossChannelFigure());
    figures.push_back(channelScalingFigure());
    figures.push_back(mappingOrderFigure());
    figures.push_back(mappingRecoveryFigure());
    return figures;
}

} // namespace leaky::runner
