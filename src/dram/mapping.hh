/**
 * @file
 * Physical-to-DRAM mapping functions as GF(2) linear maps. Real memory
 * controllers compute each DRAM coordinate bit as an XOR of selected
 * physical-address bits (DRAMA-style "XOR functions"); the bit
 * permutations the paper's presets describe are the special case where
 * every output bit copies exactly one input bit. §5.2 of the paper
 * assumes the attacker has reverse engineered such a function before
 * mounting the channel; attack::MappingRecovery learns one online.
 *
 * Three layers:
 *  - MappingSpec: the declarative description (a named preset, a field
 *    order, or an explicit `xor:` matrix) — cheap to copy/compare,
 *    geometry-independent, the type SystemConfig carries.
 *  - MappingFunction: the spec compiled against a concrete geometry
 *    into a validated GF(2) bit matrix with its inverse. Construction
 *    rejects non-invertible matrices (the XOR-family analogue of the
 *    old "order must be a permutation" assert).
 *  - gf2: the small Gaussian-elimination toolkit both the compiler and
 *    the mapping-recovery attacker use.
 */

#ifndef LEAKY_DRAM_MAPPING_HH
#define LEAKY_DRAM_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/config.hh"
#include "dram/types.hh"

namespace leaky::dram {

/** Address fields a mapping function produces. */
enum class Field : std::uint8_t {
    kColumn, kBankGroup, kBank, kRank, kRow, kChannel
};

/** Number of coordinate fields (the size of a full order array). */
inline constexpr std::size_t kNumFields = 6;

/** Grammar/CSV name of a field ("col", "bg", "ba", "ra", "row", "ch"). */
const char *fieldName(Field f);

/**
 * Named physical-to-DRAM mapping presets (the reverse-engineering
 * targets of §5.2). Each is a pure bit permutation: a full field
 * order, least to most significant. The presets only differ in
 * observable behaviour when traffic is generated in *physical*
 * addresses — attacks that compose coordinates through the system's
 * own mapper are order-invariant by construction, which is exactly
 * what the `mapping-order` figure exploits to model attackers with a
 * *wrong* mapping assumption.
 */
enum class MappingPreset : std::uint8_t {
    /** column, bankgroup, bank, rank, row, channel — the default:
     *  consecutive lines walk a row, then interleave bank groups. */
    kRowInterleaved,
    /** bankgroup, bank, rank, column, row, channel — bank bits at the
     *  LSB end, so consecutive lines stripe across banks first. */
    kBankFirst,
    /** column, row, bankgroup, bank, rank, channel — channel stays the
     *  most-significant field but each bank's rows are physically
     *  contiguous below it (no bank interleaving). */
    kChannelLast,
};

/** All presets, for sweeps and tests. */
inline constexpr MappingPreset kAllMappingPresets[] = {
    MappingPreset::kRowInterleaved, MappingPreset::kBankFirst,
    MappingPreset::kChannelLast};

/** Field order of a preset (least to most significant). */
std::array<Field, kNumFields> presetOrder(MappingPreset preset);

/** Stable CLI/CSV name of a preset ("row-interleaved", ...). */
const char *presetName(MappingPreset preset);

// ------------------------------------------------------------ gf2 utils

/** GF(2) linear algebra over <= 64-dimensional bit vectors. Vectors
 *  are uint64 masks; used by the mapping compiler (invertibility, the
 *  inverse matrix) and by the mapping-recovery solver. */
namespace gf2 {

/** An incrementally built row-echelon basis of a subspace. */
class BitBasis
{
  public:
    /** Reduce @p v by the basis; the non-zero remainder (or 0 if @p v
     *  is in the span). */
    std::uint64_t reduce(std::uint64_t v) const;

    /** Insert @p v; returns true if it extended the span. */
    bool insert(std::uint64_t v);

    bool contains(std::uint64_t v) const { return reduce(v) == 0; }
    std::size_t rank() const { return rows_.size(); }
    const std::vector<std::uint64_t> &rows() const { return rows_; }

    /** True iff both bases span the same subspace. */
    bool sameSpan(const BitBasis &other) const;

    void clear() { rows_.clear(); }

  private:
    /** Echelon rows, strictly decreasing leading bit. */
    std::vector<std::uint64_t> rows_;
};

/** Basis of the annihilator {m : m & v has even parity for all v in
 *  span(@p basis)} within an @p nbits-dimensional space. Its rank is
 *  nbits - basis.rank(). */
std::vector<std::uint64_t> annihilator(const BitBasis &basis,
                                       std::uint32_t nbits);

} // namespace gf2

// ----------------------------------------------------------- MappingSpec

/**
 * Declarative mapping description — what SystemConfig carries and the
 * CLI parses. One of:
 *  - a named preset (`"row-interleaved"`, ...): the default family;
 *  - a custom field order (the legacy constructor-adapter form,
 *    spelled `"order:col,bg,ba,ra,row,ch"`);
 *  - an explicit XOR matrix (`"xor:..."`, grammar below).
 *
 * `xor:` grammar — semicolon-separated field definitions:
 *
 *     xor:col=6:12;bg=13+19,14,15;ba=16,17;ra=18;row=19:35
 *
 *  - each field (`col`/`bg`/`ba`/`ra`/`row`/`ch`) lists one term per
 *    output bit, LSB first, comma-separated;
 *  - a term is an XOR of physical-address bit indices joined by `+`
 *    (`13+19` = bit 13 XOR bit 19);
 *  - `lo:hi` is shorthand for the identity run `lo,lo+1,...,hi`;
 *  - bits 0-5 address bytes within the 64-byte line and cannot appear;
 *  - omitted fields have zero width (e.g. `ch` on a 1-channel system).
 *
 * Geometry checks (field widths must match log2 of the organisation's
 * sizes; the matrix must be invertible) happen when the spec is
 * compiled into a MappingFunction — a spec alone is geometry-free.
 * Equality is canonical-text equality: specs are normalized at
 * construction (fields in canonical order, bits ascending), so two
 * spellings of the same matrix compare equal, but a preset never
 * equals the `xor:` spelling of the same function.
 */
class MappingSpec
{
  public:
    enum class Kind : std::uint8_t { kPreset, kOrder, kXor };

    /** Defaults to the paper's row-interleaved mapping. */
    MappingSpec() : MappingSpec(MappingPreset::kRowInterleaved) {}

    /** Implicit: presets are the common spelling at call sites. */
    MappingSpec(MappingPreset preset); // NOLINT(google-explicit-*)

    /** The legacy raw-field-order family (deprecated-adapter path). */
    static MappingSpec
    fieldOrder(const std::array<Field, kNumFields> &order);

    /** Explicit XOR matrix from per-field output-bit masks over
     *  physical address bits (masks[field][j] = inputs of output bit
     *  j). The programmatic equivalent of the `xor:` text form. */
    static MappingSpec
    fromMasks(const std::array<std::vector<std::uint64_t>, kNumFields>
                  &masks);

    /** Parse a preset name, `order:` list, or `xor:` matrix. Returns
     *  false (with a message in @p error) on bad syntax. */
    static bool tryParse(const std::string &text, MappingSpec *out,
                         std::string *error);

    /** tryParse or panic — for trusted (non-CLI) call sites. */
    static MappingSpec parse(const std::string &text);

    /** Canonical spelling: the preset name, `order:...`, or a
     *  normalized `xor:...` string. Stable for CSV/CLI round trips:
     *  parse(str()) == *this. */
    const std::string &str() const { return text_; }

    Kind kind() const { return kind_; }
    bool isPreset() const { return kind_ == Kind::kPreset; }
    MappingPreset preset() const; ///< Asserts isPreset().

    /** Field order (preset / order kinds only; asserted). */
    const std::array<Field, kNumFields> &order() const;

    /** Per-field XOR masks over physical bits (xor kind only;
     *  asserted). masks()[f] has one entry per output bit, LSB
     *  first; an empty vector is a zero-width field. */
    const std::array<std::vector<std::uint64_t>, kNumFields> &
    masks() const;

    bool
    operator==(const MappingSpec &other) const
    {
        return text_ == other.text_;
    }
    bool
    operator!=(const MappingSpec &other) const
    {
        return !(*this == other);
    }

  private:
    MappingSpec(Kind kind, MappingPreset preset,
                const std::array<Field, kNumFields> &order,
                std::array<std::vector<std::uint64_t>, kNumFields> masks);

    Kind kind_ = Kind::kPreset;
    MappingPreset preset_ = MappingPreset::kRowInterleaved;
    std::array<Field, kNumFields> order_{};
    std::array<std::vector<std::uint64_t>, kNumFields> masks_{};
    std::string text_;
};

// ------------------------------------------------------- MappingFunction

/**
 * A MappingSpec compiled against a concrete geometry: the invertible
 * GF(2) matrix mapping line-index bits to coordinate-field bits, plus
 * its inverse for compose(). Requires power-of-two field sizes (an XOR
 * of bits can only permute a power-of-two space); construction panics
 * on non-power-of-two geometry, on field widths that do not match the
 * organisation, on out-of-range input bits, and on matrices without an
 * inverse — a non-invertible function would alias two physical lines
 * onto one DRAM cell and silently corrupt decode/compose round trips.
 */
class MappingFunction
{
  public:
    static constexpr std::uint32_t kLineBytes = 64;
    /** log2(kLineBytes): physical bits below this address bytes within
     *  a line and never enter the function. */
    static constexpr std::uint32_t kLineShift = 6;

    MappingFunction(const Organization &org, std::uint32_t channels,
                    const MappingSpec &spec);

    /** Decode a line index (phys / 64, already wrapped to capacity)
     *  into coordinates. Flat-bank caches are NOT filled here. */
    Address decodeLine(std::uint64_t line) const;

    /** Encode coordinates into a line index (asserts field ranges). */
    std::uint64_t composeLine(const Address &addr) const;

    /** Physical-address conveniences (wrap / line-align included). */
    Address
    decode(std::uint64_t phys_addr) const
    {
        return decodeLine((phys_addr % capacityBytes()) / kLineBytes);
    }
    std::uint64_t
    compose(const Address &addr) const
    {
        return composeLine(addr) * kLineBytes;
    }

    const MappingSpec &spec() const { return spec_; }
    std::uint32_t channels() const { return channels_; }

    /** Mapped line bits: capacityBytes() == 64 << totalBits(). */
    std::uint32_t totalBits() const { return total_bits_; }
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t{kLineBytes} << total_bits_;
    }

    std::uint32_t fieldWidth(Field f) const;
    std::uint32_t fieldSize(Field f) const; ///< 1u << fieldWidth(f).

    /** XOR mask over PHYSICAL address bits feeding output bit @p bit
     *  of field @p f — the ground truth the mapping-recovery figure
     *  verifies the attacker against. */
    std::uint64_t outputMask(Field f, std::uint32_t bit) const;

    /** outputMask over all bits of @p f (the field's function rows). */
    std::vector<std::uint64_t> fieldMasks(Field f) const;

    /** The compiled matrix re-spelled as an explicit `xor:` spec —
     *  the bridge from the preset family into the XOR family (used to
     *  derive "preset + folded bits" variants). */
    MappingSpec asXorSpec() const;

  private:
    std::uint32_t fieldOffset(Field f) const;
    void compileOrder(const std::array<Field, kNumFields> &order);
    void compileMasks(
        const std::array<std::vector<std::uint64_t>, kNumFields> &masks);
    void invert();

    MappingSpec spec_;
    std::uint32_t channels_ = 1;
    std::uint32_t total_bits_ = 0;
    /** Field widths / packed offsets in canonical field order. */
    std::array<std::uint32_t, kNumFields> widths_{};
    std::array<std::uint32_t, kNumFields> offsets_{};
    /** Forward rows: coordinate bit k = parity(fwd_[k] & line). */
    std::vector<std::uint64_t> fwd_;
    /** Inverse rows: line bit i = parity(inv_[i] & packed coords). */
    std::vector<std::uint64_t> inv_;
    /** Per-field fast path: when a field's rows are one contiguous
     *  identity run (every preset/order mapping), decode is a single
     *  shift+mask instead of width parity reductions. */
    std::array<std::int32_t, kNumFields> plain_shift_{};
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_MAPPING_HH
