#include "dram/address_mapper.hh"

#include "sim/logging.hh"

namespace leaky::dram {

std::array<Field, kNumFields>
presetOrder(MappingPreset preset)
{
    switch (preset) {
      case MappingPreset::kRowInterleaved:
        return {Field::kColumn, Field::kBankGroup, Field::kBank,
                Field::kRank, Field::kRow, Field::kChannel};
      case MappingPreset::kBankFirst:
        return {Field::kBankGroup, Field::kBank, Field::kRank,
                Field::kColumn, Field::kRow, Field::kChannel};
      case MappingPreset::kChannelLast:
        return {Field::kColumn, Field::kRow, Field::kBankGroup,
                Field::kBank, Field::kRank, Field::kChannel};
    }
    sim::panic("unknown mapping preset");
}

const char *
presetName(MappingPreset preset)
{
    switch (preset) {
      case MappingPreset::kRowInterleaved: return "row-interleaved";
      case MappingPreset::kBankFirst: return "bank-first";
      case MappingPreset::kChannelLast: return "channel-last";
    }
    sim::panic("unknown mapping preset");
}

AddressMapper::AddressMapper(const Organization &org, std::uint32_t channels,
                             std::array<Field, kNumFields> order)
    : org_(org), channels_(channels), order_(order)
{
    LEAKY_ASSERT(channels_ > 0, "need at least one channel");
    // A custom order must be a permutation of all six fields; a
    // duplicate (and the matching omission) would alias two coordinate
    // fields onto the same digits and break round trips silently.
    std::uint32_t seen = 0;
    for (Field f : order_)
        seen |= 1u << static_cast<unsigned>(f);
    LEAKY_ASSERT(seen == (1u << kNumFields) - 1,
                 "mapper order is not a permutation of all fields");
    std::uint64_t lines = 1;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        sizes_[i] = fieldSize(order_[i]);
        lines *= sizes_[i];
    }
    capacity_ = lines * kLineBytes;
}

std::uint32_t
AddressMapper::fieldSize(Field f) const
{
    switch (f) {
      case Field::kColumn: return org_.columns;
      case Field::kBankGroup: return org_.bankgroups;
      case Field::kBank: return org_.banks_per_group;
      case Field::kRank: return org_.ranks;
      case Field::kRow: return org_.rows;
      case Field::kChannel: return channels_;
    }
    sim::panic("unknown address field");
}

Address
AddressMapper::decode(std::uint64_t phys_addr) const
{
    std::uint64_t line = (phys_addr % capacity_) / kLineBytes;
    Address out;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        const std::uint32_t size = sizes_[i];
        const auto digit = static_cast<std::uint32_t>(line % size);
        line /= size;
        switch (order_[i]) {
          case Field::kColumn: out.column = digit; break;
          case Field::kBankGroup: out.bankgroup = digit; break;
          case Field::kBank: out.bank = digit; break;
          case Field::kRank: out.rank = digit; break;
          case Field::kRow: out.row = digit; break;
          case Field::kChannel: out.channel = digit; break;
        }
    }
    // Hot paths downstream (channel, scheduler, defenses) index by flat
    // bank; cache it once here instead of re-deriving per command.
    org_.annotate(out);
    return out;
}

std::uint64_t
AddressMapper::compose(const Address &addr) const
{
    std::uint64_t line = 0;
    std::uint64_t scale = 1;
    for (Field f : order_) {
        std::uint32_t digit = 0;
        switch (f) {
          case Field::kColumn: digit = addr.column; break;
          case Field::kBankGroup: digit = addr.bankgroup; break;
          case Field::kBank: digit = addr.bank; break;
          case Field::kRank: digit = addr.rank; break;
          case Field::kRow: digit = addr.row; break;
          case Field::kChannel: digit = addr.channel; break;
        }
        LEAKY_ASSERT(digit < fieldSize(f), "field %d out of range",
                     static_cast<int>(f));
        line += static_cast<std::uint64_t>(digit) * scale;
        scale *= fieldSize(f);
    }
    return line * kLineBytes;
}

} // namespace leaky::dram
