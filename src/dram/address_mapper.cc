#include "dram/address_mapper.hh"

namespace leaky::dram {

AddressMapper::AddressMapper(const Organization &org,
                             std::uint32_t channels,
                             const MappingSpec &spec)
    : org_(org), fn_(org, channels, spec)
{
}

Address
AddressMapper::decode(std::uint64_t phys_addr) const
{
    Address out = fn_.decode(phys_addr);
    // Hot paths downstream (channel, scheduler, defenses) index by flat
    // bank; cache it once here instead of re-deriving per command.
    org_.annotate(out);
    return out;
}

} // namespace leaky::dram
