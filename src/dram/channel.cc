#include "dram/channel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::dram {

DramChannel::DramChannel(const DramConfig &cfg)
    : cfg_(cfg), hooks_(&null_hooks_),
      open_row_(cfg.org.totalBanks(), kNoRow),
      banks_(cfg.org.totalBanks()),
      groups_(cfg.org.ranks * cfg.org.bankgroups),
      ranks_(cfg.org.ranks),
      open_count_(cfg.org.ranks, 0),
      rank_ready_(cfg.org.ranks, 0),
      cmd_counts_(kNumCommands, 0)
{
    for (auto &rank : ranks_)
        rank.act_window.assign(4, 0);
}

DramChannel::BankTiming &
DramChannel::bank(const Address &a)
{
    return banks_[cfg_.org.flatOf(a)];
}

const DramChannel::BankTiming &
DramChannel::bank(const Address &a) const
{
    return banks_[cfg_.org.flatOf(a)];
}

DramChannel::GroupState &
DramChannel::group(const Address &a)
{
    return groups_[cfg_.org.groupOf(a)];
}

const DramChannel::GroupState &
DramChannel::group(const Address &a) const
{
    return groups_[cfg_.org.groupOf(a)];
}

void
DramChannel::bump(Tick &slot, Tick value)
{
    slot = std::max(slot, value);
}

void
DramChannel::markOpen(std::uint32_t fb, std::uint32_t rank,
                      std::uint32_t row)
{
    open_row_[fb] = static_cast<std::int32_t>(row);
    open_count_[rank] += 1;
    banks_[fb].closed_at = sim::kTickMax; // open bank is never REF-ready
}

void
DramChannel::markClosed(std::uint32_t fb, std::uint32_t rank,
                        Tick closed_at)
{
    open_row_[fb] = kNoRow;
    open_count_[rank] -= 1;
    banks_[fb].closed_at = closed_at;
    bump(rank_ready_[rank], closed_at);
}

std::int32_t
DramChannel::openRow(const Address &addr) const
{
    return open_row_[cfg_.org.flatOf(addr)];
}

RowStatus
DramChannel::rowStatus(const Address &addr) const
{
    return rowStatusFlat(cfg_.org.flatOf(addr), addr.row);
}

bool
DramChannel::sameBankClosed(std::uint32_t rank, std::uint32_t bank_idx) const
{
    for (std::uint32_t bg = 0; bg < cfg_.org.bankgroups; ++bg) {
        if (open_row_[cfg_.org.flatBank(rank, bg, bank_idx)] != kNoRow)
            return false;
    }
    return true;
}

Tick
DramChannel::earliestIssue(Command cmd, const Address &addr) const
{
    const auto &b = bank(addr);
    const auto &g = group(addr);
    const auto &r = ranks_[addr.rank];
    const Timing &t = cfg_.timing;

    switch (cmd) {
      case Command::kAct: {
        Tick earliest = std::max({b.next_act, g.next_act, r.next_act,
                                  r.busy_until});
        // Four-activate window: the 4th-oldest ACT bounds the next one
        // (only once four activations have actually happened).
        if (r.acts_seen >= r.act_window.size()) {
            const Tick oldest = r.act_window[r.act_window_pos];
            earliest = std::max(earliest, oldest + t.tFAW);
        }
        return earliest;
      }
      case Command::kPre:
        return std::max(b.next_pre, r.busy_until);
      case Command::kPreAll: {
        Tick earliest = r.busy_until;
        if (open_count_[addr.rank] == 0)
            return earliest;
        const auto per_rank = cfg_.org.banksPerRank();
        for (std::uint32_t i = 0; i < per_rank; ++i) {
            const auto fb = addr.rank * per_rank + i;
            if (open_row_[fb] != kNoRow)
                earliest = std::max(earliest, banks_[fb].next_pre);
        }
        return earliest;
      }
      case Command::kRd:
        return std::max({b.next_rd, g.next_rd, chan_next_rd_,
                         r.busy_until});
      case Command::kWr:
        return std::max({b.next_wr, g.next_wr, chan_next_wr_,
                         r.busy_until});
      case Command::kRef:
      case Command::kRfmAll:
        // An open bank holds closed_at = kTickMax, so the old bank walk
        // reported "never" while any bank was open; the O(1) running
        // max keeps that contract through the open-count gate.
        if (open_count_[addr.rank] != 0)
            return sim::kTickMax;
        return std::max(r.busy_until, rank_ready_[addr.rank]);
      case Command::kRfmSameBank: {
        Tick earliest = r.busy_until;
        for (std::uint32_t bg = 0; bg < cfg_.org.bankgroups; ++bg) {
            const auto &bs =
                banks_[cfg_.org.flatBank(addr.rank, bg, addr.bank)];
            earliest = std::max(earliest, bs.closed_at);
        }
        return earliest;
      }
      case Command::kRfmOneBank:
      case Command::kVrr:
        return std::max(r.busy_until, b.closed_at);
    }
    sim::panic("unknown command");
}

Tick
DramChannel::issue(Command cmd, const Address &addr, Tick now,
                   Tick rfm_latency, bool during_backoff)
{
    // Re-deriving earliestIssue() here would double the per-command
    // work, so this is debug-only; the controller is responsible for
    // never issuing early.
    LEAKY_DCHECK(now >= earliestIssue(cmd, addr),
                 "%s to %s violates timing (now=%llu, earliest=%llu)",
                 commandName(cmd), addr.str().c_str(),
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(earliestIssue(cmd, addr)));
    cmd_counts_[static_cast<std::size_t>(cmd)] += 1;

    switch (cmd) {
      case Command::kAct:
        issueAct(addr, now);
        return now;
      case Command::kPre:
        issuePre(addr, now);
        return now + cfg_.timing.tRP;
      case Command::kPreAll:
        issuePreAll(addr.rank, now);
        return now + cfg_.timing.tRP;
      case Command::kRd:
        return issueRead(addr, now);
      case Command::kWr:
        return issueWrite(addr, now);
      case Command::kRef:
        return issueRefresh(addr.rank, now);
      case Command::kRfmAll:
      case Command::kRfmSameBank:
      case Command::kRfmOneBank:
        return issueRfm(cmd, addr, now,
                        rfm_latency ? rfm_latency : cfg_.timing.tRFM,
                        during_backoff);
      case Command::kVrr:
        return issueRfm(cmd, addr, now,
                        rfm_latency ? rfm_latency : cfg_.timing.tVRR,
                        during_backoff);
    }
    sim::panic("unknown command");
}

void
DramChannel::issueAct(const Address &addr, Tick now)
{
    const auto fb = cfg_.org.flatOf(addr);
    auto &b = banks_[fb];
    LEAKY_ASSERT(open_row_[fb] == kNoRow, "ACT to open bank %s",
                 addr.str().c_str());
    const Timing &t = cfg_.timing;

    markOpen(fb, addr.rank, addr.row);
    bump(b.next_rd, now + t.tRCD);
    bump(b.next_wr, now + t.tRCD);
    bump(b.next_pre, now + t.tRAS);
    bump(b.next_act, now + t.tRC);

    bump(group(addr).next_act, now + t.tRRD_L);
    auto &r = ranks_[addr.rank];
    bump(r.next_act, now + t.tRRD_S);
    r.act_window[r.act_window_pos] = now;
    r.act_window_pos = (r.act_window_pos + 1) % r.act_window.size();
    r.acts_seen += 1;

    hooks_->onActivate(addr, now);
}

void
DramChannel::issuePre(const Address &addr, Tick now)
{
    const auto fb = cfg_.org.flatOf(addr);
    LEAKY_ASSERT(open_row_[fb] != kNoRow, "PRE to closed bank %s",
                 addr.str().c_str());
    Address closing = addr;
    closing.row = static_cast<std::uint32_t>(open_row_[fb]);

    markClosed(fb, addr.rank, now + cfg_.timing.tRP);
    bump(banks_[fb].next_act, now + cfg_.timing.tRP);

    hooks_->onPrecharge(closing, now);
}

void
DramChannel::issuePreAll(std::uint32_t rank, Tick now)
{
    const auto per_rank = cfg_.org.banksPerRank();
    for (std::uint32_t i = 0; i < per_rank; ++i) {
        const auto fb = rank * per_rank + i;
        if (open_row_[fb] == kNoRow)
            continue;
        Address closing;
        closing.rank = rank;
        closing.bankgroup = i / cfg_.org.banks_per_group;
        closing.bank = i % cfg_.org.banks_per_group;
        closing.row = static_cast<std::uint32_t>(open_row_[fb]);
        closing.flat_bank = fb;
        closing.flat_group = fb / cfg_.org.banks_per_group;
        markClosed(fb, rank, now + cfg_.timing.tRP);
        bump(banks_[fb].next_act, now + cfg_.timing.tRP);
        hooks_->onPrecharge(closing, now);
    }
}

Tick
DramChannel::issueRead(const Address &addr, Tick now)
{
    const auto fb = cfg_.org.flatOf(addr);
    auto &b = banks_[fb];
    LEAKY_ASSERT(open_row_[fb] == static_cast<std::int32_t>(addr.row),
                 "RD to wrong/closed row in %s", addr.str().c_str());
    const Timing &t = cfg_.timing;

    bump(b.next_pre, now + t.tRTP);
    bump(group(addr).next_rd, now + t.tCCD_L);
    bump(group(addr).next_wr, now + t.tCCD_L);
    bump(chan_next_rd_, now + t.tCCD_S);
    // Read-to-write turnaround: WR may not collide with the read burst.
    bump(chan_next_wr_, now + t.tCCD_S + t.tRTW);
    return now + t.tCL + t.tBURST;
}

Tick
DramChannel::issueWrite(const Address &addr, Tick now)
{
    const auto fb = cfg_.org.flatOf(addr);
    auto &b = banks_[fb];
    LEAKY_ASSERT(open_row_[fb] == static_cast<std::int32_t>(addr.row),
                 "WR to wrong/closed row in %s", addr.str().c_str());
    const Timing &t = cfg_.timing;

    const Tick burst_end = now + t.tCWL + t.tBURST;
    bump(b.next_pre, burst_end + t.tWR);
    bump(b.next_rd, burst_end + t.tWTR);
    bump(group(addr).next_rd, burst_end + t.tWTR);
    bump(group(addr).next_wr, now + t.tCCD_L);
    bump(chan_next_wr_, now + t.tCCD_S);
    bump(chan_next_rd_, burst_end + t.tWTR);
    return burst_end;
}

Tick
DramChannel::issueRefresh(std::uint32_t rank, Tick now)
{
    LEAKY_ASSERT(allBanksClosed(rank), "REF with open banks on rank %u",
                 rank);
    auto &r = ranks_[rank];
    r.busy_until = now + cfg_.timing.tRFC;
    hooks_->onRefresh(rank, now);
    return r.busy_until;
}

Tick
DramChannel::issueRfm(Command kind, const Address &addr, Tick now,
                      Tick latency, bool during_backoff)
{
    auto &r = ranks_[addr.rank];
    if (kind == Command::kRfmAll) {
        LEAKY_ASSERT(allBanksClosed(addr.rank),
                     "RFMab with open banks on rank %u", addr.rank);
        r.busy_until = now + latency;
    } else if (kind == Command::kRfmOneBank || kind == Command::kVrr) {
        const auto fb = cfg_.org.flatOf(addr);
        auto &b = banks_[fb];
        LEAKY_ASSERT(open_row_[fb] == kNoRow,
                     "%s with open target bank %s", commandName(kind),
                     addr.str().c_str());
        bump(b.next_act, now + latency);
        bump(b.closed_at, now + latency);
        bump(rank_ready_[addr.rank], b.closed_at);
    } else {
        LEAKY_ASSERT(sameBankClosed(addr.rank, addr.bank),
                     "RFMsb with open target banks on rank %u", addr.rank);
        // Block the addressed bank in every bank group.
        for (std::uint32_t bg = 0; bg < cfg_.org.bankgroups; ++bg) {
            auto &b = banks_[cfg_.org.flatBank(addr.rank, bg, addr.bank)];
            bump(b.next_act, now + latency);
            bump(b.closed_at, now + latency);
            bump(rank_ready_[addr.rank], b.closed_at);
        }
    }
    hooks_->onRfm(kind, addr, during_backoff, now);
    return now + latency;
}

std::uint64_t
DramChannel::commandCount(Command cmd) const
{
    return cmd_counts_[static_cast<std::size_t>(cmd)];
}

} // namespace leaky::dram
