/**
 * @file
 * Basic DRAM vocabulary: commands, device coordinates, and helpers shared
 * by the device model, the memory controller, and the defenses.
 */

#ifndef LEAKY_DRAM_TYPES_HH
#define LEAKY_DRAM_TYPES_HH

#include <cstdint>
#include <string>

namespace leaky::dram {

/** DDR5 command subset modelled by the simulator. */
enum class Command : std::uint8_t {
    kAct,        ///< Activate a row (open into the row buffer).
    kPre,        ///< Precharge one bank.
    kPreAll,     ///< Precharge all banks in a rank.
    kRd,         ///< Column read (one cache line burst).
    kWr,         ///< Column write.
    kRef,        ///< All-bank periodic refresh (blocks rank for tRFC).
    kRfmAll,     ///< Refresh management, all banks (blocks rank).
    kRfmSameBank, ///< Refresh management, same bank in every bank group.
    kRfmOneBank, ///< Bank-Level PRAC back-off: blocks exactly one bank.
    /**
     * Victim-row refresh (targeted refresh): a tracker defense
     * (Graphene / Hydra) refreshes the neighbours of one identified
     * aggressor row. Blocks exactly one bank for tVRR (blast radius 2:
     * four row cycles) -- the preventive action the tracker covert
     * channels observe. Also reused with a short latency override to
     * model Hydra's counter-cache fill traffic.
     */
    kVrr
};

/** Number of distinct Command values (for stats arrays). */
inline constexpr std::size_t kNumCommands = 10;

/** Human-readable command mnemonic. */
const char *commandName(Command cmd);

/** Coordinates of a cache-line-sized column within the DRAM hierarchy. */
struct Address {
    /** Sentinel for unset cached flat indices. */
    static constexpr std::uint32_t kNoFlat = ~std::uint32_t{0};

    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bankgroup = 0;
    std::uint32_t bank = 0; ///< Bank index within the bank group.
    std::uint32_t row = 0;
    std::uint32_t column = 0; ///< Cache-line index within the row.

    /**
     * Cached flat (rank, bankgroup, bank) index within the channel,
     * filled by AddressMapper::decode / Organization::annotate so the
     * channel and scheduler hot paths skip the flattening multiplies.
     * kNoFlat means "not cached"; consumers fall back to computing it.
     * Mutating rank/bankgroup/bank invalidates the cache -- re-annotate.
     */
    std::uint32_t flat_bank = kNoFlat;
    /** Cached flat (rank, bankgroup) index; see flat_bank. */
    std::uint32_t flat_group = kNoFlat;

    bool
    sameBank(const Address &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bankgroup == o.bankgroup && bank == o.bank;
    }

    bool
    sameRow(const Address &o) const
    {
        return sameBank(o) && row == o.row;
    }

    std::string str() const;
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_TYPES_HH
