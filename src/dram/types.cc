#include "dram/types.hh"

#include <cstdio>

namespace leaky::dram {

const char *
commandName(Command cmd)
{
    switch (cmd) {
      case Command::kAct: return "ACT";
      case Command::kPre: return "PRE";
      case Command::kPreAll: return "PREab";
      case Command::kRd: return "RD";
      case Command::kWr: return "WR";
      case Command::kRef: return "REF";
      case Command::kRfmAll: return "RFMab";
      case Command::kRfmSameBank: return "RFMsb";
      case Command::kRfmOneBank: return "RFMpb";
      case Command::kVrr: return "VRR";
    }
    return "?";
}

std::string
Address::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "ch%u.ra%u.bg%u.ba%u.row%u.col%u",
                  channel, rank, bankgroup, bank, row, column);
    return buf;
}

} // namespace leaky::dram
