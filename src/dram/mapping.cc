#include "dram/mapping.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "sim/logging.hh"

namespace leaky::dram {

namespace {

/** Canonical presentation order of fields in specs and packed
 *  coordinate vectors (== enum order). */
constexpr Field kCanonicalFields[kNumFields] = {
    Field::kColumn, Field::kBankGroup, Field::kBank,
    Field::kRank,   Field::kRow,       Field::kChannel};

std::size_t
indexOf(Field f)
{
    return static_cast<std::size_t>(f);
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint32_t
log2OfPow2(std::uint64_t v)
{
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        bits += 1;
    }
    return bits;
}

std::uint32_t
parity(std::uint64_t v)
{
    return static_cast<std::uint32_t>(__builtin_popcountll(v)) & 1u;
}

} // namespace

const char *
fieldName(Field f)
{
    switch (f) {
      case Field::kColumn: return "col";
      case Field::kBankGroup: return "bg";
      case Field::kBank: return "ba";
      case Field::kRank: return "ra";
      case Field::kRow: return "row";
      case Field::kChannel: return "ch";
    }
    sim::panic("unknown address field");
}

std::array<Field, kNumFields>
presetOrder(MappingPreset preset)
{
    switch (preset) {
      case MappingPreset::kRowInterleaved:
        return {Field::kColumn, Field::kBankGroup, Field::kBank,
                Field::kRank, Field::kRow, Field::kChannel};
      case MappingPreset::kBankFirst:
        return {Field::kBankGroup, Field::kBank, Field::kRank,
                Field::kColumn, Field::kRow, Field::kChannel};
      case MappingPreset::kChannelLast:
        return {Field::kColumn, Field::kRow, Field::kBankGroup,
                Field::kBank, Field::kRank, Field::kChannel};
    }
    sim::panic("unknown mapping preset");
}

const char *
presetName(MappingPreset preset)
{
    switch (preset) {
      case MappingPreset::kRowInterleaved: return "row-interleaved";
      case MappingPreset::kBankFirst: return "bank-first";
      case MappingPreset::kChannelLast: return "channel-last";
    }
    sim::panic("unknown mapping preset");
}

// -------------------------------------------------------------- gf2 utils

namespace gf2 {

std::uint64_t
BitBasis::reduce(std::uint64_t v) const
{
    for (std::uint64_t row : rows_) {
        if (v == 0)
            return 0;
        // Rows are in strictly decreasing leading-bit order; XOR when
        // the row's leading bit is set in the remainder.
        const int top = 63 - __builtin_clzll(row);
        if ((v >> top) & 1u)
            v ^= row;
    }
    return v;
}

bool
BitBasis::insert(std::uint64_t v)
{
    v = reduce(v);
    if (v == 0)
        return false;
    const int top = 63 - __builtin_clzll(v);
    // Keep echelon order (strictly decreasing leading bit) so reduce()
    // stays a single forward pass.
    auto it = rows_.begin();
    while (it != rows_.end() && (63 - __builtin_clzll(*it)) > top)
        ++it;
    rows_.insert(it, v);
    return true;
}

bool
BitBasis::sameSpan(const BitBasis &other) const
{
    if (rank() != other.rank())
        return false;
    for (std::uint64_t row : rows_)
        if (!other.contains(row))
            return false;
    return true;
}

std::vector<std::uint64_t>
annihilator(const BitBasis &basis, std::uint32_t nbits)
{
    LEAKY_ASSERT(nbits <= 64, "gf2 vectors are at most 64-dimensional");
    // Gauss-Jordan on the basis rows to find, for each non-pivot
    // column pattern, a mask orthogonal to every row. Equivalent,
    // simpler formulation: a mask m is in the annihilator iff
    // parity(m & row) == 0 for every (reduced) row; solve by treating
    // each candidate unit bit and eliminating.
    std::vector<std::uint64_t> rows = basis.rows();
    // Reduce to RREF: clear each pivot bit from every other row.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const int pivot = 63 - __builtin_clzll(rows[i]);
        for (std::size_t j = 0; j < rows.size(); ++j) {
            if (j != i && ((rows[j] >> pivot) & 1u))
                rows[j] ^= rows[i];
        }
    }
    std::uint64_t pivots = 0;
    for (std::uint64_t row : rows)
        pivots |= std::uint64_t{1} << (63 - __builtin_clzll(row));

    // One annihilator vector per free (non-pivot) column c: bit c set,
    // plus, for every row whose pivot is p and which has column c set,
    // bit p set — the standard null-space construction, transposed to
    // the orthogonal-complement problem via the RREF symmetry.
    std::vector<std::uint64_t> out;
    for (std::uint32_t c = 0; c < nbits; ++c) {
        if ((pivots >> c) & 1u)
            continue;
        std::uint64_t m = std::uint64_t{1} << c;
        for (std::uint64_t row : rows) {
            const int pivot = 63 - __builtin_clzll(row);
            if ((row >> c) & 1u)
                m |= std::uint64_t{1} << pivot;
        }
        out.push_back(m);
    }
    return out;
}

} // namespace gf2

// ------------------------------------------------------------ MappingSpec

namespace {

const char *
kindPrefix(MappingSpec::Kind kind)
{
    switch (kind) {
      case MappingSpec::Kind::kPreset: return "";
      case MappingSpec::Kind::kOrder: return "order:";
      case MappingSpec::Kind::kXor: return "xor:";
    }
    sim::panic("unknown mapping-spec kind");
}

std::string
orderText(const std::array<Field, kNumFields> &order)
{
    std::string text = kindPrefix(MappingSpec::Kind::kOrder);
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0)
            text += ",";
        text += fieldName(order[i]);
    }
    return text;
}

std::string
xorText(const std::array<std::vector<std::uint64_t>, kNumFields> &masks)
{
    std::string text = kindPrefix(MappingSpec::Kind::kXor);
    bool first_field = true;
    for (Field f : kCanonicalFields) {
        const auto &field_masks = masks[indexOf(f)];
        if (field_masks.empty())
            continue;
        if (!first_field)
            text += ";";
        first_field = false;
        text += fieldName(f);
        text += "=";
        for (std::size_t j = 0; j < field_masks.size(); ++j) {
            if (j > 0)
                text += ",";
            std::uint64_t m = field_masks[j];
            bool first_bit = true;
            while (m != 0) {
                const int bit = __builtin_ctzll(m);
                m &= m - 1;
                if (!first_bit)
                    text += "+";
                first_bit = false;
                text += std::to_string(bit);
            }
        }
    }
    return text;
}

bool
fieldByName(const std::string &name, Field *out)
{
    for (Field f : kCanonicalFields) {
        if (name == fieldName(f)) {
            *out = f;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        parts.push_back(text.substr(start, pos - start));
        if (pos == std::string::npos)
            return parts;
        start = pos + 1;
    }
}

bool
parseBit(const std::string &token, std::uint32_t *out,
         std::string *error)
{
    if (token.empty() || token.size() > 2 ||
        !std::all_of(token.begin(), token.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
        *error = "expected a physical bit index, got '" + token + "'";
        return false;
    }
    const unsigned long value = std::stoul(token);
    if (value < MappingFunction::kLineShift) {
        *error = "bit " + token + " addresses bytes within a cache "
                 "line (bits 0-5 never enter the mapping)";
        return false;
    }
    if (value >= 64) {
        *error = "bit " + token + " is out of the 64-bit address range";
        return false;
    }
    *out = static_cast<std::uint32_t>(value);
    return true;
}

bool
parseXorBody(const std::string &body,
             std::array<std::vector<std::uint64_t>, kNumFields> *masks,
             std::string *error)
{
    if (body.empty()) {
        *error = "empty xor: spec";
        return false;
    }
    std::uint32_t seen = 0;
    for (const std::string &field_def : splitOn(body, ';')) {
        const std::size_t eq = field_def.find('=');
        if (eq == std::string::npos) {
            *error = "field definition '" + field_def +
                     "' has no '='";
            return false;
        }
        Field field;
        if (!fieldByName(field_def.substr(0, eq), &field)) {
            *error = "unknown field '" + field_def.substr(0, eq) +
                     "' (use col/bg/ba/ra/row/ch)";
            return false;
        }
        if (seen & (1u << indexOf(field))) {
            *error = std::string("duplicate field '") +
                     fieldName(field) + "'";
            return false;
        }
        seen |= 1u << indexOf(field);
        auto &out = (*masks)[indexOf(field)];
        const std::string terms = field_def.substr(eq + 1);
        if (terms.empty())
            continue; // Explicit zero-width field.
        for (const std::string &term : splitOn(terms, ',')) {
            const std::size_t colon = term.find(':');
            if (colon != std::string::npos) {
                // lo:hi — an identity run, one output bit per input.
                std::uint32_t lo = 0, hi = 0;
                if (!parseBit(term.substr(0, colon), &lo, error) ||
                    !parseBit(term.substr(colon + 1), &hi, error))
                    return false;
                if (lo > hi) {
                    *error = "descending range '" + term + "'";
                    return false;
                }
                for (std::uint32_t bit = lo; bit <= hi; ++bit)
                    out.push_back(std::uint64_t{1} << bit);
                continue;
            }
            std::uint64_t mask = 0;
            for (const std::string &token : splitOn(term, '+')) {
                std::uint32_t bit = 0;
                if (!parseBit(token, &bit, error))
                    return false;
                const std::uint64_t b = std::uint64_t{1} << bit;
                if (mask & b) {
                    *error = "bit " + token + " appears twice in '" +
                             term + "' (an XOR of a bit with itself "
                             "cancels)";
                    return false;
                }
                mask |= b;
            }
            out.push_back(mask);
        }
    }
    return true;
}

} // namespace

MappingSpec::MappingSpec(MappingPreset preset)
    : kind_(Kind::kPreset), preset_(preset), order_(presetOrder(preset)),
      text_(presetName(preset))
{
}

MappingSpec::MappingSpec(
    Kind kind, MappingPreset preset,
    const std::array<Field, kNumFields> &order,
    std::array<std::vector<std::uint64_t>, kNumFields> masks)
    : kind_(kind), preset_(preset), order_(order),
      masks_(std::move(masks))
{
    text_ = kind_ == Kind::kOrder ? orderText(order_) : xorText(masks_);
}

MappingSpec
MappingSpec::fieldOrder(const std::array<Field, kNumFields> &order)
{
    // An order equal to a preset's canonicalizes to the preset itself,
    // so the legacy adapter lands on the same spec (and compares
    // equal) as the modern spelling.
    for (MappingPreset preset : kAllMappingPresets)
        if (order == presetOrder(preset))
            return MappingSpec(preset);
    std::uint32_t seen = 0;
    for (Field f : order)
        seen |= 1u << indexOf(f);
    LEAKY_ASSERT(seen == (1u << kNumFields) - 1,
                 "mapper order is not a permutation of all fields");
    return MappingSpec(Kind::kOrder, MappingPreset::kRowInterleaved,
                       order, {});
}

MappingSpec
MappingSpec::fromMasks(
    const std::array<std::vector<std::uint64_t>, kNumFields> &masks)
{
    for (const auto &field_masks : masks)
        for (std::uint64_t mask : field_masks)
            LEAKY_ASSERT(
                mask != 0 &&
                    (mask &
                     ((std::uint64_t{1} << MappingFunction::kLineShift) -
                      1)) == 0,
                "mapping masks must use physical bits >= %u",
                MappingFunction::kLineShift);
    return MappingSpec(Kind::kXor, MappingPreset::kRowInterleaved,
                       presetOrder(MappingPreset::kRowInterleaved),
                       masks);
}

bool
MappingSpec::tryParse(const std::string &text, MappingSpec *out,
                      std::string *error)
{
    for (MappingPreset preset : kAllMappingPresets) {
        if (text == presetName(preset)) {
            *out = MappingSpec(preset);
            return true;
        }
    }
    const std::string order_prefix = kindPrefix(Kind::kOrder);
    if (text.rfind(order_prefix, 0) == 0) {
        const auto names =
            splitOn(text.substr(order_prefix.size()), ',');
        if (names.size() != kNumFields) {
            *error = "order: needs all " +
                     std::to_string(kNumFields) + " fields";
            return false;
        }
        std::array<Field, kNumFields> order{};
        std::uint32_t seen = 0;
        for (std::size_t i = 0; i < kNumFields; ++i) {
            if (!fieldByName(names[i], &order[i])) {
                *error = "unknown field '" + names[i] + "'";
                return false;
            }
            if (seen & (1u << indexOf(order[i]))) {
                *error = "duplicate field '" + names[i] + "'";
                return false;
            }
            seen |= 1u << indexOf(order[i]);
        }
        *out = fieldOrder(order);
        return true;
    }
    const std::string xor_prefix = kindPrefix(Kind::kXor);
    if (text.rfind(xor_prefix, 0) == 0) {
        std::array<std::vector<std::uint64_t>, kNumFields> masks{};
        if (!parseXorBody(text.substr(xor_prefix.size()), &masks,
                          error))
            return false;
        *out = fromMasks(masks);
        return true;
    }
    *error = "unknown mapping '" + text +
             "' (expected a preset name, order:..., or xor:...)";
    return false;
}

MappingSpec
MappingSpec::parse(const std::string &text)
{
    MappingSpec spec;
    std::string error;
    if (!tryParse(text, &spec, &error))
        sim::panic("bad mapping spec: %s", error.c_str());
    return spec;
}

MappingPreset
MappingSpec::preset() const
{
    LEAKY_ASSERT(isPreset(), "mapping spec '%s' is not a preset",
                 text_.c_str());
    return preset_;
}

const std::array<Field, kNumFields> &
MappingSpec::order() const
{
    LEAKY_ASSERT(kind_ != Kind::kXor,
                 "xor mapping '%s' has no field order", text_.c_str());
    return order_;
}

const std::array<std::vector<std::uint64_t>, kNumFields> &
MappingSpec::masks() const
{
    LEAKY_ASSERT(kind_ == Kind::kXor,
                 "mapping spec '%s' has no explicit masks",
                 text_.c_str());
    return masks_;
}

// -------------------------------------------------------- MappingFunction

MappingFunction::MappingFunction(const Organization &org,
                                 std::uint32_t channels,
                                 const MappingSpec &spec)
    : spec_(spec), channels_(channels)
{
    LEAKY_ASSERT(channels_ > 0, "need at least one channel");
    const std::array<std::uint64_t, kNumFields> sizes = {
        org.columns, org.bankgroups, org.banks_per_group,
        org.ranks,   org.rows,       channels_};
    total_bits_ = 0;
    for (Field f : kCanonicalFields) {
        const std::uint64_t size = sizes[indexOf(f)];
        LEAKY_ASSERT(isPow2(size),
                     "XOR mapping functions need a power-of-two "
                     "geometry; field %s has size %llu",
                     fieldName(f),
                     static_cast<unsigned long long>(size));
        widths_[indexOf(f)] = log2OfPow2(size);
    }
    for (Field f : kCanonicalFields) {
        offsets_[indexOf(f)] = total_bits_;
        total_bits_ += widths_[indexOf(f)];
    }
    LEAKY_ASSERT(total_bits_ >= 1 && total_bits_ + kLineShift <= 63,
                 "mapped address space out of range (%u line bits)",
                 total_bits_);
    fwd_.assign(total_bits_, 0);
    if (spec_.kind() == MappingSpec::Kind::kXor)
        compileMasks(spec_.masks());
    else
        compileOrder(spec_.order());
    invert();

    // Plain-field fast path: a field whose forward rows are one
    // contiguous identity run decodes with a shift+mask and composes
    // with a shift+or; every preset/order mapping is all-plain, which
    // keeps the legacy family's decode cost unchanged.
    for (Field f : kCanonicalFields) {
        const std::size_t fi = indexOf(f);
        plain_shift_[fi] = -1;
        const std::uint32_t width = widths_[fi];
        if (width == 0) {
            plain_shift_[fi] = 0;
            continue;
        }
        const std::uint64_t first = fwd_[offsets_[fi]];
        if (__builtin_popcountll(first) != 1)
            continue;
        const int shift = __builtin_ctzll(first);
        bool plain = true;
        for (std::uint32_t j = 0; j < width; ++j) {
            if (fwd_[offsets_[fi] + j] !=
                std::uint64_t{1} << (shift + j)) {
                plain = false;
                break;
            }
        }
        if (plain)
            plain_shift_[fi] = shift;
    }
}

void
MappingFunction::compileOrder(const std::array<Field, kNumFields> &order)
{
    std::uint32_t seen = 0;
    for (Field f : order)
        seen |= 1u << indexOf(f);
    LEAKY_ASSERT(seen == (1u << kNumFields) - 1,
                 "mapper order is not a permutation of all fields");
    // Least-to-most significant: slot i's field takes the next
    // width(f) line bits — exactly the mixed-radix digit layout of
    // the legacy mapper for power-of-two sizes.
    std::uint32_t line_bit = 0;
    for (Field f : order) {
        const std::size_t fi = indexOf(f);
        for (std::uint32_t j = 0; j < widths_[fi]; ++j) {
            fwd_[offsets_[fi] + j] = std::uint64_t{1} << line_bit;
            line_bit += 1;
        }
    }
}

void
MappingFunction::compileMasks(
    const std::array<std::vector<std::uint64_t>, kNumFields> &masks)
{
    for (Field f : kCanonicalFields) {
        const std::size_t fi = indexOf(f);
        LEAKY_ASSERT(
            masks[fi].size() == widths_[fi],
            "mapping '%s': field %s defines %zu output bits but the "
            "geometry needs %u",
            spec_.str().c_str(), fieldName(f), masks[fi].size(),
            widths_[fi]);
        for (std::uint32_t j = 0; j < widths_[fi]; ++j) {
            const std::uint64_t phys_mask = masks[fi][j];
            const std::uint64_t line_mask = phys_mask >> kLineShift;
            LEAKY_ASSERT(
                (line_mask << kLineShift) == phys_mask &&
                    line_mask < (std::uint64_t{1} << total_bits_),
                "mapping '%s': field %s bit %u uses physical bits "
                "outside the mapped range [%u, %u)",
                spec_.str().c_str(), fieldName(f), j, kLineShift,
                kLineShift + total_bits_);
            fwd_[offsets_[fi] + j] = line_mask;
        }
    }
}

void
MappingFunction::invert()
{
    // Gauss-Jordan over GF(2): eliminate [fwd | I] to [I | inv]. A
    // singular matrix has no inverse — two physical lines would alias
    // onto one DRAM cell — and is rejected here, mirroring the legacy
    // "order must be a permutation" construction assert.
    std::vector<std::uint64_t> m = fwd_;
    inv_.assign(total_bits_, 0);
    for (std::uint32_t i = 0; i < total_bits_; ++i)
        inv_[i] = std::uint64_t{1} << i;
    for (std::uint32_t col = 0; col < total_bits_; ++col) {
        std::uint32_t pivot = col;
        while (pivot < total_bits_ && !((m[pivot] >> col) & 1u))
            pivot += 1;
        LEAKY_ASSERT(pivot < total_bits_,
                     "mapping '%s' is not invertible (no pivot for "
                     "line bit %u): it aliases distinct physical "
                     "lines onto one DRAM cell",
                     spec_.str().c_str(), col);
        std::swap(m[col], m[pivot]);
        std::swap(inv_[col], inv_[pivot]);
        for (std::uint32_t row = 0; row < total_bits_; ++row) {
            if (row != col && ((m[row] >> col) & 1u)) {
                m[row] ^= m[col];
                inv_[row] ^= inv_[col];
            }
        }
    }
    // m is now the identity; inv_ rows are indexed by line bit, but
    // eliminated in coordinate space: row i of inv_ gives line bit i
    // as a parity over coordinate bits. The elimination above
    // produced the inverse in row order matching the pivots, i.e.
    // inv_[i] is the solve for line bit i directly.
}

std::uint32_t
MappingFunction::fieldOffset(Field f) const
{
    return offsets_[indexOf(f)];
}

std::uint32_t
MappingFunction::fieldWidth(Field f) const
{
    return widths_[indexOf(f)];
}

std::uint32_t
MappingFunction::fieldSize(Field f) const
{
    return 1u << widths_[indexOf(f)];
}

std::uint64_t
MappingFunction::outputMask(Field f, std::uint32_t bit) const
{
    LEAKY_ASSERT(bit < fieldWidth(f), "field %s has no output bit %u",
                 fieldName(f), bit);
    return fwd_[fieldOffset(f) + bit] << kLineShift;
}

std::vector<std::uint64_t>
MappingFunction::fieldMasks(Field f) const
{
    std::vector<std::uint64_t> out;
    for (std::uint32_t j = 0; j < fieldWidth(f); ++j)
        out.push_back(outputMask(f, j));
    return out;
}

MappingSpec
MappingFunction::asXorSpec() const
{
    std::array<std::vector<std::uint64_t>, kNumFields> masks{};
    for (Field f : kCanonicalFields)
        masks[indexOf(f)] = fieldMasks(f);
    return MappingSpec::fromMasks(masks);
}

Address
MappingFunction::decodeLine(std::uint64_t line) const
{
    LEAKY_DCHECK(line < (std::uint64_t{1} << total_bits_),
                 "line index out of mapped range");
    Address out;
    for (Field f : kCanonicalFields) {
        const std::size_t fi = indexOf(f);
        const std::uint32_t width = widths_[fi];
        std::uint32_t digit;
        if (plain_shift_[fi] >= 0) {
            digit = static_cast<std::uint32_t>(
                (line >> plain_shift_[fi]) & ((1u << width) - 1));
        } else {
            digit = 0;
            for (std::uint32_t j = 0; j < width; ++j)
                digit |= parity(fwd_[offsets_[fi] + j] & line) << j;
        }
        switch (f) {
          case Field::kColumn: out.column = digit; break;
          case Field::kBankGroup: out.bankgroup = digit; break;
          case Field::kBank: out.bank = digit; break;
          case Field::kRank: out.rank = digit; break;
          case Field::kRow: out.row = digit; break;
          case Field::kChannel: out.channel = digit; break;
        }
    }
    return out;
}

std::uint64_t
MappingFunction::composeLine(const Address &addr) const
{
    std::uint64_t coords = 0;
    for (Field f : kCanonicalFields) {
        std::uint32_t digit = 0;
        switch (f) {
          case Field::kColumn: digit = addr.column; break;
          case Field::kBankGroup: digit = addr.bankgroup; break;
          case Field::kBank: digit = addr.bank; break;
          case Field::kRank: digit = addr.rank; break;
          case Field::kRow: digit = addr.row; break;
          case Field::kChannel: digit = addr.channel; break;
        }
        LEAKY_ASSERT(digit < fieldSize(f), "field %d out of range",
                     static_cast<int>(f));
        coords |= std::uint64_t{digit} << offsets_[indexOf(f)];
    }
    std::uint64_t line = 0;
    for (std::uint32_t i = 0; i < total_bits_; ++i)
        line |= std::uint64_t{parity(inv_[i] & coords)} << i;
    return line;
}

} // namespace leaky::dram
