/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping. AddressMapper is the
 * system-facing wrapper around dram::MappingFunction (see mapping.hh):
 * it compiles a MappingSpec against the channel geometry, wraps
 * physical addresses into the mapped capacity, and fills the flat-bank
 * caches hot paths downstream rely on. The inverse mapping (compose)
 * is what attack processes use to "massage" pages into chosen
 * rows/banks after reverse engineering the mapping, as described in
 * §5.2 of the paper.
 */

#ifndef LEAKY_DRAM_ADDRESS_MAPPER_HH
#define LEAKY_DRAM_ADDRESS_MAPPER_HH

#include <array>
#include <cstdint>

#include "dram/config.hh"
#include "dram/mapping.hh"
#include "dram/types.hh"

namespace leaky::dram {

/** Maps 64-bit physical addresses to DRAM coordinates and back. */
class AddressMapper
{
  public:
    static constexpr std::uint32_t kLineBytes =
        MappingFunction::kLineBytes;

    /**
     * @param org Channel geometry.
     * @param channels Number of channels in the system.
     * @param spec Mapping description — a preset (implicitly
     *        convertible), field order, or explicit XOR matrix.
     *        Compilation asserts the spec is invertible against the
     *        geometry; a non-invertible function would silently
     *        corrupt decode/compose round trips.
     */
    AddressMapper(const Organization &org, std::uint32_t channels = 1,
                  const MappingSpec &spec = {});

    /**
     * Deprecated adapter for the pre-MappingSpec raw-field-order
     * constructor. Equivalent to MappingSpec::fieldOrder(order).
     */
    [[deprecated("pass a MappingSpec (e.g. MappingSpec::fieldOrder)")]]
    AddressMapper(const Organization &org, std::uint32_t channels,
                  std::array<Field, kNumFields> order)
        : AddressMapper(org, channels, MappingSpec::fieldOrder(order))
    {
    }

    /** Decode a physical byte address into DRAM coordinates. */
    Address decode(std::uint64_t phys_addr) const;

    /** Encode coordinates back into a physical (line-aligned) address. */
    std::uint64_t
    compose(const Address &addr) const
    {
        return fn_.compose(addr);
    }

    /** Size of the mapped physical address space in bytes. */
    std::uint64_t capacityBytes() const { return fn_.capacityBytes(); }

    std::uint32_t channels() const { return fn_.channels(); }

    /** Channel geometry this mapper was built for. */
    const Organization &org() const { return org_; }

    /** The compiled mapping function (ground-truth XOR masks etc.). */
    const MappingFunction &fn() const { return fn_; }

    /** The declarative spec this mapper was compiled from. */
    const MappingSpec &spec() const { return fn_.spec(); }

  private:
    Organization org_;
    MappingFunction fn_;
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_ADDRESS_MAPPER_HH
