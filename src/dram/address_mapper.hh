/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping. The default field order
 * (LSB to MSB: column, bankgroup, bank, rank, row, channel) interleaves
 * consecutive cache lines across columns, then bank groups, which is the
 * row-interleaved mapping the paper's attacks assume. The inverse mapping
 * (compose) is what attack processes use to "massage" pages into chosen
 * rows/banks after reverse engineering the mapping, as described in §5.2.
 */

#ifndef LEAKY_DRAM_ADDRESS_MAPPER_HH
#define LEAKY_DRAM_ADDRESS_MAPPER_HH

#include <array>
#include <cstdint>

#include "dram/config.hh"
#include "dram/types.hh"

namespace leaky::dram {

/** Address fields orderable within the mapping. */
enum class Field : std::uint8_t {
    kColumn, kBankGroup, kBank, kRank, kRow, kChannel
};

/** Maps 64-bit physical addresses to DRAM coordinates and back. */
class AddressMapper
{
  public:
    static constexpr std::uint32_t kLineBytes = 64;

    /**
     * @param org Channel geometry.
     * @param channels Number of channels in the system.
     * @param order Field order from least to most significant bits.
     */
    AddressMapper(const Organization &org, std::uint32_t channels = 1,
                  std::array<Field, 6> order = {
                      Field::kColumn, Field::kBankGroup, Field::kBank,
                      Field::kRank, Field::kRow, Field::kChannel});

    /** Decode a physical byte address into DRAM coordinates. */
    Address decode(std::uint64_t phys_addr) const;

    /** Encode coordinates back into a physical (line-aligned) address. */
    std::uint64_t compose(const Address &addr) const;

    /** Size of the mapped physical address space in bytes. */
    std::uint64_t capacityBytes() const { return capacity_; }

    std::uint32_t channels() const { return channels_; }

    /** Channel geometry this mapper was built for. */
    const Organization &org() const { return org_; }

  private:
    std::uint32_t fieldSize(Field f) const;

    Organization org_;
    std::uint32_t channels_;
    std::array<Field, 6> order_;
    std::array<std::uint32_t, 6> sizes_{}; ///< fieldSize per order_ slot.
    std::uint64_t capacity_;
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_ADDRESS_MAPPER_HH
