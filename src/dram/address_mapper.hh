/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping. The default field order
 * (LSB to MSB: column, bankgroup, bank, rank, row, channel) interleaves
 * consecutive cache lines across columns, then bank groups, which is the
 * row-interleaved mapping the paper's attacks assume. The inverse mapping
 * (compose) is what attack processes use to "massage" pages into chosen
 * rows/banks after reverse engineering the mapping, as described in §5.2.
 */

#ifndef LEAKY_DRAM_ADDRESS_MAPPER_HH
#define LEAKY_DRAM_ADDRESS_MAPPER_HH

#include <array>
#include <cstdint>

#include "dram/config.hh"
#include "dram/types.hh"

namespace leaky::dram {

/** Address fields orderable within the mapping. */
enum class Field : std::uint8_t {
    kColumn, kBankGroup, kBank, kRank, kRow, kChannel
};

/** Number of orderable fields (the size of a full order array). */
inline constexpr std::size_t kNumFields = 6;

/**
 * Named physical-to-DRAM mapping presets (the reverse-engineering
 * targets of §5.2). Each expands to a full field order, least to most
 * significant; the presets only differ in observable behaviour when
 * traffic is generated in *physical* addresses — attacks that compose
 * coordinates through the system's own mapper are order-invariant by
 * construction, which is exactly what the `mapping-order` figure
 * exploits to model attackers with a *wrong* mapping assumption.
 */
enum class MappingPreset : std::uint8_t {
    /** column, bankgroup, bank, rank, row, channel — the default:
     *  consecutive lines walk a row, then interleave bank groups. */
    kRowInterleaved,
    /** bankgroup, bank, rank, column, row, channel — bank bits at the
     *  LSB end, so consecutive lines stripe across banks first. */
    kBankFirst,
    /** column, row, bankgroup, bank, rank, channel — channel stays the
     *  most-significant field but each bank's rows are physically
     *  contiguous below it (no bank interleaving). */
    kChannelLast,
};

/** All presets, for sweeps and tests. */
inline constexpr MappingPreset kAllMappingPresets[] = {
    MappingPreset::kRowInterleaved, MappingPreset::kBankFirst,
    MappingPreset::kChannelLast};

/** Field order of a preset (least to most significant). */
std::array<Field, kNumFields> presetOrder(MappingPreset preset);

/** Stable CLI/CSV name of a preset ("row-interleaved", ...). */
const char *presetName(MappingPreset preset);

/** Maps 64-bit physical addresses to DRAM coordinates and back. */
class AddressMapper
{
  public:
    static constexpr std::uint32_t kLineBytes = 64;

    /**
     * @param org Channel geometry.
     * @param channels Number of channels in the system.
     * @param order Field order from least to most significant bits.
     *        Must be a permutation of all six Fields (asserted): a
     *        duplicated or missing field would silently corrupt
     *        decode/compose round trips.
     */
    AddressMapper(const Organization &org, std::uint32_t channels = 1,
                  std::array<Field, kNumFields> order = {
                      Field::kColumn, Field::kBankGroup, Field::kBank,
                      Field::kRank, Field::kRow, Field::kChannel});

    /** Preset-order convenience constructor. */
    AddressMapper(const Organization &org, std::uint32_t channels,
                  MappingPreset preset)
        : AddressMapper(org, channels, presetOrder(preset))
    {
    }

    /** Decode a physical byte address into DRAM coordinates. */
    Address decode(std::uint64_t phys_addr) const;

    /** Encode coordinates back into a physical (line-aligned) address. */
    std::uint64_t compose(const Address &addr) const;

    /** Size of the mapped physical address space in bytes. */
    std::uint64_t capacityBytes() const { return capacity_; }

    std::uint32_t channels() const { return channels_; }

    /** Channel geometry this mapper was built for. */
    const Organization &org() const { return org_; }

  private:
    std::uint32_t fieldSize(Field f) const;

    Organization org_;
    std::uint32_t channels_;
    std::array<Field, kNumFields> order_;
    /** fieldSize per order_ slot. */
    std::array<std::uint32_t, kNumFields> sizes_{};
    std::uint64_t capacity_;
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_ADDRESS_MAPPER_HH
