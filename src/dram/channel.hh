/**
 * @file
 * Cycle-level model of one DRAM channel: per-bank row-buffer state
 * machines plus JEDEC-style timing enforcement (tRCD/tRP/tRAS/tRC,
 * tRRD/tFAW, tCCD, read/write turnaround, tRFC/tRFM busy windows).
 *
 * The channel is passive: the memory controller queries earliestIssue()
 * and calls issue(). Device-side defenses observe commands through the
 * DeviceHooks interface (dram/hooks.hh).
 */

#ifndef LEAKY_DRAM_CHANNEL_HH
#define LEAKY_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "dram/config.hh"
#include "dram/hooks.hh"
#include "dram/types.hh"
#include "sim/tick.hh"

namespace leaky::dram {

/** Row-buffer status of an access, as the scheduler classifies it. */
enum class RowStatus : std::uint8_t { kHit, kEmpty, kConflict };

/** One DRAM channel (all ranks/banks behind one command/data bus). */
class DramChannel
{
  public:
    static constexpr std::int32_t kNoRow = -1;

    explicit DramChannel(const DramConfig &cfg);

    /** Install device-side defense hooks (may be null for none). */
    void setHooks(DeviceHooks *hooks) { hooks_ = hooks; }

    const DramConfig &config() const { return cfg_; }

    /** Currently open row of a bank, or kNoRow. */
    std::int32_t openRow(const Address &addr) const;

    /**
     * Packed per-flat-bank open-row array (kNoRow when precharged).
     * The FR-FCFS scan reads this directly: one contiguous int32 per
     * bank, so classifying a full 64-entry queue touches a handful of
     * cache lines instead of one 60-byte bank object per entry.
     */
    const std::int32_t *openRows() const { return open_row_.data(); }

    /** rowStatus() for a pre-flattened bank index (scan hot path). */
    RowStatus
    rowStatusFlat(std::uint32_t flat_bank, std::uint32_t row) const
    {
        const std::int32_t open = open_row_[flat_bank];
        if (open == kNoRow)
            return RowStatus::kEmpty;
        return open == static_cast<std::int32_t>(row)
                   ? RowStatus::kHit
                   : RowStatus::kConflict;
    }

    /** Classify an access against the current row-buffer state. */
    RowStatus rowStatus(const Address &addr) const;

    /** True when every bank of @p rank is precharged (O(1): the
     *  channel keeps a per-rank open-bank count). */
    bool
    allBanksClosed(std::uint32_t rank) const
    {
        return open_count_[rank] == 0;
    }

    /** True when bank @p bank_idx (within-group index) is closed in all
     * bank groups of @p rank (precondition for RFMsb). */
    bool sameBankClosed(std::uint32_t rank, std::uint32_t bank_idx) const;

    /**
     * Earliest tick at which @p cmd to @p addr satisfies all timing
     * constraints. Does not check row-state preconditions (e.g., that a
     * RD targets the open row) -- the controller guarantees those.
     */
    Tick earliestIssue(Command cmd, const Address &addr) const;

    /**
     * Execute a command at tick @p now (must be >= earliestIssue).
     * For kRd/kWr, returns the tick at which the data burst completes;
     * for other commands returns the end of their busy window.
     * @p rfm_latency overrides the RFM window length (used for the
     * shorter/longer RFMs of back-off recovery and the Fig. 12 latency
     * sweep); 0 selects the config default.
     * @p during_backoff is forwarded to the defense hooks for RFMs.
     */
    Tick issue(Command cmd, const Address &addr, Tick now,
               Tick rfm_latency = 0, bool during_backoff = false);

    /** Number of commands issued, by command kind (for stats/tests). */
    std::uint64_t commandCount(Command cmd) const;

  private:
    /**
     * Per-bank timing state, split from the open-row array (SoA): the
     * scheduler scan only ever needs open rows, while these fields are
     * touched once per issued command. Keeping them out of the packed
     * scan array means the scan never drags timing ticks into cache.
     */
    struct BankTiming {
        Tick next_act = 0;
        Tick next_pre = 0;
        Tick next_rd = 0;
        Tick next_wr = 0;
        /** Earliest tick the bank counts as fully precharged (for
         *  REF/RFM preconditions). kTickMax while the bank is open. */
        Tick closed_at = 0;
    };

    struct GroupState {
        Tick next_act = 0;  // tRRD_L
        Tick next_rd = 0;   // tCCD_L
        Tick next_wr = 0;
    };

    struct RankState {
        Tick next_act = 0;  // tRRD_S
        Tick busy_until = 0; // REF / RFMab window.
        std::vector<Tick> act_window; // last tFAW activations (ring).
        std::size_t act_window_pos = 0;
        std::uint64_t acts_seen = 0; // tFAW applies from the 4th ACT on.
    };

    BankTiming &bank(const Address &a);
    const BankTiming &bank(const Address &a) const;
    GroupState &group(const Address &a);
    const GroupState &group(const Address &a) const;

    static void bump(Tick &slot, Tick value);

    /** Mark flat bank @p fb open on @p row (maintains the rank count). */
    void markOpen(std::uint32_t fb, std::uint32_t rank, std::uint32_t row);
    /** Mark flat bank @p fb precharged, ready again at @p closed_at. */
    void markClosed(std::uint32_t fb, std::uint32_t rank, Tick closed_at);

    void issueAct(const Address &addr, Tick now);
    void issuePre(const Address &addr, Tick now);
    void issuePreAll(std::uint32_t rank, Tick now);
    Tick issueRead(const Address &addr, Tick now);
    Tick issueWrite(const Address &addr, Tick now);
    Tick issueRefresh(std::uint32_t rank, Tick now);
    Tick issueRfm(Command kind, const Address &addr, Tick now,
                  Tick latency, bool during_backoff);

    DramConfig cfg_;
    DeviceHooks *hooks_;
    NullDeviceHooks null_hooks_;

    // Bank state lives in SoA form: the packed open-row array feeds
    // the scheduler scan, the timing array feeds earliestIssue/issue.
    std::vector<std::int32_t> open_row_;  // [rank][bg][bank] flattened.
    std::vector<BankTiming> banks_;       // Same index space.
    std::vector<GroupState> groups_;      // [rank][bg] flattened.
    std::vector<RankState> ranks_;
    /** Open banks per rank: allBanksClosed() without a bank walk. */
    std::vector<std::uint32_t> open_count_;
    /**
     * Per rank, running max over every closed_at value ever assigned
     * to one of its banks. Each bank's successive close ticks are
     * nondecreasing (time advances; RFM windows only bump upward), so
     * once all banks are closed this equals max(closed_at) over the
     * rank — the REF/RFMab readiness tick — without scanning banks.
     * Open banks are excluded; callers gate on allBanksClosed().
     */
    std::vector<Tick> rank_ready_;

    // Channel-wide data-bus constraints.
    Tick chan_next_rd_ = 0;
    Tick chan_next_wr_ = 0;

    std::vector<std::uint64_t> cmd_counts_;
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_CHANNEL_HH
