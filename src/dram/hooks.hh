/**
 * @file
 * Interfaces connecting the DRAM device model to device-side RowHammer
 * defenses (the PRAC family lives behind DeviceHooks) and to the memory
 * controller's alert pin (AlertSink). Defined here, on neutral ground,
 * so neither the defense library nor the controller depends on the other
 * at the interface level.
 */

#ifndef LEAKY_DRAM_HOOKS_HH
#define LEAKY_DRAM_HOOKS_HH

#include "dram/types.hh"
#include "sim/tick.hh"

namespace leaky::dram {

using sim::Tick;

/** Information carried by an ABO (alert back-off) assertion. */
struct AlertInfo {
    Tick asserted_at = 0; ///< When the device raised the pin.
    bool bank_scoped = false; ///< Bank-Level PRAC: back-off one bank only.
    Address bank; ///< Valid when bank_scoped (rank/bankgroup/bank fields).
};

/** Receiver of device alert assertions (implemented by the controller). */
class AlertSink
{
  public:
    virtual ~AlertSink() = default;

    /** The device asserted ABO; the controller must start a back-off. */
    virtual void raiseAlert(const AlertInfo &info) = 0;
};

/**
 * Device-side observation points. A defense implementing this interface
 * sees every command the device executes and may raise alerts through an
 * AlertSink it was constructed with.
 */
class DeviceHooks
{
  public:
    virtual ~DeviceHooks() = default;

    /** A row was activated. */
    virtual void onActivate(const Address &addr, Tick now) = 0;

    /**
     * A row is being closed (PRE or PREab); PRAC increments the row's
     * activation counter at this point (paper §6.1).
     */
    virtual void onPrecharge(const Address &addr, Tick now) = 0;

    /** An all-bank periodic refresh started on @p rank. */
    virtual void onRefresh(std::uint32_t rank, Tick now) = 0;

    /**
     * An RFM window started. For kRfmAll, @p addr identifies the rank;
     * for kRfmSameBank it also carries the bank index. @p during_backoff
     * distinguishes recovery RFMs (which service the highest activation
     * counters) from regular PRFM/FR-RFM RFMs.
     */
    virtual void onRfm(Command kind, const Address &addr, bool during_backoff,
                       Tick now) = 0;
};

/** No-op hooks used when no device-side defense is configured. */
class NullDeviceHooks final : public DeviceHooks
{
  public:
    void onActivate(const Address &, Tick) override {}
    void onPrecharge(const Address &, Tick) override {}
    void onRefresh(std::uint32_t, Tick) override {}
    void onRfm(Command, const Address &, bool, Tick) override {}
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_HOOKS_HH
