/**
 * @file
 * DRAM organisation and timing configuration. Defaults model the paper's
 * evaluated system (Table 1): DDR5, 1 channel, 2 ranks, 8 bank groups x
 * 4 banks, 128K rows per bank, with JEDEC DDR5-like timing and the
 * PRAC/RFM latencies quoted in the paper (back-off 1400 ns total,
 * standalone RFM 295 ns, tABOACT 180 ns, alert delay ~5 ns).
 */

#ifndef LEAKY_DRAM_CONFIG_HH
#define LEAKY_DRAM_CONFIG_HH

#include <cstdint>

#include "dram/types.hh"
#include "sim/logging.hh"
#include "sim/tick.hh"

namespace leaky::dram {

using sim::Tick;

/** Geometry of one memory channel. */
struct Organization {
    std::uint32_t ranks = 2;
    std::uint32_t bankgroups = 8;
    std::uint32_t banks_per_group = 4; ///< Banks within one bank group.
    std::uint32_t rows = 128 * 1024;   ///< Rows per bank.
    std::uint32_t columns = 128;       ///< Cache lines per row (8 KB row).

    std::uint32_t banksPerRank() const { return bankgroups * banks_per_group; }
    std::uint32_t totalBanks() const { return ranks * banksPerRank(); }

    /** Flat bank index within the channel. */
    std::uint32_t
    flatBank(std::uint32_t rank, std::uint32_t bg, std::uint32_t bank) const
    {
        return (rank * bankgroups + bg) * banks_per_group + bank;
    }

    /** Fill the cached flat indices of @p a (see Address::flat_bank). */
    void
    annotate(Address &a) const
    {
        a.flat_group = a.rank * bankgroups + a.bankgroup;
        a.flat_bank = a.flat_group * banks_per_group + a.bank;
    }

    /** Cached-or-computed flat bank index of @p a. */
    std::uint32_t
    flatOf(const Address &a) const
    {
        if (a.flat_bank != Address::kNoFlat) {
            LEAKY_DCHECK(a.flat_bank ==
                             flatBank(a.rank, a.bankgroup, a.bank),
                         "stale flat_bank cache (%u) on %s", a.flat_bank,
                         a.str().c_str());
            return a.flat_bank;
        }
        return flatBank(a.rank, a.bankgroup, a.bank);
    }

    /** Cached-or-computed flat bank-group index of @p a. */
    std::uint32_t
    groupOf(const Address &a) const
    {
        if (a.flat_group != Address::kNoFlat) {
            LEAKY_DCHECK(a.flat_group == a.rank * bankgroups + a.bankgroup,
                         "stale flat_group cache (%u) on %s", a.flat_group,
                         a.str().c_str());
            return a.flat_group;
        }
        return a.rank * bankgroups + a.bankgroup;
    }
};

/** Timing parameters in ticks (picoseconds). */
struct Timing {
    Tick tCK = 416;            ///< DDR5-4800 clock period.
    Tick tRCD = 16'000;        ///< ACT -> RD/WR.
    Tick tRP = 16'000;         ///< PRE -> ACT.
    Tick tRAS = 32'000;        ///< ACT -> PRE (same bank).
    Tick tRC = 48'000;         ///< ACT -> ACT (same bank) = tRAS + tRP.
    Tick tCL = 16'000;         ///< RD -> first data.
    Tick tCWL = 14'000;        ///< WR -> first data.
    Tick tBURST = 3'328;       ///< 8 tCK burst (BL16, DDR).
    Tick tCCD_S = 3'328;       ///< RD->RD / WR->WR, different bank group.
    Tick tCCD_L = 5'000;       ///< RD->RD / WR->WR, same bank group.
    Tick tRRD_S = 3'328;       ///< ACT->ACT, different bank group.
    Tick tRRD_L = 5'000;       ///< ACT->ACT, same bank group.
    Tick tFAW = 13'333;        ///< Four-activate window per rank.
    Tick tRTP = 7'500;         ///< RD -> PRE.
    Tick tWR = 30'000;         ///< End of write burst -> PRE.
    Tick tWTR = 10'000;        ///< End of write burst -> RD.
    Tick tRTW = 4'000;         ///< RD command -> WR command extra gap.
    Tick tRFC = 295'000;       ///< REF busy window (16 Gb device).
    Tick tREFI = 3'900'000;    ///< Refresh interval (DDR5, normal temp).
    Tick tRFM = 295'000;       ///< Standalone RFM window (PRFM).
    Tick tRFM_backoff = 305'000; ///< Per-RFM window during PRAC back-off.
    Tick tABOACT = 180'000;    ///< Normal-traffic window after alert.
    Tick tAlert = 5'000;       ///< PRE -> alert visible at the controller.
    Tick tABOCooldown = 250'000; ///< Min gap between alert assertions.
    /** Victim-row (targeted) refresh window: blast radius 2, i.e. four
     *  neighbour row cycles back-to-back (tracker defenses). */
    Tick tVRR = 190'000;
};

/** Full per-channel configuration. */
struct DramConfig {
    Organization org;
    Timing timing;

    /** Paper Table 1 system: DDR5, 2 ranks, 8x4 banks, 128K rows. */
    static DramConfig
    ddr5Paper()
    {
        return DramConfig{};
    }
};

} // namespace leaky::dram

#endif // LEAKY_DRAM_CONFIG_HH
