/**
 * @file
 * Security-policy parameter derivation: how defense knobs scale with the
 * RowHammer threshold NRH for the paper's Fig. 13 sweep.
 *
 * - NBO (PRAC back-off threshold) is a fraction of NRH; the standard
 *   allows 70..100% (§6.1) and the paper's attack studies fix NBO = 128.
 *   We use 80%.
 * - TRFM (PRFM bank-activation threshold) follows a Chronus-style secure
 *   configuration: TRFM = {1024:32, 512:16, 256:8, 128:4, 64:1}. The
 *   paper's attack studies fix TRFM = 40 (a value the standard supports).
 * - FR-RFM's period is TRFM x tRC (§11.1), clamped so an RFM window plus
 *   the drain lead still fits (otherwise the schedule is physically
 *   unrealisable and the controller would never serve any request).
 * - Tracker defenses (Graphene, Hydra) refresh an aggressor's victims
 *   once its activation count reaches NRH / 2, so a row can never
 *   accumulate NRH activations between two targeted refreshes. Hydra's
 *   group filter escalates to per-row counting at NRH / 4.
 */

#ifndef LEAKY_DEFENSE_POLICY_HH
#define LEAKY_DEFENSE_POLICY_HH

#include <algorithm>
#include <cstdint>

#include "dram/config.hh"

namespace leaky::defense {

using sim::Tick;

/** PRAC back-off threshold for a given NRH (80% of NRH, min 16). */
inline std::uint32_t
nboFor(std::uint32_t nrh)
{
    return std::max<std::uint32_t>(16, nrh * 4 / 5);
}

/** Secure PRFM bank-activation threshold for a given NRH
 *  (~NRH/16, with extra margin at ultra-low thresholds). */
inline std::uint32_t
trfmFor(std::uint32_t nrh)
{
    if (nrh >= 1024)
        return 64;
    if (nrh >= 512)
        return 32;
    if (nrh >= 256)
        return 16;
    if (nrh >= 128)
        return 4;
    return 1;
}

/**
 * FR-RFM period: TRFM x tRC, clamped to keep a minimal service window
 * (RFM busy window + drain lead + 20 ns) so ultra-low thresholds degrade
 * to heavy-but-finite slowdown, matching the paper's 18.2x at NRH=64.
 */
inline Tick
frRfmPeriodFor(std::uint32_t nrh, const dram::Timing &t, Tick drain_lead)
{
    const Tick natural = static_cast<Tick>(trfmFor(nrh)) * t.tRC;
    const Tick floor = t.tRFM + drain_lead + 20'000;
    return std::max(natural, floor);
}

/**
 * Tracker (Graphene / Hydra) targeted-refresh threshold: refresh an
 * aggressor's victims at half the RowHammer threshold, so counters reset
 * before any row can reach NRH activations (min 8 to keep the tracker
 * from thrashing at pathological NRH values).
 */
inline std::uint32_t
trackerThresholdFor(std::uint32_t nrh)
{
    return std::max<std::uint32_t>(8, nrh / 2);
}

/**
 * Graphene per-bank Misra-Gries table size: W / T entries guarantee any
 * row activated more than T times within a refresh window W is tracked
 * (Graphene's security argument). W is the maximum per-bank activation
 * count in one tREFW (~32 ms / tRC ~= 667 K). The simulator clamps the
 * result to [16, 256]: attack and figure workloads touch far fewer
 * distinct rows per bank than even the clamped table holds, so the
 * clamp never changes tracked state while keeping the eviction scan
 * (only taken on a miss with a full table) cheap.
 */
inline std::uint32_t
grapheneEntriesFor(std::uint32_t nrh, const dram::Timing &t)
{
    const std::uint64_t window_acts =
        (32ull * 1000 * 1000 * 1000) / static_cast<std::uint64_t>(t.tRC);
    const auto needed = static_cast<std::uint32_t>(
        window_acts / trackerThresholdFor(nrh) + 1);
    return std::min<std::uint32_t>(256, std::max<std::uint32_t>(16,
                                                                needed));
}

/** Hydra group-filter escalation threshold: NRH / 4 (min 4). A row
 *  group below it is provably safe without per-row counters. */
inline std::uint32_t
hydraGroupThresholdFor(std::uint32_t nrh)
{
    return std::max<std::uint32_t>(4, nrh / 4);
}

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_POLICY_HH
