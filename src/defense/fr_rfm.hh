/**
 * @file
 * Fixed-Rate RFM (FR-RFM) countermeasure (paper §11.1): RFM commands are
 * issued on a fixed time grid (period TFRRFM = TRFM x tRC), completely
 * decoupled from application access patterns. Because the controller
 * cannot fit more than TRFM activations per bank between two RFMs, the
 * scheme remains RowHammer-secure, and because the RFM times are fixed,
 * a receiver can learn nothing about a sender's activations from them.
 */

#ifndef LEAKY_DEFENSE_FR_RFM_HH
#define LEAKY_DEFENSE_FR_RFM_HH

#include <cstdint>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "dram/config.hh"

namespace leaky::defense {

/** FR-RFM configuration. */
struct FrRfmConfig {
    sim::Tick period = 0;     ///< TFRRFM; use policy.hh to derive.
    sim::Tick drain_lead = 80'000; ///< Must match the controller's lead.
};

/** Controller-side fixed-rate RFM defense. */
class FrRfmDefense final : public ctrl::ControllerDefense
{
  public:
    explicit FrRfmDefense(const FrRfmConfig &cfg);

    // ctrl::ControllerDefense
    void onActivate(const ctrl::Address &addr, sim::Tick now) override;
    std::optional<ctrl::RfmRequest> pendingRfm(sim::Tick now) override;
    void onRfmIssued(const ctrl::RfmRequest &req, sim::Tick issued,
                     sim::Tick end) override;
    sim::Tick nextEventTick(sim::Tick now) const override;

    /** Exact ticks at which RFMs were issued (security property tests). */
    const std::vector<sim::Tick> &issueTimes() const { return issued_at_; }

    /** Grid points that had to be skipped because a window overran. */
    std::uint64_t skippedSlots() const { return skipped_; }

  private:
    FrRfmConfig cfg_;
    sim::Tick next_at_;
    bool in_flight_ = false;
    std::vector<sim::Tick> issued_at_;
    std::uint64_t skipped_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_FR_RFM_HH
