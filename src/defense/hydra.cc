#include "defense/hydra.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::defense {

using ctrl::Address;
using ctrl::PreventiveActionKind;
using ctrl::RfmRequest;
using dram::Command;
using sim::Tick;

namespace {

/** splitmix64 finalizer: cheap, well-mixed hash for table indexing. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

HydraDefense::HydraDefense(const dram::DramConfig &dram_cfg,
                           const HydraConfig &cfg)
    : dram_cfg_(dram_cfg), cfg_(cfg),
      groups_per_bank_((dram_cfg.org.rows + cfg.rows_per_group - 1) /
                       cfg.rows_per_group),
      gct_(static_cast<std::size_t>(dram_cfg.org.totalBanks()) *
               groups_per_bank_,
           0),
      cc_sets_(roundUpPow2(
          std::max<std::uint32_t>(1, cfg.cc_entries / cfg.cc_ways))),
      cc_key_(static_cast<std::size_t>(cc_sets_) * cfg.cc_ways, kNoKey),
      cc_stamp_(cc_key_.size(), 0),
      shadow_key_(1024, kNoKey),
      shadow_count_(1024, 0)
{
    LEAKY_ASSERT(cfg_.row_threshold > cfg_.group_threshold,
                 "Hydra row threshold must exceed the group threshold");
    LEAKY_ASSERT(cfg_.rows_per_group > 0 && cfg_.cc_ways > 0,
                 "Hydra config must be positive");
}

std::uint64_t
HydraDefense::rowKey(std::uint32_t flat_bank, std::uint32_t row) const
{
    return static_cast<std::uint64_t>(flat_bank) * dram_cfg_.org.rows +
           row;
}

std::size_t
HydraDefense::groupIndex(std::uint32_t flat_bank, std::uint32_t row) const
{
    return static_cast<std::size_t>(flat_bank) * groups_per_bank_ +
           row / cfg_.rows_per_group;
}

bool
HydraDefense::cacheAccess(std::uint64_t key)
{
    const std::size_t set =
        static_cast<std::size_t>(mix(key) & (cc_sets_ - 1)) *
        cfg_.cc_ways;
    cc_clock_ += 1;

    std::size_t victim = set;
    for (std::size_t way = set; way < set + cfg_.cc_ways; ++way) {
        if (cc_key_[way] == key) {
            cc_stamp_[way] = cc_clock_;
            return true;
        }
        if (cc_stamp_[way] < cc_stamp_[victim])
            victim = way;
    }
    // Miss: evict the LRU way (an invalid way has stamp 0 and loses the
    // comparison, so empty ways fill first) and install the new line.
    cc_key_[victim] = key;
    cc_stamp_[victim] = cc_clock_;
    return false;
}

std::uint32_t &
HydraDefense::shadowCount(std::uint64_t key)
{
    if (shadow_used_ * 4 >= shadow_key_.size() * 3)
        growShadow();
    const std::size_t mask = shadow_key_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(mix(key)) & mask;
    while (shadow_key_[slot] != key) {
        if (shadow_key_[slot] == kNoKey) {
            shadow_key_[slot] = key;
            // Escalated rows start at the group threshold: the group
            // counter admits up to that many prior activations of any
            // one row, and Hydra must never under-count.
            shadow_count_[slot] = cfg_.group_threshold;
            shadow_used_ += 1;
            break;
        }
        slot = (slot + 1) & mask;
    }
    return shadow_count_[slot];
}

void
HydraDefense::growShadow()
{
    std::vector<std::uint64_t> keys(shadow_key_.size() * 2, kNoKey);
    std::vector<std::uint32_t> counts(keys.size(), 0);
    const std::size_t mask = keys.size() - 1;
    for (std::size_t i = 0; i < shadow_key_.size(); ++i) {
        if (shadow_key_[i] == kNoKey)
            continue;
        std::size_t slot =
            static_cast<std::size_t>(mix(shadow_key_[i])) & mask;
        while (keys[slot] != kNoKey)
            slot = (slot + 1) & mask;
        keys[slot] = shadow_key_[i];
        counts[slot] = shadow_count_[i];
    }
    shadow_key_.swap(keys);
    shadow_count_.swap(counts);
}

void
HydraDefense::maybeReset(Tick now)
{
    if (cfg_.reset_period == 0 || now < next_reset_)
        return;
    next_reset_ = now + cfg_.reset_period;
    std::fill(gct_.begin(), gct_.end(), 0);
    // The shadow keeps its capacity (no allocation, and a run's
    // working set recurs each window), but every count restarts.
    std::fill(shadow_key_.begin(), shadow_key_.end(), kNoKey);
    std::fill(shadow_count_.begin(), shadow_count_.end(), 0);
    shadow_used_ = 0;
    // Cached counter lines are stale once the RCT is wiped.
    std::fill(cc_key_.begin(), cc_key_.end(), kNoKey);
    std::fill(cc_stamp_.begin(), cc_stamp_.end(), 0);
}

void
HydraDefense::onActivate(const Address &addr, Tick now)
{
    maybeReset(now);
    const auto fb = dram_cfg_.org.flatOf(addr);
    auto &group = gct_[groupIndex(fb, addr.row)];
    if (group < cfg_.group_threshold) {
        // Level one: the whole group is provably cold; one shared
        // counter, no DRAM-resident state, no extra traffic.
        group += 1;
        return;
    }

    // Level two: per-row counting through the counter cache.
    const auto key = rowKey(fb, addr.row);
    if (cacheAccess(key)) {
        cc_hits_ += 1;
    } else {
        cc_misses_ += 1;
        // The counter line must be fetched from the RCT region of the
        // row's bank: a short bank-blocking window of real DRAM
        // traffic -- Hydra's second observable.
        RfmRequest fetch;
        fetch.kind = Command::kVrr;
        fetch.action = PreventiveActionKind::kCounterFetch;
        fetch.target = addr;
        fetch.target.row = dram_cfg_.org.rows - 1; // Reserved RCT rows.
        fetch.latency_override = cfg_.fetch_latency;
        pending_.push(fetch);
    }

    auto &count = shadowCount(key);
    count += 1;
    if (count >= cfg_.row_threshold) {
        count = 0;
        RfmRequest vrr;
        vrr.kind = Command::kVrr;
        vrr.action = PreventiveActionKind::kVictimRefresh;
        vrr.target = addr;
        vrr.latency_override = cfg_.vrr_latency;
        pending_.push(vrr);
    }
}

std::optional<RfmRequest>
HydraDefense::pendingRfm(Tick)
{
    if (pending_.empty())
        return std::nullopt;
    const RfmRequest req = pending_.pop();
    if (req.action == PreventiveActionKind::kVictimRefresh)
        vrrs_ += 1;
    return req;
}

void
HydraDefense::onRfmIssued(const RfmRequest &, Tick, Tick)
{
    // Counter state was already updated when the request was queued.
}

Tick
HydraDefense::nextEventTick(Tick) const
{
    return sim::kTickMax;
}

std::uint32_t
HydraDefense::groupCount(const Address &addr) const
{
    return gct_[groupIndex(dram_cfg_.org.flatOf(addr), addr.row)];
}

std::uint32_t
HydraDefense::rowCount(const Address &addr) const
{
    const auto key = rowKey(dram_cfg_.org.flatOf(addr), addr.row);
    const std::size_t mask = shadow_key_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(mix(key)) & mask;
    while (shadow_key_[slot] != kNoKey) {
        if (shadow_key_[slot] == key)
            return shadow_count_[slot];
        slot = (slot + 1) & mask;
    }
    return 0;
}

} // namespace leaky::defense
