#include "defense/fr_rfm.hh"

#include "sim/logging.hh"

namespace leaky::defense {

using ctrl::RfmRequest;
using sim::Tick;

FrRfmDefense::FrRfmDefense(const FrRfmConfig &cfg)
    : cfg_(cfg), next_at_(cfg.period)
{
    LEAKY_ASSERT(cfg_.period > 0, "FR-RFM needs a positive period");
}

void
FrRfmDefense::onActivate(const ctrl::Address &, Tick)
{
    // By design, FR-RFM ignores the access pattern entirely.
}

std::optional<RfmRequest>
FrRfmDefense::pendingRfm(Tick now)
{
    if (in_flight_ || now + cfg_.drain_lead < next_at_)
        return std::nullopt;
    RfmRequest req;
    req.kind = dram::Command::kRfmAll;
    req.all_ranks = true;
    req.precise = true;
    req.scheduled_at = next_at_;
    in_flight_ = true;
    return req;
}

void
FrRfmDefense::onRfmIssued(const RfmRequest &, Tick issued, Tick end)
{
    in_flight_ = false;
    issued_at_.push_back(issued);
    next_at_ += cfg_.period;
    // If the RFM window overran the next grid point (only possible for
    // periods near the physical floor), skip slots rather than drift.
    while (next_at_ <= end) {
        next_at_ += cfg_.period;
        skipped_ += 1;
    }
}

Tick
FrRfmDefense::nextEventTick(Tick) const
{
    if (in_flight_)
        return sim::kTickMax;
    return next_at_ > cfg_.drain_lead ? next_at_ - cfg_.drain_lead : 0;
}

} // namespace leaky::defense
