/**
 * @file
 * Hydra-style two-level RowHammer tracker (Qureshi et al., ISCA'22) as
 * a controller-side defense. Level one is a Group Count Table (GCT): one
 * counter per group of consecutive rows, cheap enough to keep on-chip
 * for every group. While a group's counter is below the group threshold
 * no row in it can be near the RowHammer threshold, so nothing else is
 * tracked. When a group crosses the threshold it escalates to per-row
 * counting: the authoritative Row Count Table (RCT) lives in reserved
 * DRAM, fronted by an on-chip set-associative **counter cache**. A
 * cache hit costs nothing; a miss must fetch the counter line from
 * DRAM — modelled as a short bank-blocking command on the row's bank —
 * which is exactly the second observable this defense leaks: attacker-
 * visible latency that depends on *someone's* access history, in
 * addition to the targeted victim-row refresh issued when a row counter
 * reaches the refresh threshold.
 *
 * Escalated rows start at the group threshold (the worst case the group
 * counter admits), so the defense never under-counts (Hydra's security
 * argument).
 */

#ifndef LEAKY_DEFENSE_HYDRA_HH
#define LEAKY_DEFENSE_HYDRA_HH

#include <cstdint>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "defense/request_queue.hh"
#include "dram/config.hh"

namespace leaky::defense {

/** Hydra configuration (see policy.hh for the NRH derivations). */
struct HydraConfig {
    /** Per-row targeted-refresh threshold (VRR + reset at this count). */
    std::uint32_t row_threshold = 80;
    /** GCT escalation threshold: groups below it stay untracked. */
    std::uint32_t group_threshold = 40;
    /** Consecutive rows sharing one GCT counter. */
    std::uint32_t rows_per_group = 128;
    /** Counter-cache entries (ways x sets; sets derived). */
    std::uint32_t cc_entries = 2048;
    /** Counter-cache associativity. */
    std::uint32_t cc_ways = 4;
    /** DRAM busy window of one counter-line fetch (ACT + RD + PRE). */
    sim::Tick fetch_latency = 60'000;
    /** VRR window override; 0 selects the channel default (tVRR). */
    sim::Tick vrr_latency = 0;
    /**
     * GCT, RCT shadow and counter cache reset every refresh window
     * (Hydra zeroes its counters each tREFW -- without the reset,
     * escalation would be permanent and the shadow would grow without
     * bound). 0 disables (tests); applied lazily on activation.
     */
    sim::Tick reset_period = 32'000'000'000; ///< tREFW, 32 ms.
};

/** Controller-side Hydra-style two-level tracker. */
class HydraDefense final : public ctrl::ControllerDefense
{
  public:
    HydraDefense(const dram::DramConfig &dram_cfg, const HydraConfig &cfg);

    // ctrl::ControllerDefense
    void onActivate(const ctrl::Address &addr, sim::Tick now) override;
    std::optional<ctrl::RfmRequest> pendingRfm(sim::Tick now) override;
    void onRfmIssued(const ctrl::RfmRequest &req, sim::Tick issued,
                     sim::Tick end) override;
    sim::Tick nextEventTick(sim::Tick now) const override;

    /** GCT counter of @p addr's row group (tests). */
    std::uint32_t groupCount(const ctrl::Address &addr) const;

    /** Per-row count of @p addr's row, 0 when not escalated (tests). */
    std::uint32_t rowCount(const ctrl::Address &addr) const;

    std::uint64_t ccHits() const { return cc_hits_; }
    std::uint64_t ccMisses() const { return cc_misses_; }
    std::uint64_t vrrCount() const { return vrrs_; }

  private:
    static constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

    std::uint64_t rowKey(std::uint32_t flat_bank,
                         std::uint32_t row) const;
    std::size_t groupIndex(std::uint32_t flat_bank,
                           std::uint32_t row) const;

    /** Counter-cache lookup; fills/evicts on miss. @return hit. */
    bool cacheAccess(std::uint64_t key);

    /** Authoritative row count slot (open addressing, grows on 3/4
     *  load so the steady state never allocates). */
    std::uint32_t &shadowCount(std::uint64_t key);
    void growShadow();

    /** Per-refresh-window counter wipe (lazy; see reset_period). */
    void maybeReset(sim::Tick now);

    dram::DramConfig dram_cfg_;
    HydraConfig cfg_;
    std::uint32_t groups_per_bank_;
    std::vector<std::uint32_t> gct_;      ///< Per (bank, group).

    // Counter cache: sets x ways arrays + LRU stamps.
    std::uint32_t cc_sets_;
    std::vector<std::uint64_t> cc_key_;
    std::vector<std::uint64_t> cc_stamp_;
    std::uint64_t cc_clock_ = 0;

    // RCT shadow: the authoritative per-row counts of escalated rows.
    std::vector<std::uint64_t> shadow_key_;
    std::vector<std::uint32_t> shadow_count_;
    std::size_t shadow_used_ = 0;

    RequestQueue pending_;
    sim::Tick next_reset_ = 0;
    std::uint64_t cc_hits_ = 0;
    std::uint64_t cc_misses_ = 0;
    std::uint64_t vrrs_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_HYDRA_HH
