/**
 * @file
 * Fixed-capacity growing ring of pending RfmRequests. std::deque frees
 * and reallocates blocks as a sustained push/pop cycle crosses block
 * boundaries, which would break the defenses' steady-state
 * zero-allocation contract; this ring only allocates when it grows past
 * its high-water mark, so a warmed-up defense never allocates again.
 */

#ifndef LEAKY_DEFENSE_REQUEST_QUEUE_HH
#define LEAKY_DEFENSE_REQUEST_QUEUE_HH

#include <cstddef>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "sim/logging.hh"

namespace leaky::defense {

/** FIFO of RfmRequests backed by a ring that grows only on overflow. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t initial_capacity = 16)
        : buf_(initial_capacity)
    {
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push(const ctrl::RfmRequest &req)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) % buf_.size()] = req;
        size_ += 1;
    }

    ctrl::RfmRequest
    pop()
    {
        LEAKY_ASSERT(size_ > 0, "pop from empty RequestQueue");
        ctrl::RfmRequest req = buf_[head_];
        head_ = (head_ + 1) % buf_.size();
        size_ -= 1;
        return req;
    }

  private:
    void
    grow()
    {
        std::vector<ctrl::RfmRequest> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = buf_[(head_ + i) % buf_.size()];
        buf_.swap(bigger);
        head_ = 0;
    }

    std::vector<ctrl::RfmRequest> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_REQUEST_QUEUE_HH
