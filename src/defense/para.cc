#include "defense/para.hh"

namespace leaky::defense {

using ctrl::RfmRequest;
using sim::Tick;

ParaDefense::ParaDefense(const ParaConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
}

void
ParaDefense::onActivate(const ctrl::Address &addr, Tick)
{
    if (!rng_.chance(cfg_.probability))
        return;
    RfmRequest req;
    req.kind = dram::Command::kRfmOneBank;
    req.action = ctrl::PreventiveActionKind::kVictimRefresh;
    req.target = addr;
    req.latency_override = cfg_.refresh_latency;
    pending_.push_back(req);
}

std::optional<RfmRequest>
ParaDefense::pendingRfm(Tick)
{
    if (pending_.empty())
        return std::nullopt;
    RfmRequest req = pending_.front();
    pending_.pop_front();
    refreshes_ += 1;
    return req;
}

void
ParaDefense::onRfmIssued(const RfmRequest &, Tick, Tick)
{
}

Tick
ParaDefense::nextEventTick(Tick) const
{
    return sim::kTickMax;
}

} // namespace leaky::defense
