/**
 * @file
 * Graphene-style frequent-item tracker (Park et al., MICRO'20) as a
 * controller-side defense: each bank keeps a Misra-Gries summary (a
 * bounded table of (row, count) entries plus a spillover counter) over
 * its activation stream. When a tracked row's count reaches the
 * targeted-refresh threshold the defense asks the controller to issue a
 * VRR (victim-row refresh) for that row and resets the count — the
 * preventive action the tracker covert channel observes (the paper's
 * channel analysis generalises: *any* activation-triggered preventive
 * action is a latency observable; Graphene's is per-aggressor instead
 * of PRAC's channel-wide back-off).
 *
 * The summary guarantees that any row activated more than
 * W / (entries + 1) times within a window of W activations occupies a
 * table entry, so with entries >= W / T no row reaches T activations
 * untracked (policy.hh derives the sizes from NRH).
 */

#ifndef LEAKY_DEFENSE_GRAPHENE_HH
#define LEAKY_DEFENSE_GRAPHENE_HH

#include <cstdint>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "defense/request_queue.hh"
#include "dram/config.hh"

namespace leaky::defense {

/** Graphene configuration (see policy.hh for the NRH derivations). */
struct GrapheneConfig {
    /** Targeted-refresh threshold T: a tracked row reaching it gets a
     *  VRR and a counter reset. */
    std::uint32_t threshold = 80;
    /** Misra-Gries entries per bank (the CAM size in hardware). */
    std::uint32_t table_entries = 64;
    /** VRR window override; 0 selects the channel default (tVRR). */
    sim::Tick vrr_latency = 0;
    /**
     * Tables and spillover counters reset every refresh window (the
     * periodic refresh wipes the retention clock Graphene reasons
     * about, and the W in the entries = W / T sizing is per-window).
     * 0 disables the reset (tests). Applied lazily on the first
     * activation past the window edge -- no timer needed.
     */
    sim::Tick reset_period = 32'000'000'000; ///< tREFW, 32 ms.
};

/** Controller-side Graphene-style tracker. */
class GrapheneDefense final : public ctrl::ControllerDefense
{
  public:
    GrapheneDefense(const dram::DramConfig &dram_cfg,
                    const GrapheneConfig &cfg);

    // ctrl::ControllerDefense
    void onActivate(const ctrl::Address &addr, sim::Tick now) override;
    std::optional<ctrl::RfmRequest> pendingRfm(sim::Tick now) override;
    void onRfmIssued(const ctrl::RfmRequest &req, sim::Tick issued,
                     sim::Tick end) override;
    sim::Tick nextEventTick(sim::Tick now) const override;

    /** Tracked activation count of @p addr's row (0 if untracked). */
    std::uint32_t trackedCount(const ctrl::Address &addr) const;

    /** Spillover-counter value of @p addr's bank (tests). */
    std::uint32_t spillCount(const ctrl::Address &addr) const;

    /** Occupied table entries of @p addr's bank (tests). */
    std::uint32_t tableOccupancy(const ctrl::Address &addr) const;

    /** Total targeted refreshes requested so far. */
    std::uint64_t vrrCount() const { return vrrs_; }

  private:
    static constexpr std::uint32_t kNoRow = ~std::uint32_t{0};

    /** Table slot range [begin, end) of one flat bank. */
    std::uint32_t slotBegin(std::uint32_t flat_bank) const;

    /** Slot of @p row in @p flat_bank's table, or kNoRow. */
    std::uint32_t findSlot(std::uint32_t flat_bank,
                           std::uint32_t row) const;

    void requestVrr(const ctrl::Address &addr, std::uint32_t row);

    /** Per-refresh-window table wipe (lazy; see reset_period). */
    void maybeReset(sim::Tick now);

    dram::DramConfig dram_cfg_;
    GrapheneConfig cfg_;
    /** Entry arrays, all banks concatenated: bank b owns slots
     *  [b * entries, (b + 1) * entries). row kNoRow = free slot. */
    std::vector<std::uint32_t> entry_row_;
    std::vector<std::uint32_t> entry_count_;
    std::vector<std::uint32_t> spill_;    ///< Per flat bank.
    std::vector<std::uint32_t> used_;     ///< Live entries per flat bank.
    RequestQueue pending_;
    sim::Tick next_reset_ = 0;
    std::uint64_t vrrs_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_GRAPHENE_HH
