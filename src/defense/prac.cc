#include "defense/prac.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::defense {

using dram::Command;

PracDefense::PracDefense(const dram::DramConfig &dram_cfg,
                         const PracConfig &cfg, dram::AlertSink *sink)
    : dram_cfg_(dram_cfg), cfg_(cfg), sink_(sink), rng_(cfg.seed),
      banks_(dram_cfg.org.totalBanks()),
      bank_alert_active_(dram_cfg.org.totalBanks(), false),
      bank_cooldown_until_(dram_cfg.org.totalBanks(), 0),
      bank_recovery_left_(dram_cfg.org.totalBanks(), 0)
{
    LEAKY_ASSERT(sink_ != nullptr, "PRAC needs an alert sink");
    if (cfg_.riac && cfg_.riac_init_max == 0)
        cfg_.riac_init_max = cfg_.nbo;
}

std::uint32_t
PracDefense::flatBank(const Address &a) const
{
    return dram_cfg_.org.flatOf(a);
}

std::uint32_t
PracDefense::initValue()
{
    // RIAC: randomise on boot AND after every service (§11.2).
    if (cfg_.riac)
        return static_cast<std::uint32_t>(
            rng_.below(cfg_.riac_init_max));
    return 0;
}

std::uint32_t &
PracDefense::counter(const Address &a)
{
    auto &rows = banks_[flatBank(a)].rows;
    auto it = rows.find(a.row);
    if (it == rows.end()) {
        // First touch: warm-started counters model mid-lifetime state.
        const std::uint32_t first =
            cfg_.warm_start && !cfg_.riac
                ? static_cast<std::uint32_t>(rng_.below(cfg_.nbo))
                : initValue();
        it = rows.emplace(a.row, first).first;
    }
    return it->second;
}

std::uint32_t
PracDefense::counterValue(const Address &addr) const
{
    const auto &rows = banks_[flatBank(addr)].rows;
    const auto it = rows.find(addr.row);
    // Untouched rows under RIAC have an as-yet-unsampled random value;
    // report 0 (the value is only materialised on first close).
    return it == rows.end() ? 0 : it->second;
}

std::uint32_t
PracDefense::maxCounter() const
{
    std::uint32_t best = 0;
    for (const auto &bank : banks_) {
        for (const auto &entry : bank.rows)
            best = std::max(best, entry.second);
    }
    return best;
}

std::size_t
PracDefense::trackedRows() const
{
    std::size_t n = 0;
    for (const auto &bank : banks_)
        n += bank.rows.size();
    return n;
}

void
PracDefense::onActivate(const Address &, Tick)
{
    // PRAC counts at row close (paper §6.1), not at activation.
}

void
PracDefense::onPrecharge(const Address &addr, Tick now)
{
    auto &count = counter(addr);
    count += 1;
    if (count >= cfg_.nbo)
        tryRaise(addr, now);
}

void
PracDefense::onRefresh(std::uint32_t, Tick)
{
    // Activation counters persist across periodic refreshes; they are
    // only serviced by RFMs (back-off recovery).
}

void
PracDefense::tryRaise(const Address &addr, Tick now)
{
    if (cfg_.bank_level) {
        const auto fb = flatBank(addr);
        if (bank_alert_active_[fb] || now < bank_cooldown_until_[fb])
            return;
        bank_alert_active_[fb] = true;
        bank_recovery_left_[fb] = cfg_.rfms_per_backoff;
        alerts_ += 1;
        dram::AlertInfo info;
        info.asserted_at = now;
        info.bank_scoped = true;
        info.bank = addr;
        sink_->raiseAlert(info);
        return;
    }

    if (alert_active_ || now < cooldown_until_)
        return;
    alert_active_ = true;
    recovery_rfms_left_ =
        cfg_.rfms_per_backoff * dram_cfg_.org.ranks;
    alerts_ += 1;
    dram::AlertInfo info;
    info.asserted_at = now;
    info.bank_scoped = false;
    sink_->raiseAlert(info);
}

void
PracDefense::resetTopCounter(const std::vector<std::uint32_t> &flat_banks)
{
    std::uint32_t *top = nullptr;
    std::uint32_t top_count = 0;
    for (auto fb : flat_banks) {
        // Within a bank, pick the hottest row with the lowest row id
        // on ties — an explicit total order, so the serviced row never
        // depends on unordered_map iteration order (which is not part
        // of the bit-identical reproduction contract). Cross-bank ties
        // keep the earliest bank in the command's scope order.
        std::uint32_t *best = nullptr;
        std::uint32_t best_count = 0;
        std::uint32_t best_row = 0;
        for (auto &entry : banks_[fb].rows) {
            if (!best || entry.second > best_count ||
                (entry.second == best_count && entry.first < best_row)) {
                best = &entry.second;
                best_count = entry.second;
                best_row = entry.first;
            }
        }
        if (best && (!top || best_count > top_count)) {
            top = best;
            top_count = best_count;
        }
    }
    // Refreshing the victims of the top aggressor resets its counter;
    // RIAC re-randomises instead (§11.2).
    if (top)
        *top = initValue();
}

void
PracDefense::onRfm(Command kind, const Address &addr, bool during_backoff,
                   Tick now)
{
    // Each RFM window services ONE aggressor row: the device refreshes
    // the victims of the highest activation counter reachable by the
    // command's scope (§6.1: a 4-RFM back-off covers four aggressors).
    std::vector<std::uint32_t> scope;
    if (kind == Command::kRfmAll) {
        for (std::uint32_t bg = 0; bg < dram_cfg_.org.bankgroups; ++bg) {
            for (std::uint32_t b = 0; b < dram_cfg_.org.banks_per_group;
                 ++b) {
                scope.push_back(dram_cfg_.org.flatBank(addr.rank, bg, b));
            }
        }
    } else if (kind == Command::kRfmSameBank) {
        for (std::uint32_t bg = 0; bg < dram_cfg_.org.bankgroups; ++bg)
            scope.push_back(dram_cfg_.org.flatBank(addr.rank, bg,
                                                   addr.bank));
    } else if (kind == Command::kRfmOneBank) {
        scope.push_back(flatBank(addr));
    }
    resetTopCounter(scope);

    if (!during_backoff)
        return;

    const Tick window = dram_cfg_.timing.tRFM_backoff;
    if (cfg_.bank_level && kind == Command::kRfmOneBank) {
        const auto fb = flatBank(addr);
        if (bank_recovery_left_[fb] > 0) {
            bank_recovery_left_[fb] -= 1;
            if (bank_recovery_left_[fb] == 0) {
                bank_alert_active_[fb] = false;
                bank_cooldown_until_[fb] = now + window + cfg_.cooldown;
            }
        }
    } else if (!cfg_.bank_level && recovery_rfms_left_ > 0) {
        recovery_rfms_left_ -= 1;
        if (recovery_rfms_left_ == 0) {
            alert_active_ = false;
            cooldown_until_ = now + window + cfg_.cooldown;
        }
    }
}

} // namespace leaky::defense
