#include "defense/prfm.hh"

namespace leaky::defense {

using ctrl::Address;
using ctrl::RfmRequest;
using dram::Command;
using sim::Tick;

PrfmDefense::PrfmDefense(const dram::DramConfig &dram_cfg,
                         const PrfmConfig &cfg)
    : dram_cfg_(dram_cfg), cfg_(cfg),
      raa_(dram_cfg.org.totalBanks(), 0),
      inflight_(dram_cfg.org.ranks * dram_cfg.org.banks_per_group, false)
{
}

std::uint32_t
PrfmDefense::pairIndex(std::uint32_t rank, std::uint32_t bank) const
{
    return rank * dram_cfg_.org.banks_per_group + bank;
}

std::uint32_t
PrfmDefense::raaCount(const Address &addr) const
{
    return raa_[dram_cfg_.org.flatOf(addr)];
}

void
PrfmDefense::onActivate(const Address &addr, Tick)
{
    const auto fb = dram_cfg_.org.flatOf(addr);
    raa_[fb] += 1;
    const auto pair = pairIndex(addr.rank, addr.bank);
    if (raa_[fb] >= cfg_.trfm && !inflight_[pair]) {
        inflight_[pair] = true;
        RfmRequest req;
        req.kind = Command::kRfmSameBank;
        req.target.channel = addr.channel;
        req.target.rank = addr.rank;
        req.target.bank = addr.bank;
        pending_.push_back(req);
    }
}

std::optional<RfmRequest>
PrfmDefense::pendingRfm(Tick)
{
    if (pending_.empty())
        return std::nullopt;
    RfmRequest req = pending_.front();
    pending_.pop_front();
    rfms_ += 1;
    return req;
}

void
PrfmDefense::onRfmIssued(const RfmRequest &req, Tick, Tick)
{
    for (std::uint32_t bg = 0; bg < dram_cfg_.org.bankgroups; ++bg) {
        auto &count = raa_[dram_cfg_.org.flatBank(req.target.rank, bg,
                                                  req.target.bank)];
        count = count > cfg_.trfm ? count - cfg_.trfm : 0;
    }
    inflight_[pairIndex(req.target.rank, req.target.bank)] = false;
}

Tick
PrfmDefense::nextEventTick(Tick) const
{
    // Counters only move on activations, which already wake the
    // controller; no timer needed.
    return sim::kTickMax;
}

} // namespace leaky::defense
