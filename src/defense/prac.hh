/**
 * @file
 * PRAC (Per Row Activation Counting) device-side defense (paper §6.1)
 * and its two countermeasure variants:
 *
 *  - standard PRAC: a counter per DRAM row, incremented when the row is
 *    closed; when a counter reaches NBO the device asserts the ABO
 *    (alert back-off) signal and the controller runs the back-off
 *    protocol (tABOACT of normal traffic + N recovery RFMs). Each
 *    recovery RFM refreshes the victims of the highest-count row in
 *    every bank and resets that counter.
 *  - PRAC-RIAC (§11.2): counters are initialised to random values at
 *    boot and re-randomised after each preventive action, injecting
 *    unintentional back-offs that reduce the covert channel's capacity.
 *  - Bank-Level PRAC (§11.3): per-bank alert signals; a back-off blocks
 *    only the offending bank, shrinking the attack scope to same-bank.
 */

#ifndef LEAKY_DEFENSE_PRAC_HH
#define LEAKY_DEFENSE_PRAC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/config.hh"
#include "dram/hooks.hh"
#include "sim/rng.hh"

namespace leaky::defense {

using dram::Address;
using sim::Tick;

/** PRAC family configuration. */
struct PracConfig {
    std::uint32_t nbo = 128;            ///< Back-off threshold.
    std::uint32_t rfms_per_backoff = 4; ///< RFMs the controller issues.
    bool bank_level = false;            ///< Bank-Level PRAC (§11.3).
    bool riac = false;                  ///< PRAC-RIAC (§11.2).
    /**
     * Warm start: first-touch counters begin at U[0, nbo) to model a
     * mid-lifetime slice of a long-running system (PRAC counters
     * persist indefinitely and only drain when a back-off services a
     * row). Used by the Fig. 13 performance study; unlike RIAC,
     * serviced rows still reset to zero.
     */
    bool warm_start = false;
    std::uint32_t riac_init_max = 0;    ///< 0 -> use nbo.
    std::uint64_t seed = 1;             ///< RIAC randomness seed.
    Tick cooldown = 250'000;            ///< Min gap between alerts.
};

/** PRAC / PRAC-RIAC / Bank-Level PRAC device hooks. */
class PracDefense final : public dram::DeviceHooks
{
  public:
    PracDefense(const dram::DramConfig &dram_cfg, const PracConfig &cfg,
                dram::AlertSink *sink);

    // dram::DeviceHooks
    void onActivate(const Address &addr, Tick now) override;
    void onPrecharge(const Address &addr, Tick now) override;
    void onRefresh(std::uint32_t rank, Tick now) override;
    void onRfm(dram::Command kind, const Address &addr, bool during_backoff,
               Tick now) override;

    /** Current counter value of a row (tests / §9.1 leak analysis). */
    std::uint32_t counterValue(const Address &addr) const;

    /** Number of alerts raised so far. */
    std::uint64_t alertCount() const { return alerts_; }

    /** Highest live counter value (diagnostics / tests). */
    std::uint32_t maxCounter() const;

    /** Number of rows with live counters (diagnostics / tests). */
    std::size_t trackedRows() const;

    const PracConfig &config() const { return cfg_; }

  private:
    /** Per-bank activation-counter table. */
    struct BankCounters {
        std::unordered_map<std::uint32_t, std::uint32_t> rows;
    };

    std::uint32_t flatBank(const Address &a) const;
    std::uint32_t &counter(const Address &a);
    std::uint32_t initValue();
    /** Refresh the victims of the hottest row among @p flat_banks:
     *  one aggressor serviced per RFM window (paper §6.1: a back-off's
     *  four RFMs refresh four aggressor rows' victims). */
    void resetTopCounter(const std::vector<std::uint32_t> &flat_banks);
    void tryRaise(const Address &addr, Tick now);

    dram::DramConfig dram_cfg_;
    PracConfig cfg_;
    dram::AlertSink *sink_;
    mutable sim::Rng rng_;

    std::vector<BankCounters> banks_;

    // Channel-scope alert state.
    bool alert_active_ = false;
    Tick cooldown_until_ = 0;
    std::uint32_t recovery_rfms_left_ = 0;

    // Bank-scope alert state (Bank-Level PRAC).
    std::vector<bool> bank_alert_active_;
    std::vector<Tick> bank_cooldown_until_;
    std::vector<std::uint32_t> bank_recovery_left_;

    std::uint64_t alerts_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_PRAC_HH
