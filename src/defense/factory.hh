/**
 * @file
 * Defense selection and construction. A DefenseSpec names one of the
 * mechanisms studied in the paper plus the NRH it must defend; the
 * factory derives secure parameters via policy.hh (unless overridden)
 * and produces the device-side hooks and/or controller-side defense to
 * attach to a memory controller.
 */

#ifndef LEAKY_DEFENSE_FACTORY_HH
#define LEAKY_DEFENSE_FACTORY_HH

#include <memory>
#include <string>
#include <tuple>

#include "ctrl/defense_iface.hh"
#include "defense/policy.hh"
#include "dram/config.hh"
#include "dram/hooks.hh"

namespace leaky::defense {

/** The defenses evaluated in the paper, plus the tracker family the
 *  channel analysis generalises to (Graphene / Hydra). */
enum class DefenseKind : std::uint8_t {
    kNone,     ///< Baseline: no RowHammer mitigation.
    kPrac,     ///< PRAC (§6).
    kPracRiac, ///< PRAC + randomly initialised counters (§11.2).
    kPracBank, ///< Bank-Level PRAC (§11.3).
    kPrfm,     ///< Periodic RFM (§7).
    kFrRfm,    ///< Fixed-Rate RFM (§11.1).
    kPara,     ///< PARA baseline (§12).
    kGraphene, ///< Misra-Gries frequent-item tracker (Graphene-style).
    kHydra     ///< Two-level filter + counter cache (Hydra-style).
};

const char *defenseName(DefenseKind kind);

/** What to build and for which threat level. */
struct DefenseSpec {
    DefenseKind kind = DefenseKind::kNone;
    std::uint32_t nrh = 1024; ///< RowHammer threshold to defend.

    // Optional overrides (0 = derive from policy.hh / defaults).
    std::uint32_t nbo_override = 0;
    std::uint32_t trfm_override = 0;
    std::uint32_t rfms_per_backoff = 4;
    sim::Tick backoff_rfm_latency = 0; ///< Fig. 12 latency sweep.
    /** Override the normal-traffic window after an alert (Fig. 12
     *  models the preventive action as immediate). */
    sim::Tick aboact_override = 0;
    sim::Tick fr_rfm_period_override = 0;
    double para_probability = 0.02;
    /** Tracker (Graphene/Hydra) targeted-refresh threshold override
     *  (0 = trackerThresholdFor(nrh)); the tracker-threshold figure
     *  sweeps it. */
    std::uint32_t tracker_threshold_override = 0;
    /** Hydra counter-cache entries (0 = the 2048-entry default). */
    std::uint32_t hydra_cc_entries = 0;
    /** Warm-start PRAC counters (performance studies; see prac.hh). */
    bool warm_counters = false;
    std::uint64_t seed = 1;

    /** All fields as one tuple — THE canonical field list; a new knob
     *  must be added here too (spec-match guards compare via this). */
    auto
    tied() const
    {
        return std::tie(kind, nrh, nbo_override, trfm_override,
                        rfms_per_backoff, backoff_rfm_latency,
                        aboact_override, fr_rfm_period_override,
                        para_probability, tracker_threshold_override,
                        hydra_cc_entries, warm_counters, seed);
    }

    bool
    operator==(const DefenseSpec &o) const
    {
        return tied() == o.tied();
    }
};

/** Field-drift guard (same pattern as CtrlStats): adding a knob
 *  changes the size and fails this assert until tied() visits the
 *  field. 80 = the LP64 layout of the 13 fields above + padding. */
static_assert(sizeof(DefenseSpec) == 80,
              "update DefenseSpec::tied() for the new field, then "
              "adjust this size guard");

/** Constructed defense objects plus controller config adjustments. */
struct DefenseBundle {
    std::unique_ptr<dram::DeviceHooks> device;
    std::unique_ptr<ctrl::ControllerDefense> controller;
    bool deterministic_refresh = false; ///< FR-RFM pins REF times too.
    std::uint32_t rfms_per_backoff = 4;
    sim::Tick backoff_rfm_latency = 0;
    std::string description;
};

/**
 * Build a defense for one channel.
 * @param spec What to build.
 * @param dram_cfg Channel geometry/timing.
 * @param drain_lead Controller's precise-drain lead (FR-RFM needs it).
 * @param sink Alert sink (the channel's controller) for PRAC variants.
 */
DefenseBundle makeDefense(const DefenseSpec &spec,
                          const dram::DramConfig &dram_cfg,
                          sim::Tick drain_lead, dram::AlertSink *sink);

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_FACTORY_HH
