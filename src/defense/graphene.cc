#include "defense/graphene.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::defense {

using ctrl::Address;
using ctrl::PreventiveActionKind;
using ctrl::RfmRequest;
using dram::Command;
using sim::Tick;

GrapheneDefense::GrapheneDefense(const dram::DramConfig &dram_cfg,
                                 const GrapheneConfig &cfg)
    : dram_cfg_(dram_cfg), cfg_(cfg),
      entry_row_(static_cast<std::size_t>(dram_cfg.org.totalBanks()) *
                     cfg.table_entries,
                 kNoRow),
      entry_count_(entry_row_.size(), 0),
      spill_(dram_cfg.org.totalBanks(), 0),
      used_(dram_cfg.org.totalBanks(), 0)
{
    LEAKY_ASSERT(cfg_.threshold > 0, "Graphene threshold must be > 0");
    LEAKY_ASSERT(cfg_.table_entries > 0, "Graphene table must be > 0");
}

std::uint32_t
GrapheneDefense::slotBegin(std::uint32_t flat_bank) const
{
    return flat_bank * cfg_.table_entries;
}

std::uint32_t
GrapheneDefense::findSlot(std::uint32_t flat_bank, std::uint32_t row) const
{
    // Occupied slots are packed at the front of the bank's range, so
    // the scan is O(live entries), not O(table size).
    const auto begin = slotBegin(flat_bank);
    const auto end = begin + used_[flat_bank];
    for (std::uint32_t s = begin; s < end; ++s) {
        if (entry_row_[s] == row)
            return s;
    }
    return kNoRow;
}

void
GrapheneDefense::requestVrr(const Address &addr, std::uint32_t row)
{
    RfmRequest req;
    req.kind = Command::kVrr;
    req.action = PreventiveActionKind::kVictimRefresh;
    req.target = addr;
    req.target.row = row;
    req.latency_override = cfg_.vrr_latency;
    pending_.push(req);
}

void
GrapheneDefense::maybeReset(Tick now)
{
    if (cfg_.reset_period == 0 || now < next_reset_)
        return;
    next_reset_ = now + cfg_.reset_period;
    std::fill(entry_row_.begin(), entry_row_.end(), kNoRow);
    std::fill(entry_count_.begin(), entry_count_.end(), 0);
    std::fill(spill_.begin(), spill_.end(), 0);
    std::fill(used_.begin(), used_.end(), 0);
}

void
GrapheneDefense::onActivate(const Address &addr, Tick now)
{
    maybeReset(now);
    const auto fb = dram_cfg_.org.flatOf(addr);
    auto slot = findSlot(fb, addr.row);

    if (slot == kNoRow) {
        if (used_[fb] < cfg_.table_entries) {
            // Free entry: adopt the row. The count starts one above the
            // spillover counter -- the Misra-Gries invariant that an
            // untracked row may have been activated up to spill times.
            slot = slotBegin(fb) + used_[fb];
            used_[fb] += 1;
            entry_row_[slot] = addr.row;
            entry_count_[slot] = spill_[fb] + 1;
        } else {
            // Full table: the spillover counter absorbs the activation
            // until it catches up with the coldest entry, which is then
            // evicted and replaced by the incoming row at the spillover
            // count (the Graphene swap rule).
            spill_[fb] += 1;
            const auto begin = slotBegin(fb);
            std::uint32_t min_slot = begin;
            for (std::uint32_t s = begin + 1;
                 s < begin + cfg_.table_entries; ++s) {
                if (entry_count_[s] < entry_count_[min_slot])
                    min_slot = s;
            }
            if (spill_[fb] < entry_count_[min_slot])
                return; // Still colder than every tracked row.
            slot = min_slot;
            entry_row_[slot] = addr.row;
            entry_count_[slot] = spill_[fb];
        }
    } else {
        entry_count_[slot] += 1;
    }

    if (entry_count_[slot] >= cfg_.threshold) {
        // The victims get refreshed; the aggressor's count restarts.
        // The entry stays resident (it is clearly a hot row).
        entry_count_[slot] = 0;
        requestVrr(addr, addr.row);
    }
}

std::optional<RfmRequest>
GrapheneDefense::pendingRfm(Tick)
{
    if (pending_.empty())
        return std::nullopt;
    const RfmRequest req = pending_.pop();
    vrrs_ += 1;
    return req;
}

void
GrapheneDefense::onRfmIssued(const RfmRequest &, Tick, Tick)
{
    // Counter state was already reset when the VRR was requested.
}

Tick
GrapheneDefense::nextEventTick(Tick) const
{
    // Tables only move on activations, which already wake the
    // controller; no timer needed.
    return sim::kTickMax;
}

std::uint32_t
GrapheneDefense::trackedCount(const Address &addr) const
{
    const auto slot = findSlot(dram_cfg_.org.flatOf(addr), addr.row);
    return slot == kNoRow ? 0 : entry_count_[slot];
}

std::uint32_t
GrapheneDefense::spillCount(const Address &addr) const
{
    return spill_[dram_cfg_.org.flatOf(addr)];
}

std::uint32_t
GrapheneDefense::tableOccupancy(const Address &addr) const
{
    return used_[dram_cfg_.org.flatOf(addr)];
}

} // namespace leaky::defense
