/**
 * @file
 * PARA (Probabilistic Adjacent Row Activation, Kim et al. ISCA'14) as a
 * stateless baseline for the §12 trigger-algorithm taxonomy: on every
 * activation the controller refreshes the neighbours with probability p.
 * The preventive action is observable but cannot be reliably triggered,
 * which is exactly why the paper classifies random trigger algorithms as
 * hard to exploit.
 */

#ifndef LEAKY_DEFENSE_PARA_HH
#define LEAKY_DEFENSE_PARA_HH

#include <cstdint>
#include <deque>

#include "ctrl/defense_iface.hh"
#include "dram/config.hh"
#include "sim/rng.hh"

namespace leaky::defense {

/** PARA configuration. */
struct ParaConfig {
    double probability = 0.02; ///< Neighbour-refresh chance per ACT.
    sim::Tick refresh_latency = 96'000; ///< Two row cycles (blast radius 1).
    std::uint64_t seed = 7;
};

/** Controller-side PARA defense. */
class ParaDefense final : public ctrl::ControllerDefense
{
  public:
    explicit ParaDefense(const ParaConfig &cfg);

    // ctrl::ControllerDefense
    void onActivate(const ctrl::Address &addr, sim::Tick now) override;
    std::optional<ctrl::RfmRequest> pendingRfm(sim::Tick now) override;
    void onRfmIssued(const ctrl::RfmRequest &req, sim::Tick issued,
                     sim::Tick end) override;
    sim::Tick nextEventTick(sim::Tick now) const override;

    std::uint64_t refreshCount() const { return refreshes_; }

  private:
    ParaConfig cfg_;
    sim::Rng rng_;
    std::deque<ctrl::RfmRequest> pending_;
    std::uint64_t refreshes_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_PARA_HH
