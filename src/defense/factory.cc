#include "defense/factory.hh"

#include <algorithm>

#include "defense/fr_rfm.hh"
#include "defense/graphene.hh"
#include "defense/hydra.hh"
#include "defense/para.hh"
#include "defense/prac.hh"
#include "defense/prfm.hh"
#include "sim/logging.hh"

namespace leaky::defense {

const char *
defenseName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::kNone: return "None";
      case DefenseKind::kPrac: return "PRAC";
      case DefenseKind::kPracRiac: return "PRAC-RIAC";
      case DefenseKind::kPracBank: return "PRAC-Bank";
      case DefenseKind::kPrfm: return "PRFM";
      case DefenseKind::kFrRfm: return "FR-RFM";
      case DefenseKind::kPara: return "PARA";
      case DefenseKind::kGraphene: return "Graphene";
      case DefenseKind::kHydra: return "Hydra";
    }
    return "?";
}

DefenseBundle
makeDefense(const DefenseSpec &spec, const dram::DramConfig &dram_cfg,
            sim::Tick drain_lead, dram::AlertSink *sink)
{
    DefenseBundle bundle;
    bundle.rfms_per_backoff = spec.rfms_per_backoff;
    bundle.backoff_rfm_latency = spec.backoff_rfm_latency;
    bundle.description = defenseName(spec.kind);

    const auto nbo = spec.nbo_override ? spec.nbo_override
                                       : nboFor(spec.nrh);
    const auto trfm = spec.trfm_override ? spec.trfm_override
                                         : trfmFor(spec.nrh);

    switch (spec.kind) {
      case DefenseKind::kNone:
        break;
      case DefenseKind::kPrac:
      case DefenseKind::kPracRiac:
      case DefenseKind::kPracBank: {
        LEAKY_ASSERT(sink != nullptr, "PRAC variants need an alert sink");
        PracConfig cfg;
        cfg.nbo = nbo;
        cfg.rfms_per_backoff = spec.rfms_per_backoff;
        cfg.riac = spec.kind == DefenseKind::kPracRiac;
        cfg.bank_level = spec.kind == DefenseKind::kPracBank;
        // RIAC randomises over [0, NBO): re-initialised counters can
        // land arbitrarily close to the threshold, so concurrent
        // activity triggers unintentional back-offs (§11.2).
        cfg.riac_init_max = nbo;
        cfg.warm_start = spec.warm_counters;
        cfg.seed = spec.seed;
        cfg.cooldown = dram_cfg.timing.tABOCooldown;
        bundle.device = std::make_unique<PracDefense>(dram_cfg, cfg, sink);
        break;
      }
      case DefenseKind::kPrfm: {
        PrfmConfig cfg;
        cfg.trfm = trfm;
        bundle.controller = std::make_unique<PrfmDefense>(dram_cfg, cfg);
        break;
      }
      case DefenseKind::kFrRfm: {
        FrRfmConfig cfg;
        cfg.period = spec.fr_rfm_period_override
                         ? spec.fr_rfm_period_override
                         : frRfmPeriodFor(spec.nrh, dram_cfg.timing,
                                          drain_lead);
        cfg.drain_lead = drain_lead;
        bundle.controller = std::make_unique<FrRfmDefense>(cfg);
        bundle.deterministic_refresh = true;
        break;
      }
      case DefenseKind::kPara: {
        ParaConfig cfg;
        cfg.probability = spec.para_probability;
        cfg.seed = spec.seed;
        bundle.controller = std::make_unique<ParaDefense>(cfg);
        break;
      }
      case DefenseKind::kGraphene: {
        GrapheneConfig cfg;
        cfg.threshold = spec.tracker_threshold_override
                            ? spec.tracker_threshold_override
                            : trackerThresholdFor(spec.nrh);
        cfg.table_entries =
            grapheneEntriesFor(spec.nrh, dram_cfg.timing);
        bundle.controller =
            std::make_unique<GrapheneDefense>(dram_cfg, cfg);
        break;
      }
      case DefenseKind::kHydra: {
        HydraConfig cfg;
        // Clamp to >= 2 so any override leaves room for a group
        // threshold strictly below the row threshold.
        cfg.row_threshold = std::max<std::uint32_t>(
            2, spec.tracker_threshold_override
                   ? spec.tracker_threshold_override
                   : trackerThresholdFor(spec.nrh));
        // Keep the two-level invariant even when the sweep pins the
        // row threshold below the policy's group threshold.
        cfg.group_threshold =
            std::min(hydraGroupThresholdFor(spec.nrh),
                     cfg.row_threshold > 1 ? cfg.row_threshold - 1 : 1);
        if (spec.hydra_cc_entries)
            cfg.cc_entries = spec.hydra_cc_entries;
        bundle.controller = std::make_unique<HydraDefense>(dram_cfg, cfg);
        break;
      }
    }
    return bundle;
}

} // namespace leaky::defense
