/**
 * @file
 * Periodic RFM (PRFM) controller-side defense (paper §7.1): the
 * controller keeps a rolling-activation (RAA) counter per DRAM bank;
 * when a bank's counter reaches TRFM it issues a same-bank RFM command
 * (blocking that bank index in every bank group of the rank) and
 * decrements the affected counters by TRFM.
 */

#ifndef LEAKY_DEFENSE_PRFM_HH
#define LEAKY_DEFENSE_PRFM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "ctrl/defense_iface.hh"
#include "dram/config.hh"

namespace leaky::defense {

/** PRFM configuration. */
struct PrfmConfig {
    std::uint32_t trfm = 40; ///< Bank activation threshold (paper §7.1).
};

/** Controller-side PRFM defense. */
class PrfmDefense final : public ctrl::ControllerDefense
{
  public:
    PrfmDefense(const dram::DramConfig &dram_cfg, const PrfmConfig &cfg);

    // ctrl::ControllerDefense
    void onActivate(const ctrl::Address &addr, sim::Tick now) override;
    std::optional<ctrl::RfmRequest> pendingRfm(sim::Tick now) override;
    void onRfmIssued(const ctrl::RfmRequest &req, sim::Tick issued,
                     sim::Tick end) override;
    sim::Tick nextEventTick(sim::Tick now) const override;

    /** RAA counter of one bank (tests). */
    std::uint32_t raaCount(const ctrl::Address &addr) const;

    /** Total RFMs this defense has requested so far. */
    std::uint64_t rfmCount() const { return rfms_; }

  private:
    /** Same-bank pair identifying an RFMsb target: (rank, bank index). */
    std::uint32_t pairIndex(std::uint32_t rank, std::uint32_t bank) const;

    dram::DramConfig dram_cfg_;
    PrfmConfig cfg_;
    std::vector<std::uint32_t> raa_;      ///< Per flat bank.
    std::vector<bool> inflight_;          ///< Per (rank, bank) pair.
    std::deque<ctrl::RfmRequest> pending_;
    std::uint64_t rfms_ = 0;
};

} // namespace leaky::defense

#endif // LEAKY_DEFENSE_PRFM_HH
