/**
 * @file
 * Umbrella header: include this to get the whole LeakyHammer library.
 *
 * Layering (bottom-up):
 *  - leaky::sim      event queue, ticks, RNG, logging
 *  - leaky::dram     DDR5 device model, address mapping, defense hooks
 *  - leaky::ctrl     memory controller (FR-FCFS, refresh, ABO protocol)
 *  - leaky::defense  PRAC / PRFM / FR-RFM / RIAC / Bank-PRAC / PARA
 *  - leaky::sys      caches, cores, prefetcher, System (MemoryPort)
 *  - leaky::workload SPEC-like and website trace generators
 *  - leaky::attack   LeakyHammer probes, covert channels, side channel
 *  - leaky::ml       fingerprinting classifiers
 *  - leaky::stats    channel capacity, weighted speedup
 *  - leaky::core     experiment runners and reporting
 */

#ifndef LEAKY_CORE_LEAKYHAMMER_HH
#define LEAKY_CORE_LEAKYHAMMER_HH

#include "attack/counter_leak.hh"
#include "attack/covert.hh"
#include "attack/dram_addr.hh"
#include "attack/fingerprint.hh"
#include "attack/message.hh"
#include "attack/noise.hh"
#include "attack/probe.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "ctrl/controller.hh"
#include "defense/factory.hh"
#include "defense/fr_rfm.hh"
#include "defense/para.hh"
#include "defense/policy.hh"
#include "defense/prac.hh"
#include "defense/prfm.hh"
#include "dram/address_mapper.hh"
#include "dram/channel.hh"
#include "ml/classifier.hh"
#include "ml/ensemble.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"
#include "sim/event_queue.hh"
#include "stats/channel_metrics.hh"
#include "sys/core.hh"
#include "sys/system.hh"
#include "workload/synthetic.hh"
#include "workload/website.hh"

#endif // LEAKY_CORE_LEAKYHAMMER_HH
