/**
 * @file
 * High-level experiment runners: one function per family of paper
 * results, shared by the bench/ binaries and the examples. Each runner
 * builds a fresh System (paper Table 1 configuration), attaches the
 * necessary agents/cores, runs the event queue, and returns the numbers
 * the corresponding figure/table plots.
 *
 * Scale knobs: every runner takes explicit sizes; the figure registry
 * (src/runner/figures*.cc) picks them per smoke / default / full scale
 * (see EXPERIMENTS.md).
 */

#ifndef LEAKY_CORE_EXPERIMENTS_HH
#define LEAKY_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/covert.hh"
#include "attack/fingerprint.hh"
#include "attack/mapping_recovery.hh"
#include "attack/message.hh"
#include "attack/probe.hh"
#include "ml/dataset.hh"
#include "sys/system.hh"
#include "workload/synthetic.hh"

namespace leaky::core {

using sim::Tick;

/** Paper Table 1 system with PRAC at the attack-study operating point
 *  (NBO = 128, 4 RFMs per back-off). */
sys::SystemConfig pracAttackSystem();

/** Paper §7 system: PRFM with TRFM = 40. */
sys::SystemConfig prfmAttackSystem();

/** Tracker-family system (Graphene / Hydra) at the attack-study
 *  operating point: NRH = 160, targeted-refresh threshold 80. */
sys::SystemConfig trackerAttackSystem(defense::DefenseKind kind);

// ------------------------------------------------------------- Fig. 2

/** Fig. 2: latencies of consecutive requests under PRAC (Listing 1). */
struct LatencyTraceResult {
    std::vector<attack::LatencySample> samples;
    attack::LatencyClassifier classifier;
    std::uint64_t backoffs = 0; ///< Ground truth.
    std::uint64_t refreshes = 0;
    double mean_backoff_latency_ns = 0.0;
    double mean_conflict_latency_ns = 0.0;
    double mean_refresh_latency_ns = 0.0;
};

LatencyTraceResult runLatencyTrace(std::uint32_t iterations = 512,
                                   std::uint32_t rfms_per_backoff = 4);

// -------------------------------------------------- Figs. 3-8 (covert)

/** Options for one covert-channel run. */
struct ChannelRunSpec {
    attack::ChannelKind kind = attack::ChannelKind::kPrac;
    std::uint32_t levels = 2;
    /** Memory-channel topology: system channel count, the channels
     *  the two endpoints target, and the physical-address mapping.
     *  receiver_channel != sender_channel is the cross-channel
     *  isolation scenario: the sender then alternates two of its own
     *  rows (self-conflict) and PRAC runs a longer window, exactly as
     *  in the non-colocated §9.1 variants. */
    std::uint32_t channels = 1;
    std::uint32_t sender_channel = 0;
    std::uint32_t receiver_channel = 0;
    dram::MappingSpec mapping;
    std::size_t message_bytes = 100;
    attack::MessagePattern pattern = attack::MessagePattern::kCheckered0;
    /** Noise microbenchmark sleep (0 = no noise agent). */
    Tick noise_sleep = 0;
    /** Concurrent SPEC-like apps (empty = none). */
    std::vector<workload::AppSpec> background;
    std::uint32_t rfms_per_backoff = 4;
    /** Override back-off RFM latency (Fig. 12 sweep); 0 = default. */
    Tick backoff_rfm_latency = 0;
    /** Override the post-alert normal-traffic window; 0 = default. */
    Tick aboact_override = 0;
    /**
     * Pin refreshes to the tREFI grid (no postponing) and filter them
     * out at the receiver (paper footnote 6 and §10.1) -- used when
     * the preventive-action latency shrinks into the refresh band
     * (Figs. 11/12).
     */
    bool filter_refresh = false;
    /** Override the receiver's back-off detection threshold (Fig. 12
     *  sweeps it against the preventive-action latency); 0 = derive. */
    Tick backoff_min_override = 0;
    /** Larger cache hierarchy + prefetchers for background apps
     *  (§10.3). */
    bool large_caches = false;
    std::uint64_t seed = 1;
};

/** A run plus its Eq.-1 metrics. */
attack::ChannelResult runChannel(const ChannelRunSpec &spec);

/** As runChannel, but on a caller-owned @p system (whose config must
 *  match spec's topology) so the caller can inspect per-channel stats
 *  views after the transmission. */
attack::ChannelResult runChannelOn(sys::System &system,
                                   const ChannelRunSpec &spec);

/** System configuration a ChannelRunSpec implies (topology, defense
 *  overrides, mapping preset) — what runChannel builds internally. */
sys::SystemConfig channelSystemConfig(const ChannelRunSpec &spec);

/** Average metrics over the four message patterns (§6.3, §7.3). */
struct PatternSweepResult {
    double raw_bit_rate = 0.0;
    double error_probability = 0.0;
    double capacity = 0.0;
};

PatternSweepResult runPatternSweep(ChannelRunSpec spec);

/** Transmit "MICRO" and report the per-window detections (Figs. 3/6). */
struct MessageDemoResult {
    std::vector<bool> sent_bits;
    std::vector<bool> received_bits;
    /** Receiver observable per window: back-offs (PRAC) or RFM count. */
    std::vector<std::uint32_t> detections;
    std::string decoded_text;
};

MessageDemoResult
runMessageDemo(attack::ChannelKind kind,
               const std::string &message = "MICRO",
               const dram::MappingSpec &mapping = {});

// ------------------------------------------------------- Figs. 9/10, T2

/** One collected website fingerprint. */
struct FingerprintSample {
    std::uint32_t site = 0;
    std::uint32_t load = 0;
    std::vector<Tick> backoff_times;
    Tick duration = 0;
};

/** Side-channel data-collection options (§8: NRH = 64). */
struct FingerprintSpec {
    std::uint32_t sites = 40;
    std::uint32_t loads_per_site = 50;
    std::uint32_t nrh = 64;
    Tick duration = 4 * sim::kMs;
    bool large_caches = false;    ///< §10.3 variant.
    bool background_noise = false; ///< Concurrent SPEC-like app (§8).
    std::uint64_t seed = 2025;
};

/** Collect fingerprints by simulating browser + probe per load. */
std::vector<FingerprintSample>
collectFingerprints(const FingerprintSpec &spec);

/** Collect a single (site, load) fingerprint. */
FingerprintSample collectOneFingerprint(const FingerprintSpec &spec,
                                        std::uint32_t site,
                                        std::uint32_t load);

/** Turn fingerprints into the ML dataset (extractFeatures per sample). */
ml::Dataset fingerprintDataset(const std::vector<FingerprintSample> &raw,
                               std::uint32_t windows = 32);

// ----------------------------------------------- §9.1, §11.4, §12, T3

/** One §9.1 counter-leak trial (Table 3's row-granular column). */
struct CounterLeakTrial {
    std::uint32_t secret = 0; ///< Victim's priming activation count.
    std::uint32_t leaked = 0; ///< NBO - attacker activations.
    double elapsed_us = 0.0;
    double bits = 0.0; ///< log2(NBO) leaked per shot.
};

/** Prime the shared row's counter with @p secret and leak it back. */
CounterLeakTrial runCounterLeakTrial(std::uint32_t secret);

/** One §11.4 countermeasure scenario: the PRAC channel attacked
 *  against a protected system under ambient noise. */
struct CountermeasureCellSpec {
    defense::DefenseKind kind = defense::DefenseKind::kPrac;
    /** Receiver outside the sender's bank (Bank-Level PRAC's scope
     *  reduction); the sender self-conflicts between two rows. */
    bool cross_bank = false;
    Tick noise_sleep = 0; ///< Ambient Eq.-2 noise (0 = none).
    std::size_t message_bytes = 25;
    std::uint64_t seed = 1;
};

attack::ChannelResult
runCountermeasureCell(const CountermeasureCellSpec &spec);

/** §12 trigger-algorithm cell: exact triggers (PRAC, PRFM) vs the
 *  stateless random PARA at probability @p para_probability. */
attack::ChannelResult runTriggerCell(defense::DefenseKind kind,
                                     double para_probability,
                                     std::size_t message_bytes,
                                     std::uint64_t seed);

/** Table 3 colocation cell: channel error with the receiver moved to
 *  (@p bankgroup, @p bank); (-1, -1) keeps the same-bank default. */
attack::ChannelResult runGranularityCell(attack::ChannelKind kind,
                                         int bankgroup, int bank,
                                         std::size_t message_bytes,
                                         std::uint64_t seed);

// --------------------------------------- tracker family (cross-defense)

/** System configuration of one cross-defense covert cell: the
 *  family-appropriate attack operating point for @p kind (PRAC
 *  NBO = 128, PRFM TRFM = 40, tracker NRH = 160, paper defaults
 *  otherwise). Exposed for reuse — the pattern fuzzer (src/fuzz)
 *  evaluates generated patterns in exactly this cell. */
sys::SystemConfig crossDefenseSystemConfig(defense::DefenseKind kind);

/** Receiver/channel configuration matching crossDefenseSystemConfig:
 *  back-off detection for the PRAC family, slow-event counting for
 *  the RFM/tracker families (targeted refreshes land in the RFM
 *  latency band, above conflicts and below refreshes). */
attack::CovertConfig crossDefenseChannelConfig(sys::System &system,
                                               defense::DefenseKind kind);

/** One cross-defense covert cell: the generic LeakyHammer sender vs a
 *  system protected by @p kind, with Eq.-2 noise at @p noise_sleep.
 *  The receiver strategy adapts to the defense's observable: back-off
 *  detection for the PRAC family, slow-event counting for the
 *  RFM/tracker families (RFM windows and targeted refreshes land in
 *  the same latency band, above conflicts and below refreshes). */
attack::ChannelResult runCrossDefenseCell(defense::DefenseKind kind,
                                          Tick noise_sleep,
                                          std::size_t message_bytes,
                                          std::uint64_t seed);

/** One tracker-threshold cell: a Graphene/Hydra system with the
 *  targeted-refresh threshold pinned to @p threshold (and, for Hydra,
 *  @p cc_entries counter-cache entries; 0 = default). */
attack::ChannelResult runTrackerThresholdCell(defense::DefenseKind kind,
                                              std::uint32_t threshold,
                                              std::uint32_t cc_entries,
                                              std::size_t message_bytes,
                                              std::uint64_t seed);

// ------------------------- multi-channel scaling + mapping diversity

/** One cross-channel isolation cell (§5.2 threat-model negative
 *  control): the sender hammers channel 0; the receiver either
 *  colocates (the ordinary channel) or listens on channel 1, where the
 *  independent defense instance never fires for the sender's rows. */
struct CrossChannelSpec {
    std::uint32_t channels = 2;
    bool cross = true; ///< Receiver on channel 1 (false = colocated).
    attack::MessagePattern pattern = attack::MessagePattern::kCheckered0;
    std::size_t message_bytes = 4;
    std::uint64_t seed = 1;
};

struct CrossChannelResult {
    /** Eq.-1 metrics + the RECEIVER channel's ground truth. */
    attack::ChannelResult channel;
    std::uint64_t tx_actions = 0; ///< Preventive actions, sender channel.
    std::uint64_t rx_actions = 0; ///< Preventive actions, receiver channel.
    std::uint64_t aggregate_actions = 0; ///< Summed over all channels.
};

CrossChannelResult runCrossChannelCell(const CrossChannelSpec &spec);

/** One aggregate-scaling cell: an independent sender/receiver pair on
 *  EVERY channel, transmitting concurrently in one system. */
struct MultiChannelSpec {
    std::uint32_t channels = 1;
    attack::MessagePattern pattern = attack::MessagePattern::kCheckered0;
    std::size_t message_bytes = 4;
    std::uint64_t seed = 1;
};

struct MultiChannelResult {
    std::vector<attack::ChannelResult> per_channel;
    double aggregate_raw_bit_rate = 0.0; ///< Sum over channels.
    double aggregate_capacity = 0.0;     ///< Sum over channels.
    double mean_symbol_error = 0.0;
    std::uint64_t aggregate_actions = 0; ///< aggregateStats() view.
};

MultiChannelResult runMultiChannelAggregate(const MultiChannelSpec &spec);

/** One mapping-diversity cell: the system decodes through @p actual
 *  while the attacker composes its rows through the @p assumed
 *  MappingFunction — the partially-wrong reverse-engineered mapping of
 *  §5.2. Equal specs reproduce the baseline PRAC channel; a mismatch
 *  scatters the attacker's "same-bank" pair and the channel collapses. */
attack::ChannelResult runMappingOrderCell(const dram::MappingSpec &actual,
                                          const dram::MappingSpec &assumed,
                                          std::size_t message_bytes,
                                          std::uint64_t seed);

// ------------------------------- online mapping recovery (ROADMAP 2)

/** One point on the recovery figure's mapping axis. */
struct RecoveryMappingCase {
    std::string name;
    /** Extra XOR taps beyond a pure bit permutation (0 for presets). */
    std::uint32_t complexity = 0;
    dram::MappingSpec spec;
};

/** The mapping axis of the `mapping-recovery` figure: the three
 *  presets (complexity 0) plus row-interleaved variants that fold
 *  progressively higher row bits into bank-set masks — each fold
 *  forces the attacker's difference window to climb one step. */
std::vector<RecoveryMappingCase> recoveryMappings();

struct MappingRecoveryCellResult {
    attack::RecoveredMapping recovered;
    /** span(learned bank fns) == span(true ch/rank/bg/bank fns). */
    bool bank_match = false;
    /** Joint bank+row span equality (row fns are only identifiable
     *  modulo bank fns under a conflict oracle). */
    bool row_match = false;
};

/** Run one MappingRecovery attacker against a system decoding through
 *  @p mapping under @p defense, and grade the learned functions
 *  against the system mapper's ground-truth masks. */
MappingRecoveryCellResult
runMappingRecoveryCell(const dram::MappingSpec &mapping,
                       defense::DefenseKind defense, std::uint64_t seed);

// ------------------------------------------------------------- Fig. 13

/** One cell of the Fig. 13 sweep. */
struct PerfPoint {
    std::string defense;
    std::uint32_t nrh = 0;
    double normalized_ws = 0.0; ///< vs. the no-mitigation baseline.
};

/** Performance-evaluation options. */
struct PerfSpec {
    std::vector<std::uint32_t> nrh_values = {1024, 512, 256, 128, 64};
    std::vector<defense::DefenseKind> defenses = {
        defense::DefenseKind::kPrac, defense::DefenseKind::kPrfm,
        defense::DefenseKind::kPracRiac, defense::DefenseKind::kFrRfm,
        defense::DefenseKind::kPracBank};
    std::uint32_t mixes = 60;
    std::uint32_t cores = 4;
    std::uint64_t insts_per_core = 200'000;
    std::uint64_t seed = 42;
};

/** Run the Fig. 13 sweep (normalized weighted speedup). */
std::vector<PerfPoint> runMitigationPerf(const PerfSpec &spec);

/** Weighted speedup of one (defense, nrh, mixes) cell. */
double runPerfCell(defense::DefenseKind kind, std::uint32_t nrh,
                   const std::vector<workload::Mix> &mixes,
                   std::uint32_t cores, std::uint64_t insts_per_core);

} // namespace leaky::core

#endif // LEAKY_CORE_EXPERIMENTS_HH
