#include "core/report.hh"

#include <algorithm>
#include <cstdio>

namespace leaky::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    const auto render_row = [&widths](const std::vector<std::string> &row)
    {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line.append(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < widths.size())
            rule.append(2, ' ');
    }
    out += rule + '\n';
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

std::string
Table::csv() const
{
    const auto render = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ',';
        }
        line += '\n';
        return line;
    };
    std::string out = render(headers_);
    for (const auto &row : rows_)
        out += render(row);
    return out;
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtKbps(double bits_per_second)
{
    return fmt(bits_per_second / 1000.0, 1) + " Kbps";
}

std::string
sparkline(const std::vector<double> &values)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+", "*",
                                   "#"};
    double peak = 1e-9;
    for (double v : values)
        peak = std::max(peak, v);
    std::string out;
    for (double v : values) {
        auto idx = static_cast<std::size_t>(v / peak * 7.0 + 0.5);
        out += levels[std::min<std::size_t>(idx, 7)];
    }
    return out;
}

void
banner(const std::string &title)
{
    std::string rule(title.size() + 4, '=');
    std::printf("\n%s\n| %s |\n%s\n", rule.c_str(), title.c_str(),
                rule.c_str());
}

} // namespace leaky::core
