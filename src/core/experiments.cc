#include "core/experiments.hh"

#include <algorithm>
#include <memory>

#include "attack/counter_leak.hh"
#include "attack/dram_addr.hh"
#include "attack/noise.hh"
#include "sim/logging.hh"
#include "stats/channel_metrics.hh"
#include "workload/website.hh"

namespace leaky::core {

using attack::ChannelKind;
using defense::DefenseKind;

sys::SystemConfig
pracAttackSystem()
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(DefenseKind::kPrac);
    cfg.defense.nbo_override = 128; // Paper §6.1 assumption.
    cfg.defense.rfms_per_backoff = 4;
    return cfg;
}

sys::SystemConfig
prfmAttackSystem()
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(DefenseKind::kPrfm);
    cfg.defense.trfm_override = 40; // Paper §7.1 assumption.
    return cfg;
}

sys::SystemConfig
trackerAttackSystem(DefenseKind kind)
{
    LEAKY_ASSERT(kind == DefenseKind::kGraphene ||
                     kind == DefenseKind::kHydra,
                 "not a tracker defense: %s", defense::defenseName(kind));
    // NRH = 160 matches the PRAC attack studies' threat level; the
    // policy derives a targeted-refresh threshold of 80.
    return sys::SystemConfig::paper(kind, 160);
}

// ------------------------------------------------------------- Fig. 2

LatencyTraceResult
runLatencyTrace(std::uint32_t iterations, std::uint32_t rfms_per_backoff)
{
    sys::SystemConfig cfg = pracAttackSystem();
    cfg.defense.rfms_per_backoff = rfms_per_backoff;
    sys::System system(cfg);

    attack::ProbeConfig probe_cfg;
    probe_cfg.addrs = {
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000),
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000)};
    probe_cfg.iterations = iterations;
    attack::LatencyProbe probe(system, probe_cfg);

    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    LatencyTraceResult result;
    result.samples = probe.samples();
    result.classifier = attack::LatencyClassifier::forTiming(
        cfg.ctrl.dram.timing, 90'000, rfms_per_backoff);
    result.backoffs = system.controller(0).stats().backoffs;
    result.refreshes = system.controller(0).stats().refreshes;

    double sums[3] = {0, 0, 0};
    std::uint64_t counts[3] = {0, 0, 0};
    for (const auto &sample : result.samples) {
        switch (result.classifier.classify(sample.latency)) {
          case attack::LatencyClass::kConflict:
            sums[0] += static_cast<double>(sample.latency);
            counts[0] += 1;
            break;
          case attack::LatencyClass::kRfm:
          case attack::LatencyClass::kRefresh:
            sums[1] += static_cast<double>(sample.latency);
            counts[1] += 1;
            break;
          case attack::LatencyClass::kBackoff:
            sums[2] += static_cast<double>(sample.latency);
            counts[2] += 1;
            break;
          default:
            break;
        }
    }
    result.mean_conflict_latency_ns =
        counts[0] ? sums[0] / static_cast<double>(counts[0]) / 1e3 : 0.0;
    result.mean_refresh_latency_ns =
        counts[1] ? sums[1] / static_cast<double>(counts[1]) / 1e3 : 0.0;
    result.mean_backoff_latency_ns =
        counts[2] ? sums[2] / static_cast<double>(counts[2]) / 1e3 : 0.0;
    return result;
}

// -------------------------------------------------- Figs. 3-8 (covert)

namespace {

sys::SystemConfig
channelSystemConfig(const ChannelRunSpec &spec)
{
    sys::SystemConfig cfg = spec.kind == ChannelKind::kPrac
                                ? pracAttackSystem()
                                : prfmAttackSystem();
    cfg.defense.rfms_per_backoff = spec.rfms_per_backoff;
    cfg.defense.backoff_rfm_latency = spec.backoff_rfm_latency;
    cfg.defense.aboact_override = spec.aboact_override;
    cfg.defense.seed = spec.seed;
    cfg.ctrl.deterministic_refresh = spec.filter_refresh;
    return cfg;
}

/** Attach background SPEC-like cores; returns them for lifetime. */
std::vector<std::unique_ptr<sys::TraceCore>>
attachBackground(sys::System &system,
                 const std::vector<workload::AppSpec> &apps,
                 bool large_caches, std::uint32_t trace_records = 40'000)
{
    std::vector<std::unique_ptr<sys::TraceCore>> cores;
    std::int32_t source = 10;
    for (const auto &app : apps) {
        sys::CoreConfig core_cfg;
        core_cfg.inst_budget = ~std::uint64_t{0} >> 1; // Run forever.
        core_cfg.mshrs = app.mlp;
        if (large_caches) {
            core_cfg.caches = sys::CacheHierarchyConfig::largeHierarchy();
            core_cfg.enable_prefetcher = true;
        }
        auto trace = workload::generateTrace(app, system.mapper(),
                                             trace_records);
        cores.push_back(std::make_unique<sys::TraceCore>(
            system, core_cfg, std::move(trace), source++));
        cores.back()->start();
    }
    return cores;
}

attack::CovertConfig
channelConfig(sys::System &system, const ChannelRunSpec &spec)
{
    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, spec.kind, spec.levels);
    if (spec.backoff_rfm_latency || spec.aboact_override) {
        // Re-derive thresholds for the modified back-off latency. The
        // controller's timing already carries the overrides.
        const auto &timing = system.controller(0).config().dram.timing;
        cfg.classifier = attack::LatencyClassifier::forTiming(
            timing, 90'000, spec.rfms_per_backoff);
    }
    if (spec.filter_refresh) {
        cfg.refresh_blackout = true;
        const auto &timing = system.controller(0).config().dram.timing;
        cfg.refi = timing.tREFI;
        cfg.blackout_post = timing.tRFC + 300'000;
    }
    if (spec.backoff_min_override)
        cfg.classifier.backoff_min = spec.backoff_min_override;
    return cfg;
}

} // namespace

attack::ChannelResult
runChannel(const ChannelRunSpec &spec)
{
    const sys::SystemConfig sys_cfg = channelSystemConfig(spec);
    sys::System system(sys_cfg);

    attack::CovertConfig cfg = channelConfig(system, spec);
    if (spec.levels > 2)
        cfg.count_cuts = attack::calibrateCuts(sys_cfg, cfg);

    // Noise microbenchmark targeting the covert channel's bank (§6.3).
    std::unique_ptr<attack::NoiseAgent> noise;
    if (spec.noise_sleep > 0) {
        attack::NoiseConfig noise_cfg;
        // Six rows: more counters than one back-off recovery can reset,
        // so noise-side counters survive preventive actions.
        noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0, 0,
                                             3000, 6, 512);
        noise_cfg.sleep = spec.noise_sleep;
        noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
        noise->start();
    }
    auto background =
        attachBackground(system, spec.background, spec.large_caches);

    const auto bits = attack::patternBits(
        spec.pattern, spec.message_bytes * 8);
    const auto symbols = attack::symbolsFromBits(bits, spec.levels);
    return attack::runCovertChannel(system, cfg, symbols);
}

PatternSweepResult
runPatternSweep(ChannelRunSpec spec)
{
    const attack::MessagePattern patterns[] = {
        attack::MessagePattern::kAllOnes,
        attack::MessagePattern::kAllZeros,
        attack::MessagePattern::kCheckered0,
        attack::MessagePattern::kCheckered1};
    PatternSweepResult result;
    for (auto p : patterns) {
        spec.pattern = p;
        const auto run = runChannel(spec);
        result.raw_bit_rate += run.raw_bit_rate / 4.0;
        result.error_probability += run.symbol_error / 4.0;
        result.capacity += run.capacity / 4.0;
    }
    return result;
}

MessageDemoResult
runMessageDemo(attack::ChannelKind kind, const std::string &message)
{
    ChannelRunSpec spec;
    spec.kind = kind;
    const sys::SystemConfig sys_cfg = channelSystemConfig(spec);
    sys::System system(sys_cfg);
    attack::CovertConfig cfg = channelConfig(system, spec);

    const auto bits = attack::bitsFromString(message);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);

    attack::CovertSender sender(system, cfg);
    attack::CovertReceiver receiver(system, cfg);
    const Tick epoch = system.now() + 2 * sim::kUs;
    sender.transmit(symbols, epoch);
    bool done = false;
    receiver.listen(symbols.size(), epoch, [&done] { done = true; });
    while (!done)
        system.run(cfg.window);

    MessageDemoResult result;
    result.sent_bits = bits;
    for (auto s : receiver.decoded())
        result.received_bits.push_back(s != 0);
    result.detections = receiver.detections();
    result.decoded_text = attack::stringFromBits(result.received_bits);
    return result;
}

// ------------------------------------------------------- Figs. 9/10, T2

FingerprintSample
collectOneFingerprint(const FingerprintSpec &spec, std::uint32_t site,
                      std::uint32_t load)
{
    sys::SystemConfig sys_cfg =
        sys::SystemConfig::paper(DefenseKind::kPrac, spec.nrh);
    sys::System system(sys_cfg);
    const auto nbo = defense::nboFor(spec.nrh);

    // The victim browser.
    workload::WebsiteTraceConfig web_cfg;
    web_cfg.site = site;
    web_cfg.load = load;
    web_cfg.base_seed = spec.seed;
    web_cfg.duration = spec.duration;
    auto trace = workload::generateWebsiteTrace(web_cfg, system.mapper());

    sys::CoreConfig core_cfg;
    core_cfg.inst_budget = ~std::uint64_t{0} >> 1;
    if (spec.large_caches) {
        core_cfg.caches = sys::CacheHierarchyConfig::largeHierarchy();
        core_cfg.enable_prefetcher = true;
    }
    sys::TraceCore browser(system, core_cfg, std::move(trace), 1);
    browser.start();

    std::vector<std::unique_ptr<sys::TraceCore>> background;
    if (spec.background_noise) {
        background = attachBackground(
            system,
            {workload::appsWithIntensity(
                 workload::Intensity::kMedium)[site % 3]},
            spec.large_caches);
    }

    // The attacker's probe, placed away from the browser's rows;
    // back-offs are channel-wide so colocation is unnecessary (§8).
    attack::FingerprintConfig probe_cfg;
    probe_cfg.rows = attack::rowsInBank(
        system.mapper(), 0, system.mapper().org().ranks - 1,
        system.mapper().org().bankgroups - 1,
        system.mapper().org().banks_per_group - 1, 500, 8, 64);
    probe_cfg.t_accesses = nbo > 1 ? nbo - 1 : 1;
    probe_cfg.duration = spec.duration;
    probe_cfg.classifier =
        attack::LatencyClassifier::forTiming(sys_cfg.ctrl.dram.timing);
    attack::FingerprintProbe probe(system, probe_cfg);

    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    FingerprintSample sample;
    sample.site = site;
    sample.load = load;
    sample.backoff_times = probe.backoffTimes();
    sample.duration = spec.duration;
    return sample;
}

std::vector<FingerprintSample>
collectFingerprints(const FingerprintSpec &spec)
{
    std::vector<FingerprintSample> samples;
    samples.reserve(static_cast<std::size_t>(spec.sites) *
                    spec.loads_per_site);
    for (std::uint32_t site = 0; site < spec.sites; ++site) {
        for (std::uint32_t load = 0; load < spec.loads_per_site; ++load)
            samples.push_back(collectOneFingerprint(spec, site, load));
    }
    return samples;
}

ml::Dataset
fingerprintDataset(const std::vector<FingerprintSample> &raw,
                   std::uint32_t windows)
{
    ml::Dataset data;
    for (const auto &sample : raw) {
        auto features = attack::extractFeatures(
            sample.backoff_times, sample.duration, windows);
        data.add(std::move(features.values),
                 static_cast<int>(sample.site));
    }
    return data;
}

// ----------------------------------------------- §9.1, §11.4, §12, T3

CounterLeakTrial
runCounterLeakTrial(std::uint32_t secret)
{
    sys::SystemConfig cfg = pracAttackSystem();
    sys::System system(cfg);

    const auto shared =
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000);
    const auto victim_conflict =
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000);
    const auto attacker_conflict =
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 3000);

    attack::CounterLeakConfig leak_cfg;
    leak_cfg.shared_addr = shared;
    leak_cfg.conflict_addr = attacker_conflict;
    leak_cfg.nbo = 128;
    leak_cfg.classifier =
        attack::LatencyClassifier::forTiming(cfg.ctrl.dram.timing);

    attack::CounterLeakVictim victim(system, shared, victim_conflict);
    attack::CounterLeakAttacker attacker(system, leak_cfg);

    attack::CounterLeakResult result;
    bool done = false;
    victim.prime(secret, [&] {
        attacker.leak([&](const attack::CounterLeakResult &r) {
            result = r;
            done = true;
        });
    });
    while (!done)
        system.run(sim::kMs);

    CounterLeakTrial trial;
    trial.secret = secret;
    trial.leaked = result.leaked_count;
    trial.elapsed_us = static_cast<double>(result.elapsed) / 1e6;
    trial.bits = result.bits;
    return trial;
}

attack::ChannelResult
runCountermeasureCell(const CountermeasureCellSpec &spec)
{
    sys::SystemConfig sys_cfg = pracAttackSystem();
    sys_cfg.defense.kind = spec.kind;
    sys_cfg.defense.seed = spec.seed;
    if (spec.kind == DefenseKind::kFrRfm) {
        sys_cfg.defense.nrh = 160;
        sys_cfg.defense.nbo_override = 0;
    }
    sys::System system(sys_cfg);

    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, ChannelKind::kPrac);
    if (spec.cross_bank) {
        // Receiver in a different bank group/bank than the sender; the
        // sender self-conflicts between two of its own rows and needs
        // a longer window to charge the counters alone.
        cfg.sender_addr2 =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1064);
        cfg.receiver_addr =
            attack::rowAddress(system.mapper(), 0, 0, 4, 2, 2000);
        cfg.window = 50 * sim::kUs;
    }

    std::unique_ptr<attack::NoiseAgent> noise;
    if (spec.noise_sleep > 0) {
        attack::NoiseConfig noise_cfg;
        noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0,
                                             0, 3000, 6, 512);
        noise_cfg.sleep = spec.noise_sleep;
        noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
        noise->start();
    }

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, spec.message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runTriggerCell(DefenseKind kind, double para_probability,
               std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = pracAttackSystem();
    sys_cfg.defense.kind = kind;
    sys_cfg.defense.para_probability = para_probability;
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    // Receiver strategy per defense: PRAC's big back-offs use the
    // back-off detector; PRFM/PARA preventive actions are smaller, so
    // the receiver counts slow events per window against Trecv.
    attack::CovertConfig cfg = attack::makeChannelConfig(
        system, kind == DefenseKind::kPrac ? ChannelKind::kPrac
                                           : ChannelKind::kRfm);
    cfg.window = 25 * sim::kUs;
    cfg.trecv = 3;

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runGranularityCell(ChannelKind kind, int bankgroup, int bank,
                   std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = kind == ChannelKind::kPrac
                                    ? pracAttackSystem()
                                    : prfmAttackSystem();
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);
    attack::CovertConfig cfg = attack::makeChannelConfig(system, kind);
    if (bankgroup >= 0) {
        // Non-colocated receiver: the sender must self-conflict, and
        // charging the counters alone takes ~2x as long per bit.
        cfg.sender_addr2 =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1064);
        cfg.receiver_addr = attack::rowAddress(
            system.mapper(), 0, 0,
            static_cast<std::uint32_t>(bankgroup),
            static_cast<std::uint32_t>(bank), 2000);
        if (kind == ChannelKind::kPrac)
            cfg.window = 50 * sim::kUs;
    }
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered1, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

// --------------------------------------- tracker family (cross-defense)

namespace {

/** Receiver configuration for a defense whose observable is a
 *  bank-blocking window (RFM / targeted refresh): count slow events
 *  against Trecv. The tracker receiver calibrates its slow-event
 *  threshold to the VRR window (shorter than a full RFM), keeping
 *  Hydra's sub-band counter fetches out of the detection class. */
attack::CovertConfig
trackerChannelConfig(sys::System &system)
{
    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, ChannelKind::kRfm);
    cfg.trecv = 2;
    cfg.classifier.rfm_min = 200'000;
    return cfg;
}

std::unique_ptr<attack::NoiseAgent>
attachNoise(sys::System &system, Tick noise_sleep)
{
    if (noise_sleep == 0)
        return nullptr;
    attack::NoiseConfig noise_cfg;
    noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0, 0,
                                         3000, 6, 512);
    noise_cfg.sleep = noise_sleep;
    auto noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
    noise->start();
    return noise;
}

} // namespace

attack::ChannelResult
runCrossDefenseCell(DefenseKind kind, Tick noise_sleep,
                    std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg;
    const bool prac_family = kind == DefenseKind::kPrac ||
                             kind == DefenseKind::kPracRiac ||
                             kind == DefenseKind::kPracBank;
    if (prac_family) {
        sys_cfg = pracAttackSystem();
        sys_cfg.defense.kind = kind;
    } else if (kind == DefenseKind::kPrfm) {
        sys_cfg = prfmAttackSystem();
    } else if (kind == DefenseKind::kGraphene ||
               kind == DefenseKind::kHydra) {
        sys_cfg = trackerAttackSystem(kind);
    } else {
        sys_cfg = sys::SystemConfig::paper(kind, 160);
    }
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    attack::CovertConfig cfg =
        prac_family
            ? attack::makeChannelConfig(system, ChannelKind::kPrac)
        : (kind == DefenseKind::kGraphene || kind == DefenseKind::kHydra)
            ? trackerChannelConfig(system)
            : attack::makeChannelConfig(system, ChannelKind::kRfm);

    auto noise = attachNoise(system, noise_sleep);
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runTrackerThresholdCell(DefenseKind kind, std::uint32_t threshold,
                        std::uint32_t cc_entries,
                        std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = trackerAttackSystem(kind);
    sys_cfg.defense.tracker_threshold_override = threshold;
    sys_cfg.defense.hydra_cc_entries = cc_entries;
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    attack::CovertConfig cfg = trackerChannelConfig(system);
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

// ------------------------------------------------------------- Fig. 13

namespace {

/** Run until all cores retire their budget or the cap elapses. */
void
runCoresToBudget(sys::System &system,
                 std::vector<std::unique_ptr<sys::TraceCore>> &cores,
                 Tick cap)
{
    const Tick start = system.now();
    while (system.now() - start < cap) {
        bool all_done = true;
        for (const auto &core : cores)
            all_done = all_done && core->budgetDone();
        if (all_done)
            break;
        system.run(500 * sim::kUs);
    }
}

std::vector<std::unique_ptr<sys::TraceCore>>
makeCores(sys::System &system, const workload::Mix &mix,
          std::uint64_t insts_per_core)
{
    std::vector<std::unique_ptr<sys::TraceCore>> cores;
    std::int32_t source = 0;
    for (const auto &app : mix.apps) {
        sys::CoreConfig core_cfg;
        core_cfg.inst_budget = insts_per_core;
        core_cfg.mshrs = app.mlp;
        auto trace = workload::generateTrace(app, system.mapper(),
                                             40'000);
        cores.push_back(std::make_unique<sys::TraceCore>(
            system, core_cfg, std::move(trace), source++));
        cores.back()->start();
    }
    return cores;
}

constexpr Tick kPerfRunCap = 80 * sim::kMs;

} // namespace

namespace {

/** Weighted speedup of @p mix on a system with @p kind at @p nrh. */
double
sharedWs(DefenseKind kind, std::uint32_t nrh, const workload::Mix &mix,
         const std::vector<double> &ipc_alone,
         std::uint64_t insts_per_core)
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(kind, nrh);
    // The performance study models a mid-lifetime slice of a long run:
    // PRAC counters are warm (see defense/prac.hh).
    cfg.defense.warm_counters = true;
    sys::System system(cfg);
    auto cores = makeCores(system, mix, insts_per_core);
    runCoresToBudget(system, cores, kPerfRunCap);
    std::vector<double> ipc_shared;
    for (const auto &core : cores)
        ipc_shared.push_back(core->ipcAt(system.now()));
    return stats::weightedSpeedup(ipc_shared, ipc_alone);
}

/** Alone IPC per app of a mix on the unprotected system. */
std::vector<double>
aloneIpcs(const workload::Mix &mix, std::uint64_t insts_per_core)
{
    std::vector<double> ipc_alone;
    for (const auto &app : mix.apps) {
        sys::SystemConfig cfg =
            sys::SystemConfig::paper(DefenseKind::kNone, 1024);
        sys::System system(cfg);
        workload::Mix solo{mix.name + "-solo", {app}};
        auto cores = makeCores(system, solo, insts_per_core);
        runCoresToBudget(system, cores, kPerfRunCap);
        ipc_alone.push_back(cores[0]->ipcAt(system.now()));
    }
    return ipc_alone;
}

} // namespace

double
runPerfCell(DefenseKind kind, std::uint32_t nrh,
            const std::vector<workload::Mix> &mixes, std::uint32_t cores,
            std::uint64_t insts_per_core)
{
    (void)cores;
    double total_norm_ws = 0.0;
    for (const auto &mix : mixes) {
        const auto ipc_alone = aloneIpcs(mix, insts_per_core);
        const double ws_base = sharedWs(DefenseKind::kNone, nrh, mix,
                                        ipc_alone, insts_per_core);
        const double ws_def =
            sharedWs(kind, nrh, mix, ipc_alone, insts_per_core);
        total_norm_ws += ws_base > 0.0 ? ws_def / ws_base : 0.0;
    }
    return total_norm_ws / static_cast<double>(mixes.size());
}

std::vector<PerfPoint>
runMitigationPerf(const PerfSpec &spec)
{
    const auto mixes =
        workload::makeMixes(spec.mixes, spec.cores, spec.seed);

    // Per-mix baselines are shared across every (defense, NRH) cell.
    std::vector<std::vector<double>> alone;
    std::vector<double> ws_base;
    for (const auto &mix : mixes) {
        alone.push_back(aloneIpcs(mix, spec.insts_per_core));
        ws_base.push_back(sharedWs(DefenseKind::kNone, 1024, mix,
                                   alone.back(), spec.insts_per_core));
    }

    std::vector<PerfPoint> points;
    for (auto nrh : spec.nrh_values) {
        for (auto kind : spec.defenses) {
            double total = 0.0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                const double ws_def =
                    sharedWs(kind, nrh, mixes[m], alone[m],
                             spec.insts_per_core);
                total += ws_base[m] > 0.0 ? ws_def / ws_base[m] : 0.0;
            }
            PerfPoint point;
            point.defense = defense::defenseName(kind);
            point.nrh = nrh;
            point.normalized_ws =
                total / static_cast<double>(mixes.size());
            points.push_back(point);
        }
    }
    return points;
}

} // namespace leaky::core
