#include "core/experiments.hh"

#include <algorithm>
#include <memory>

#include "attack/counter_leak.hh"
#include "attack/dram_addr.hh"
#include "attack/noise.hh"
#include "sim/logging.hh"
#include "stats/channel_metrics.hh"
#include "workload/website.hh"

namespace leaky::core {

using attack::ChannelKind;
using defense::DefenseKind;

sys::SystemConfig
pracAttackSystem()
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(DefenseKind::kPrac);
    cfg.defense.nbo_override = 128; // Paper §6.1 assumption.
    cfg.defense.rfms_per_backoff = 4;
    return cfg;
}

sys::SystemConfig
prfmAttackSystem()
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(DefenseKind::kPrfm);
    cfg.defense.trfm_override = 40; // Paper §7.1 assumption.
    return cfg;
}

sys::SystemConfig
trackerAttackSystem(DefenseKind kind)
{
    LEAKY_ASSERT(kind == DefenseKind::kGraphene ||
                     kind == DefenseKind::kHydra,
                 "not a tracker defense: %s", defense::defenseName(kind));
    // NRH = 160 matches the PRAC attack studies' threat level; the
    // policy derives a targeted-refresh threshold of 80.
    return sys::SystemConfig::paper(kind, 160);
}

// ------------------------------------------------------------- Fig. 2

LatencyTraceResult
runLatencyTrace(std::uint32_t iterations, std::uint32_t rfms_per_backoff)
{
    sys::SystemConfig cfg = pracAttackSystem();
    cfg.defense.rfms_per_backoff = rfms_per_backoff;
    sys::System system(cfg);

    attack::ProbeConfig probe_cfg;
    probe_cfg.channel = 0; // Single-channel system; keep it explicit.
    probe_cfg.addrs = {
        attack::rowAddress(system.mapper(), probe_cfg.channel, 0, 0, 0,
                           1000),
        attack::rowAddress(system.mapper(), probe_cfg.channel, 0, 0, 0,
                           2000)};
    probe_cfg.iterations = iterations;
    attack::LatencyProbe probe(system, probe_cfg);

    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    LatencyTraceResult result;
    result.samples = probe.samples();
    result.classifier = attack::LatencyClassifier::forTiming(
        cfg.ctrl.dram.timing, 90'000, rfms_per_backoff);
    result.backoffs = system.stats(probe_cfg.channel).backoffs;
    result.refreshes = system.stats(probe_cfg.channel).refreshes;

    double sums[3] = {0, 0, 0};
    std::uint64_t counts[3] = {0, 0, 0};
    for (const auto &sample : result.samples) {
        switch (result.classifier.classify(sample.latency)) {
          case attack::LatencyClass::kConflict:
            sums[0] += static_cast<double>(sample.latency);
            counts[0] += 1;
            break;
          case attack::LatencyClass::kRfm:
          case attack::LatencyClass::kRefresh:
            sums[1] += static_cast<double>(sample.latency);
            counts[1] += 1;
            break;
          case attack::LatencyClass::kBackoff:
            sums[2] += static_cast<double>(sample.latency);
            counts[2] += 1;
            break;
          default:
            break;
        }
    }
    result.mean_conflict_latency_ns =
        counts[0] ? sums[0] / static_cast<double>(counts[0]) / 1e3 : 0.0;
    result.mean_refresh_latency_ns =
        counts[1] ? sums[1] / static_cast<double>(counts[1]) / 1e3 : 0.0;
    result.mean_backoff_latency_ns =
        counts[2] ? sums[2] / static_cast<double>(counts[2]) / 1e3 : 0.0;
    return result;
}

// -------------------------------------------------- Figs. 3-8 (covert)

sys::SystemConfig
channelSystemConfig(const ChannelRunSpec &spec)
{
    sys::SystemConfig cfg = spec.kind == ChannelKind::kPrac
                                ? pracAttackSystem()
                                : prfmAttackSystem();
    cfg.channels = spec.channels;
    cfg.mapping = spec.mapping;
    cfg.defense.rfms_per_backoff = spec.rfms_per_backoff;
    cfg.defense.backoff_rfm_latency = spec.backoff_rfm_latency;
    cfg.defense.aboact_override = spec.aboact_override;
    cfg.defense.seed = spec.seed;
    cfg.ctrl.deterministic_refresh = spec.filter_refresh;
    return cfg;
}

namespace {

/** Attach background SPEC-like cores; returns them for lifetime. */
std::vector<std::unique_ptr<sys::TraceCore>>
attachBackground(sys::System &system,
                 const std::vector<workload::AppSpec> &apps,
                 bool large_caches, std::uint32_t trace_records = 40'000)
{
    std::vector<std::unique_ptr<sys::TraceCore>> cores;
    std::int32_t source = 10;
    for (const auto &app : apps) {
        sys::CoreConfig core_cfg;
        core_cfg.inst_budget = ~std::uint64_t{0} >> 1; // Run forever.
        core_cfg.mshrs = app.mlp;
        if (large_caches) {
            core_cfg.caches = sys::CacheHierarchyConfig::largeHierarchy();
            core_cfg.enable_prefetcher = true;
        }
        auto trace = workload::generateTrace(app, system.mapper(),
                                             trace_records);
        cores.push_back(std::make_unique<sys::TraceCore>(
            system, core_cfg, std::move(trace), source++));
        cores.back()->start();
    }
    return cores;
}

/** §9.1 idiom for a non-colocated receiver, shared by every cell that
 *  moves the receiver out of the sender's bank: the sender alternates
 *  two of its own rows (every access conflicts) and, under PRAC,
 *  charges the counters alone over a doubled window. */
void
selfConflictSender(attack::CovertConfig &cfg,
                   const dram::AddressMapper &mapper,
                   std::uint32_t sender_channel, ChannelKind kind)
{
    cfg.sender_addr2 =
        attack::rowAddress(mapper, sender_channel, 0, 0, 0, 1064);
    if (kind == ChannelKind::kPrac)
        cfg.window = 50 * sim::kUs;
}

attack::CovertConfig
channelConfig(sys::System &system, const ChannelRunSpec &spec)
{
    attack::CovertConfig cfg = attack::makeChannelConfig(
        system, spec.kind, spec.levels, spec.sender_channel);
    if (spec.receiver_channel != spec.sender_channel) {
        // Cross-channel placement: the receiver listens on its own
        // channel's defense, and the sender self-conflicts (§9.1).
        cfg.receiver_channel = spec.receiver_channel;
        cfg.receiver_addr = attack::rowAddress(
            system.mapper(), spec.receiver_channel, 0, 0, 0, 2000);
        selfConflictSender(cfg, system.mapper(), spec.sender_channel,
                           spec.kind);
    }
    const auto &timing =
        system.controller(spec.sender_channel).config().dram.timing;
    if (spec.backoff_rfm_latency || spec.aboact_override) {
        // Re-derive thresholds for the modified back-off latency. The
        // controller's timing already carries the overrides.
        cfg.classifier = attack::LatencyClassifier::forTiming(
            timing, 90'000, spec.rfms_per_backoff);
    }
    if (spec.filter_refresh) {
        cfg.refresh_blackout = true;
        cfg.refi = timing.tREFI;
        cfg.blackout_post = timing.tRFC + 300'000;
    }
    if (spec.backoff_min_override)
        cfg.classifier.backoff_min = spec.backoff_min_override;
    return cfg;
}

} // namespace

attack::ChannelResult
runChannelOn(sys::System &system, const ChannelRunSpec &spec)
{
    // The caller owns the system; it must be the one the spec
    // describes, or the returned rows are labeled with topology /
    // defense parameters that were never simulated — a wrong mapping
    // preset or defense override trips no downstream assert, since
    // the classifier and calibration derive from the live system.
    const sys::SystemConfig want = channelSystemConfig(spec);
    const sys::SystemConfig &have = system.config();
    LEAKY_ASSERT(have.channels == want.channels &&
                     have.mapping == want.mapping &&
                     have.defense == want.defense &&
                     have.ctrl.deterministic_refresh ==
                         want.ctrl.deterministic_refresh,
                 "system config does not match the channel spec");
    attack::CovertConfig cfg = channelConfig(system, spec);
    if (spec.levels > 2) {
        // Calibrate on the LIVE system's config, not the spec-implied
        // one: a caller-owned system with, say, tweaked DRAM timing
        // would otherwise train cut points on the wrong machine.
        cfg.count_cuts = attack::calibrateCuts(system.config(), cfg);
    }

    // Noise microbenchmark targeting the covert channel's bank (§6.3).
    std::unique_ptr<attack::NoiseAgent> noise;
    if (spec.noise_sleep > 0) {
        attack::NoiseConfig noise_cfg;
        // Six rows: more counters than one back-off recovery can reset,
        // so noise-side counters survive preventive actions.
        noise_cfg.addrs = attack::rowsInBank(
            system.mapper(), spec.sender_channel, 0, 0, 0, 3000, 6, 512);
        noise_cfg.sleep = spec.noise_sleep;
        noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
        noise->start();
    }
    auto background =
        attachBackground(system, spec.background, spec.large_caches);

    const auto bits = attack::patternBits(
        spec.pattern, spec.message_bytes * 8);
    const auto symbols = attack::symbolsFromBits(bits, spec.levels);
    return attack::runCovertChannel(system, cfg, symbols);
}

attack::ChannelResult
runChannel(const ChannelRunSpec &spec)
{
    sys::System system(channelSystemConfig(spec));
    return runChannelOn(system, spec);
}

PatternSweepResult
runPatternSweep(ChannelRunSpec spec)
{
    const attack::MessagePattern patterns[] = {
        attack::MessagePattern::kAllOnes,
        attack::MessagePattern::kAllZeros,
        attack::MessagePattern::kCheckered0,
        attack::MessagePattern::kCheckered1};
    PatternSweepResult result;
    for (auto p : patterns) {
        spec.pattern = p;
        const auto run = runChannel(spec);
        result.raw_bit_rate += run.raw_bit_rate / 4.0;
        result.error_probability += run.symbol_error / 4.0;
        result.capacity += run.capacity / 4.0;
    }
    return result;
}

MessageDemoResult
runMessageDemo(attack::ChannelKind kind, const std::string &message,
               const dram::MappingSpec &mapping)
{
    ChannelRunSpec spec;
    spec.kind = kind;
    spec.mapping = mapping;
    const sys::SystemConfig sys_cfg = channelSystemConfig(spec);
    sys::System system(sys_cfg);
    attack::CovertConfig cfg = channelConfig(system, spec);

    const auto bits = attack::bitsFromString(message);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);

    attack::CovertSender sender(system, cfg);
    attack::CovertReceiver receiver(system, cfg);
    const Tick epoch = system.now() + 2 * sim::kUs;
    sender.transmit(symbols, epoch);
    bool done = false;
    receiver.listen(symbols.size(), epoch, [&done] { done = true; });
    while (!done)
        system.run(cfg.window);

    MessageDemoResult result;
    result.sent_bits = bits;
    for (auto s : receiver.decoded())
        result.received_bits.push_back(s != 0);
    result.detections = receiver.detections();
    result.decoded_text = attack::stringFromBits(result.received_bits);
    return result;
}

// ------------------------------------------------------- Figs. 9/10, T2

FingerprintSample
collectOneFingerprint(const FingerprintSpec &spec, std::uint32_t site,
                      std::uint32_t load)
{
    sys::SystemConfig sys_cfg =
        sys::SystemConfig::paper(DefenseKind::kPrac, spec.nrh);
    sys::System system(sys_cfg);
    const auto nbo = defense::nboFor(spec.nrh);

    // The victim browser.
    workload::WebsiteTraceConfig web_cfg;
    web_cfg.site = site;
    web_cfg.load = load;
    web_cfg.base_seed = spec.seed;
    web_cfg.duration = spec.duration;
    auto trace = workload::generateWebsiteTrace(web_cfg, system.mapper());

    sys::CoreConfig core_cfg;
    core_cfg.inst_budget = ~std::uint64_t{0} >> 1;
    if (spec.large_caches) {
        core_cfg.caches = sys::CacheHierarchyConfig::largeHierarchy();
        core_cfg.enable_prefetcher = true;
    }
    sys::TraceCore browser(system, core_cfg, std::move(trace), 1);
    browser.start();

    std::vector<std::unique_ptr<sys::TraceCore>> background;
    if (spec.background_noise) {
        background = attachBackground(
            system,
            {workload::appsWithIntensity(
                 workload::Intensity::kMedium)[site % 3]},
            spec.large_caches);
    }

    // The attacker's probe, placed away from the browser's rows;
    // back-offs are channel-wide so colocation within the victim's
    // CHANNEL suffices (§8) — the channel is explicit here because a
    // probe on any other channel would observe nothing.
    attack::FingerprintConfig probe_cfg;
    probe_cfg.channel = 0;
    probe_cfg.rows = attack::rowsInBank(
        system.mapper(), probe_cfg.channel,
        system.mapper().org().ranks - 1,
        system.mapper().org().bankgroups - 1,
        system.mapper().org().banks_per_group - 1, 500, 8, 64);
    probe_cfg.t_accesses = nbo > 1 ? nbo - 1 : 1;
    probe_cfg.duration = spec.duration;
    probe_cfg.classifier =
        attack::LatencyClassifier::forTiming(sys_cfg.ctrl.dram.timing);
    attack::FingerprintProbe probe(system, probe_cfg);

    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    FingerprintSample sample;
    sample.site = site;
    sample.load = load;
    sample.backoff_times = probe.backoffTimes();
    sample.duration = spec.duration;
    return sample;
}

std::vector<FingerprintSample>
collectFingerprints(const FingerprintSpec &spec)
{
    std::vector<FingerprintSample> samples;
    samples.reserve(static_cast<std::size_t>(spec.sites) *
                    spec.loads_per_site);
    for (std::uint32_t site = 0; site < spec.sites; ++site) {
        for (std::uint32_t load = 0; load < spec.loads_per_site; ++load)
            samples.push_back(collectOneFingerprint(spec, site, load));
    }
    return samples;
}

ml::Dataset
fingerprintDataset(const std::vector<FingerprintSample> &raw,
                   std::uint32_t windows)
{
    ml::Dataset data;
    for (const auto &sample : raw) {
        auto features = attack::extractFeatures(
            sample.backoff_times, sample.duration, windows);
        data.add(std::move(features.values),
                 static_cast<int>(sample.site));
    }
    return data;
}

// ----------------------------------------------- §9.1, §11.4, §12, T3

CounterLeakTrial
runCounterLeakTrial(std::uint32_t secret)
{
    sys::SystemConfig cfg = pracAttackSystem();
    sys::System system(cfg);

    attack::CounterLeakConfig leak_cfg;
    leak_cfg.channel = 0; // Single-channel system; keep it explicit.
    const auto shared = attack::rowAddress(system.mapper(),
                                           leak_cfg.channel, 0, 0, 0,
                                           1000);
    const auto victim_conflict = attack::rowAddress(
        system.mapper(), leak_cfg.channel, 0, 0, 0, 2000);
    const auto attacker_conflict = attack::rowAddress(
        system.mapper(), leak_cfg.channel, 0, 0, 0, 3000);

    leak_cfg.shared_addr = shared;
    leak_cfg.conflict_addr = attacker_conflict;
    leak_cfg.nbo = 128;
    leak_cfg.classifier =
        attack::LatencyClassifier::forTiming(cfg.ctrl.dram.timing);

    attack::CounterLeakVictim victim(system, shared, victim_conflict);
    attack::CounterLeakAttacker attacker(system, leak_cfg);

    attack::CounterLeakResult result;
    bool done = false;
    victim.prime(secret, [&] {
        attacker.leak([&](const attack::CounterLeakResult &r) {
            result = r;
            done = true;
        });
    });
    while (!done)
        system.run(sim::kMs);

    CounterLeakTrial trial;
    trial.secret = secret;
    trial.leaked = result.leaked_count;
    trial.elapsed_us = static_cast<double>(result.elapsed) / 1e6;
    trial.bits = result.bits;
    return trial;
}

attack::ChannelResult
runCountermeasureCell(const CountermeasureCellSpec &spec)
{
    sys::SystemConfig sys_cfg = pracAttackSystem();
    sys_cfg.defense.kind = spec.kind;
    sys_cfg.defense.seed = spec.seed;
    if (spec.kind == DefenseKind::kFrRfm) {
        sys_cfg.defense.nrh = 160;
        sys_cfg.defense.nbo_override = 0;
    }
    sys::System system(sys_cfg);

    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, ChannelKind::kPrac);
    if (spec.cross_bank) {
        // Receiver in a different bank group/bank than the sender
        // (Bank-Level PRAC's scope reduction).
        cfg.receiver_addr =
            attack::rowAddress(system.mapper(), 0, 0, 4, 2, 2000);
        selfConflictSender(cfg, system.mapper(), 0,
                           ChannelKind::kPrac);
    }

    std::unique_ptr<attack::NoiseAgent> noise;
    if (spec.noise_sleep > 0) {
        attack::NoiseConfig noise_cfg;
        noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0,
                                             0, 3000, 6, 512);
        noise_cfg.sleep = spec.noise_sleep;
        noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
        noise->start();
    }

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, spec.message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runTriggerCell(DefenseKind kind, double para_probability,
               std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = pracAttackSystem();
    sys_cfg.defense.kind = kind;
    sys_cfg.defense.para_probability = para_probability;
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    // Receiver strategy per defense: PRAC's big back-offs use the
    // back-off detector; PRFM/PARA preventive actions are smaller, so
    // the receiver counts slow events per window against Trecv.
    attack::CovertConfig cfg = attack::makeChannelConfig(
        system, kind == DefenseKind::kPrac ? ChannelKind::kPrac
                                           : ChannelKind::kRfm);
    cfg.window = 25 * sim::kUs;
    cfg.trecv = 3;

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runGranularityCell(ChannelKind kind, int bankgroup, int bank,
                   std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = kind == ChannelKind::kPrac
                                    ? pracAttackSystem()
                                    : prfmAttackSystem();
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);
    attack::CovertConfig cfg = attack::makeChannelConfig(system, kind);
    if (bankgroup >= 0) {
        // Non-colocated receiver: the sender must self-conflict, and
        // charging the counters alone takes ~2x as long per bit.
        cfg.receiver_addr = attack::rowAddress(
            system.mapper(), 0, 0,
            static_cast<std::uint32_t>(bankgroup),
            static_cast<std::uint32_t>(bank), 2000);
        selfConflictSender(cfg, system.mapper(), 0, kind);
    }
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered1, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

// ------------------------- multi-channel scaling + mapping diversity

CrossChannelResult
runCrossChannelCell(const CrossChannelSpec &spec)
{
    LEAKY_ASSERT(spec.channels >= (spec.cross ? 2u : 1u),
                 "cross-channel cell needs a second channel");
    ChannelRunSpec run;
    run.kind = ChannelKind::kPrac;
    run.channels = spec.channels;
    run.sender_channel = 0;
    run.receiver_channel = spec.cross ? 1 : 0;
    run.pattern = spec.pattern;
    run.message_bytes = spec.message_bytes;
    run.seed = spec.seed;

    sys::System system(channelSystemConfig(run));
    CrossChannelResult out;
    out.channel = runChannelOn(system, run);
    out.tx_actions =
        system.stats(run.sender_channel).preventiveActions();
    out.rx_actions =
        system.stats(run.receiver_channel).preventiveActions();
    out.aggregate_actions = system.aggregateStats().preventiveActions();
    return out;
}

MultiChannelResult
runMultiChannelAggregate(const MultiChannelSpec &spec)
{
    LEAKY_ASSERT(spec.channels >= 1, "need at least one channel");
    ChannelRunSpec base;
    base.kind = ChannelKind::kPrac;
    base.channels = spec.channels;
    base.seed = spec.seed;
    sys::System system(channelSystemConfig(base));

    // One independent sender/receiver pair per channel, transmitting
    // the same payload concurrently. Per-channel defense instances
    // mean the pairs never contend for counter state — only the event
    // queue is shared.
    const auto bits =
        attack::patternBits(spec.pattern, spec.message_bytes * 8);
    const auto symbols = attack::symbolsFromBits(bits, 2);
    std::vector<std::unique_ptr<attack::CovertSender>> senders;
    std::vector<std::unique_ptr<attack::CovertReceiver>> receivers;
    std::uint32_t done_count = 0;
    Tick window = 0; // Same kind/levels on every channel ⇒ one window.
    for (std::uint32_t ch = 0; ch < spec.channels; ++ch) {
        attack::CovertConfig cfg = attack::makeChannelConfig(
            system, ChannelKind::kPrac, 2, ch);
        cfg.sender_source = 200 + static_cast<std::int32_t>(2 * ch);
        cfg.receiver_source = 201 + static_cast<std::int32_t>(2 * ch);
        window = cfg.window;
        senders.push_back(
            std::make_unique<attack::CovertSender>(system, cfg));
        receivers.push_back(
            std::make_unique<attack::CovertReceiver>(system, cfg));
    }
    const Tick epoch = system.now() + 2 * sim::kUs;
    for (std::uint32_t ch = 0; ch < spec.channels; ++ch) {
        senders[ch]->transmit(symbols, epoch);
        receivers[ch]->listen(symbols.size(), epoch,
                              [&done_count] { done_count += 1; });
    }
    const Tick deadline =
        epoch + (symbols.size() + 2) * window + 10 * sim::kUs;
    while (done_count < spec.channels && system.now() < deadline)
        system.run(window);
    LEAKY_ASSERT(done_count == spec.channels,
                 "%u of %u receivers finished before the deadline",
                 done_count, spec.channels);

    MultiChannelResult out;
    for (std::uint32_t ch = 0; ch < spec.channels; ++ch) {
        attack::ChannelResult r = attack::collectChannelResult(
            window, 2, symbols, receivers[ch]->decoded(),
            system.stats(ch));
        out.aggregate_raw_bit_rate += r.raw_bit_rate;
        out.aggregate_capacity += r.capacity;
        out.mean_symbol_error +=
            r.symbol_error / static_cast<double>(spec.channels);
        out.per_channel.push_back(std::move(r));
    }
    out.aggregate_actions = system.aggregateStats().preventiveActions();
    return out;
}

attack::ChannelResult
runMappingOrderCell(const dram::MappingSpec &actual,
                    const dram::MappingSpec &assumed,
                    std::size_t message_bytes, std::uint64_t seed)
{
    ChannelRunSpec spec;
    spec.kind = ChannelKind::kPrac;
    spec.mapping = actual;
    spec.message_bytes = message_bytes;
    spec.seed = seed;
    const sys::SystemConfig sys_cfg = channelSystemConfig(spec);
    sys::System system(sys_cfg);

    attack::CovertConfig cfg = channelConfig(system, spec);
    // The attacker massages its pages through the mapping it reverse
    // engineered (§5.2) — compose through the ASSUMED MappingFunction,
    // decode through the actual one (the same composition path the
    // mapping-recovery attacker feeds its learned function into). A
    // non-trivial bank coordinate (bg 2, bank 1) keeps the functions
    // distinguishable: at all-zero low fields every preset degenerates
    // to the same line index.
    const dram::MappingFunction assumed_fn(sys_cfg.ctrl.dram.org,
                                           sys_cfg.channels, assumed);
    cfg.sender_addr = attack::rowAddress(assumed_fn, 0, 0, 2, 1, 1000);
    cfg.receiver_addr = attack::rowAddress(assumed_fn, 0, 0, 2, 1, 2000);

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(system, cfg,
                                    attack::symbolsFromBits(bits, 2));
}

// ------------------------------- online mapping recovery (ROADMAP 2)

namespace {

/** Fold one extra physical-bit tap into the LSB mask of @p field —
 *  an elementary GF(2) row operation, so the result stays invertible
 *  as long as each fold taps a bit owned by a DIFFERENT output row. */
void
foldTap(std::array<std::vector<std::uint64_t>, dram::kNumFields> &masks,
        dram::Field field, std::uint32_t phys_bit)
{
    auto &field_masks = masks[static_cast<std::size_t>(field)];
    LEAKY_ASSERT(!field_masks.empty(), "cannot fold into a zero-width "
                                       "field");
    field_masks[0] ^= std::uint64_t{1} << phys_bit;
}

} // namespace

std::vector<RecoveryMappingCase>
recoveryMappings()
{
    std::vector<RecoveryMappingCase> out;
    for (dram::MappingPreset preset : dram::kAllMappingPresets)
        out.push_back({dram::presetName(preset), 0, preset});

    // XOR variants: row-interleaved's explicit matrix with row bits
    // folded into bank-set masks at increasing heights. Under the
    // paper geometry the line bits are col 6-12, bg 13-15, ba 16-17,
    // ra 18, row 19-35 (physical); folding physical bits 24 / 28 / 34
    // into bg0 / ba0 / ra forces the attacker's difference window
    // past 16 / 22 / 26 line bits respectively — one more adaptive
    // round per fold.
    const sys::SystemConfig base_cfg =
        sys::SystemConfig::paper(DefenseKind::kNone);
    const dram::MappingFunction base(
        base_cfg.ctrl.dram.org, base_cfg.channels,
        dram::MappingPreset::kRowInterleaved);
    std::array<std::vector<std::uint64_t>, dram::kNumFields> masks{};
    for (std::size_t i = 0; i < dram::kNumFields; ++i)
        masks[i] = base.fieldMasks(static_cast<dram::Field>(i));

    foldTap(masks, dram::Field::kBankGroup, 24);
    out.push_back({"xor-near", 1, dram::MappingSpec::fromMasks(masks)});
    foldTap(masks, dram::Field::kBank, 28);
    out.push_back({"xor-mid", 2, dram::MappingSpec::fromMasks(masks)});
    foldTap(masks, dram::Field::kRank, 34);
    out.push_back({"xor-far", 3, dram::MappingSpec::fromMasks(masks)});
    return out;
}

MappingRecoveryCellResult
runMappingRecoveryCell(const dram::MappingSpec &mapping,
                       DefenseKind defense, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = sys::SystemConfig::paper(defense, 160);
    sys_cfg.mapping = mapping;
    sys::System system(sys_cfg);

    attack::MappingRecoveryConfig cfg;
    cfg.classifier = attack::LatencyClassifier::forTiming(
        sys_cfg.ctrl.dram.timing);
    cfg.pairs_per_round = 192;
    cfg.seed = seed;
    attack::MappingRecovery attacker(system, cfg);

    bool done = false;
    attacker.start([&done] { done = true; });
    // Generous ceiling: even the xor-far cell solves in well under a
    // simulated second; a wedged attacker fails loudly instead of
    // spinning forever.
    const Tick deadline = system.now() + 60'000 * sim::kMs;
    while (!done && system.now() < deadline)
        system.run(sim::kMs);
    LEAKY_ASSERT(done, "mapping recovery did not terminate");

    MappingRecoveryCellResult out;
    out.recovered = attacker.result();

    // Grade against the system mapper's ground truth. Bank functions
    // must match as a SPAN (any basis of the same space predicts the
    // same conflicts); row functions only modulo bank functions, so
    // the joint bank+row span is the identifiable object.
    const dram::MappingFunction &fn = system.mapper().fn();
    dram::gf2::BitBasis true_bank;
    for (dram::Field f :
         {dram::Field::kChannel, dram::Field::kRank,
          dram::Field::kBankGroup, dram::Field::kBank})
        for (std::uint64_t m : fn.fieldMasks(f))
            true_bank.insert(m);
    dram::gf2::BitBasis got_bank;
    for (std::uint64_t m : out.recovered.bank_masks)
        got_bank.insert(m);
    out.bank_match =
        out.recovered.bank_solved && got_bank.sameSpan(true_bank);

    dram::gf2::BitBasis true_joint = true_bank;
    for (std::uint64_t m : fn.fieldMasks(dram::Field::kRow))
        true_joint.insert(m);
    dram::gf2::BitBasis got_joint = got_bank;
    for (std::uint64_t m : out.recovered.row_masks)
        got_joint.insert(m);
    out.row_match =
        out.recovered.row_solved && got_joint.sameSpan(true_joint);
    return out;
}

// --------------------------------------- tracker family (cross-defense)

namespace {

/** Receiver configuration for a defense whose observable is a
 *  bank-blocking window (RFM / targeted refresh): count slow events
 *  against Trecv. The tracker receiver calibrates its slow-event
 *  threshold to the VRR window (shorter than a full RFM), keeping
 *  Hydra's sub-band counter fetches out of the detection class. */
attack::CovertConfig
trackerChannelConfig(sys::System &system)
{
    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, ChannelKind::kRfm);
    cfg.trecv = 2;
    cfg.classifier.rfm_min = 200'000;
    return cfg;
}

std::unique_ptr<attack::NoiseAgent>
attachNoise(sys::System &system, Tick noise_sleep)
{
    if (noise_sleep == 0)
        return nullptr;
    attack::NoiseConfig noise_cfg;
    noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0, 0,
                                         3000, 6, 512);
    noise_cfg.sleep = noise_sleep;
    auto noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
    noise->start();
    return noise;
}

} // namespace

sys::SystemConfig
crossDefenseSystemConfig(DefenseKind kind)
{
    const bool prac_family = kind == DefenseKind::kPrac ||
                             kind == DefenseKind::kPracRiac ||
                             kind == DefenseKind::kPracBank;
    if (prac_family) {
        sys::SystemConfig sys_cfg = pracAttackSystem();
        sys_cfg.defense.kind = kind;
        return sys_cfg;
    }
    if (kind == DefenseKind::kPrfm)
        return prfmAttackSystem();
    if (kind == DefenseKind::kGraphene || kind == DefenseKind::kHydra)
        return trackerAttackSystem(kind);
    return sys::SystemConfig::paper(kind, 160);
}

attack::CovertConfig
crossDefenseChannelConfig(sys::System &system, DefenseKind kind)
{
    const bool prac_family = kind == DefenseKind::kPrac ||
                             kind == DefenseKind::kPracRiac ||
                             kind == DefenseKind::kPracBank;
    if (prac_family)
        return attack::makeChannelConfig(system, ChannelKind::kPrac);
    if (kind == DefenseKind::kGraphene || kind == DefenseKind::kHydra)
        return trackerChannelConfig(system);
    return attack::makeChannelConfig(system, ChannelKind::kRfm);
}

attack::ChannelResult
runCrossDefenseCell(DefenseKind kind, Tick noise_sleep,
                    std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = crossDefenseSystemConfig(kind);
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    attack::CovertConfig cfg = crossDefenseChannelConfig(system, kind);

    auto noise = attachNoise(system, noise_sleep);
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

attack::ChannelResult
runTrackerThresholdCell(DefenseKind kind, std::uint32_t threshold,
                        std::uint32_t cc_entries,
                        std::size_t message_bytes, std::uint64_t seed)
{
    sys::SystemConfig sys_cfg = trackerAttackSystem(kind);
    sys_cfg.defense.tracker_threshold_override = threshold;
    sys_cfg.defense.hydra_cc_entries = cc_entries;
    sys_cfg.defense.seed = seed;
    sys::System system(sys_cfg);

    attack::CovertConfig cfg = trackerChannelConfig(system);
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, message_bytes * 8);
    return attack::runCovertChannel(
        system, cfg, attack::symbolsFromBits(bits, 2));
}

// ------------------------------------------------------------- Fig. 13

namespace {

/** Run until all cores retire their budget or the cap elapses. */
void
runCoresToBudget(sys::System &system,
                 std::vector<std::unique_ptr<sys::TraceCore>> &cores,
                 Tick cap)
{
    const Tick start = system.now();
    while (system.now() - start < cap) {
        bool all_done = true;
        for (const auto &core : cores)
            all_done = all_done && core->budgetDone();
        if (all_done)
            break;
        system.run(500 * sim::kUs);
    }
}

std::vector<std::unique_ptr<sys::TraceCore>>
makeCores(sys::System &system, const workload::Mix &mix,
          std::uint64_t insts_per_core)
{
    std::vector<std::unique_ptr<sys::TraceCore>> cores;
    std::int32_t source = 0;
    for (const auto &app : mix.apps) {
        sys::CoreConfig core_cfg;
        core_cfg.inst_budget = insts_per_core;
        core_cfg.mshrs = app.mlp;
        auto trace = workload::generateTrace(app, system.mapper(),
                                             40'000);
        cores.push_back(std::make_unique<sys::TraceCore>(
            system, core_cfg, std::move(trace), source++));
        cores.back()->start();
    }
    return cores;
}

constexpr Tick kPerfRunCap = 80 * sim::kMs;

} // namespace

namespace {

/** Weighted speedup of @p mix on a system with @p kind at @p nrh. */
double
sharedWs(DefenseKind kind, std::uint32_t nrh, const workload::Mix &mix,
         const std::vector<double> &ipc_alone,
         std::uint64_t insts_per_core)
{
    sys::SystemConfig cfg = sys::SystemConfig::paper(kind, nrh);
    // The performance study models a mid-lifetime slice of a long run:
    // PRAC counters are warm (see defense/prac.hh).
    cfg.defense.warm_counters = true;
    sys::System system(cfg);
    auto cores = makeCores(system, mix, insts_per_core);
    runCoresToBudget(system, cores, kPerfRunCap);
    std::vector<double> ipc_shared;
    for (const auto &core : cores)
        ipc_shared.push_back(core->ipcAt(system.now()));
    return stats::weightedSpeedup(ipc_shared, ipc_alone);
}

/** Alone IPC per app of a mix on the unprotected system. */
std::vector<double>
aloneIpcs(const workload::Mix &mix, std::uint64_t insts_per_core)
{
    std::vector<double> ipc_alone;
    for (const auto &app : mix.apps) {
        sys::SystemConfig cfg =
            sys::SystemConfig::paper(DefenseKind::kNone, 1024);
        sys::System system(cfg);
        workload::Mix solo{mix.name + "-solo", {app}};
        auto cores = makeCores(system, solo, insts_per_core);
        runCoresToBudget(system, cores, kPerfRunCap);
        ipc_alone.push_back(cores[0]->ipcAt(system.now()));
    }
    return ipc_alone;
}

} // namespace

double
runPerfCell(DefenseKind kind, std::uint32_t nrh,
            const std::vector<workload::Mix> &mixes, std::uint32_t cores,
            std::uint64_t insts_per_core)
{
    (void)cores;
    double total_norm_ws = 0.0;
    for (const auto &mix : mixes) {
        const auto ipc_alone = aloneIpcs(mix, insts_per_core);
        const double ws_base = sharedWs(DefenseKind::kNone, nrh, mix,
                                        ipc_alone, insts_per_core);
        const double ws_def =
            sharedWs(kind, nrh, mix, ipc_alone, insts_per_core);
        total_norm_ws += ws_base > 0.0 ? ws_def / ws_base : 0.0;
    }
    return total_norm_ws / static_cast<double>(mixes.size());
}

std::vector<PerfPoint>
runMitigationPerf(const PerfSpec &spec)
{
    const auto mixes =
        workload::makeMixes(spec.mixes, spec.cores, spec.seed);

    // Per-mix baselines are shared across every (defense, NRH) cell.
    std::vector<std::vector<double>> alone;
    std::vector<double> ws_base;
    for (const auto &mix : mixes) {
        alone.push_back(aloneIpcs(mix, spec.insts_per_core));
        ws_base.push_back(sharedWs(DefenseKind::kNone, 1024, mix,
                                   alone.back(), spec.insts_per_core));
    }

    std::vector<PerfPoint> points;
    for (auto nrh : spec.nrh_values) {
        for (auto kind : spec.defenses) {
            double total = 0.0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                const double ws_def =
                    sharedWs(kind, nrh, mixes[m], alone[m],
                             spec.insts_per_core);
                total += ws_base[m] > 0.0 ? ws_def / ws_base[m] : 0.0;
            }
            PerfPoint point;
            point.defense = defense::defenseName(kind);
            point.nrh = nrh;
            point.normalized_ws =
                total / static_cast<double>(mixes.size());
            points.push_back(point);
        }
    }
    return points;
}

} // namespace leaky::core
