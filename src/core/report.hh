/**
 * @file
 * Plain-text reporting helpers for the bench binaries: aligned tables,
 * CSV emission, and a tiny ASCII line/strip chart so figures can be
 * eyeballed in a terminal.
 */

#ifndef LEAKY_CORE_REPORT_HH
#define LEAKY_CORE_REPORT_HH

#include <string>
#include <vector>

namespace leaky::core {

/** Aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment. */
    std::string str() const;

    /** Render as CSV (for downstream plotting). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. */
std::string fmt(double value, int precision = 2);
std::string fmtKbps(double bits_per_second);

/**
 * ASCII sparkline of a series scaled to [0, max] using eight block
 * levels, e.g. for Fig. 2's latency trace.
 */
std::string sparkline(const std::vector<double> &values);

/** Print a section banner to stdout. */
void banner(const std::string &title);

} // namespace leaky::core

#endif // LEAKY_CORE_REPORT_HH
