#include "attack/message.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::attack {

const char *
patternName(MessagePattern pattern)
{
    switch (pattern) {
      case MessagePattern::kAllOnes: return "all-1s";
      case MessagePattern::kAllZeros: return "all-0s";
      case MessagePattern::kCheckered0: return "checkered-0";
      case MessagePattern::kCheckered1: return "checkered-1";
      case MessagePattern::kRandom: return "random";
    }
    return "?";
}

std::vector<bool>
bitsFromString(const std::string &text)
{
    std::vector<bool> bits;
    bits.reserve(text.size() * 8);
    for (unsigned char c : text) {
        for (int b = 7; b >= 0; --b)
            bits.push_back(((c >> b) & 1) != 0);
    }
    return bits;
}

std::string
stringFromBits(const std::vector<bool> &bits)
{
    LEAKY_ASSERT(bits.size() % 8 == 0, "bit count %zu not byte aligned",
                 bits.size());
    std::string out;
    for (std::size_t i = 0; i < bits.size(); i += 8) {
        unsigned char c = 0;
        for (int b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) |
                                           (bits[i + b] ? 1 : 0));
        out.push_back(static_cast<char>(c));
    }
    return out;
}

std::vector<bool>
patternBits(MessagePattern pattern, std::size_t n_bits)
{
    std::vector<bool> bits(n_bits, false);
    sim::Rng rng(0x5EEDBEEF);
    for (std::size_t i = 0; i < n_bits; ++i) {
        switch (pattern) {
          case MessagePattern::kAllOnes: bits[i] = true; break;
          case MessagePattern::kAllZeros: bits[i] = false; break;
          case MessagePattern::kCheckered0: bits[i] = i % 2 == 1; break;
          case MessagePattern::kCheckered1: bits[i] = i % 2 == 0; break;
          case MessagePattern::kRandom: bits[i] = rng.chance(0.5); break;
        }
    }
    return bits;
}

namespace {

constexpr std::size_t kTernaryBlockBits = 19;
constexpr std::size_t kTernaryBlockDigits = 12; // 3^12 = 531441 > 2^19.

} // namespace

std::vector<std::uint8_t>
symbolsFromBits(const std::vector<bool> &bits, std::uint32_t levels)
{
    LEAKY_ASSERT(levels >= 2 && levels <= 4, "levels must be 2..4");
    std::vector<std::uint8_t> symbols;
    if (levels == 2) {
        for (bool b : bits)
            symbols.push_back(b ? 1 : 0);
        return symbols;
    }
    if (levels == 4) {
        for (std::size_t i = 0; i < bits.size(); i += 2) {
            std::uint8_t s = bits[i] ? 2 : 0;
            if (i + 1 < bits.size())
                s = static_cast<std::uint8_t>(s | (bits[i + 1] ? 1 : 0));
            symbols.push_back(s);
        }
        return symbols;
    }
    // Ternary: 19-bit blocks as 12 base-3 digits.
    for (std::size_t i = 0; i < bits.size(); i += kTernaryBlockBits) {
        std::uint32_t value = 0;
        for (std::size_t b = 0; b < kTernaryBlockBits; ++b) {
            value <<= 1;
            if (i + b < bits.size() && bits[i + b])
                value |= 1;
        }
        for (std::size_t d = 0; d < kTernaryBlockDigits; ++d) {
            symbols.push_back(static_cast<std::uint8_t>(value % 3));
            value /= 3;
        }
    }
    return symbols;
}

std::vector<bool>
bitsFromSymbols(const std::vector<std::uint8_t> &symbols,
                std::uint32_t levels, std::size_t n_bits)
{
    LEAKY_ASSERT(levels >= 2 && levels <= 4, "levels must be 2..4");
    std::vector<bool> bits;
    if (levels == 2) {
        for (auto s : symbols)
            bits.push_back(s != 0);
        bits.resize(n_bits, false);
        return bits;
    }
    if (levels == 4) {
        for (auto s : symbols) {
            bits.push_back((s & 2) != 0);
            bits.push_back((s & 1) != 0);
        }
        bits.resize(n_bits, false);
        return bits;
    }
    for (std::size_t i = 0; i < symbols.size(); i += kTernaryBlockDigits) {
        std::uint32_t value = 0;
        std::uint32_t scale = 1;
        for (std::size_t d = 0;
             d < kTernaryBlockDigits && i + d < symbols.size(); ++d) {
            value += symbols[i + d] % 3 * scale;
            scale *= 3;
        }
        for (std::size_t b = 0; b < kTernaryBlockBits; ++b) {
            bits.push_back(
                (value >> (kTernaryBlockBits - 1 - b) & 1) != 0);
        }
    }
    bits.resize(n_bits, false);
    return bits;
}

double
bitsPerSymbol(std::uint32_t levels)
{
    if (levels == 3) {
        return static_cast<double>(kTernaryBlockBits) /
               static_cast<double>(kTernaryBlockDigits);
    }
    return std::log2(static_cast<double>(levels));
}

} // namespace leaky::attack
