#include "attack/noise.hh"

#include "sim/logging.hh"

namespace leaky::attack {

NoiseAgent::NoiseAgent(sys::MemoryPort &port, const NoiseConfig &cfg)
    : port_(port), cfg_(cfg)
{
    LEAKY_ASSERT(cfg_.addrs.size() >= 2,
                 "noise agent needs at least two row addresses");
}

void
NoiseAgent::start()
{
    if (running_)
        return;
    running_ = true;
    loop();
}

void
NoiseAgent::loop()
{
    if (!running_)
        return;
    // Unlike the attack loops, the noise microbenchmark paces itself by
    // wall clock (sleep between activations), not by load-to-use
    // dependencies, so its request rate is sleep-controlled even when
    // DRAM is slow.
    port_.schedule(cfg_.iter_overhead + cfg_.sleep, [this] {
        if (!running_)
            return;
        const std::uint64_t addr = cfg_.addrs[next_];
        next_ = (next_ + 1) % cfg_.addrs.size();
        port_.issueRead(addr, cfg_.source,
                        [this](Tick) { accesses_ += 1; });
        loop();
    });
}

} // namespace leaky::attack
