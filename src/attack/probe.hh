/**
 * @file
 * Memory-request latency measurement routine (paper Listing 1) and the
 * latency classifier used by every LeakyHammer attack. The probe
 * replicates the userspace loop: clflush + load + timestamp, with the
 * previous iteration's end timestamp reused as the next start, so each
 * sample is (loop overhead + memory latency) exactly as in §6.2.
 */

#ifndef LEAKY_ATTACK_PROBE_HH
#define LEAKY_ATTACK_PROBE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "dram/config.hh"
#include "sys/port.hh"

namespace leaky::attack {

using sim::Tick;

/** One timestamped latency measurement. */
struct LatencySample {
    Tick timestamp = 0; ///< End-of-iteration time.
    Tick latency = 0;   ///< Time since the previous iteration's end.
};

/** What a measured latency most likely was (paper Fig. 2 bands). */
enum class LatencyClass : std::uint8_t {
    kFast,     ///< Row hit / empty-bank activation.
    kConflict, ///< Row-buffer conflict (PRE + ACT + RD).
    kRfm,      ///< Delayed by a standalone RFM window (PRFM).
    kRefresh,  ///< Delayed by (postponed, back-to-back) periodic REFs.
    kBackoff   ///< Delayed by a PRAC back-off (tABOACT + recovery RFMs).
};

const char *latencyClassName(LatencyClass c);

/** Threshold-based classifier for attacker-observed latencies. */
struct LatencyClassifier {
    Tick conflict_min = 60'000;  ///< >= this: at least a conflict.
    Tick rfm_min = 250'000;      ///< >= this: an RFM window intervened.
    Tick refresh_min = 520'000;  ///< >= this: a double periodic REF.
    Tick backoff_min = 900'000;  ///< >= this: a PRAC back-off.

    LatencyClass
    classify(Tick latency) const
    {
        if (latency >= backoff_min)
            return LatencyClass::kBackoff;
        if (latency >= refresh_min)
            return LatencyClass::kRefresh;
        if (latency >= rfm_min)
            return LatencyClass::kRfm;
        if (latency >= conflict_min)
            return LatencyClass::kConflict;
        return LatencyClass::kFast;
    }

    /**
     * Derive thresholds from the system's DRAM timing parameters.
     * @param rfms_per_backoff RFMs in a back-off recovery; fewer RFMs
     *        shrink the back-off latency toward the refresh band, which
     *        is exactly the Fig. 11 sensitivity.
     */
    static LatencyClassifier forTiming(const dram::Timing &timing,
                                       Tick base_latency = 90'000,
                                       std::uint32_t rfms_per_backoff = 4);
};

/** Listing-1 probe configuration. */
struct ProbeConfig {
    std::vector<std::uint64_t> addrs; ///< Rows to access in rotation.
    /** Channel the probe rows live on — the channel whose defense the
     *  probe observes; result collectors read that channel's stats. */
    std::uint32_t channel = 0;
    std::uint32_t iterations = 512;
    /** Non-memory work per iteration: clflush + timer + loop control. */
    Tick iter_overhead = 15'000;
    std::int32_t source = 100;
};

/** The paper's Listing-1 measurement routine as a simulation agent. */
class LatencyProbe
{
  public:
    LatencyProbe(sys::MemoryPort &port, ProbeConfig cfg);

    /** Begin probing; @p on_done fires after the last iteration. */
    void start(std::function<void()> on_done = {});

    const std::vector<LatencySample> &samples() const { return samples_; }

  private:
    void iterate();

    sys::MemoryPort &port_;
    ProbeConfig cfg_;
    std::function<void()> on_done_;
    std::vector<LatencySample> samples_;
    std::uint32_t iter_ = 0;
    Tick mark_ = 0;
};

} // namespace leaky::attack

#endif // LEAKY_ATTACK_PROBE_HH
