#include "attack/probe.hh"

#include "sim/logging.hh"

namespace leaky::attack {

const char *
latencyClassName(LatencyClass c)
{
    switch (c) {
      case LatencyClass::kFast: return "fast";
      case LatencyClass::kConflict: return "conflict";
      case LatencyClass::kRfm: return "rfm";
      case LatencyClass::kRefresh: return "refresh";
      case LatencyClass::kBackoff: return "backoff";
    }
    return "?";
}

LatencyClassifier
LatencyClassifier::forTiming(const dram::Timing &timing, Tick base_latency,
                             std::uint32_t rfms_per_backoff)
{
    LatencyClassifier c;
    // A conflict costs tRP + tRCD + tCL on top of the loop floor.
    c.conflict_min = base_latency / 2 + timing.tRP;
    // An RFM window adds tRFM; a (double) postponed refresh adds 2xtRFC;
    // a back-off adds tABOACT + N recovery RFM windows. The back-off
    // threshold sits at ~60% of the nominal back-off latency, which for
    // small N collapses into the refresh band (Fig. 11).
    c.rfm_min = base_latency / 2 + timing.tRFM / 2 + timing.tRP;
    c.refresh_min = base_latency + timing.tRFC + timing.tRFC / 2;
    c.backoff_min = base_latency + timing.tABOACT +
                    rfms_per_backoff * timing.tRFM_backoff * 6 / 10;
    return c;
}

LatencyProbe::LatencyProbe(sys::MemoryPort &port, ProbeConfig cfg)
    : port_(port), cfg_(std::move(cfg))
{
    LEAKY_ASSERT(!cfg_.addrs.empty(), "probe needs at least one address");
    // The channel field is the collector's contract (stats are read
    // from it); every probe row must actually decode onto it.
    for (auto addr : cfg_.addrs)
        LEAKY_ASSERT(port_.mapper().decode(addr).channel == cfg_.channel,
                     "probe address does not decode onto channel %u",
                     cfg_.channel);
    samples_.reserve(cfg_.iterations);
}

void
LatencyProbe::start(std::function<void()> on_done)
{
    on_done_ = std::move(on_done);
    mark_ = port_.now();
    iterate();
}

void
LatencyProbe::iterate()
{
    if (iter_ >= cfg_.iterations) {
        if (on_done_)
            on_done_();
        return;
    }
    const std::uint64_t addr = cfg_.addrs[iter_ % cfg_.addrs.size()];
    iter_ += 1;
    // clflush + loop overhead, then the (cache-bypassing) access.
    port_.schedule(cfg_.iter_overhead, [this, addr] {
        port_.issueRead(addr, cfg_.source, [this](Tick done) {
            samples_.push_back({done, done - mark_});
            mark_ = done;
            iterate();
        });
    });
}

} // namespace leaky::attack
