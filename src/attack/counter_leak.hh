/**
 * @file
 * Activation-counter value leakage (paper §9.1, Table 3's row-granular
 * column): when the attacker shares a DRAM row with the victim, PRAC's
 * per-row counter aggregates both parties' activations. The attacker
 * hammers the shared row (alternating with a private conflict row) and
 * counts its own activations until the back-off fires: if the back-off
 * threshold is NBO and the attacker contributed `a` activations, the
 * victim must have contributed NBO - a, leaking log2(NBO) bits in one
 * shot. The paper measures 7 bits in 13.6 us on average (501 Kbps).
 */

#ifndef LEAKY_ATTACK_COUNTER_LEAK_HH
#define LEAKY_ATTACK_COUNTER_LEAK_HH

#include <cstdint>
#include <functional>

#include "attack/probe.hh"
#include "sys/port.hh"

namespace leaky::attack {

/** Counter-leak attack parameters. */
struct CounterLeakConfig {
    std::uint64_t shared_addr = 0;   ///< Row shared with the victim.
    std::uint64_t conflict_addr = 0; ///< Attacker's same-bank row.
    /** Channel both rows live on (PRAC counters are per-channel). */
    std::uint32_t channel = 0;
    std::uint32_t nbo = 128;
    Tick iter_overhead = 15'000;
    LatencyClassifier classifier;
    std::int32_t source = 500;
};

/** Result of one leak. */
struct CounterLeakResult {
    std::uint32_t attacker_activations = 0; ///< `a` above.
    std::uint32_t leaked_count = 0;         ///< NBO - a.
    Tick elapsed = 0;
    double bits = 0.0;       ///< log2(NBO).
    double throughput = 0.0; ///< bits / second.
};

/** The attacker process of §9.1. */
class CounterLeakAttacker
{
  public:
    CounterLeakAttacker(sys::MemoryPort &port,
                        const CounterLeakConfig &cfg);

    /** Hammer until the back-off fires, then report the leak. */
    void leak(std::function<void(const CounterLeakResult &)> on_done);

  private:
    void iterate();

    sys::MemoryPort &port_;
    CounterLeakConfig cfg_;
    std::function<void(const CounterLeakResult &)> on_done_;
    Tick start_ = 0;
    Tick mark_ = 0;
    bool next_shared_ = true;
    std::uint32_t shared_activations_ = 0;
};

/**
 * A scripted victim that activates the shared row a secret number of
 * times (priming the counter), then hands control to @p on_done.
 */
class CounterLeakVictim
{
  public:
    CounterLeakVictim(sys::MemoryPort &port, std::uint64_t shared_addr,
                      std::uint64_t conflict_addr,
                      Tick iter_overhead = 15'000,
                      std::int32_t source = 501);

    void prime(std::uint32_t activations, std::function<void()> on_done);

  private:
    void iterate();

    sys::MemoryPort &port_;
    std::uint64_t shared_addr_;
    std::uint64_t conflict_addr_;
    Tick iter_overhead_;
    std::int32_t source_;
    std::function<void()> on_done_;
    std::uint32_t remaining_ = 0;
    bool next_shared_ = true;
};

} // namespace leaky::attack

#endif // LEAKY_ATTACK_COUNTER_LEAK_HH
