/**
 * @file
 * Attacker-side address construction. In the paper's threat model (§5.2)
 * attack processes partially reverse engineer the DRAM address mapping
 * and massage pages into chosen rows/banks; in simulation that amounts
 * to composing physical addresses through a dram::MappingFunction — the
 * attacker's ASSUMED function, which mapping-order (wrong assumption)
 * and mapping-recovery (learned assumption) both route through. The
 * AddressMapper overloads below compose through the system's own
 * function, the "attacker already knows the mapping" baseline.
 */

#ifndef LEAKY_ATTACK_DRAM_ADDR_HH
#define LEAKY_ATTACK_DRAM_ADDR_HH

#include <cstdint>
#include <vector>

#include "dram/address_mapper.hh"
#include "sim/logging.hh"

namespace leaky::attack {

/** Physical address of (channel, rank, bankgroup, bank, row, column)
 *  under the attacker's assumed mapping function. Asserts the channel
 *  exists in @p fn's topology up front — a compose() of out-of-range
 *  coordinates would otherwise only trip the generic field-range check
 *  deep inside the mapper. */
inline std::uint64_t
rowAddress(const dram::MappingFunction &fn, std::uint32_t channel,
           std::uint32_t rank, std::uint32_t bankgroup, std::uint32_t bank,
           std::uint32_t row, std::uint32_t column = 0)
{
    LEAKY_ASSERT(channel < fn.channels(),
                 "attacker targets channel %u but the system has %u",
                 channel, fn.channels());
    dram::Address a;
    a.channel = channel;
    a.rank = rank;
    a.bankgroup = bankgroup;
    a.bank = bank;
    a.row = row;
    a.column = column;
    return fn.compose(a);
}

/** As above, through the system mapper's own function. */
inline std::uint64_t
rowAddress(const dram::AddressMapper &mapper, std::uint32_t channel,
           std::uint32_t rank, std::uint32_t bankgroup, std::uint32_t bank,
           std::uint32_t row, std::uint32_t column = 0)
{
    return rowAddress(mapper.fn(), channel, rank, bankgroup, bank, row,
                      column);
}

/** N addresses in distinct rows of the same bank (for Listing 2). */
inline std::vector<std::uint64_t>
rowsInBank(const dram::MappingFunction &fn, std::uint32_t channel,
           std::uint32_t rank, std::uint32_t bankgroup, std::uint32_t bank,
           std::uint32_t first_row, std::uint32_t count,
           std::uint32_t stride = 1)
{
    std::vector<std::uint64_t> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        out.push_back(rowAddress(fn, channel, rank, bankgroup, bank,
                                 first_row + i * stride));
    }
    return out;
}

/** As above, through the system mapper's own function. */
inline std::vector<std::uint64_t>
rowsInBank(const dram::AddressMapper &mapper, std::uint32_t channel,
           std::uint32_t rank, std::uint32_t bankgroup, std::uint32_t bank,
           std::uint32_t first_row, std::uint32_t count,
           std::uint32_t stride = 1)
{
    return rowsInBank(mapper.fn(), channel, rank, bankgroup, bank,
                      first_row, count, stride);
}

} // namespace leaky::attack

#endif // LEAKY_ATTACK_DRAM_ADDR_HH
