/**
 * @file
 * Online DRAM address-mapping reverse engineering (ZenHammer/DARE,
 * DRAMA). The attacker of §5.2 is assumed to know the XOR mapping
 * function before mounting the channel; MappingRecovery LEARNS it
 * through the timing side channel the controller itself exposes:
 * alternating reads to two addresses in the same bank but different
 * rows suffer a row-buffer conflict on every access, while any other
 * pair stays fast. Conflict-pair address differences are samples of
 * the bank functions' null space; the bank functions are recovered as
 * its GF(2) annihilator, and the row functions follow from classifying
 * the null-space directions (row-flipping vs column-only).
 *
 * The attacker knows the module geometry (capacity, bank/row/column
 * counts — datasheet values) but nothing about which physical bits
 * feed which coordinate. Probing is adaptive: differences start
 * confined to a low-bit window and the window widens whenever
 * validation probes catch a bank function tapping higher bits — so
 * mappings folding high (row) bits into bank masks cost measurably
 * more probes, which is the `mapping-recovery` figure's x-axis.
 */

#ifndef LEAKY_ATTACK_MAPPING_RECOVERY_HH
#define LEAKY_ATTACK_MAPPING_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/probe.hh"
#include "dram/mapping.hh"
#include "sim/rng.hh"
#include "sys/port.hh"

namespace leaky::attack {

/** Knobs of the online recovery loop. */
struct MappingRecoveryConfig {
    LatencyClassifier classifier;
    /** Alternating read pairs per timing measurement (2N reads; the
     *  min latency of the steady-state reads is the statistic, which
     *  filters refresh/RFM/back-off inflation from any defense). */
    std::uint32_t samples_per_pair = 4;
    /** Random difference probes per collection round. */
    std::uint32_t pairs_per_round = 48;
    /** Constructed full-range probes per validation pass. */
    std::uint32_t validation_pairs = 12;
    /** Difference-window schedule in line bits (0 = all line bits).
     *  Each widening is one more adaptive round; complex mappings
     *  fail validation in narrow windows and climb the schedule. */
    std::vector<std::uint32_t> windows = {16, 22, 26, 0};
    std::uint32_t max_rounds = 64;
    /** Cap on pairwise-XOR refinement probes in the row phase. */
    std::uint32_t max_refine_tests = 64;
    /** Non-memory work per access (clflush + timer, as in Listing 1). */
    Tick iter_overhead = 15'000;
    std::int32_t source = 150;
    std::uint64_t seed = 1;
};

/** What the attacker learned, plus the probing cost to learn it. */
struct RecoveredMapping {
    /** Learned bank-set functions: XOR masks over PHYSICAL address
     *  bits (row-echelon basis of their span). "Bank set" includes
     *  channel and rank — any coordinate that selects a row buffer. */
    std::vector<std::uint64_t> bank_masks;
    /** Learned row functions, modulo bank functions (the conflict
     *  oracle cannot distinguish `row` from `row XOR bank`). */
    std::vector<std::uint64_t> row_masks;
    /** Basis of physical-address differences that change neither bank
     *  nor row (column-only directions) — the learned kernel the row
     *  functions are derived from. */
    std::vector<std::uint64_t> column_dirs;
    bool bank_solved = false;
    bool row_solved = false;
    std::uint64_t probes = 0;   ///< Timed address pairs.
    std::uint64_t accesses = 0; ///< Individual reads issued.
    std::uint32_t rounds = 0;   ///< Collection rounds (incl. widenings).
    std::uint32_t validation_failures = 0;
    std::uint32_t final_window = 0; ///< Line bits visible at solve time.
};

/** The event-driven recovery agent (one per attacking process). */
class MappingRecovery
{
  public:
    MappingRecovery(sys::MemoryPort &port, MappingRecoveryConfig cfg);

    /** Begin probing; @p on_done fires once recovery finishes (or the
     *  round budget is exhausted — check result().bank_solved). */
    void start(std::function<void()> on_done = {});

    const RecoveredMapping &result() const { return result_; }

  private:
    enum class Phase : std::uint8_t {
        kCollect,  ///< Random in-window differences -> conflict span.
        kValidate, ///< Constructed full-range probes of the candidate.
        kClassify, ///< Null-space basis: row-flipping vs column-only.
        kRefine,   ///< Pairwise XOR of row-flippers (folded kernels).
        kDone
    };

    std::uint32_t windowBits() const;
    std::uint64_t randomLine();
    std::uint64_t randomWindowDelta();
    std::uint64_t randomCombination(
        const std::vector<std::uint64_t> &basis);

    /** Time one (a, b) pair; @p cb receives "was a row conflict". */
    void measurePair(std::uint64_t line_a, std::uint64_t line_b,
                     std::function<void(bool)> cb);
    void measureStep();

    void startCollectRound();
    void collectNext();
    void finishCollectRound();
    void startValidation();
    void validateNext();
    void finishValidation();
    void widenWindow();
    void startClassify();
    void classifyNext();
    void startRefine();
    void refineNext();
    void finish();

    sys::MemoryPort &port_;
    MappingRecoveryConfig cfg_;
    std::function<void()> on_done_;
    sim::Rng rng_;
    RecoveredMapping result_;

    // Known geometry (datasheet): line-space dimensions.
    std::uint32_t total_bits_ = 0;
    std::uint32_t bank_bits_ = 0; ///< ch + rank + bg + bank bits.
    std::uint32_t row_bits_ = 0;
    std::uint32_t col_bits_ = 0;

    Phase phase_ = Phase::kCollect;
    std::uint32_t window_idx_ = 0;

    // In-flight measurement state.
    std::uint64_t pair_[2] = {0, 0};
    std::uint32_t reads_done_ = 0;
    Tick mark_ = 0;
    Tick min_latency_ = 0;
    std::function<void(bool)> measure_cb_;

    // Collection state (line space, i.e. physical >> 6).
    dram::gf2::BitBasis conflict_span_;
    std::vector<std::uint64_t> raw_conflicts_;
    std::uint32_t round_pairs_ = 0;
    std::size_t span_rank_at_round_start_ = 0;
    std::uint32_t stalled_rounds_ = 0;

    // Validation state.
    std::vector<std::uint64_t> candidate_;        ///< In-window masks.
    std::vector<std::uint64_t> candidate_kernel_; ///< Full-space basis.
    std::uint32_t validation_done_ = 0;
    std::uint32_t validation_failed_ = 0;

    // Row/column phase state.
    std::vector<std::uint64_t> null_basis_;
    std::size_t classify_idx_ = 0;
    std::vector<std::uint64_t> row_flippers_;
    dram::gf2::BitBasis column_span_;
    std::size_t refine_i_ = 0, refine_j_ = 1;
    std::uint32_t refine_tests_ = 0;
};

} // namespace leaky::attack

#endif // LEAKY_ATTACK_MAPPING_RECOVERY_HH
