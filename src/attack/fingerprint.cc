#include "attack/fingerprint.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace leaky::attack {

FingerprintProbe::FingerprintProbe(sys::MemoryPort &port,
                                   FingerprintConfig cfg)
    : port_(port), cfg_(std::move(cfg))
{
    LEAKY_ASSERT(!cfg_.rows.empty(), "probe needs test rows");
    LEAKY_ASSERT(cfg_.t_accesses > 0, "T must be positive");
    // Back-offs are channel-wide but never wider: rows on any other
    // channel would observe a different defense instance entirely.
    for (auto row : cfg_.rows)
        LEAKY_ASSERT(port_.mapper().decode(row).channel == cfg_.channel,
                     "probe row does not decode onto channel %u",
                     cfg_.channel);
}

void
FingerprintProbe::start(std::function<void()> on_done)
{
    on_done_ = std::move(on_done);
    start_ = port_.now();
    end_ = start_ + cfg_.duration;
    mark_ = start_;
    iterate();
}

void
FingerprintProbe::iterate()
{
    if (port_.now() >= end_) {
        if (!done_reported_) {
            done_reported_ = true;
            if (on_done_)
                on_done_();
        }
        return;
    }
    const std::uint64_t addr = cfg_.rows[row_index_];
    access_in_row_ += 1;
    if (access_in_row_ >= cfg_.t_accesses) {
        access_in_row_ = 0;
        row_index_ = (row_index_ + 1) % cfg_.rows.size();
    }
    port_.schedule(cfg_.iter_overhead, [this, addr] {
        port_.issueRead(addr, cfg_.source, [this](Tick done) {
            const Tick latency = done - mark_;
            mark_ = done;
            accesses_ += 1;
            if (cfg_.classifier.classify(latency) ==
                LatencyClass::kBackoff) {
                backoffs_.push_back(done - start_);
            }
            iterate();
        });
    });
}

FingerprintFeatures
extractFeatures(const std::vector<Tick> &backoffs, Tick duration,
                std::uint32_t windows)
{
    LEAKY_ASSERT(duration > 0 && windows > 0, "bad feature parameters");
    FingerprintFeatures features;
    features.values.assign(windows, 0.0);

    for (Tick t : backoffs) {
        auto w = static_cast<std::size_t>(
            static_cast<unsigned __int128>(t) * windows / duration);
        w = std::min<std::size_t>(w, windows - 1);
        features.values[w] += 1.0;
    }

    // Pair statistics over consecutive back-off pairs (b0,b1), (b2,b3)..
    std::vector<double> in_pair_gap;
    std::vector<double> between_pair_gap;
    std::vector<double> pair_mean_ts;
    for (std::size_t i = 0; i + 1 < backoffs.size(); i += 2) {
        in_pair_gap.push_back(
            static_cast<double>(backoffs[i + 1] - backoffs[i]));
        pair_mean_ts.push_back(
            (static_cast<double>(backoffs[i]) +
             static_cast<double>(backoffs[i + 1])) /
            2.0);
        if (i >= 2) {
            between_pair_gap.push_back(
                static_cast<double>(backoffs[i] - backoffs[i - 1]));
        }
    }
    const auto summarize = [&features](const std::vector<double> &v) {
        if (v.empty()) {
            features.values.push_back(0.0);
            features.values.push_back(0.0);
            return;
        }
        double sum = 0.0;
        for (double x : v)
            sum += x;
        const double mean = sum / static_cast<double>(v.size());
        double var = 0.0;
        for (double x : v)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(v.size());
        // Microsecond units keep feature magnitudes comparable with the
        // window counts, which matters for kNN/SVM/perceptron.
        features.values.push_back(mean / 1e6);
        features.values.push_back(std::sqrt(var) / 1e6);
    };
    summarize(in_pair_gap);
    summarize(between_pair_gap);
    summarize(pair_mean_ts);
    features.values.push_back(static_cast<double>(backoffs.size()));
    return features;
}

} // namespace leaky::attack
