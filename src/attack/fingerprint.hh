/**
 * @file
 * Website-fingerprinting side channel (paper §8). The fingerprinting
 * routine (Listing 2) cycles through N test rows, accessing each T < NBO
 * times, so its own accesses are mostly row hits and never trigger
 * back-offs; back-offs caused by the victim browser appear as >= 1.4 us
 * spikes in the probe's latency trace. The timestamps of those spikes
 * form the fingerprint; extractFeatures() turns a trace into the fixed
 * feature vector the classifiers consume (per-execution-window back-off
 * counts plus the paper's consecutive-pair statistics).
 */

#ifndef LEAKY_ATTACK_FINGERPRINT_HH
#define LEAKY_ATTACK_FINGERPRINT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/probe.hh"
#include "sys/port.hh"

namespace leaky::attack {

/** Listing-2 fingerprinting routine configuration. */
struct FingerprintConfig {
    std::vector<std::uint64_t> rows; ///< N test rows (same channel).
    /** Channel the test rows live on. Back-offs are channel-wide, so
     *  the probe only observes victims sharing this channel. */
    std::uint32_t channel = 0;
    std::uint32_t t_accesses = 50;   ///< T: accesses per row visit (<NBO).
    Tick iter_overhead = 15'000;
    Tick duration = 4 * sim::kMs;    ///< Covers the page load.
    LatencyClassifier classifier;
    std::int32_t source = 400;
};

/** The attacker's measurement process. */
class FingerprintProbe
{
  public:
    FingerprintProbe(sys::MemoryPort &port, FingerprintConfig cfg);

    /** Probe until `duration` elapses, then invoke @p on_done. */
    void start(std::function<void()> on_done = {});

    /** Timestamps (relative to start) of detected back-offs. */
    const std::vector<Tick> &backoffTimes() const { return backoffs_; }

    std::uint64_t accessCount() const { return accesses_; }

  private:
    void iterate();

    sys::MemoryPort &port_;
    FingerprintConfig cfg_;
    std::function<void()> on_done_;
    Tick start_ = 0;
    Tick end_ = 0;
    Tick mark_ = 0;
    std::size_t row_index_ = 0;
    std::uint32_t access_in_row_ = 0;
    std::uint64_t accesses_ = 0;
    std::vector<Tick> backoffs_;
    bool done_reported_ = false;
};

/** Fixed-length feature vector from a back-off timestamp trace. */
struct FingerprintFeatures {
    /** Back-off counts per execution window + global pair statistics. */
    std::vector<double> values;
};

/**
 * Feature extraction (paper §8): per-execution-window back-off counts
 * (Fig. 9's strips) and, for each consecutive back-off pair, (i) the
 * gap within the pair, (ii) the gap to the previous pair, (iii) the
 * pair's mean timestamp -- aggregated as means/stddevs.
 */
FingerprintFeatures extractFeatures(const std::vector<Tick> &backoffs,
                                    Tick duration,
                                    std::uint32_t windows = 32);

} // namespace leaky::attack

#endif // LEAKY_ATTACK_FINGERPRINT_HH
