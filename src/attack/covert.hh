/**
 * @file
 * LeakyHammer covert channels (paper §6.3 and §7.3). A sender and a
 * receiver colocate two rows in one bank; the sender modulates the
 * defense's activation counters (by hammering or staying idle per
 * transmission window), and the receiver decodes by detecting the
 * defense's preventive actions in its own request latencies:
 *
 *  - PRAC channel: logic-1 = a back-off (>= 1.4 us) inside the window;
 *    multibit variants encode the symbol in how many receiver accesses
 *    happen before the back-off (§6.3, "Multibit Covert Channels").
 *  - PRFM channel: logic-1 = at least Trecv RFM-latency events in the
 *    window (§7.3); bank-level RAA counters make this channel noisier.
 */

#ifndef LEAKY_ATTACK_COVERT_HH
#define LEAKY_ATTACK_COVERT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/probe.hh"
#include "sys/port.hh"
#include "sys/system.hh"

namespace leaky::attack {

/** Which defense the channel exploits. */
enum class ChannelKind : std::uint8_t { kPrac, kRfm };

/** Channel parameters shared by sender and receiver. */
struct CovertConfig {
    ChannelKind kind = ChannelKind::kPrac;
    Tick window = 25 * sim::kUs;   ///< 25 us PRAC / 20 us RFM (paper).
    std::uint32_t levels = 2;      ///< 2 = binary, 3 = ternary, 4 = quat.
    std::uint32_t trecv = 3;       ///< RFM-count threshold (PRFM, §7.3).
    Tick iter_overhead = 15'000;   ///< Loop overhead per access.
    /**
     * Channel the sender's rows live on. Defense instances are
     * per-channel, so the sender only charges counters on THIS
     * channel's defense.
     */
    std::uint32_t sender_channel = 0;
    /**
     * Channel the receiver's row lives on — the channel whose
     * preventive actions the receiver observes and whose stats feed
     * the ChannelResult ground truth. Differs from sender_channel
     * only in cross-channel isolation studies, where the channel must
     * collapse (per-channel defenses share no state).
     */
    std::uint32_t receiver_channel = 0;
    std::uint64_t sender_addr = 0;
    /**
     * Optional second sender row in the same bank. When set, the sender
     * alternates between its two rows so every access conflicts --
     * required when the receiver is NOT colocated in the sender's bank
     * (paper §9.1: "the sender can simply alternate between two rows
     * within one bank").
     */
    std::uint64_t sender_addr2 = 0;
    /**
     * Fuzzer-generated aggressor sequence (src/fuzz): when non-empty
     * the sender walks these addresses cyclically during logic-1
     * windows instead of the addr/addr2 alternation, restarting at the
     * sequence head on every window start so the replay is a pure
     * function of the pattern. All entries must decode onto
     * sender_channel (asserted by runCovertChannel).
     */
    std::vector<std::uint64_t> sender_sequence;
    std::uint64_t receiver_addr = 0;
    std::int32_t sender_source = 200;
    std::int32_t receiver_source = 201;
    LatencyClassifier classifier;
    /**
     * Refresh filtering (paper §10.1): when preventive-action latencies
     * shrink into the refresh band (Figs. 11/12), the receiver
     * calibrates the periodic-refresh grid beforehand and ignores
     * events completing inside a blackout window around each k x tREFI
     * point. Requires deterministic (non-postponed) refresh.
     */
    bool refresh_blackout = false;
    Tick refi = 3'900'000;
    Tick blackout_pre = 150'000;  ///< Drain lead-in before the REF.
    Tick blackout_post = 600'000; ///< tRFC + settle after the REF.
    /**
     * Multibit pacing: extra inter-access gap of the sender for symbol
     * s >= 1 (index s-1). Larger gaps delay the back-off, so the
     * receiver performs more accesses before observing it.
     */
    std::vector<Tick> sender_gaps = {0};
    /**
     * Multibit decoding: ascending receiver-access-count cut points
     * (levels-2 entries). A count below cuts[0] decodes as the fastest
     * symbol (levels-1); above the last cut as symbol 1.
     */
    std::vector<std::uint32_t> count_cuts;
};

/** Sender process: modulates activation counters per window. */
class CovertSender
{
  public:
    CovertSender(sys::MemoryPort &port, const CovertConfig &cfg);

    /** Transmit @p symbols in consecutive windows starting at @p epoch. */
    void transmit(std::vector<std::uint8_t> symbols, Tick epoch);

    std::uint64_t accessCount() const { return accesses_; }

  private:
    void windowStart(std::size_t index);
    void accessLoop();

    sys::MemoryPort &port_;
    CovertConfig cfg_;
    std::vector<std::uint8_t> symbols_;
    Tick epoch_ = 0;
    std::size_t window_index_ = 0;
    Tick window_end_ = 0;
    Tick gap_ = 0;
    bool active_ = false;
    std::uint64_t loop_id_ = 0; ///< Guards against duplicate loops.
    Tick mark_ = 0;
    std::uint64_t accesses_ = 0;
    std::size_t seq_pos_ = 0; ///< Cursor into cfg_.sender_sequence.
};

/** Receiver process: measures its own latencies and decodes. */
class CovertReceiver
{
  public:
    CovertReceiver(sys::MemoryPort &port, const CovertConfig &cfg);

    /** Listen for @p n_symbols windows starting at @p epoch. */
    void listen(std::size_t n_symbols, Tick epoch,
                std::function<void()> on_done = {});

    const std::vector<std::uint8_t> &decoded() const { return decoded_; }

    /** Receiver access counts at the first back-off of each window
     *  (multibit calibration; 0 when no back-off was seen). */
    const std::vector<std::uint32_t> &backoffCounts() const
    {
        return backoff_counts_;
    }

    /** Per-window raw detections: back-offs seen (PRAC) or counted
     *  RFM-latency events (PRFM). The y-axes of Figs. 3 and 6. */
    const std::vector<std::uint32_t> &detections() const
    {
        return detections_;
    }

  private:
    void windowStart(std::size_t index);
    void finalizeWindow();
    void accessLoop();
    std::uint8_t decodeSymbol() const;

    sys::MemoryPort &port_;
    CovertConfig cfg_;
    std::size_t n_symbols_ = 0;
    Tick epoch_ = 0;
    std::function<void()> on_done_;

    std::size_t window_index_ = 0;
    Tick window_end_ = 0;
    bool listening_ = false; ///< Issuing accesses in this window.
    Tick mark_ = 0;

    std::uint32_t access_count_ = 0;
    std::uint32_t backoffs_seen_ = 0;
    std::uint32_t count_at_backoff_ = 0;
    std::uint32_t rfm_events_ = 0;

    std::vector<std::uint8_t> decoded_;
    std::vector<std::uint32_t> backoff_counts_;
    std::vector<std::uint32_t> detections_;
};

/** Outcome of one covert-channel run. */
struct ChannelResult {
    std::vector<std::uint8_t> sent;
    std::vector<std::uint8_t> received;
    double symbol_error = 0.0;
    double raw_bit_rate = 0.0; ///< bits/s.
    double capacity = 0.0;     ///< bits/s (Eq. 1).
    /** Ground truth below is the RECEIVER channel's stats view —
     *  explicit per-channel counters, not an implicit channel 0. */
    std::uint64_t backoffs = 0; ///< Ground truth preventive actions.
    std::uint64_t rfms = 0;
    std::uint64_t targeted_refreshes = 0; ///< Tracker VRRs (ground truth).
    std::uint64_t counter_fetches = 0;    ///< Hydra CC-miss traffic.
};

/**
 * Assemble a ChannelResult: Eq.-1 metrics from the (sent, received)
 * symbol streams at @p window / @p levels, ground truth from the
 * channel-scoped stats @p view. The single definition of how covert
 * results are collected — runCovertChannel and the multi-channel
 * aggregate runner both go through here.
 */
ChannelResult collectChannelResult(Tick window, std::uint32_t levels,
                                   std::vector<std::uint8_t> sent,
                                   std::vector<std::uint8_t> received,
                                   const ctrl::CtrlStats &view);

/**
 * Run a complete transmission on @p system: instantiate sender and
 * receiver, transmit @p symbols, decode, and compute Eq.-1 metrics.
 * Runs the system's event queue; other agents (noise, background cores)
 * may already be attached.
 */
ChannelResult runCovertChannel(sys::System &system, const CovertConfig &cfg,
                               const std::vector<std::uint8_t> &symbols,
                               Tick epoch_delay = 2 * sim::kUs);

/**
 * Fill in addresses/classifier/window defaults for @p system, placing
 * both endpoints on memory channel @p channel (asserted to exist).
 */
CovertConfig makeChannelConfig(sys::System &system, ChannelKind kind,
                               std::uint32_t levels = 2,
                               std::uint32_t channel = 0);

/**
 * Calibrate multibit decode cut points: transmit a known symbol ramp on
 * a throwaway copy of the system and place cuts at midpoints between
 * the mean receiver counts of adjacent symbols.
 */
std::vector<std::uint32_t>
calibrateCuts(const sys::SystemConfig &sys_cfg, CovertConfig cfg,
              std::uint32_t reps_per_symbol = 8);

} // namespace leaky::attack

#endif // LEAKY_ATTACK_COVERT_HH
