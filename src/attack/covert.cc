#include "attack/covert.hh"

#include <algorithm>

#include "attack/dram_addr.hh"
#include "attack/message.hh"
#include "sim/logging.hh"
#include "stats/channel_metrics.hh"

namespace leaky::attack {

// ---------------------------------------------------------------- sender

CovertSender::CovertSender(sys::MemoryPort &port, const CovertConfig &cfg)
    : port_(port), cfg_(cfg)
{
    LEAKY_ASSERT(cfg_.sender_addr != 0, "sender address not configured");
    LEAKY_ASSERT(cfg_.sender_gaps.size() + 1 >= cfg_.levels,
                 "need a sender gap per non-zero symbol");
}

void
CovertSender::transmit(std::vector<std::uint8_t> symbols, Tick epoch)
{
    symbols_ = std::move(symbols);
    epoch_ = epoch;
    window_index_ = 0;
    const Tick now = port_.now();
    LEAKY_ASSERT(epoch_ >= now, "epoch in the past");
    port_.schedule(epoch_ - now, [this] { windowStart(0); });
}

void
CovertSender::windowStart(std::size_t index)
{
    if (index >= symbols_.size())
        return;
    window_index_ = index;
    window_end_ = epoch_ + (index + 1) * cfg_.window;
    port_.schedule(window_end_ - port_.now(),
                   [this, index] { windowStart(index + 1); });

    const std::uint8_t symbol = symbols_[index];
    loop_id_ += 1; // Invalidate any loop still draining in flight.
    seq_pos_ = 0;  // Fuzz patterns restart at the head every window.
    if (symbol == 0) {
        active_ = false; // Idle window transmits logic-0.
        return;
    }
    gap_ = cfg_.sender_gaps[std::min<std::size_t>(
        symbol - 1, cfg_.sender_gaps.size() - 1)];
    active_ = true;
    mark_ = port_.now();
    accessLoop();
}

void
CovertSender::accessLoop()
{
    if (!active_ || port_.now() + cfg_.iter_overhead >= window_end_)
        return;
    const std::uint64_t id = loop_id_;
    port_.schedule(cfg_.iter_overhead + gap_, [this, id] {
        if (id != loop_id_ || !active_ || port_.now() >= window_end_)
            return;
        std::uint64_t addr = (cfg_.sender_addr2 != 0 && (accesses_ & 1))
                                 ? cfg_.sender_addr2
                                 : cfg_.sender_addr;
        if (!cfg_.sender_sequence.empty()) {
            addr = cfg_.sender_sequence[seq_pos_];
            seq_pos_ = (seq_pos_ + 1) % cfg_.sender_sequence.size();
        }
        port_.issueRead(addr, cfg_.sender_source,
                        [this, id](Tick done) {
            accesses_ += 1;
            const Tick latency = done - mark_;
            mark_ = done;
            if (id != loop_id_)
                return;
            // After its own back-off observation the sender sleeps for
            // the rest of the window (paper §6.3) -- the bit is already
            // delivered and more activations would waste counter state.
            if (cfg_.kind == ChannelKind::kPrac &&
                cfg_.classifier.classify(latency) ==
                    LatencyClass::kBackoff) {
                active_ = false;
                return;
            }
            accessLoop();
        });
    });
}

// -------------------------------------------------------------- receiver

CovertReceiver::CovertReceiver(sys::MemoryPort &port,
                               const CovertConfig &cfg)
    : port_(port), cfg_(cfg)
{
    LEAKY_ASSERT(cfg_.receiver_addr != 0,
                 "receiver address not configured");
}

void
CovertReceiver::listen(std::size_t n_symbols, Tick epoch,
                       std::function<void()> on_done)
{
    n_symbols_ = n_symbols;
    epoch_ = epoch;
    on_done_ = std::move(on_done);
    decoded_.clear();
    backoff_counts_.clear();
    detections_.clear();
    const Tick now = port_.now();
    LEAKY_ASSERT(epoch_ >= now, "epoch in the past");
    port_.schedule(epoch_ - now, [this] { windowStart(0); });
}

void
CovertReceiver::windowStart(std::size_t index)
{
    if (index > 0)
        finalizeWindow();
    if (index >= n_symbols_) {
        listening_ = false;
        if (on_done_)
            on_done_();
        return;
    }
    window_index_ = index;
    window_end_ = epoch_ + (index + 1) * cfg_.window;
    access_count_ = 0;
    backoffs_seen_ = 0;
    count_at_backoff_ = 0;
    rfm_events_ = 0;
    port_.schedule(window_end_ - port_.now(),
                   [this, index] { windowStart(index + 1); });

    mark_ = port_.now();
    if (!listening_) {
        listening_ = true;
        accessLoop();
    }
}

void
CovertReceiver::accessLoop()
{
    if (!listening_ || port_.now() + cfg_.iter_overhead >= window_end_) {
        listening_ = false;
        return;
    }
    port_.schedule(cfg_.iter_overhead, [this] {
        if (!listening_)
            return;
        port_.issueRead(cfg_.receiver_addr, cfg_.receiver_source,
                        [this](Tick done) {
            const Tick latency = done - mark_;
            mark_ = done;
            access_count_ += 1;
            // §10.1 refresh filter: drop events inside the calibrated
            // periodic-refresh blackout.
            if (cfg_.refresh_blackout) {
                const Tick phase = done % cfg_.refi;
                if (phase < cfg_.blackout_post ||
                    phase > cfg_.refi - cfg_.blackout_pre) {
                    accessLoop();
                    return;
                }
            }
            const LatencyClass cls = cfg_.classifier.classify(latency);
            if (cfg_.kind == ChannelKind::kPrac) {
                if (cls == LatencyClass::kBackoff) {
                    backoffs_seen_ += 1;
                    if (backoffs_seen_ == 1) {
                        count_at_backoff_ = access_count_;
                        // Bit determined: sleep until the window ends to
                        // avoid incrementing counters further (§6.3).
                        listening_ = false;
                        return;
                    }
                }
            } else {
                if (cls == LatencyClass::kRfm)
                    rfm_events_ += 1;
            }
            accessLoop();
        });
    });
}

std::uint8_t
CovertReceiver::decodeSymbol() const
{
    if (cfg_.kind == ChannelKind::kRfm)
        return rfm_events_ >= cfg_.trecv ? 1 : 0;
    if (backoffs_seen_ == 0)
        return 0;
    if (cfg_.levels == 2)
        return 1;
    // Multibit: lower access count at the back-off means a faster
    // sender, i.e., a higher symbol.
    std::uint8_t symbol = static_cast<std::uint8_t>(cfg_.levels - 1);
    for (std::size_t i = 0; i < cfg_.count_cuts.size(); ++i) {
        if (count_at_backoff_ >= cfg_.count_cuts[i])
            symbol = static_cast<std::uint8_t>(cfg_.levels - 2 - i);
    }
    return std::max<std::uint8_t>(symbol, 1);
}

void
CovertReceiver::finalizeWindow()
{
    decoded_.push_back(decodeSymbol());
    backoff_counts_.push_back(backoffs_seen_ ? count_at_backoff_ : 0);
    detections_.push_back(cfg_.kind == ChannelKind::kPrac ? backoffs_seen_
                                                          : rfm_events_);
    // Wake the access loop again for the next window if it went to
    // sleep after an early decode.
    if (!listening_) {
        listening_ = true;
        mark_ = port_.now();
        accessLoop();
    }
}

// ----------------------------------------------------------- harness

CovertConfig
makeChannelConfig(sys::System &system, ChannelKind kind,
                  std::uint32_t levels, std::uint32_t channel)
{
    LEAKY_ASSERT(channel < system.channels(),
                 "covert channel targets memory channel %u of %u",
                 channel, system.channels());
    CovertConfig cfg;
    cfg.kind = kind;
    cfg.levels = levels;
    cfg.sender_channel = channel;
    cfg.receiver_channel = channel;
    cfg.window = kind == ChannelKind::kPrac ? 25 * sim::kUs
                                            : 20 * sim::kUs;
    const auto &ctrl_cfg = system.controller(channel).config();
    cfg.classifier = LatencyClassifier::forTiming(
        ctrl_cfg.dram.timing, 90'000, ctrl_cfg.rfms_per_backoff);
    // Sender and receiver rows share bank (rank 0, bg 0, bank 0) of
    // the target channel; any same-bank pair works (§5.2).
    cfg.sender_addr = rowAddress(system.mapper(), channel, 0, 0, 0, 1000);
    cfg.receiver_addr = rowAddress(system.mapper(), channel, 0, 0, 0, 2000);
    // Multibit pacing: the back-off needs ~2 x NBO activations, and
    // activations accrue at ~2 per sender access, so the slowest symbol
    // must still fit ~NBO sender accesses in one window. Gaps below
    // keep symbol 1 at ~21 us-to-back-off in a 25 us window.
    if (levels == 3) {
        cfg.sender_gaps = {70'000, 0};
    } else if (levels == 4) {
        cfg.sender_gaps = {80'000, 35'000, 0};
    } else {
        cfg.sender_gaps = {0};
    }
    return cfg;
}

ChannelResult
runCovertChannel(sys::System &system, const CovertConfig &cfg,
                 const std::vector<std::uint8_t> &symbols,
                 Tick epoch_delay)
{
    // The channel fields are the ground-truth contract: they must
    // agree with where the configured addresses actually decode, or
    // the result's stats view reads the wrong channel.
    LEAKY_ASSERT(system.mapper().decode(cfg.sender_addr).channel ==
                     cfg.sender_channel,
                 "sender_addr does not decode onto sender_channel %u",
                 cfg.sender_channel);
    LEAKY_ASSERT(system.mapper().decode(cfg.receiver_addr).channel ==
                     cfg.receiver_channel,
                 "receiver_addr does not decode onto receiver_channel "
                 "%u",
                 cfg.receiver_channel);
    LEAKY_ASSERT(cfg.sender_addr2 == 0 ||
                     system.mapper().decode(cfg.sender_addr2).channel ==
                         cfg.sender_channel,
                 "sender_addr2 does not decode onto sender_channel %u",
                 cfg.sender_channel);
    for (const std::uint64_t addr : cfg.sender_sequence)
        LEAKY_ASSERT(system.mapper().decode(addr).channel ==
                         cfg.sender_channel,
                     "sender_sequence entry does not decode onto "
                     "sender_channel %u",
                     cfg.sender_channel);
    CovertSender sender(system, cfg);
    CovertReceiver receiver(system, cfg);

    const Tick epoch = system.now() + epoch_delay;
    sender.transmit(symbols, epoch);
    bool done = false;
    receiver.listen(symbols.size(), epoch, [&done] { done = true; });

    const Tick deadline =
        epoch + (symbols.size() + 2) * cfg.window + 10 * sim::kUs;
    while (!done && system.now() < deadline)
        system.run(cfg.window);
    LEAKY_ASSERT(done, "receiver did not finish before the deadline");

    // Ground truth from the channel the receiver listens on — under
    // channels > 1 an implicit channel-0 read would silently drop
    // every preventive action on the other channels.
    return collectChannelResult(cfg.window, cfg.levels, symbols,
                                receiver.decoded(),
                                system.stats(cfg.receiver_channel));
}

ChannelResult
collectChannelResult(Tick window, std::uint32_t levels,
                     std::vector<std::uint8_t> sent,
                     std::vector<std::uint8_t> received,
                     const ctrl::CtrlStats &view)
{
    ChannelResult result;
    result.sent = std::move(sent);
    result.received = std::move(received);
    result.symbol_error =
        stats::symbolErrorRate(result.sent, result.received);
    result.raw_bit_rate =
        stats::rawBitRate(window, bitsPerSymbol(levels));
    result.capacity =
        stats::channelCapacity(result.raw_bit_rate, result.symbol_error);
    result.backoffs = view.backoffs;
    result.rfms = view.rfms;
    result.targeted_refreshes = view.targeted_refreshes;
    result.counter_fetches = view.counter_fetches;
    return result;
}

std::vector<std::uint32_t>
calibrateCuts(const sys::SystemConfig &sys_cfg, CovertConfig cfg,
              std::uint32_t reps_per_symbol)
{
    if (cfg.levels <= 2)
        return {};
    std::vector<double> mean_counts;
    for (std::uint32_t s = 1; s < cfg.levels; ++s) {
        sys::System system(sys_cfg);
        std::vector<std::uint8_t> ramp(reps_per_symbol,
                                       static_cast<std::uint8_t>(s));
        CovertConfig train = cfg;
        train.levels = 2; // Decode irrelevant; we only need counts.
        ChannelResult ignored;
        CovertSender sender(system, train);
        CovertReceiver receiver(system, train);
        const Tick epoch = system.now() + 2 * sim::kUs;
        sender.transmit(ramp, epoch);
        bool done = false;
        receiver.listen(ramp.size(), epoch, [&done] { done = true; });
        while (!done)
            system.run(train.window);
        (void)ignored;
        double sum = 0.0;
        std::uint32_t n = 0;
        for (auto c : receiver.backoffCounts()) {
            if (c > 0) {
                sum += c;
                n += 1;
            }
        }
        mean_counts.push_back(n ? sum / n : 0.0);
    }
    // Cut points at midpoints between adjacent symbols' mean counts.
    // mean_counts[0] belongs to symbol 1 (slowest, highest count).
    std::vector<std::uint32_t> cuts;
    for (std::size_t i = 0; i + 1 < mean_counts.size(); ++i) {
        cuts.push_back(static_cast<std::uint32_t>(
            (mean_counts[i] + mean_counts[i + 1]) / 2.0));
    }
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

} // namespace leaky::attack
