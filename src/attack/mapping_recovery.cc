#include "attack/mapping_recovery.hh"

#include "sim/logging.hh"

namespace leaky::attack {

using dram::gf2::BitBasis;

namespace {

std::uint32_t
log2OfPow2(std::uint64_t v)
{
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        bits += 1;
    }
    return bits;
}

} // namespace

MappingRecovery::MappingRecovery(sys::MemoryPort &port,
                                 MappingRecoveryConfig cfg)
    : port_(port), cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    LEAKY_ASSERT(cfg_.samples_per_pair >= 2,
                 "need at least two alternation samples per pair");
    LEAKY_ASSERT(!cfg_.windows.empty(), "need a window schedule");
    // Datasheet knowledge only: the module's capacity and geometry
    // counts. Which physical bits feed which coordinate — the mapping
    // function itself — is what the probing below has to discover.
    const dram::AddressMapper &mapper = port_.mapper();
    total_bits_ = log2OfPow2(mapper.capacityBytes() /
                             dram::MappingFunction::kLineBytes);
    const dram::Organization &org = mapper.org();
    bank_bits_ = log2OfPow2(mapper.channels()) + log2OfPow2(org.ranks) +
                 log2OfPow2(org.bankgroups) +
                 log2OfPow2(org.banks_per_group);
    row_bits_ = log2OfPow2(org.rows);
    col_bits_ = log2OfPow2(org.columns);
    LEAKY_ASSERT(bank_bits_ + row_bits_ + col_bits_ == total_bits_,
                 "geometry does not fill the mapped address space");
}

void
MappingRecovery::start(std::function<void()> on_done)
{
    on_done_ = std::move(on_done);
    phase_ = Phase::kCollect;
    startCollectRound();
}

std::uint32_t
MappingRecovery::windowBits() const
{
    std::uint32_t w = cfg_.windows[window_idx_];
    if (w == 0 || w > total_bits_)
        w = total_bits_;
    return w;
}

std::uint64_t
MappingRecovery::randomLine()
{
    return rng_.below(std::uint64_t{1} << total_bits_);
}

std::uint64_t
MappingRecovery::randomWindowDelta()
{
    const std::uint64_t bound = std::uint64_t{1} << windowBits();
    return rng_.range(1, bound - 1);
}

std::uint64_t
MappingRecovery::randomCombination(
    const std::vector<std::uint64_t> &basis)
{
    std::uint64_t v = 0;
    for (std::uint64_t row : basis)
        if (rng_() & 1u)
            v ^= row;
    return v;
}

// ----------------------------------------------------- timing oracle

void
MappingRecovery::measurePair(std::uint64_t line_a, std::uint64_t line_b,
                             std::function<void(bool)> cb)
{
    pair_[0] = line_a * dram::MappingFunction::kLineBytes;
    pair_[1] = line_b * dram::MappingFunction::kLineBytes;
    reads_done_ = 0;
    min_latency_ = 0;
    measure_cb_ = std::move(cb);
    result_.probes += 1;
    mark_ = port_.now();
    measureStep();
}

void
MappingRecovery::measureStep()
{
    // a, b, a, b, ... — same bank + different row conflicts on EVERY
    // access; anything else row-hits after the first touch. The first
    // two reads only prime the row buffers (whatever the previous pair
    // left open); the min over the steady-state reads is the
    // statistic, so a refresh / RFM / PRAC back-off landing on some
    // iterations cannot fake a conflict.
    if (reads_done_ >= 2 * cfg_.samples_per_pair) {
        const bool conflict =
            min_latency_ >= cfg_.classifier.conflict_min;
        // Hand off via a local: the callback usually starts the next
        // measurement, which overwrites measure_cb_.
        const auto cb = std::move(measure_cb_);
        cb(conflict);
        return;
    }
    const std::uint64_t addr = pair_[reads_done_ & 1];
    reads_done_ += 1;
    port_.schedule(cfg_.iter_overhead, [this, addr] {
        port_.issueRead(addr, cfg_.source, [this](Tick done) {
            const Tick latency = done - mark_;
            mark_ = done;
            result_.accesses += 1;
            if (reads_done_ > 2 &&
                (min_latency_ == 0 || latency < min_latency_))
                min_latency_ = latency;
            measureStep();
        });
    });
}

// ------------------------------------------- phase 1: bank functions

void
MappingRecovery::startCollectRound()
{
    if (result_.rounds >= cfg_.max_rounds) {
        // Budget exhausted: report failure (bank_solved stays false).
        finish();
        return;
    }
    result_.rounds += 1;
    round_pairs_ = 0;
    span_rank_at_round_start_ = conflict_span_.rank();
    collectNext();
}

void
MappingRecovery::collectNext()
{
    if (round_pairs_ >= cfg_.pairs_per_round) {
        finishCollectRound();
        return;
    }
    round_pairs_ += 1;
    const std::uint64_t a = randomLine();
    const std::uint64_t d = randomWindowDelta();
    measurePair(a, a ^ d, [this, d](bool conflict) {
        if (conflict) {
            // d preserved the bank set and flipped the row: a sample
            // of the bank functions' null space.
            conflict_span_.insert(d);
            if (raw_conflicts_.size() < 16)
                raw_conflicts_.push_back(d);
        }
        collectNext();
    });
}

void
MappingRecovery::finishCollectRound()
{
    const std::uint32_t w = windowBits();
    candidate_ = dram::gf2::annihilator(conflict_span_, w);
    if (candidate_.size() == bank_bits_ && !raw_conflicts_.empty()) {
        startValidation();
        return;
    }
    // Wrong annihilator rank. Too large: the span is not saturated
    // yet (keep probing) — unless it stopped growing, in which case
    // the bank functions' in-window projections collapse and only a
    // wider window can separate them. Too small: bank functions tap
    // bits outside the window; widen immediately.
    const bool stalled =
        conflict_span_.rank() == span_rank_at_round_start_;
    stalled_rounds_ = stalled ? stalled_rounds_ + 1 : 0;
    if (candidate_.size() < bank_bits_ ||
        (stalled && stalled_rounds_ >= 2))
        widenWindow();
    startCollectRound();
}

void
MappingRecovery::widenWindow()
{
    if (window_idx_ + 1 < cfg_.windows.size())
        window_idx_ += 1;
    stalled_rounds_ = 0;
}

void
MappingRecovery::startValidation()
{
    phase_ = Phase::kValidate;
    // Full-space kernel of the candidate: every direction the
    // candidate claims to preserve the bank — including all the high
    // bits the collection window never exercised.
    BitBasis cand_span;
    for (std::uint64_t m : candidate_)
        cand_span.insert(m);
    candidate_kernel_ = dram::gf2::annihilator(cand_span, total_bits_);
    validation_done_ = 0;
    validation_failed_ = 0;
    validateNext();
}

void
MappingRecovery::validateNext()
{
    if (validation_done_ >= cfg_.validation_pairs) {
        finishValidation();
        return;
    }
    validation_done_ += 1;
    // d = (known row-flipping conflict difference) XOR (random
    // candidate-kernel direction). The candidate predicts a conflict;
    // if the true bank function taps a bit of h outside the window,
    // the pair lands in different banks and reads fast — caught here.
    // (h could cancel the row flip only if row(h) == row(d0) exactly,
    // a ~2^-row_bits coincidence.)
    const std::uint64_t d0 =
        raw_conflicts_[rng_.below(raw_conflicts_.size())];
    std::uint64_t d = d0 ^ randomCombination(candidate_kernel_);
    if (d == 0)
        d = d0;
    const std::uint64_t a = randomLine();
    measurePair(a, a ^ d, [this](bool conflict) {
        if (!conflict)
            validation_failed_ += 1;
        validateNext();
    });
}

void
MappingRecovery::finishValidation()
{
    if (validation_failed_ == 0) {
        result_.bank_solved = true;
        result_.final_window = windowBits();
        result_.bank_masks.clear();
        for (std::uint64_t m : candidate_)
            result_.bank_masks.push_back(
                m << dram::MappingFunction::kLineShift);
        startClassify();
        return;
    }
    // The candidate mispredicts full-range pairs: some bank function
    // taps a bit the window hides. Climb the schedule and keep
    // collecting (the conflict span so far remains valid).
    result_.validation_failures += validation_failed_;
    widenWindow();
    phase_ = Phase::kCollect;
    startCollectRound();
}

// -------------------------------------------- phase 2: row functions

void
MappingRecovery::startClassify()
{
    phase_ = Phase::kClassify;
    // Directions that provably preserve the bank set; each either
    // flips the row (conflict) or is column-only (fast).
    BitBasis bank_span;
    for (std::uint64_t m : result_.bank_masks)
        bank_span.insert(m >> dram::MappingFunction::kLineShift);
    null_basis_ = dram::gf2::annihilator(bank_span, total_bits_);
    classify_idx_ = 0;
    row_flippers_.clear();
    column_span_.clear();
    classifyNext();
}

void
MappingRecovery::classifyNext()
{
    if (classify_idx_ >= null_basis_.size()) {
        startRefine();
        return;
    }
    const std::uint64_t v = null_basis_[classify_idx_];
    classify_idx_ += 1;
    const std::uint64_t a = randomLine();
    measurePair(a, a ^ v, [this, v](bool conflict) {
        if (conflict)
            row_flippers_.push_back(v);
        else
            column_span_.insert(v);
        classifyNext();
    });
}

void
MappingRecovery::startRefine()
{
    phase_ = Phase::kRefine;
    refine_i_ = 0;
    refine_j_ = 1;
    refine_tests_ = 0;
    refineNext();
}

void
MappingRecovery::refineNext()
{
    // The column kernel is a subspace, but the echelon basis of
    // null(bank) need not align with it: two row-flipping basis
    // vectors can differ by a pure column direction (mappings that
    // fold row bits into the same masks). Probe pairwise XORs of the
    // flippers until the kernel reaches its known dimension.
    while (column_span_.rank() < col_bits_ &&
           refine_tests_ < cfg_.max_refine_tests &&
           refine_i_ + 1 < row_flippers_.size()) {
        if (refine_j_ >= row_flippers_.size()) {
            refine_i_ += 1;
            refine_j_ = refine_i_ + 1;
            continue;
        }
        const std::uint64_t v =
            row_flippers_[refine_i_] ^ row_flippers_[refine_j_];
        refine_j_ += 1;
        if (column_span_.contains(v))
            continue;
        refine_tests_ += 1;
        const std::uint64_t a = randomLine();
        measurePair(a, a ^ v, [this, v](bool conflict) {
            if (!conflict)
                column_span_.insert(v);
            refineNext();
        });
        return;
    }
    finish();
}

void
MappingRecovery::finish()
{
    phase_ = Phase::kDone;
    if (result_.bank_solved) {
        result_.column_dirs.clear();
        for (std::uint64_t v : column_span_.rows())
            result_.column_dirs.push_back(
                v << dram::MappingFunction::kLineShift);
        // Row functions = functionals vanishing on the column kernel,
        // modulo the bank functions (indistinguishable under a
        // conflict oracle). Solved when the learned column kernel has
        // full (datasheet) dimension.
        result_.row_solved = column_span_.rank() == col_bits_;
        BitBasis bank_span;
        for (std::uint64_t m : result_.bank_masks)
            bank_span.insert(m >> dram::MappingFunction::kLineShift);
        BitBasis rows;
        result_.row_masks.clear();
        for (std::uint64_t m :
             dram::gf2::annihilator(column_span_, total_bits_)) {
            const std::uint64_t reduced = bank_span.reduce(m);
            if (reduced != 0 && rows.insert(reduced))
                result_.row_masks.push_back(
                    reduced << dram::MappingFunction::kLineShift);
        }
    }
    if (on_done_)
        on_done_();
}

} // namespace leaky::attack
