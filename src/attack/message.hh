/**
 * @file
 * Message encoding helpers for the covert channels: string <-> bit
 * conversion (the paper transmits the 40-bit "MICRO"), the four test
 * patterns of §6.3/§7.3, and bit <-> symbol packing for the multibit
 * (ternary/quaternary) channels.
 */

#ifndef LEAKY_ATTACK_MESSAGE_HH
#define LEAKY_ATTACK_MESSAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace leaky::attack {

/** The four benchmark message patterns (paper §6.3) plus a seeded
 *  random payload (for multibit evaluations on realistic data). */
enum class MessagePattern : std::uint8_t {
    kAllOnes,
    kAllZeros,
    kCheckered0, ///< 0101...01
    kCheckered1, ///< 1010...10
    kRandom      ///< Seeded pseudo-random payload.
};

const char *patternName(MessagePattern pattern);

/** MSB-first bits of an ASCII string. */
std::vector<bool> bitsFromString(const std::string &text);

/** Inverse of bitsFromString (bit count must be a multiple of 8). */
std::string stringFromBits(const std::vector<bool> &bits);

/** Generate @p n_bits of a benchmark pattern. */
std::vector<bool> patternBits(MessagePattern pattern, std::size_t n_bits);

/**
 * Pack bits into base-`levels` symbols (levels = 2, 3, or 4). For the
 * non-power-of-two ternary channel, bits are grouped as base-3 digits of
 * 19-bit blocks (3^12 > 2^19), giving 19/12 = 1.58 bits per symbol as in
 * the paper.
 */
std::vector<std::uint8_t> symbolsFromBits(const std::vector<bool> &bits,
                                          std::uint32_t levels);

/** Unpack symbols back into bits (inverse of symbolsFromBits). */
std::vector<bool> bitsFromSymbols(const std::vector<std::uint8_t> &symbols,
                                  std::uint32_t levels,
                                  std::size_t n_bits);

/** Effective bits per transmitted symbol for a given level count. */
double bitsPerSymbol(std::uint32_t levels);

} // namespace leaky::attack

#endif // LEAKY_ATTACK_MESSAGE_HH
