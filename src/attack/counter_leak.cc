#include "attack/counter_leak.hh"

#include <cmath>

#include "sim/logging.hh"

namespace leaky::attack {

CounterLeakAttacker::CounterLeakAttacker(sys::MemoryPort &port,
                                         const CounterLeakConfig &cfg)
    : port_(port), cfg_(cfg)
{
    LEAKY_ASSERT(cfg_.shared_addr != 0 && cfg_.conflict_addr != 0,
                 "counter leak needs shared and conflict rows");
    // PRAC counters are per-channel; both rows must live on the
    // channel the config names.
    LEAKY_ASSERT(port_.mapper().decode(cfg_.shared_addr).channel ==
                         cfg_.channel &&
                     port_.mapper().decode(cfg_.conflict_addr).channel ==
                         cfg_.channel,
                 "counter-leak rows do not decode onto channel %u",
                 cfg_.channel);
}

void
CounterLeakAttacker::leak(
    std::function<void(const CounterLeakResult &)> on_done)
{
    on_done_ = std::move(on_done);
    start_ = port_.now();
    mark_ = start_;
    shared_activations_ = 0;
    next_shared_ = true;
    iterate();
}

void
CounterLeakAttacker::iterate()
{
    const bool shared = next_shared_;
    next_shared_ = !next_shared_;
    const std::uint64_t addr = shared ? cfg_.shared_addr
                                      : cfg_.conflict_addr;
    port_.schedule(cfg_.iter_overhead, [this, addr, shared] {
        port_.issueRead(addr, cfg_.source, [this, shared](Tick done) {
            const Tick latency = done - mark_;
            mark_ = done;
            if (shared)
                shared_activations_ += 1;
            if (cfg_.classifier.classify(latency) ==
                LatencyClass::kBackoff) {
                CounterLeakResult result;
                result.attacker_activations = shared_activations_;
                result.leaked_count =
                    cfg_.nbo > shared_activations_
                        ? cfg_.nbo - shared_activations_
                        : 0;
                result.elapsed = done - start_;
                result.bits = std::log2(static_cast<double>(cfg_.nbo));
                result.throughput =
                    result.bits /
                    (static_cast<double>(result.elapsed) * 1e-12);
                if (on_done_)
                    on_done_(result);
                return;
            }
            iterate();
        });
    });
}

CounterLeakVictim::CounterLeakVictim(sys::MemoryPort &port,
                                     std::uint64_t shared_addr,
                                     std::uint64_t conflict_addr,
                                     Tick iter_overhead,
                                     std::int32_t source)
    : port_(port), shared_addr_(shared_addr),
      conflict_addr_(conflict_addr), iter_overhead_(iter_overhead),
      source_(source)
{
}

void
CounterLeakVictim::prime(std::uint32_t activations,
                         std::function<void()> on_done)
{
    on_done_ = std::move(on_done);
    remaining_ = activations;
    next_shared_ = true;
    iterate();
}

void
CounterLeakVictim::iterate()
{
    if (remaining_ == 0) {
        if (on_done_)
            on_done_();
        return;
    }
    const bool shared = next_shared_;
    next_shared_ = !next_shared_;
    const std::uint64_t addr = shared ? shared_addr_ : conflict_addr_;
    port_.schedule(iter_overhead_, [this, addr, shared] {
        port_.issueRead(addr, source_, [this, shared](Tick) {
            if (shared && remaining_ > 0)
                remaining_ -= 1;
            iterate();
        });
    });
}

} // namespace leaky::attack
