/**
 * @file
 * Noise-generator microbenchmark (paper §6.3, "Noise Analysis"): a
 * process that alternates between two rows of a target bank, sleeping a
 * configurable duration between consecutive activations. Sweeping the
 * sleep from 2 us down to 0.2 us maps to noise intensity 1%..100% via
 * Eq. 2 (stats::noiseIntensity).
 */

#ifndef LEAKY_ATTACK_NOISE_HH
#define LEAKY_ATTACK_NOISE_HH

#include <cstdint>
#include <vector>

#include "sys/port.hh"

namespace leaky::attack {

using sim::Tick;

/** Noise microbenchmark parameters. */
struct NoiseConfig {
    /**
     * Rows cycled by the generator (>= 2 so every access conflicts).
     * With more rows than a back-off can service (4 recovery RFMs
     * reset the top-4 counters per bank), some noise counters survive
     * every preventive action and keep climbing -- which is what makes
     * high noise intensities so disruptive in the paper's Fig. 4/7.
     */
    std::vector<std::uint64_t> addrs;
    Tick sleep = 2 * sim::kUs;  ///< Between consecutive activations.
    Tick iter_overhead = 15'000;
    std::int32_t source = 300;
};

/** Endless interference generator targeting one bank. */
class NoiseAgent
{
  public:
    NoiseAgent(sys::MemoryPort &port, const NoiseConfig &cfg);

    void start();
    void stop() { running_ = false; }

    std::uint64_t accessCount() const { return accesses_; }

  private:
    void loop();

    sys::MemoryPort &port_;
    NoiseConfig cfg_;
    bool running_ = false;
    std::size_t next_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace leaky::attack

#endif // LEAKY_ATTACK_NOISE_HH
