#include "workload/website.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::workload {

using dram::Address;
using sim::Tick;

const std::vector<std::string> &
websiteNames()
{
    static const std::vector<std::string> names = {
        "aliexpress", "amazon", "apple", "baidu", "bilibili", "bing",
        "canva", "chatgpt", "discord", "duckduckgo", "facebook", "fandom",
        "github", "globo", "imdb", "instagram", "linkedin", "live",
        "naver", "netflix", "nytimes", "office", "pinterest", "quora",
        "reddit", "roblox", "samsung", "spotify", "telegram", "temu",
        "tiktok", "twitch", "weather", "whatsapp", "wikipedia", "x",
        "yahoo", "yandex", "youtube", "zoom"};
    return names;
}

namespace {

/** Ticks of compute per access at a given pace (accesses per us). */
std::uint32_t
nonMemForPace(double pace_per_us)
{
    // One instruction is 1000/(4 IPC x 3 GHz) = 83.3 ps; the gap between
    // accesses is 1 us / pace.
    const double gap_ps = 1e6 / pace_per_us;
    const double insts = gap_ps / 83.33;
    return static_cast<std::uint32_t>(std::max(1.0, insts - 1.0));
}

/** One activity burst over alternating rows of fresh row pairs. */
struct Phase {
    double weight = 1.0;       ///< Relative share of the page load.
    double pace_mult = 1.0;    ///< Pace multiplier during the burst.
    double duty = 0.7;         ///< Fraction of the phase spent bursting.
    std::uint32_t bankgroup = 0;
    std::uint32_t bank = 0;
    std::uint32_t row_base = 0;
};

} // namespace

std::vector<sys::TraceEntry>
generateWebsiteTrace(const WebsiteTraceConfig &cfg,
                     const dram::AddressMapper &mapper)
{
    const auto &org = mapper.org();
    LEAKY_ASSERT(cfg.site < websiteNames().size(), "site index %u >= 40",
                 cfg.site);

    // Site-deterministic structure.
    sim::Rng site_rng(cfg.base_seed * 1315423911ULL + cfg.site);
    // Load-specific jitter.
    sim::Rng load_rng(cfg.base_seed * 2654435761ULL + cfg.site * 977 +
                      cfg.load);

    std::vector<Phase> phases;
    {
        // Shared browser-startup phase: identical across sites (seeded
        // from base_seed only), so early execution windows look alike.
        sim::Rng common(cfg.base_seed);
        Phase startup;
        startup.weight = 0.6;
        startup.pace_mult = 1.2;
        startup.duty = 0.8;
        startup.bankgroup = static_cast<std::uint32_t>(
            common.below(org.bankgroups));
        startup.bank = static_cast<std::uint32_t>(
            common.below(org.banks_per_group));
        startup.row_base = 64;
        phases.push_back(startup);
    }
    const auto site_phases = 5 + site_rng.below(8); // 5..12 phases.
    for (std::uint64_t p = 0; p < site_phases; ++p) {
        Phase phase;
        phase.weight = 0.4 + site_rng.uniform() * 1.6;
        // Keep per-site intensity ranges overlapping: the classifiers
        // must rely on the temporal structure of the back-off strips
        // (paper Fig. 9), not on a single aggregate-count feature.
        phase.pace_mult = 0.6 + site_rng.uniform() * 1.0;
        phase.duty = 0.25 + site_rng.uniform() * 0.6;
        phase.bankgroup = static_cast<std::uint32_t>(
            site_rng.below(org.bankgroups));
        phase.bank = static_cast<std::uint32_t>(
            site_rng.below(org.banks_per_group));
        phase.row_base = static_cast<std::uint32_t>(
            1024 + site_rng.below(org.rows - 4096));
        phases.push_back(phase);
    }

    double total_weight = 0.0;
    for (const auto &phase : phases)
        total_weight += phase.weight;

    std::vector<sys::TraceEntry> trace;
    std::uint32_t next_row_offset = 0;

    // Per-load network/render delay before anything happens.
    {
        const Tick initial_delay = static_cast<Tick>(
            static_cast<double>(cfg.duration) * 0.06 *
            load_rng.uniform());
        if (initial_delay > 0) {
            sys::TraceEntry idle;
            idle.non_mem_insts = static_cast<std::uint32_t>(
                static_cast<double>(initial_delay) / 83.33);
            idle.addr = 64;
            trace.push_back(idle);
        }
    }

    for (const auto &phase : phases) {
        // Per-load wobble of duration and pace (+/-20%): network and
        // scheduling variance between loads of the same page.
        const double dur_jit = 0.8 + 0.4 * load_rng.uniform();
        const double pace_jit = 0.8 + 0.4 * load_rng.uniform();
        const Tick phase_ticks = static_cast<Tick>(
            static_cast<double>(cfg.duration) * phase.weight /
            total_weight * dur_jit);
        const Tick burst_ticks =
            static_cast<Tick>(static_cast<double>(phase_ticks) *
                              phase.duty);
        const double pace =
            cfg.burst_pace * phase.pace_mult * pace_jit; // per us.
        const auto accesses = static_cast<std::uint64_t>(
            static_cast<double>(burst_ticks) / 1e6 * pace);
        const std::uint32_t non_mem = nonMemForPace(pace);

        Address a;
        a.rank = 0;
        a.bankgroup = phase.bankgroup;
        a.bank = phase.bank;
        std::uint32_t pair = 0;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            // Alternate between the two rows of the current pair while
            // walking fresh columns; advance to a new pair once both
            // rows' lines are exhausted (2 x columns accesses).
            if (i > 0 && i % (2 * org.columns) == 0)
                pair += 1;
            a.row = (phase.row_base + next_row_offset + pair * 2 +
                     static_cast<std::uint32_t>(i % 2)) %
                    org.rows;
            a.column = static_cast<std::uint32_t>((i / 2) % org.columns);

            sys::TraceEntry entry;
            entry.non_mem_insts = non_mem;
            entry.is_write = load_rng.uniform() < 0.15;
            entry.addr = mapper.compose(a);
            trace.push_back(entry);

            // Occasional background accesses (GC, timers, compositor):
            // load-specific noise that the classifier must tolerate.
            if (load_rng.uniform() < 0.05) {
                sys::TraceEntry bg;
                bg.non_mem_insts = non_mem / 2 + 1;
                bg.is_write = false;
                Address b;
                b.rank = static_cast<std::uint32_t>(
                    load_rng.below(org.ranks));
                b.bankgroup = static_cast<std::uint32_t>(
                    load_rng.below(org.bankgroups));
                b.bank = static_cast<std::uint32_t>(
                    load_rng.below(org.banks_per_group));
                b.row = static_cast<std::uint32_t>(
                    load_rng.below(org.rows));
                b.column = static_cast<std::uint32_t>(
                    load_rng.below(org.columns));
                bg.addr = mapper.compose(b);
                trace.push_back(bg);
            }
        }
        next_row_offset += (pair + 2) * 2;

        // Idle tail of the phase (network wait / think time).
        const Tick idle_ticks = phase_ticks - burst_ticks;
        if (idle_ticks > 0 && !trace.empty()) {
            sys::TraceEntry idle;
            idle.non_mem_insts = static_cast<std::uint32_t>(
                std::min<double>(static_cast<double>(idle_ticks) / 83.33,
                                 4e9));
            idle.is_write = false;
            idle.addr = trace.back().addr;
            trace.push_back(idle);
        }
    }
    return trace;
}

} // namespace leaky::workload
