/**
 * @file
 * Synthetic application workloads, the substitute for SPEC CPU2006/2017
 * traces (see DESIGN.md). The paper uses SPEC only as background memory
 * pressure, classified by row-buffer misses per kilo-instruction
 * (RBMPKI, §6.3) and as the multiprogrammed mixes behind Fig. 13. Each
 * AppSpec targets a (MPKI, RBMPKI) point with a characteristic access
 * pattern; generation is fully seeded and deterministic.
 */

#ifndef LEAKY_WORKLOAD_SYNTHETIC_HH
#define LEAKY_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/address_mapper.hh"
#include "sys/core.hh"

namespace leaky::workload {

using sys::TraceEntry;

/** Memory-intensity class (paper Fig. 5/8: L, M, H by RBMPKI). */
enum class Intensity : std::uint8_t { kLow, kMedium, kHigh };

const char *intensityName(Intensity level);

/** Parameterised synthetic application. */
struct AppSpec {
    std::string name;
    double mpki = 10.0;     ///< Memory accesses per kilo-instruction.
    double rbmpki = 5.0;    ///< Row-buffer misses per kilo-instruction.
    double write_frac = 0.2;
    /** Fraction of accesses that stream sequentially (the rest jump to
     *  random rows, producing conflicts). */
    double stream_frac = 0.5;
    std::uint32_t footprint_rows = 4096; ///< Rows the app roams over.
    /** Memory-level parallelism (outstanding misses the app sustains);
     *  pointer-chasing apps like mcf have low MLP, streaming apps like
     *  lbm high MLP. Maps to the core's MSHR count. */
    std::uint32_t mlp = 8;
    /** Fraction of row switches that return to a small hot-row set
     *  (real applications reuse rows heavily; hot rows are what charge
     *  PRAC counters and trigger back-offs at low NRH). */
    double hot_frac = 0.25;
    std::uint32_t hot_rows = 6;
    std::uint64_t seed = 1;

    Intensity intensity() const;
};

/** Catalogue of SPEC-like applications spanning L/M/H intensity. */
std::vector<AppSpec> specLikeCatalog();

/** Applications of one intensity class from the catalogue. */
std::vector<AppSpec> appsWithIntensity(Intensity level);

/**
 * Generate a trace of @p records records for @p app. Addresses are
 * composed through @p mapper so the trace hits the intended rows/banks
 * regardless of the mapping configuration.
 */
std::vector<TraceEntry> generateTrace(const AppSpec &app,
                                      const dram::AddressMapper &mapper,
                                      std::uint32_t records);

/** A multiprogrammed mix: one AppSpec per core. */
struct Mix {
    std::string name;
    std::vector<AppSpec> apps;
};

/**
 * The Fig. 13 workload set: @p count four-core mixes drawn from the
 * catalogue with seeded randomness (the paper uses 60 mixes).
 */
std::vector<Mix> makeMixes(std::uint32_t count, std::uint32_t cores = 4,
                           std::uint64_t seed = 42);

} // namespace leaky::workload

#endif // LEAKY_WORKLOAD_SYNTHETIC_HH
