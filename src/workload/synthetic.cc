#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::workload {

using dram::Address;

const char *
intensityName(Intensity level)
{
    switch (level) {
      case Intensity::kLow: return "L";
      case Intensity::kMedium: return "M";
      case Intensity::kHigh: return "H";
    }
    return "?";
}

Intensity
AppSpec::intensity() const
{
    if (rbmpki < 2.0)
        return Intensity::kLow;
    if (rbmpki < 10.0)
        return Intensity::kMedium;
    return Intensity::kHigh;
}

std::vector<AppSpec>
specLikeCatalog()
{
    // MPKI / RBMPKI points inspired by published SPEC characterisations
    // (e.g., the BLISS and CoMeT workload tables); names indicate the
    // SPEC workload whose behaviour each entry approximates.
    std::vector<AppSpec> apps;
    auto add = [&apps](const char *name, double mpki, double rbmpki,
                       double wr, double stream, std::uint32_t rows,
                       std::uint32_t mlp) {
        AppSpec a;
        a.name = name;
        a.mpki = mpki;
        a.rbmpki = rbmpki;
        a.write_frac = wr;
        a.stream_frac = stream;
        a.footprint_rows = rows;
        a.mlp = mlp;
        a.seed = std::hash<std::string>{}(name);
        apps.push_back(a);
    };
    // Low intensity (RBMPKI < 2).
    add("povray-like", 0.3, 0.05, 0.10, 0.9, 256, 4);
    add("leela-like", 0.8, 0.20, 0.15, 0.7, 512, 3);
    add("perlbench-like", 1.5, 0.40, 0.25, 0.6, 1024, 4);
    add("gcc-like", 3.0, 0.90, 0.30, 0.5, 2048, 4);
    add("namd-like", 2.0, 0.60, 0.10, 0.8, 1024, 8);
    add("x264-like", 4.0, 1.50, 0.30, 0.8, 2048, 8);
    // Medium intensity (2 <= RBMPKI < 10).
    add("xalancbmk-like", 8.0, 2.50, 0.20, 0.5, 4096, 4);
    add("cactus-like", 10.0, 4.00, 0.35, 0.6, 4096, 8);
    add("astar-like", 9.0, 3.20, 0.25, 0.3, 4096, 2);
    add("sphinx-like", 12.0, 5.50, 0.15, 0.5, 8192, 6);
    add("zeusmp-like", 11.0, 6.00, 0.30, 0.6, 8192, 8);
    add("omnetpp-like", 14.0, 8.00, 0.25, 0.2, 8192, 3);
    // High intensity (RBMPKI >= 10).
    add("mcf-like", 30.0, 16.00, 0.20, 0.1, 16384, 3);
    add("lbm-like", 32.0, 14.00, 0.45, 0.7, 16384, 12);
    add("milc-like", 26.0, 12.00, 0.25, 0.4, 16384, 8);
    add("soplex-like", 24.0, 11.00, 0.25, 0.3, 16384, 5);
    add("gems-like", 33.0, 18.00, 0.30, 0.4, 16384, 4);
    add("libquantum-like", 28.0, 13.00, 0.15, 0.9, 8192, 12);
    return apps;
}

std::vector<AppSpec>
appsWithIntensity(Intensity level)
{
    std::vector<AppSpec> out;
    for (const auto &app : specLikeCatalog()) {
        if (app.intensity() == level)
            out.push_back(app);
    }
    return out;
}

std::vector<TraceEntry>
generateTrace(const AppSpec &app, const dram::AddressMapper &mapper,
              std::uint32_t records)
{
    LEAKY_ASSERT(app.mpki > 0.0 && app.rbmpki > 0.0 &&
                     app.rbmpki <= app.mpki,
                 "%s: need 0 < RBMPKI <= MPKI", app.name.c_str());
    sim::Rng rng(app.seed);
    const dram::Organization &org = mapper.org();
    const std::uint32_t footprint =
        std::min(app.footprint_rows, org.rows);

    // Average non-memory instructions between accesses.
    const double insts_per_access = 1000.0 / app.mpki;
    // Accesses served from an already-open row between row switches.
    const double hits_per_miss = app.mpki / app.rbmpki;

    std::vector<TraceEntry> trace;
    trace.reserve(records);

    Address cur;
    cur.rank = static_cast<std::uint32_t>(rng.below(org.ranks));
    cur.bankgroup = static_cast<std::uint32_t>(rng.below(org.bankgroups));
    cur.bank = static_cast<std::uint32_t>(rng.below(org.banks_per_group));
    cur.row = static_cast<std::uint32_t>(rng.below(footprint));
    cur.column = 0;
    double hit_budget = 0.0;

    // Hot-row set: heavily reused same-bank row PAIRS. Alternating
    // between the two rows of a pair guarantees a row-buffer conflict
    // (and thus an activation) on every visit, and each visit walks
    // fresh columns (array-of-structs style) so the reuse is visible at
    // the DRAM level instead of being filtered by the caches. This is
    // the row-thrashing behaviour that charges PRAC counters at low
    // NRH (Fig. 13).
    const std::uint32_t hot_pairs = std::max(1u, app.hot_rows / 2);
    std::vector<Address> hot_a(hot_pairs);
    std::vector<Address> hot_b(hot_pairs);
    std::vector<std::uint32_t> hot_next_col(hot_pairs, 0);
    std::vector<bool> hot_toggle(hot_pairs, false);
    for (std::uint32_t h = 0; h < hot_pairs; ++h) {
        Address hot;
        hot.rank = static_cast<std::uint32_t>(rng.below(org.ranks));
        hot.bankgroup =
            static_cast<std::uint32_t>(rng.below(org.bankgroups));
        hot.bank =
            static_cast<std::uint32_t>(rng.below(org.banks_per_group));
        hot.row = static_cast<std::uint32_t>(rng.below(footprint));
        hot_a[h] = hot;
        hot.row = (hot.row + 1 + static_cast<std::uint32_t>(
                                     rng.below(64))) %
                  footprint;
        hot_b[h] = hot;
    }

    const auto org_cols = org.columns;
    while (trace.size() < records) {
        if (hit_budget < 1.0) {
            // Row switch: revisit a hot pair, stream on, or jump. Each
            // branch grants the same in-row hit budget, so the switch
            // cadence (RBMPKI) is pattern-independent.
            if (app.hot_frac > 0.0 && rng.uniform() < app.hot_frac) {
                const auto h = rng.below(hot_pairs);
                const Address &hot =
                    hot_toggle[h] ? hot_b[h] : hot_a[h];
                hot_toggle[h] = !hot_toggle[h];
                cur.rank = hot.rank;
                cur.bankgroup = hot.bankgroup;
                cur.bank = hot.bank;
                cur.row = hot.row;
                cur.column = hot_next_col[h];
                if (hot_toggle[h]) {
                    hot_next_col[h] =
                        (hot_next_col[h] + 4) % org.columns;
                }
            } else if (rng.uniform() < app.stream_frac) {
                cur.row = (cur.row + 1) % footprint;
                cur.column =
                    static_cast<std::uint32_t>(rng.below(org_cols));
            } else {
                cur.row = static_cast<std::uint32_t>(rng.below(footprint));
                cur.bankgroup = static_cast<std::uint32_t>(
                    rng.below(org.bankgroups));
                cur.bank = static_cast<std::uint32_t>(
                    rng.below(org.banks_per_group));
                cur.rank = static_cast<std::uint32_t>(
                    rng.below(org.ranks));
                cur.column =
                    static_cast<std::uint32_t>(rng.below(org_cols));
            }
            hit_budget += hits_per_miss;
        }
        hit_budget -= 1.0;

        TraceEntry entry;
        // Jitter the compute burst by +/-50% for realistic irregularity.
        const double jitter = 0.5 + rng.uniform();
        entry.non_mem_insts = static_cast<std::uint32_t>(
            std::max(0.0, insts_per_access * jitter - 1.0));
        entry.is_write = rng.uniform() < app.write_frac;
        entry.addr = mapper.compose(cur);
        trace.push_back(entry);

        // Next access within the row: walk columns to dodge the caches
        // (each line is touched once per row visit).
        cur.column = (cur.column + 1) % org_cols;
    }
    return trace;
}

std::vector<Mix>
makeMixes(std::uint32_t count, std::uint32_t cores, std::uint64_t seed)
{
    const auto catalog = specLikeCatalog();
    sim::Rng rng(seed);
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Mix mix;
        mix.name = "mix" + std::to_string(i);
        for (std::uint32_t c = 0; c < cores; ++c) {
            AppSpec app = catalog[rng.below(catalog.size())];
            // Decorrelate footprints of identical apps across cores.
            app.seed += i * 131 + c;
            mix.apps.push_back(app);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace leaky::workload
