/**
 * @file
 * Synthetic website-load traces for the PRAC-based side channel (§8).
 *
 * The paper collects Intel-Pin memory traces of a browser loading 40
 * popular websites (50 loads each) and replays them in simulation. We
 * substitute a seeded generator that reproduces the three properties the
 * attack relies on (paper Fig. 9):
 *
 *  1. loads of the SAME site produce similar back-off timelines -- the
 *     phase structure (resource parse/decode bursts over per-phase hot
 *     row pairs) is a deterministic function of the site index;
 *  2. DIFFERENT sites produce different timelines -- phase count,
 *     per-phase pacing, and hot-row placement vary per site;
 *  3. early execution windows look alike across sites -- every load
 *     starts with a shared "browser startup" phase independent of the
 *     site.
 *
 * Per-load jitter (pacing noise, phase-length wobble, extra background
 * accesses) models run-to-run variation between loads of one site.
 */

#ifndef LEAKY_WORKLOAD_WEBSITE_HH
#define LEAKY_WORKLOAD_WEBSITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/address_mapper.hh"
#include "sys/core.hh"

namespace leaky::workload {

/** The 40 websites fingerprinted by the paper (§8, footnote 5). */
const std::vector<std::string> &websiteNames();

/** Generator configuration. */
struct WebsiteTraceConfig {
    std::uint32_t site = 0;    ///< Index into websiteNames().
    std::uint32_t load = 0;    ///< Which load of this site (jitter seed).
    std::uint64_t base_seed = 2025;
    /** Approximate page-load duration to cover (simulated). */
    sim::Tick duration = 4 * sim::kMs;
    /** Mean browser memory accesses per microsecond during a burst. */
    double burst_pace = 18.0;
};

/**
 * Generate the browser's memory trace for one load of one site.
 * The trace is replayed through a TraceCore (with caches), so repeated
 * lines are filtered realistically; row activations arise from walking
 * fresh columns of alternating row pairs.
 */
std::vector<sys::TraceEntry>
generateWebsiteTrace(const WebsiteTraceConfig &cfg,
                     const dram::AddressMapper &mapper);

} // namespace leaky::workload

#endif // LEAKY_WORKLOAD_WEBSITE_HH
