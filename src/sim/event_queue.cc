#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace leaky::sim {

EventHandle
EventQueue::schedule(Tick when, Callback cb)
{
    LEAKY_ASSERT(when >= now_,
                 "scheduling into the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    const EventHandle handle = next_seq_++;
    heap_.push(Entry{when, handle, handle});
    callbacks_.emplace(handle, std::move(cb));
    return handle;
}

bool
EventQueue::cancel(EventHandle handle)
{
    return callbacks_.erase(handle) > 0;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() &&
           callbacks_.find(heap_.top().handle) == callbacks_.end()) {
        heap_.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    skipDead();
    return heap_.empty() ? kTickMax : heap_.top().when;
}

bool
EventQueue::step()
{
    skipDead();
    if (heap_.empty())
        return false;

    const Entry entry = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(entry.handle);
    LEAKY_ASSERT(it != callbacks_.end(), "live event lost its callback");

    now_ = entry.when;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (nextEventTick() <= limit) {
        if (!step())
            break;
    }
    // All remaining events (if any) lie strictly after the limit, so the
    // clock can safely advance to it.
    if (limit != kTickMax && now_ < limit)
        now_ = limit;
}

} // namespace leaky::sim
