#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace leaky::sim {

EventQueue::~EventQueue()
{
    // Unbind pending member events so their destructors do not call
    // back into this (already dying) queue.
    for (Record &r : slab_) {
        if (r.next_free == kLiveMark && r.bound) {
            r.bound->handle_ = kNoEvent;
            r.bound->queue_ = nullptr;
        }
    }
    // Slab destruction runs ~SmallFn on any undelivered one-shots.
}

void
EventQueue::checkFuture(Tick when) const
{
    LEAKY_ASSERT(when >= now_,
                 "scheduling into the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
}

std::uint32_t
EventQueue::claimSlot()
{
    if (free_head_ == kNoFreeSlot)
        growPool();
    const std::uint32_t idx = free_head_;
    Record &r = record(idx);
    free_head_ = r.next_free;
    r.next_free = kLiveMark;
    r.bound = nullptr;
    return idx;
}

void
EventQueue::commitSlot(std::uint32_t idx, Tick when)
{
    pushHeap(when, next_seq_++, idx, record(idx).gen);
    live_ += 1;
}

void
EventQueue::abortClaim(std::uint32_t idx)
{
    // The slot was never published; its generation never escaped, so
    // no bump is needed.
    Record &r = record(idx);
    r.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Record &r = record(idx);
    r.fn.reset();
    r.bound = nullptr;
    r.gen += 1;
    r.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::growPool()
{
    const std::size_t base = slab_.size();
    LEAKY_ASSERT(base + kChunkSize < kLiveMark, "event pool exhausted");
    slab_.resize(base + kChunkSize);
    stats_.pool_chunks += 1;
    // Link the fresh records onto the free list, preserving index order.
    for (std::size_t i = base + kChunkSize; i > base; --i) {
        slab_[i - 1].next_free = free_head_;
        free_head_ = static_cast<std::uint32_t>(i - 1);
    }
}

void
EventQueue::pushHeap(Tick when, std::uint64_t seq, std::uint32_t idx,
                     std::uint32_t gen)
{
    // Sift up with a hole instead of repeated swaps.
    heap_.emplace_back();
    std::size_t hole = heap_.size() - 1;
    const HeapEntry entry{when, seq, idx, gen};
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        if (!entry.before(heap_[parent]))
            break;
        heap_[hole] = heap_[parent];
        hole = parent;
    }
    heap_[hole] = entry;
}

void
EventQueue::popHeap() const
{
    // Move the last entry into a hole sifted down from the root.
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return;
    std::size_t hole = 0;
    while (true) {
        std::size_t child = 2 * hole + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child]))
            child += 1;
        if (!heap_[child].before(last))
            break;
        heap_[hole] = heap_[child];
        hole = child;
    }
    heap_[hole] = last;
}

bool
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        const Record &r = record(top.idx);
        if (r.gen == top.gen && r.next_free == kLiveMark)
            return true;
        popHeap();
    }
    return false;
}

bool
EventQueue::cancel(EventHandle handle)
{
    if (handle == kNoEvent)
        return false;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(handle & 0xffffffffu) - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(handle >> 32);
    if (idx >= slab_.size())
        return false;
    Record &r = record(idx);
    if (r.next_free != kLiveMark || r.gen != gen)
        return false; // Stale: executed, cancelled, or slot reused.
    if (r.bound) {
        r.bound->handle_ = kNoEvent;
        r.bound->queue_ = nullptr;
    }
    freeSlot(idx);
    live_ -= 1;
    return true;
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    LEAKY_ASSERT(ev.fn_ != nullptr, "scheduling an unbound event");
    LEAKY_ASSERT(!ev.scheduled(),
                 "event already scheduled (use reschedule)");
    checkFuture(when);
    const std::uint32_t idx = claimSlot();
    Record &r = record(idx);
    r.bound = &ev;
    ev.queue_ = this;
    ev.handle_ = makeHandle(idx, r.gen);
    ev.when_ = when;
    commitSlot(idx, when);
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev.scheduled())
        deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled())
        return false;
    LEAKY_ASSERT(ev.queue_ == this,
                 "descheduling an event pending on another queue");
    const bool cancelled = cancel(ev.handle_);
    LEAKY_ASSERT(cancelled, "scheduled event had a stale handle");
    return true;
}

Tick
EventQueue::nextEventTick() const
{
    return skipDead() ? heap_.front().when : kTickMax;
}

void
EventQueue::runTop()
{
    const HeapEntry top = heap_.front();
    popHeap();
    Record &r = record(top.idx);

    now_ = top.when;
    live_ -= 1;
    stats_.events_run += 1;

    if (Event *ev = r.bound) {
        // Release the slot and clear the handle before invoking so the
        // callback can immediately reschedule the same event.
        freeSlot(top.idx);
        ev->handle_ = kNoEvent;
        ev->queue_ = nullptr;
        ev->fn_(ev->ctx_);
    } else {
        SmallFn fn = std::move(r.fn);
        freeSlot(top.idx);
        fn();
    }
}

bool
EventQueue::step()
{
    if (!skipDead())
        return false;
    runTop();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (skipDead() && heap_.front().when <= limit)
        runTop();
    // All remaining events (if any) lie strictly after the limit, so the
    // clock can safely advance to it.
    if (limit != kTickMax && now_ < limit)
        now_ = limit;
}

} // namespace leaky::sim
