#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace leaky::sim {

EventQueue::~EventQueue()
{
    // Unbind pending member events so their destructors do not call
    // back into this (already dying) queue.
    for (Record &r : slab_) {
        if (r.next_free == kLiveMark && r.bound) {
            r.bound->handle_ = kNoEvent;
            r.bound->queue_ = nullptr;
        }
    }
    // fn_slab_ destruction runs ~SmallFn on any undelivered one-shots.
}

void
EventQueue::failPast(Tick when) const
{
    panic("scheduling into the past (%llu < %llu)",
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now_));
}

std::uint32_t
EventQueue::claimSlot()
{
    if (free_head_ == kNoFreeSlot)
        growPool();
    const std::uint32_t idx = free_head_;
    Record &r = record(idx);
    free_head_ = r.next_free;
    r.next_free = kLiveMark;
    // Free-list invariant: bound == nullptr, in_wheel == false and
    // has_fn == false already hold (freeSlot/growPool established them),
    // so a claim writes nothing but the list link.
    return idx;
}

void
EventQueue::commitSlot(std::uint32_t idx, Tick when)
{
    // Keep the wheel's reference time current first, so the placement
    // of every wheel entry stays a pure function of (when, wheel_now_)
    // — cancel() relies on recomputing it. The level-0 case (now_ in
    // the same 256-tick block, no placement changes) stays inline.
    if (now_ > wheel_now_) {
        if ((now_ ^ wheel_now_) < kWheelSlots)
            wheel_now_ = now_;
        else
            advanceWheel(now_);
    }
    Record &r = record(idx);
    const std::uint64_t seq = next_seq_++;
    const int level =
        when >= wheel_now_ ? wheelLevel(when ^ wheel_now_) : kWheelLevels;
    if (level < kWheelLevels) {
        r.when = when;
        r.seq = seq;
        wheelInsertAt(idx, level);
        stats_.wheel_events += 1;
    } else {
        // Beyond the wheel horizon (2^48 ticks out), or below the
        // wheel's reference time after a cascade-on-query advanced it
        // past now(). The heap carries these; the pop path merges the
        // two sources by exact (tick, seq).
        pushHeap(when, seq, idx, r.gen);
        stats_.heap_events += 1;
    }
    live_ += 1;
}

void
EventQueue::abortClaim(std::uint32_t idx)
{
    // The slot was never published; its generation never escaped, so
    // no bump is needed.
    Record &r = record(idx);
    r.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Record &r = record(idx);
    if (r.has_fn) {
        fn_slab_[idx].reset();
        r.has_fn = false;
    }
    r.bound = nullptr;
    r.gen += 1;
    r.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::growPool()
{
    const std::size_t base = slab_.size();
    LEAKY_ASSERT(base + kChunkSize < kLiveMark, "event pool exhausted");
    slab_.resize(base + kChunkSize);
    fn_slab_.resize(base + kChunkSize);
    // Give the heap fallback a floor while already allocating, so the
    // occasional below-wheel_now_ event does not break the steady-state
    // zero-allocation invariant by growing heap_ one doubling at a time.
    if (heap_.capacity() < kWheelSlots)
        heap_.reserve(kWheelSlots);
    stats_.pool_chunks += 1;
    // Link the fresh records onto the free list, preserving index order.
    for (std::size_t i = base + kChunkSize; i > base; --i) {
        slab_[i - 1].next_free = free_head_;
        free_head_ = static_cast<std::uint32_t>(i - 1);
    }
}

void
EventQueue::pushHeap(Tick when, std::uint64_t seq, std::uint32_t idx,
                     std::uint32_t gen)
{
    // Sift up with a hole instead of repeated swaps.
    heap_.emplace_back();
    std::size_t hole = heap_.size() - 1;
    const HeapEntry entry{when, seq, idx, gen};
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        if (!entry.before(heap_[parent]))
            break;
        heap_[hole] = heap_[parent];
        hole = parent;
    }
    heap_[hole] = entry;
}

void
EventQueue::popHeap() const
{
    // Move the last entry into a hole sifted down from the root.
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return;
    std::size_t hole = 0;
    while (true) {
        std::size_t child = 2 * hole + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child]))
            child += 1;
        if (!heap_[child].before(last))
            break;
        heap_[hole] = heap_[child];
        hole = child;
    }
    heap_[hole] = last;
}

// ------------------------------------------------------- timing wheel

void
EventQueue::wheelInsert(std::uint32_t idx)
{
    wheelInsertAt(idx, wheelLevel(record(idx).when ^ wheel_now_));
}

void
EventQueue::wheelInsertAt(std::uint32_t idx, int level)
{
    Record &r = record(idx);
    const std::uint32_t slot =
        static_cast<std::uint32_t>(r.when >> (kWheelBits * level)) &
        (kWheelSlots - 1);
    WheelSlot &s = wheel_[level][slot];
    r.wheel_prev = s.tail;
    r.wheel_next = kNoFreeSlot;
    if (s.tail == kNoFreeSlot)
        s.head = idx;
    else
        record(s.tail).wheel_next = idx;
    s.tail = idx;
    setOcc(wheel_occupied_[level], slot);
    r.in_wheel = true;
    wheel_live_ += 1;
}

void
EventQueue::wheelRemove(std::uint32_t idx)
{
    Record &r = record(idx);
    const int level = wheelLevel(r.when ^ wheel_now_);
    const std::uint32_t slot =
        static_cast<std::uint32_t>(r.when >> (kWheelBits * level)) &
        (kWheelSlots - 1);
    WheelSlot &s = wheel_[level][slot];
    if (r.wheel_prev != kNoFreeSlot)
        record(r.wheel_prev).wheel_next = r.wheel_next;
    else
        s.head = r.wheel_next;
    if (r.wheel_next != kNoFreeSlot)
        record(r.wheel_next).wheel_prev = r.wheel_prev;
    else
        s.tail = r.wheel_prev;
    if (s.head == kNoFreeSlot)
        clearOcc(wheel_occupied_[level], slot);
    r.in_wheel = false;
    wheel_live_ -= 1;
}

void
EventQueue::advanceWheel(Tick t)
{
    if (t <= wheel_now_)
        return;
    const int level = wheelLevel(wheel_now_ ^ t);
    if (level >= kWheelLevels) {
        // Crossing a whole wheel horizon: any entry still linked would
        // have a deadline in the past, so the wheel must be empty.
        LEAKY_DCHECK(wheel_live_ == 0,
                     "wheel horizon crossed with %zu live entries",
                     wheel_live_);
        wheel_now_ = t;
        return;
    }
    wheel_now_ = t;
    if (level == 0)
        return; // Same level-1 block: every placement is unchanged.
#ifdef LEAKY_DCHECKS_ENABLED
    // Every slot this advance skips over lies strictly in the past of
    // @p t; the caller guarantees no live deadline is below @p t, so
    // all levels under the cascade level must already be empty.
    for (int l = 0; l < level; ++l)
        LEAKY_DCHECK(lowestSlot(wheel_occupied_[l]) < 0,
                     "advance over non-empty wheel level %d", l);
#endif
    // Exactly one slot becomes "current" at the cascade level: the one
    // containing @p t. Its entries now agree with wheel_now_ above
    // that level, so each re-inserts at a strictly lower level — and
    // the targets are empty (see the DCHECK above), which keeps every
    // slot list in ascending seq order by construction.
    const std::uint32_t slot =
        static_cast<std::uint32_t>(t >> (kWheelBits * level)) &
        (kWheelSlots - 1);
    WheelSlot &s = wheel_[level][slot];
    std::uint32_t idx = s.head;
    if (idx == kNoFreeSlot)
        return;
    s.head = kNoFreeSlot;
    s.tail = kNoFreeSlot;
    clearOcc(wheel_occupied_[level], slot);
    // Splice maximal runs that share a destination slot instead of
    // re-linking entry by entry: within a run the next/prev links are
    // already correct, so only the run endpoints and the destination
    // tail need writes. The common case — a same-tick batch of
    // timers cascading together — moves as one run, making a cascade
    // O(runs) writes rather than O(entries).
    while (idx != kNoFreeSlot) {
        const std::uint32_t run_head = idx;
        const Record &r = record(idx);
        const int dl = wheelLevel(r.when ^ wheel_now_);
        const std::uint32_t dslot =
            static_cast<std::uint32_t>(r.when >> (kWheelBits * dl)) &
            (kWheelSlots - 1);
        std::uint32_t run_tail = idx;
        std::uint64_t count = 1;
        for (std::uint32_t n = r.wheel_next; n != kNoFreeSlot;
             n = record(n).wheel_next) {
            const Record &rn = record(n);
            const int nl = wheelLevel(rn.when ^ wheel_now_);
            if (nl != dl ||
                (static_cast<std::uint32_t>(
                     rn.when >> (kWheelBits * nl)) &
                 (kWheelSlots - 1)) != dslot)
                break;
            run_tail = n;
            count += 1;
        }
        const std::uint32_t after = record(run_tail).wheel_next;
        WheelSlot &d = wheel_[dl][dslot];
        record(run_head).wheel_prev = d.tail;
        if (d.tail == kNoFreeSlot)
            d.head = run_head;
        else
            record(d.tail).wheel_next = run_head;
        record(run_tail).wheel_next = kNoFreeSlot;
        d.tail = run_tail;
        setOcc(wheel_occupied_[dl], dslot);
        stats_.wheel_cascades += count;
        idx = after;
    }
}

std::uint32_t
EventQueue::wheelHead(Tick cap, std::uint32_t *slot_out)
{
    while (wheel_live_ > 0) {
        int level = 0;
        int found = -1;
        while (level < kWheelLevels &&
               (found = lowestSlot(wheel_occupied_[level])) < 0)
            ++level;
        LEAKY_ASSERT(level < kWheelLevels,
                     "wheel_live_ without occupancy");
        const auto slot = static_cast<std::uint32_t>(found);
        if (level == 0) {
            *slot_out = slot;
            return wheel_[0][slot].head;
        }
        // The earliest entry hides in this higher-level slot; its
        // lower bound already tells us whether the heap top wins
        // outright, in which case the cascade is deferred entirely.
        const Tick span = Tick{1} << (kWheelBits * level);
        const Tick base = (wheel_now_ & ~(span * kWheelSlots - 1)) |
                          (Tick{slot} << (kWheelBits * level));
        if (base > cap)
            return kNoFreeSlot;
        advanceWheel(base);
    }
    return kNoFreeSlot;
}

Tick
EventQueue::wheelMinTick() const
{
    if (wheel_live_ == 0)
        return kTickMax;
    int level = 0;
    int found = -1;
    while (level < kWheelLevels &&
           (found = lowestSlot(wheel_occupied_[level])) < 0)
        ++level;
    LEAKY_ASSERT(level < kWheelLevels, "wheel_live_ without occupancy");
    const auto slot = static_cast<std::uint32_t>(found);
    if (level == 0)
        return (wheel_now_ & ~Tick{kWheelSlots - 1}) | slot;
    // A higher-level slot only bounds its entries to a range; walk the
    // (short) list for the exact minimum without cascading, so this
    // stays const and allocation-free.
    Tick best = kTickMax;
    for (std::uint32_t idx = wheel_[level][slot].head;
         idx != kNoFreeSlot; idx = record(idx).wheel_next)
        if (record(idx).when < best)
            best = record(idx).when;
    return best;
}

bool
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        const Record &r = record(top.idx);
        if (r.gen == top.gen && r.next_free == kLiveMark)
            return true;
        popHeap();
    }
    return false;
}

bool
EventQueue::cancel(EventHandle handle)
{
    if (handle == kNoEvent)
        return false;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(handle & 0xffffffffu) - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(handle >> 32);
    if (idx >= slab_.size())
        return false;
    Record &r = record(idx);
    if (r.next_free != kLiveMark || r.gen != gen)
        return false; // Stale: executed, cancelled, or slot reused.
    if (r.bound) {
        r.bound->handle_ = kNoEvent;
        r.bound->queue_ = nullptr;
    }
    // Wheel entries unlink eagerly (O(1) via the doubly-linked slot
    // list) — the cascade empty-target invariant depends on cancelled
    // entries never lingering. Heap entries stay lazy as before.
    if (r.in_wheel)
        wheelRemove(idx);
    freeSlot(idx);
    live_ -= 1;
    return true;
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    LEAKY_ASSERT(ev.fn_ != nullptr, "scheduling an unbound event");
    LEAKY_ASSERT(!ev.scheduled(),
                 "event already scheduled (use reschedule)");
    checkFuture(when);
    const std::uint32_t idx = claimSlot();
    Record &r = record(idx);
    r.bound = &ev;
    ev.queue_ = this;
    ev.handle_ = makeHandle(idx, r.gen);
    ev.when_ = when;
    commitSlot(idx, when);
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev.scheduled())
        deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled())
        return false;
    LEAKY_ASSERT(ev.queue_ == this,
                 "descheduling an event pending on another queue");
    const bool cancelled = cancel(ev.handle_);
    LEAKY_ASSERT(cancelled, "scheduled event had a stale handle");
    return true;
}

Tick
EventQueue::nextEventTick() const
{
    const Tick heap_when = skipDead() ? heap_.front().when : kTickMax;
    const Tick wheel_when = wheelMinTick();
    return heap_when < wheel_when ? heap_when : wheel_when;
}

void
EventQueue::runRecord(std::uint32_t idx)
{
    Record &r = record(idx);
    if (Event *ev = r.bound) {
        // Release the slot and clear the handle before invoking so the
        // callback can immediately reschedule the same event.
        freeSlot(idx);
        ev->handle_ = kNoEvent;
        ev->queue_ = nullptr;
        ev->fn_(ev->ctx_);
    } else {
        SmallFn fn = std::move(fn_slab_[idx]);
        freeSlot(idx);
        fn();
    }
}

void
EventQueue::runTop()
{
    const HeapEntry top = heap_.front();
    popHeap();
    now_ = top.when;
    live_ -= 1;
    stats_.events_run += 1;
    runRecord(top.idx);
}

void
EventQueue::runWheelHead(std::uint32_t idx, std::uint32_t slot)
{
    // Specialised unlink: the entry is known to be a level-0 slot
    // head, so no level/slot recomputation and no prev relink.
    Record &r = record(idx);
    WheelSlot &s = wheel_[0][slot];
    s.head = r.wheel_next;
    if (r.wheel_next != kNoFreeSlot)
        record(r.wheel_next).wheel_prev = kNoFreeSlot;
    else
        s.tail = kNoFreeSlot;
    if (s.head == kNoFreeSlot)
        clearOcc(wheel_occupied_[0], slot);
    r.in_wheel = false;
    wheel_live_ -= 1;
    now_ = r.when;
    live_ -= 1;
    stats_.events_run += 1;
    runRecord(idx);
}

bool
EventQueue::runNext(Tick limit)
{
    const bool heap_ok = skipDead();
    const Tick heap_when = heap_ok ? heap_.front().when : kTickMax;
    std::uint32_t wslot = 0;
    const std::uint32_t widx = wheelHead(heap_when, &wslot);
    bool use_heap;
    if (widx == kNoFreeSlot) {
        if (!heap_ok)
            return false;
        use_heap = true;
    } else if (!heap_ok) {
        use_heap = false;
    } else {
        // Both sources are live: the merge point of the global
        // (tick, seq) order. A level-0 slot head is its tick's lowest
        // seq, so this comparison is exact.
        const Record &r = record(widx);
        use_heap = heap_when != r.when ? heap_when < r.when
                                       : heap_.front().seq < r.seq;
    }
    const Tick when = use_heap ? heap_when : record(widx).when;
    if (when > limit)
        return false;
    if (use_heap)
        runTop();
    else
        runWheelHead(widx, wslot);
    return true;
}

bool
EventQueue::step()
{
    return runNext(kTickMax);
}

void
EventQueue::runUntil(Tick limit)
{
    while (runNext(limit)) {
    }
    // All remaining events (if any) lie strictly after the limit, so the
    // clock can safely advance to it.
    if (limit != kTickMax && now_ < limit)
        now_ = limit;
}

} // namespace leaky::sim
