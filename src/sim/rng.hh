/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**, seeded via
 * splitmix64). All stochastic components of the simulator (RIAC counter
 * initialisation, PARA coin flips, workload generators, ML shuffles) draw
 * from explicitly seeded Rng instances so every experiment is reproducible.
 */

#ifndef LEAKY_SIM_RNG_HH
#define LEAKY_SIM_RNG_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"

namespace leaky::sim {

/**
 * Seed fan-out: a statistically independent seed per (base, index)
 * pair, stable across runs and thread schedules. One splitmix64-style
 * finalisation over the combined pair, so neighbouring indices AND
 * neighbouring bases land far apart — an additive `base + index`
 * stream would collide across adjacent sweep jobs (job N, index 1 ==
 * job N+1, index 0). Shared by the sweep runner's per-job seeds and
 * sys::System's per-channel defense seeds.
 */
inline std::uint64_t
seedFanout(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t x = base + 0x9E3779B97F4A7C15ULL * (index + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x == 0 ? 1 : x; // Components treat 0 as "unseeded".
}

/** xoshiro256** generator with a splitmix64-seeded state. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        LEAKY_ASSERT(bound > 0, "bound must be positive");
        const auto x = (*this)();
        const auto m = static_cast<unsigned __int128>(x) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        LEAKY_ASSERT(lo <= hi, "empty range");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Derive an independent child generator (for per-component seeding). */
    Rng
    fork()
    {
        const std::uint64_t s = (*this)();
        return Rng(s);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace leaky::sim

#endif // LEAKY_SIM_RNG_HH
