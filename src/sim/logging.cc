#include "sim/logging.hh"

namespace leaky::sim::detail {

void
emit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

void
terminate(const char *kind, const std::string &msg, bool core_dump)
{
    emit(kind, msg);
    if (core_dump)
        std::abort();
    std::exit(1);
}

void
assertFail(const char *cond, const std::string &msg)
{
    terminate("panic", "assertion '" + std::string(cond) +
                           "' failed: " + msg,
              true);
}

} // namespace leaky::sim::detail
