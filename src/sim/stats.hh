/**
 * @file
 * Lightweight statistics primitives: named counters, scalar accumulators
 * and fixed-bucket histograms, collected per component and dumpable as
 * aligned text tables.
 */

#ifndef LEAKY_SIM_STATS_HH
#define LEAKY_SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace leaky::sim {

/** Accumulates samples and exposes count/mean/min/max/stddev. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        count_ += 1;
        sum_ += v;
        sum_sq_ += v * v;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population standard deviation. */
    double
    stddev() const
    {
        if (count_ == 0)
            return 0.0;
        const double m = mean();
        const double var = sum_sq_ / count_ - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        *this = Accumulator{};
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bucket histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    double bucketLo(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Render as an ASCII table (one bucket per line). */
    std::string render(std::size_t max_width = 50) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace leaky::sim

#endif // LEAKY_SIM_STATS_HH
