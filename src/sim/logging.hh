/**
 * @file
 * gem5-style status and error reporting. panic() flags simulator bugs
 * (invariant violations) and aborts; fatal() flags user/configuration
 * errors and exits cleanly; warn()/inform() print and continue.
 */

#ifndef LEAKY_SIM_LOGGING_HH
#define LEAKY_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace leaky::sim {

namespace detail {

[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            bool core_dump);
void emit(const char *kind, const std::string &msg);
[[noreturn]] void assertFail(const char *cond, const std::string &msg);

template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt,
                                    std::forward<Args>(args)...);
        std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt,
                          std::forward<Args>(args)...);
        return out;
    }
}

} // namespace detail

/** Abort: something happened that indicates a simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::terminate("panic", detail::format(fmt,
                      std::forward<Args>(args)...), true);
}

/** Exit(1): the simulation cannot continue due to a user/config error. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::terminate("fatal", detail::format(fmt,
                      std::forward<Args>(args)...), false);
}

/** Non-fatal warning about questionable behaviour. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::emit("warn", detail::format(fmt, std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::emit("info", detail::format(fmt, std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define LEAKY_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::leaky::sim::detail::assertFail(                              \
                #cond, ::leaky::sim::detail::format(__VA_ARGS__));         \
    } while (0)

/**
 * Assertion for hot paths whose check is itself expensive (e.g.,
 * re-deriving an earliest-issue tick). Controlled by the CMake option
 * LEAKY_DCHECKS (default ON, which defines LEAKY_DCHECKS_ENABLED):
 * keep it on for correctness runs and tests; configure perf builds
 * with -DLEAKY_DCHECKS=OFF so simulations do not pay for redundant
 * verification.
 */
#ifdef LEAKY_DCHECKS_ENABLED
#define LEAKY_DCHECK(cond, ...) LEAKY_ASSERT(cond, __VA_ARGS__)
#else
#define LEAKY_DCHECK(cond, ...) ((void)0)
#endif

} // namespace leaky::sim

#endif // LEAKY_SIM_LOGGING_HH
