/**
 * @file
 * Simulation time base. One Tick equals one picosecond, which lets DRAM
 * timing parameters specified in fractional nanoseconds (e.g., tCK =
 * 0.416 ns for DDR5-4800) be represented exactly enough for cycle-level
 * simulation without floating-point drift.
 */

#ifndef LEAKY_SIM_TICK_HH
#define LEAKY_SIM_TICK_HH

#include <cstdint>

namespace leaky::sim {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unset times. */
inline constexpr Tick kTickMax = ~Tick{0};

/** One nanosecond in ticks. */
inline constexpr Tick kNs = 1000;
/** One microsecond in ticks. */
inline constexpr Tick kUs = 1000 * kNs;
/** One millisecond in ticks. */
inline constexpr Tick kMs = 1000 * kUs;

/** Convert a tick count to (truncated) nanoseconds. */
constexpr std::uint64_t ticksToNs(Tick t) { return t / kNs; }

/** Convert nanoseconds to ticks. */
constexpr Tick nsToTicks(double ns) {
    return static_cast<Tick>(ns * static_cast<double>(kNs) + 0.5);
}

} // namespace leaky::sim

#endif // LEAKY_SIM_TICK_HH
