#include "sim/stats.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace leaky::sim {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    LEAKY_ASSERT(hi > lo && buckets > 0, "degenerate histogram");
}

void
Histogram::sample(double v)
{
    total_ += 1;
    if (v < lo_) {
        underflow_ += 1;
    } else if (v >= hi_) {
        overflow_ += 1;
    } else {
        const auto idx = static_cast<std::size_t>((v - lo_) / width_);
        counts_[std::min(idx, counts_.size() - 1)] += 1;
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::render(std::size_t max_width) const
{
    std::uint64_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            counts_[i] * max_width / peak);
        std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %8llu |",
                      bucketLo(i), bucketLo(i) + width_,
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    return out;
}

} // namespace leaky::sim
