/**
 * @file
 * Discrete-event simulation kernel. Components schedule callbacks at
 * absolute ticks; the queue executes them in (tick, insertion-order)
 * order so simulations are fully deterministic.
 *
 * The kernel is intrusive and slab-allocated: every scheduled occurrence
 * lives in a pooled Record (chunked slab, stable addresses, free-list
 * reuse) identified by a generation-counted handle, and a binary heap of
 * record indices orders execution. Steady-state scheduling performs no
 * heap allocation:
 *
 *  - reusable, member-bound Events (see sim::Event) carry only an
 *    object pointer and a function-pointer thunk;
 *  - one-shot callables are stored in a small-buffer SmallFn; only
 *    captures larger than SmallFn::kInlineBytes spill to the heap
 *    (counted in KernelStats::one_shot_spills);
 *  - cancellation bumps the record's generation instead of erasing from
 *    a map; stale heap entries are skipped lazily at pop time.
 *
 * Ordering is maintained by two structures that agree on one global
 * (tick, seq) total order:
 *
 *  - a hierarchical timing wheel (6 levels x 256 slots of 8 bits each,
 *    covering any deadline within 2^48 ticks of the wheel's reference
 *    time) gives O(1) schedule and cancel for the overwhelming
 *    majority of events — controller self-clocks, refresh and ABO
 *    timers, request retries;
 *  - the binary heap remains as the fallback for deadlines outside
 *    the wheel's range, and for events scheduled below the wheel's
 *    reference time after it has been advanced ahead of now().
 *
 * The pop path merges both sources exactly: a level-0 wheel slot holds
 * events of one identical tick in ascending seq order (appends and
 * cascades both preserve insertion order), so comparing the slot head
 * against the heap top by (tick, seq) reproduces the single-heap
 * execution order bit for bit. See docs/ARCHITECTURE.md ("Controller
 * hot loop") for the invariant argument.
 */

#ifndef LEAKY_SIM_EVENT_QUEUE_HH
#define LEAKY_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/tick.hh"

namespace leaky::sim {

/** Identifier of one scheduled occurrence, usable for cancellation.
 *  Encodes (slot generation << 32) | (slot index + 1). */
using EventHandle = std::uint64_t;

/** Sentinel handle meaning "no event". */
inline constexpr EventHandle kNoEvent = 0;

class EventQueue;

/**
 * Type-erased move-only callable with a small inline buffer. Callables
 * up to kInlineBytes are stored in place (no heap allocation); larger
 * ones spill to a single heap cell.
 */
class SmallFn
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;
    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallFn() { reset(); }

    /** Store @p fn. @return true when it fit the inline buffer. */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &>,
                      "SmallFn payload must be callable with no args");
        reset();
        // Inline storage requires a nothrow move: relocation happens
        // inside noexcept moves (and slab growth); a throwing-move
        // payload goes to the heap cell, whose relocation only copies
        // a pointer.
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
            return true;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
            return false;
        }
    }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); ///< Move + destroy src.
        void (*destroy)(void *);
    };

    template <typename Fn> static const Ops kInlineOps;
    template <typename Fn> static const Ops kHeapOps;

    void
    moveFrom(SmallFn &other)
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

template <typename Fn>
const SmallFn::Ops SmallFn::kInlineOps = {
    [](void *p) { (*static_cast<Fn *>(p))(); },
    [](void *dst, void *src) {
        ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
        static_cast<Fn *>(src)->~Fn();
    },
    [](void *p) { static_cast<Fn *>(p)->~Fn(); },
};

template <typename Fn>
const SmallFn::Ops SmallFn::kHeapOps = {
    [](void *p) { (**static_cast<Fn **>(p))(); },
    [](void *dst, void *src) {
        ::new (dst) Fn *(*static_cast<Fn **>(src));
    },
    [](void *p) { delete *static_cast<Fn **>(p); },
};

/**
 * A reusable, member-bound event: one object a component owns for its
 * lifetime and schedules over and over (self-clock ticks, deadlines,
 * timers). Scheduling a bound Event never allocates: the kernel stores
 * only the (context, thunk) pair. An Event may be scheduled at most
 * once at a time; use EventQueue::reschedule to move a pending one.
 *
 * Events must not outlive the queue they are scheduled on.
 */
class Event
{
  public:
    using Fn = void (*)(void *ctx);

    Event() = default;
    Event(void *ctx, Fn fn) : ctx_(ctx), fn_(fn) {}
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    inline ~Event(); ///< Deschedules itself if still pending.

    /** (Re)bind the callback; only valid while not scheduled. */
    void
    bind(void *ctx, Fn fn)
    {
        ctx_ = ctx;
        fn_ = fn;
    }

    bool scheduled() const { return handle_ != kNoEvent; }

    /** Tick of the pending occurrence (valid only while scheduled()). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    void *ctx_ = nullptr;
    Fn fn_ = nullptr;
    EventQueue *queue_ = nullptr;
    EventHandle handle_ = kNoEvent;
    Tick when_ = 0;
};

/** Build an Event bound to a member function of @p obj, e.g.
 *  `memberEvent<&MemoryController::tick>(this)`. */
template <auto Method, typename T>
Event
memberEvent(T *obj)
{
    return Event(obj, [](void *ctx) { (static_cast<T *>(ctx)->*Method)(); });
}

/**
 * Deterministic discrete-event queue.
 *
 * Events with equal ticks run in schedule order. Cancellation bumps the
 * slot's generation; stale heap entries are skipped when popped.
 */
class EventQueue
{
  public:
    /** Kernel health/perf counters (all monotonic). */
    struct KernelStats {
        std::uint64_t events_run = 0;      ///< Callbacks executed.
        std::uint64_t one_shot_spills = 0; ///< Captures too big for SBO.
        std::uint64_t pool_chunks = 0;     ///< Slab chunks allocated.
        std::uint64_t wheel_events = 0;    ///< Scheduled via the wheel.
        std::uint64_t heap_events = 0;     ///< Heap-fallback schedules.
        std::uint64_t wheel_cascades = 0;  ///< Entries moved by cascades.
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, unexecuted) events. */
    std::size_t size() const { return live_; }

    /**
     * Schedule @p fn to run at absolute time @p when (>= now()).
     * @return handle for cancel().
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn)
    {
        static_assert(std::is_invocable_v<std::decay_t<F> &>,
                      "event callback must be invocable with no args");
        checkFuture(when);
        const std::uint32_t idx = claimSlot();
        Record &r = record(idx);
        // Store the callable before the slot is published on the heap:
        // if construction throws (e.g. bad_alloc on a spilled capture),
        // no live-but-empty record must be reachable.
        try {
            if (!fn_slab_[idx].emplace(std::forward<F>(fn)))
                stats_.one_shot_spills += 1;
        } catch (...) {
            abortClaim(idx);
            throw;
        }
        r.has_fn = true;
        commitSlot(idx, when);
        return makeHandle(idx, r.gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Schedule a bound event at @p when. It must not be pending. */
    void schedule(Event &ev, Tick when);

    /** Schedule a bound event @p delay ticks from now. */
    void scheduleAfter(Event &ev, Tick delay) { schedule(ev, now_ + delay); }

    /** Move a bound event to @p when, whether or not it is pending. */
    void reschedule(Event &ev, Tick when);

    /** Cancel a pending bound event. @return true if it was pending. */
    bool deschedule(Event &ev);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was live and is now cancelled; false for
     * stale handles (already executed, cancelled, or slot reused).
     */
    bool cancel(EventHandle handle);

    /** Run a single event. @return false if the queue was empty. */
    bool step();

    /** Run until empty or until @p limit is reached (inclusive). */
    void runUntil(Tick limit);

    /** Run until the queue is empty. */
    void run() { runUntil(kTickMax); }

    /** Tick of the next live event, or kTickMax when empty. */
    Tick nextEventTick() const;

    const KernelStats &kernelStats() const { return stats_; }

    /** Total slots in the slab (grows in chunks, never shrinks). */
    std::size_t poolCapacity() const { return slab_.size(); }

  private:
    static constexpr std::uint32_t kChunkSize = 256; ///< Pool growth step.
    static constexpr std::uint32_t kNoFreeSlot = ~std::uint32_t{0};
    /** next_free value marking a live (allocated) record. */
    static constexpr std::uint32_t kLiveMark = kNoFreeSlot - 1;

    /**
     * One pooled occurrence. For heap-routed events the ordering keys
     * (tick, seq) live only in the heap entry; wheel-routed events
     * carry them here, together with the intrusive doubly-linked slot
     * list the wheel threads through the slab.
     *
     * The record is exactly one cache line; a one-shot's SmallFn
     * payload lives in the parallel fn_slab_ (same index) and is only
     * touched when has_fn says so. A member-bound event's whole
     * schedule/cancel/run cycle therefore stays within this line — at
     * thousands of pending timers (request-retry storms) that halves
     * the slab working set versus embedding the 56-byte SmallFn.
     */
    struct alignas(64) Record {
        std::uint32_t gen = 1;  ///< Bumped on free; validates handles.
        std::uint32_t next_free = kNoFreeSlot;
        Tick when = 0;          ///< Wheel entries: the deadline.
        std::uint64_t seq = 0;  ///< Wheel entries: global tie-break.
        std::uint32_t wheel_next = kNoFreeSlot; ///< Slot list links.
        std::uint32_t wheel_prev = kNoFreeSlot;
        bool in_wheel = false;  ///< Eagerly cleared on cancel/run.
        bool has_fn = false;    ///< fn_slab_[idx] holds a payload.
        Event *bound = nullptr; ///< Non-null for member-bound events.
    };
    static_assert(sizeof(Record) == 64, "Record must stay one line");

    struct HeapEntry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;

        bool
        before(const HeapEntry &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    Record &record(std::uint32_t idx) { return slab_[idx]; }
    const Record &record(std::uint32_t idx) const { return slab_[idx]; }

    static EventHandle
    makeHandle(std::uint32_t idx, std::uint32_t gen)
    {
        return (static_cast<EventHandle>(gen) << 32) |
               (static_cast<EventHandle>(idx) + 1);
    }

    /** Panic unless @p when is not in the past. Inline so schedulers
     *  pay only a compare on the hot path. */
    void
    checkFuture(Tick when) const
    {
        if (when < now_)
            failPast(when);
    }
    [[noreturn]] void failPast(Tick when) const;

    /** Pop a free slot off the free list (growing the pool first if
     *  needed) and mark it live. No heap entry exists yet. */
    std::uint32_t claimSlot();

    /** Publish a claimed slot: push its (when, seq) heap entry. */
    void commitSlot(std::uint32_t idx, Tick when);

    /** Return a claimed-but-unpublished slot to the free list. */
    void abortClaim(std::uint32_t idx);

    /** Release a slot: destroy payload, bump generation, link free. */
    void freeSlot(std::uint32_t idx);

    void growPool();
    void pushHeap(Tick when, std::uint64_t seq, std::uint32_t idx,
                  std::uint32_t gen);
    void popHeap() const;
    /** Drop stale heap entries. @return false when the heap is empty. */
    bool skipDead() const;
    /** Execute the heap top (which must be live). */
    void runTop();

    // ---------------------------------------------------- timing wheel
    // 8-bit levels: the paper-scale deltas that dominate the hot loop
    // (retry intervals, CAS latencies, both in the tens of thousands of
    // femtosecond-scale ticks) then sit one level up (256..65535) and
    // cascade exactly once, instead of twice with 6-bit levels.
    static constexpr int kWheelBits = 8;
    static constexpr int kWheelLevels = 6;
    static constexpr std::uint32_t kWheelSlots = 1u << kWheelBits;
    static constexpr int kWheelWords = kWheelSlots / 64;
    /** Per-level slot-occupancy bitmap (kWheelSlots bits). */
    using OccMask = std::array<std::uint64_t, kWheelWords>;

    struct WheelSlot {
        std::uint32_t head = kNoFreeSlot;
        std::uint32_t tail = kNoFreeSlot;
    };

    /** The wheel level an entry @p diff ticks of XOR distance away
     *  belongs to: the highest differing 8-bit group vs wheel_now_.
     *  kWheelLevels and up means "outside the wheel" (heap). */
    static int
    wheelLevel(Tick diff)
    {
        return diff == 0 ? 0 : (63 - __builtin_clzll(diff)) / kWheelBits;
    }

    /** Lowest set slot in @p m, or -1 when the level is empty. */
    static int
    lowestSlot(const OccMask &m)
    {
        for (int w = 0; w < kWheelWords; ++w)
            if (m[w] != 0)
                return w * 64 + __builtin_ctzll(m[w]);
        return -1;
    }

    static void
    setOcc(OccMask &m, std::uint32_t slot)
    {
        m[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }

    static void
    clearOcc(OccMask &m, std::uint32_t slot)
    {
        m[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }

    /** Link @p idx at the tail of its slot under the current
     *  wheel_now_ (record(idx).when must be >= wheel_now_). */
    void wheelInsert(std::uint32_t idx);
    /** Same with the level already computed by the caller. */
    void wheelInsertAt(std::uint32_t idx, int level);
    /** Eagerly unlink @p idx from its slot (O(1)). */
    void wheelRemove(std::uint32_t idx);
    /** Move the wheel's reference time forward to @p t, cascading the
     *  one newly-current slot so every entry's (level, slot) placement
     *  is again a pure function of (when, wheel_now_). All slots this
     *  skips over are provably empty: no live entry's deadline may lie
     *  below @p t when the caller advances. */
    void advanceWheel(Tick t);
    /**
     * Index of the earliest wheel entry, cascading higher-level slots
     * down until it sits in a level-0 slot (where list head == lowest
     * seq of the earliest tick). Returns kNoFreeSlot when the wheel is
     * empty or when its lower bound alone proves no wheel entry can
     * run at or before @p cap (the heap top's tick) — in that case no
     * cascade work is done.
     */
    std::uint32_t wheelHead(Tick cap, std::uint32_t *slot_out);
    /** Exact earliest wheel tick without mutating (scans the first
     *  occupied slot of the lowest non-empty level). */
    Tick wheelMinTick() const;
    /** Unlink the level-0 slot-@p slot head @p idx and execute it. */
    void runWheelHead(std::uint32_t idx, std::uint32_t slot);
    /** Execute record @p idx (slot is freed before invocation so the
     *  callback can reschedule the same bound event). */
    void runRecord(std::uint32_t idx);
    /** Run the earliest of (wheel, heap) if its tick is <= @p limit.
     *  @return false when nothing ran. */
    bool runNext(Tick limit);

    Tick wheel_now_ = 0; ///< Wheel reference time (may lead now_).
    std::size_t wheel_live_ = 0;
    std::array<OccMask, kWheelLevels> wheel_occupied_{};
    std::array<std::array<WheelSlot, kWheelSlots>, kWheelLevels> wheel_{};

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
    std::uint32_t free_head_ = kNoFreeSlot;
    /**
     * Record pool. Indexed by handle, so it may reallocate on growth
     * (records are movable); a chunk-sized reserve at a time keeps that
     * rare and steady-state scheduling allocation-free.
     */
    std::vector<Record> slab_;
    /** One-shot payloads, parallel to slab_ (same index). Kept out of
     *  Record so bound events never touch these lines (see Record). */
    std::vector<SmallFn> fn_slab_;
    mutable std::vector<HeapEntry> heap_;
    KernelStats stats_;
};

inline Event::~Event()
{
    if (queue_ && handle_ != kNoEvent)
        queue_->deschedule(*this);
}

} // namespace leaky::sim

#endif // LEAKY_SIM_EVENT_QUEUE_HH
