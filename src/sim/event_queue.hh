/**
 * @file
 * Discrete-event simulation kernel. Components schedule callbacks at
 * absolute ticks; the queue executes them in (tick, insertion-order)
 * order so simulations are fully deterministic.
 *
 * The kernel is intrusive and slab-allocated: every scheduled occurrence
 * lives in a pooled Record (chunked slab, stable addresses, free-list
 * reuse) identified by a generation-counted handle, and a binary heap of
 * record indices orders execution. Steady-state scheduling performs no
 * heap allocation:
 *
 *  - reusable, member-bound Events (see sim::Event) carry only an
 *    object pointer and a function-pointer thunk;
 *  - one-shot callables are stored in a small-buffer SmallFn; only
 *    captures larger than SmallFn::kInlineBytes spill to the heap
 *    (counted in KernelStats::one_shot_spills);
 *  - cancellation bumps the record's generation instead of erasing from
 *    a map; stale heap entries are skipped lazily at pop time.
 */

#ifndef LEAKY_SIM_EVENT_QUEUE_HH
#define LEAKY_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/tick.hh"

namespace leaky::sim {

/** Identifier of one scheduled occurrence, usable for cancellation.
 *  Encodes (slot generation << 32) | (slot index + 1). */
using EventHandle = std::uint64_t;

/** Sentinel handle meaning "no event". */
inline constexpr EventHandle kNoEvent = 0;

class EventQueue;

/**
 * Type-erased move-only callable with a small inline buffer. Callables
 * up to kInlineBytes are stored in place (no heap allocation); larger
 * ones spill to a single heap cell.
 */
class SmallFn
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;
    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallFn() { reset(); }

    /** Store @p fn. @return true when it fit the inline buffer. */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &>,
                      "SmallFn payload must be callable with no args");
        reset();
        // Inline storage requires a nothrow move: relocation happens
        // inside noexcept moves (and slab growth); a throwing-move
        // payload goes to the heap cell, whose relocation only copies
        // a pointer.
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
            return true;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
            return false;
        }
    }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); ///< Move + destroy src.
        void (*destroy)(void *);
    };

    template <typename Fn> static const Ops kInlineOps;
    template <typename Fn> static const Ops kHeapOps;

    void
    moveFrom(SmallFn &other)
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

template <typename Fn>
const SmallFn::Ops SmallFn::kInlineOps = {
    [](void *p) { (*static_cast<Fn *>(p))(); },
    [](void *dst, void *src) {
        ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
        static_cast<Fn *>(src)->~Fn();
    },
    [](void *p) { static_cast<Fn *>(p)->~Fn(); },
};

template <typename Fn>
const SmallFn::Ops SmallFn::kHeapOps = {
    [](void *p) { (**static_cast<Fn **>(p))(); },
    [](void *dst, void *src) {
        ::new (dst) Fn *(*static_cast<Fn **>(src));
    },
    [](void *p) { delete *static_cast<Fn **>(p); },
};

/**
 * A reusable, member-bound event: one object a component owns for its
 * lifetime and schedules over and over (self-clock ticks, deadlines,
 * timers). Scheduling a bound Event never allocates: the kernel stores
 * only the (context, thunk) pair. An Event may be scheduled at most
 * once at a time; use EventQueue::reschedule to move a pending one.
 *
 * Events must not outlive the queue they are scheduled on.
 */
class Event
{
  public:
    using Fn = void (*)(void *ctx);

    Event() = default;
    Event(void *ctx, Fn fn) : ctx_(ctx), fn_(fn) {}
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    inline ~Event(); ///< Deschedules itself if still pending.

    /** (Re)bind the callback; only valid while not scheduled. */
    void
    bind(void *ctx, Fn fn)
    {
        ctx_ = ctx;
        fn_ = fn;
    }

    bool scheduled() const { return handle_ != kNoEvent; }

    /** Tick of the pending occurrence (valid only while scheduled()). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    void *ctx_ = nullptr;
    Fn fn_ = nullptr;
    EventQueue *queue_ = nullptr;
    EventHandle handle_ = kNoEvent;
    Tick when_ = 0;
};

/** Build an Event bound to a member function of @p obj, e.g.
 *  `memberEvent<&MemoryController::tick>(this)`. */
template <auto Method, typename T>
Event
memberEvent(T *obj)
{
    return Event(obj, [](void *ctx) { (static_cast<T *>(ctx)->*Method)(); });
}

/**
 * Deterministic discrete-event queue.
 *
 * Events with equal ticks run in schedule order. Cancellation bumps the
 * slot's generation; stale heap entries are skipped when popped.
 */
class EventQueue
{
  public:
    /** Kernel health/perf counters (all monotonic). */
    struct KernelStats {
        std::uint64_t events_run = 0;      ///< Callbacks executed.
        std::uint64_t one_shot_spills = 0; ///< Captures too big for SBO.
        std::uint64_t pool_chunks = 0;     ///< Slab chunks allocated.
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, unexecuted) events. */
    std::size_t size() const { return live_; }

    /**
     * Schedule @p fn to run at absolute time @p when (>= now()).
     * @return handle for cancel().
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn)
    {
        static_assert(std::is_invocable_v<std::decay_t<F> &>,
                      "event callback must be invocable with no args");
        checkFuture(when);
        const std::uint32_t idx = claimSlot();
        Record &r = record(idx);
        // Store the callable before the slot is published on the heap:
        // if construction throws (e.g. bad_alloc on a spilled capture),
        // no live-but-empty record must be reachable.
        try {
            if (!r.fn.emplace(std::forward<F>(fn)))
                stats_.one_shot_spills += 1;
        } catch (...) {
            abortClaim(idx);
            throw;
        }
        commitSlot(idx, when);
        return makeHandle(idx, r.gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Schedule a bound event at @p when. It must not be pending. */
    void schedule(Event &ev, Tick when);

    /** Schedule a bound event @p delay ticks from now. */
    void scheduleAfter(Event &ev, Tick delay) { schedule(ev, now_ + delay); }

    /** Move a bound event to @p when, whether or not it is pending. */
    void reschedule(Event &ev, Tick when);

    /** Cancel a pending bound event. @return true if it was pending. */
    bool deschedule(Event &ev);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was live and is now cancelled; false for
     * stale handles (already executed, cancelled, or slot reused).
     */
    bool cancel(EventHandle handle);

    /** Run a single event. @return false if the queue was empty. */
    bool step();

    /** Run until empty or until @p limit is reached (inclusive). */
    void runUntil(Tick limit);

    /** Run until the queue is empty. */
    void run() { runUntil(kTickMax); }

    /** Tick of the next live event, or kTickMax when empty. */
    Tick nextEventTick() const;

    const KernelStats &kernelStats() const { return stats_; }

    /** Total slots in the slab (grows in chunks, never shrinks). */
    std::size_t poolCapacity() const { return slab_.size(); }

  private:
    static constexpr std::uint32_t kChunkSize = 256; ///< Pool growth step.
    static constexpr std::uint32_t kNoFreeSlot = ~std::uint32_t{0};
    /** next_free value marking a live (allocated) record. */
    static constexpr std::uint32_t kLiveMark = kNoFreeSlot - 1;

    /**
     * One pooled occurrence: a heap slot's payload. Ordering keys
     * (tick, seq) live only in the heap entry; the record holds the
     * callable plus the generation that validates handles. gen and
     * next_free lead so the staleness check in skipDead() touches the
     * record's first cache line only.
     */
    struct Record {
        std::uint32_t gen = 1;  ///< Bumped on free; validates handles.
        std::uint32_t next_free = kNoFreeSlot;
        Event *bound = nullptr; ///< Non-null for member-bound events.
        SmallFn fn;             ///< One-shot callable otherwise.
    };

    struct HeapEntry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;

        bool
        before(const HeapEntry &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    Record &record(std::uint32_t idx) { return slab_[idx]; }
    const Record &record(std::uint32_t idx) const { return slab_[idx]; }

    static EventHandle
    makeHandle(std::uint32_t idx, std::uint32_t gen)
    {
        return (static_cast<EventHandle>(gen) << 32) |
               (static_cast<EventHandle>(idx) + 1);
    }

    /** Panic unless @p when is not in the past. */
    void checkFuture(Tick when) const;

    /** Pop a free slot off the free list (growing the pool first if
     *  needed) and mark it live. No heap entry exists yet. */
    std::uint32_t claimSlot();

    /** Publish a claimed slot: push its (when, seq) heap entry. */
    void commitSlot(std::uint32_t idx, Tick when);

    /** Return a claimed-but-unpublished slot to the free list. */
    void abortClaim(std::uint32_t idx);

    /** Release a slot: destroy payload, bump generation, link free. */
    void freeSlot(std::uint32_t idx);

    void growPool();
    void pushHeap(Tick when, std::uint64_t seq, std::uint32_t idx,
                  std::uint32_t gen);
    void popHeap() const;
    /** Drop stale heap entries. @return false when the heap is empty. */
    bool skipDead() const;
    /** Execute the heap top (which must be live). */
    void runTop();

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
    std::uint32_t free_head_ = kNoFreeSlot;
    /**
     * Record pool. Indexed by handle, so it may reallocate on growth
     * (records are movable); a chunk-sized reserve at a time keeps that
     * rare and steady-state scheduling allocation-free.
     */
    std::vector<Record> slab_;
    mutable std::vector<HeapEntry> heap_;
    KernelStats stats_;
};

inline Event::~Event()
{
    if (queue_ && handle_ != kNoEvent)
        queue_->deschedule(*this);
}

} // namespace leaky::sim

#endif // LEAKY_SIM_EVENT_QUEUE_HH
