/**
 * @file
 * Discrete-event simulation kernel. Components schedule callbacks at
 * absolute ticks; the queue executes them in (tick, insertion-order)
 * order so simulations are fully deterministic. Scheduled events can be
 * cancelled via the EventHandle returned by schedule().
 */

#ifndef LEAKY_SIM_EVENT_QUEUE_HH
#define LEAKY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/tick.hh"

namespace leaky::sim {

/** Identifier of a scheduled event, usable for cancellation. */
using EventHandle = std::uint64_t;

/** Sentinel handle meaning "no event". */
inline constexpr EventHandle kNoEvent = 0;

/**
 * Deterministic discrete-event queue.
 *
 * Events with equal ticks run in schedule order. Cancellation is lazy:
 * cancelled entries stay in the heap and are skipped when popped.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no live events remain. */
    bool empty() const { return callbacks_.empty(); }

    /** Number of live (non-cancelled, unexecuted) events. */
    std::size_t size() const { return callbacks_.size(); }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now()).
     * @return handle for cancel().
     */
    EventHandle schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventHandle
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was live and is now cancelled.
     */
    bool cancel(EventHandle handle);

    /** Run a single event. @return false if the queue was empty. */
    bool step();

    /** Run until empty or until @p limit is reached (inclusive). */
    void runUntil(Tick limit);

    /** Run until the queue is empty. */
    void run() { runUntil(kTickMax); }

    /** Tick of the next live event, or kTickMax when empty. */
    Tick nextEventTick() const;

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        EventHandle handle;

        bool
        operator>(const Entry &other) const
        {
            return when != other.when ? when > other.when
                                      : seq > other.seq;
        }
    };

    /** Pop dead (cancelled) entries off the heap top. */
    void skipDead() const;

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>> heap_;
    std::unordered_map<EventHandle, Callback> callbacks_;
};

} // namespace leaky::sim

#endif // LEAKY_SIM_EVENT_QUEUE_HH
