#include "stats/channel_metrics.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace leaky::stats {

double
binaryEntropy(double e)
{
    LEAKY_ASSERT(e >= 0.0 && e <= 1.0, "error probability out of range");
    if (e <= 0.0 || e >= 1.0)
        return 0.0;
    return -e * std::log2(e) - (1.0 - e) * std::log2(1.0 - e);
}

double
channelCapacity(double raw_bit_rate, double error_probability)
{
    // Error probabilities above 0.5 are clamped: a binary channel that
    // is wrong more often than right carries the complement signal.
    const double e = std::min(error_probability, 0.5);
    return raw_bit_rate * (1.0 - binaryEntropy(e));
}

double
errorProbability(const std::vector<bool> &sent,
                 const std::vector<bool> &received)
{
    LEAKY_ASSERT(sent.size() == received.size() && !sent.empty(),
                 "bit vectors must be non-empty and equal length");
    std::size_t errors = 0;
    for (std::size_t i = 0; i < sent.size(); ++i)
        errors += sent[i] != received[i] ? 1 : 0;
    return static_cast<double>(errors) / static_cast<double>(sent.size());
}

double
symbolErrorRate(const std::vector<std::uint8_t> &sent,
                const std::vector<std::uint8_t> &received)
{
    LEAKY_ASSERT(sent.size() == received.size() && !sent.empty(),
                 "symbol vectors must be non-empty and equal length");
    std::size_t errors = 0;
    for (std::size_t i = 0; i < sent.size(); ++i)
        errors += sent[i] != received[i] ? 1 : 0;
    return static_cast<double>(errors) / static_cast<double>(sent.size());
}

double
rawBitRate(sim::Tick window, double bits_per_symbol)
{
    LEAKY_ASSERT(window > 0, "window must be positive");
    const double seconds = static_cast<double>(window) * 1e-12;
    return bits_per_symbol / seconds;
}

double
noiseIntensity(sim::Tick sleep, sim::Tick min_sleep, sim::Tick max_sleep)
{
    LEAKY_ASSERT(max_sleep > min_sleep, "degenerate sleep range");
    const double span = static_cast<double>(max_sleep - min_sleep);
    const double rel = static_cast<double>(sleep - min_sleep) / span;
    return (1.0 - rel) * 99.0 + 1.0;
}

sim::Tick
sleepForIntensity(double intensity, sim::Tick min_sleep,
                  sim::Tick max_sleep)
{
    LEAKY_ASSERT(intensity >= 1.0 && intensity <= 100.0,
                 "intensity must be in [1, 100]");
    const double rel = 1.0 - (intensity - 1.0) / 99.0;
    const double span = static_cast<double>(max_sleep - min_sleep);
    return min_sleep + static_cast<sim::Tick>(rel * span + 0.5);
}

double
weightedSpeedup(const std::vector<double> &ipc_shared,
                const std::vector<double> &ipc_alone)
{
    LEAKY_ASSERT(ipc_shared.size() == ipc_alone.size() &&
                     !ipc_shared.empty(),
                 "IPC vectors must be non-empty and equal length");
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        LEAKY_ASSERT(ipc_alone[i] > 0.0, "alone IPC must be positive");
        ws += ipc_shared[i] / ipc_alone[i];
    }
    return ws;
}

} // namespace leaky::stats
