/**
 * @file
 * Covert-channel quality metrics (paper §5.2, Eq. 1): raw bit rate,
 * error probability, binary entropy, and channel capacity
 *   C = R x (1 - H(e)),  H(e) = -e log2 e - (1-e) log2 (1-e),
 * plus the noise-intensity mapping of Eq. 2 and weighted speedup for
 * the Fig. 13 performance study.
 */

#ifndef LEAKY_STATS_CHANNEL_METRICS_HH
#define LEAKY_STATS_CHANNEL_METRICS_HH

#include <cstdint>
#include <vector>

#include "sim/tick.hh"

namespace leaky::stats {

/** Binary entropy H(e) in bits; H(0) = H(1) = 0. */
double binaryEntropy(double e);

/** Channel capacity in bits/s given a raw rate (bits/s) and error rate. */
double channelCapacity(double raw_bit_rate, double error_probability);

/** Fraction of mismatching bits between two equal-length bit vectors. */
double errorProbability(const std::vector<bool> &sent,
                        const std::vector<bool> &received);

/** Symbol error rate for multibit (ternary/quaternary) transmissions. */
double symbolErrorRate(const std::vector<std::uint8_t> &sent,
                       const std::vector<std::uint8_t> &received);

/** Raw bit rate in bits/s for one bit per window of @p window ticks. */
double rawBitRate(sim::Tick window, double bits_per_symbol = 1.0);

/**
 * Noise intensity (paper Eq. 2) for a noise-generator sleep duration:
 * intensity = (1 - (sleep - min)/(max - min)) * 99 + 1, in percent.
 */
double noiseIntensity(sim::Tick sleep, sim::Tick min_sleep,
                      sim::Tick max_sleep);

/** Inverse of noiseIntensity: sleep duration for a target intensity. */
sim::Tick sleepForIntensity(double intensity, sim::Tick min_sleep,
                            sim::Tick max_sleep);

/** Weighted speedup: sum of IPC_shared / IPC_alone over cores. */
double weightedSpeedup(const std::vector<double> &ipc_shared,
                       const std::vector<double> &ipc_alone);

} // namespace leaky::stats

#endif // LEAKY_STATS_CHANNEL_METRICS_HH
