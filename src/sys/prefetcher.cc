#include "sys/prefetcher.hh"

#include <algorithm>

namespace leaky::sys {

BestOffsetPrefetcher::BestOffsetPrefetcher(const PrefetcherConfig &cfg)
    : cfg_(cfg), rr_(cfg.rr_entries, 0), rr_valid_(cfg.rr_entries, false)
{
    // Michaud's offset list restricted to small strides; covers the
    // streaming and strided patterns our workload generators emit.
    for (int o : {1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24,
                  27, 30, 32})
        offsets_.push_back(o);
    scores_.assign(offsets_.size(), 0);
}

bool
BestOffsetPrefetcher::rrContains(std::uint64_t line_addr) const
{
    for (std::size_t i = 0; i < rr_.size(); ++i) {
        if (rr_valid_[i] && rr_[i] == line_addr)
            return true;
    }
    return false;
}

void
BestOffsetPrefetcher::rrInsert(std::uint64_t line_addr)
{
    rr_[rr_pos_] = line_addr;
    rr_valid_[rr_pos_] = true;
    rr_pos_ = (rr_pos_ + 1) % rr_.size();
}

void
BestOffsetPrefetcher::learn(std::uint64_t line_addr)
{
    const int offset = offsets_[test_index_];
    if (line_addr >= static_cast<std::uint64_t>(offset) &&
        rrContains(line_addr - static_cast<std::uint64_t>(offset))) {
        scores_[test_index_] += 1;
        if (scores_[test_index_] >= cfg_.score_max) {
            best_offset_ = offset;
            active_ = true;
            std::fill(scores_.begin(), scores_.end(), 0);
            round_ = 0;
            test_index_ = 0;
            return;
        }
    }
    test_index_ += 1;
    if (test_index_ < offsets_.size())
        return;
    test_index_ = 0;
    round_ += 1;
    if (round_ < cfg_.round_max)
        return;
    // Learning phase over: adopt the best-scoring offset.
    const auto best = std::max_element(scores_.begin(), scores_.end());
    best_offset_ = offsets_[static_cast<std::size_t>(
        best - scores_.begin())];
    active_ = *best >= cfg_.bad_score;
    std::fill(scores_.begin(), scores_.end(), 0);
    round_ = 0;
}

std::optional<std::uint64_t>
BestOffsetPrefetcher::onDemandMiss(std::uint64_t line_addr)
{
    learn(line_addr);
    if (!active_)
        return std::nullopt;
    issued_ += 1;
    return line_addr + static_cast<std::uint64_t>(best_offset_);
}

void
BestOffsetPrefetcher::onFill(std::uint64_t line_addr)
{
    rrInsert(line_addr);
}

} // namespace leaky::sys
