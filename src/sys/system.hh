/**
 * @file
 * Top-level simulated system: event queue + N memory channels (each with
 * its own controller and defense instance) + the address mapper, behind
 * the MemoryPort interface. This is the substrate equivalent of the
 * paper's gem5 + Ramulator 2.0 stack (§5.1, Table 1).
 */

#ifndef LEAKY_SYS_SYSTEM_HH
#define LEAKY_SYS_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "ctrl/controller.hh"
#include "defense/factory.hh"
#include "dram/address_mapper.hh"
#include "sim/event_queue.hh"
#include "sys/port.hh"

namespace leaky::sys {

/** Whole-system configuration. */
struct SystemConfig {
    std::uint32_t channels = 1;
    /** Physical-to-DRAM mapping (§5.2 mapping diversity): a preset
     *  name, field order, or XOR-function matrix. The mapped address
     *  space spans `channels` x the per-channel capacity regardless
     *  of the function chosen. */
    dram::MappingSpec mapping;
    ctrl::CtrlConfig ctrl;          ///< Per-channel controller + DRAM.
    /** Applied to every channel: each channel gets its OWN defense
     *  instance, seeded independently (splitmix64 fan-out of
     *  defense.seed), so preventive actions never cross channels. */
    defense::DefenseSpec defense;
    /** Core/agent <-> controller latency each way (interconnect plus
     *  cache-miss handling outside the pure cache lookup). */
    Tick frontend_latency = 10'000;
    /** Delay before retrying a request rejected by a full queue. */
    Tick retry_interval = 20'000;

    /** Paper Table 1 system with the given defense. Table 1 lists one
     *  channel; raising `channels` replicates the per-channel geometry
     *  (and the defense) N times, growing the mapper-visible address
     *  space N-fold — it never resizes the per-channel organisation. */
    static SystemConfig paper(defense::DefenseKind kind,
                              std::uint32_t nrh = 160);
};

/** The simulated machine. */
class System final : public MemoryPort
{
  public:
    explicit System(const SystemConfig &cfg);

    sim::EventQueue &eventQueue() { return eq_; }
    const SystemConfig &config() const { return cfg_; }

    ctrl::MemoryController &controller(std::uint32_t ch = 0);
    const defense::DefenseBundle &defenseBundle(std::uint32_t ch = 0) const;

    std::uint32_t channels() const { return cfg_.channels; }

    /** Channel-scoped stats view: the live counters of channel @p ch's
     *  controller (asserts the channel exists). Attack result
     *  collection goes through here with an EXPLICIT channel — never
     *  through an implicit controller(0). */
    const ctrl::CtrlStats &stats(std::uint32_t ch) const;

    /** Aggregate view: field-wise sum of every channel's stats. */
    ctrl::CtrlStats aggregateStats() const;

    /** Observe preventive actions on a channel (ground truth). */
    void setPreventiveListener(std::uint32_t ch,
                               ctrl::MemoryController::Listener listener);

    /** Advance simulation by @p duration ticks. */
    void run(Tick duration);

    // MemoryPort
    Tick now() const override { return eq_.now(); }
    void schedule(Tick delay, std::function<void()> fn) override;
    void issueRead(std::uint64_t phys_addr, std::int32_t source,
                   ReadCallback cb) override;
    void issueWrite(std::uint64_t phys_addr, std::int32_t source) override;
    const dram::AddressMapper &mapper() const override { return mapper_; }

  private:
    /**
     * Requests waiting for controller-queue space live in this
     * System-owned slab, not in their retry events. A full read queue
     * used to make every 20 us retry heap-allocate a spilled lambda
     * holding the whole Request (~100 bytes); now the Request is
     * stashed once and every dispatch attempt reuses the slot's
     * member-bound kernel Event — scheduling it stores only a
     * (context, thunk) pair, so a retry storm is allocation-free after
     * the first rejection and each retry's kernel round trip stays
     * within one cache line of the event slab. Slots are recycled
     * through a free list in LIFO order; a deque keeps their addresses
     * stable for the Events bound to them.
     */
    struct PendingSlot {
        sim::Event retry;   ///< Bound to dispatchPending(this slot).
        System *sys = nullptr;
        ctrl::Request req;
        std::uint32_t self = 0; ///< Own index (deque: no ptr diff).
        std::uint32_t next_free = kNoSlot;
    };
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    PendingSlot &stashRequest(ctrl::Request &&req);
    /** Try to hand the slot's request to its controller; keep
     *  retrying on a full queue. The slot is freed only once the
     *  enqueue lands. */
    void dispatchPending(PendingSlot &slot);

    SystemConfig cfg_;
    sim::EventQueue eq_;
    dram::AddressMapper mapper_;
    std::vector<std::unique_ptr<ctrl::MemoryController>> ctrls_;
    std::vector<defense::DefenseBundle> bundles_;
    std::deque<PendingSlot> pending_;
    std::uint32_t pending_free_ = kNoSlot;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_SYSTEM_HH
