/**
 * @file
 * Top-level simulated system: event queue + N memory channels (each with
 * its own controller and defense instance) + the address mapper, behind
 * the MemoryPort interface. This is the substrate equivalent of the
 * paper's gem5 + Ramulator 2.0 stack (§5.1, Table 1).
 */

#ifndef LEAKY_SYS_SYSTEM_HH
#define LEAKY_SYS_SYSTEM_HH

#include <memory>
#include <vector>

#include "ctrl/controller.hh"
#include "defense/factory.hh"
#include "dram/address_mapper.hh"
#include "sim/event_queue.hh"
#include "sys/port.hh"

namespace leaky::sys {

/** Whole-system configuration. */
struct SystemConfig {
    std::uint32_t channels = 1;
    /** Physical-to-DRAM field order (§5.2 mapping diversity). The
     *  mapped address space spans `channels` x the per-channel
     *  capacity regardless of the order chosen. */
    dram::MappingPreset mapping = dram::MappingPreset::kRowInterleaved;
    ctrl::CtrlConfig ctrl;          ///< Per-channel controller + DRAM.
    /** Applied to every channel: each channel gets its OWN defense
     *  instance, seeded independently (splitmix64 fan-out of
     *  defense.seed), so preventive actions never cross channels. */
    defense::DefenseSpec defense;
    /** Core/agent <-> controller latency each way (interconnect plus
     *  cache-miss handling outside the pure cache lookup). */
    Tick frontend_latency = 10'000;
    /** Delay before retrying a request rejected by a full queue. */
    Tick retry_interval = 20'000;

    /** Paper Table 1 system with the given defense. Table 1 lists one
     *  channel; raising `channels` replicates the per-channel geometry
     *  (and the defense) N times, growing the mapper-visible address
     *  space N-fold — it never resizes the per-channel organisation. */
    static SystemConfig paper(defense::DefenseKind kind,
                              std::uint32_t nrh = 160);
};

/** The simulated machine. */
class System final : public MemoryPort
{
  public:
    explicit System(const SystemConfig &cfg);

    sim::EventQueue &eventQueue() { return eq_; }
    const SystemConfig &config() const { return cfg_; }

    ctrl::MemoryController &controller(std::uint32_t ch = 0);
    const defense::DefenseBundle &defenseBundle(std::uint32_t ch = 0) const;

    std::uint32_t channels() const { return cfg_.channels; }

    /** Channel-scoped stats view: the live counters of channel @p ch's
     *  controller (asserts the channel exists). Attack result
     *  collection goes through here with an EXPLICIT channel — never
     *  through an implicit controller(0). */
    const ctrl::CtrlStats &stats(std::uint32_t ch) const;

    /** Aggregate view: field-wise sum of every channel's stats. */
    ctrl::CtrlStats aggregateStats() const;

    /** Observe preventive actions on a channel (ground truth). */
    void setPreventiveListener(std::uint32_t ch,
                               ctrl::MemoryController::Listener listener);

    /** Advance simulation by @p duration ticks. */
    void run(Tick duration);

    // MemoryPort
    Tick now() const override { return eq_.now(); }
    void schedule(Tick delay, std::function<void()> fn) override;
    void issueRead(std::uint64_t phys_addr, std::int32_t source,
                   ReadCallback cb) override;
    void issueWrite(std::uint64_t phys_addr, std::int32_t source) override;
    const dram::AddressMapper &mapper() const override { return mapper_; }

  private:
    void enqueueWithRetry(ctrl::Request req);

    SystemConfig cfg_;
    sim::EventQueue eq_;
    dram::AddressMapper mapper_;
    std::vector<std::unique_ptr<ctrl::MemoryController>> ctrls_;
    std::vector<defense::DefenseBundle> bundles_;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_SYSTEM_HH
