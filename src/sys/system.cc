#include "sys/system.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace leaky::sys {

SystemConfig
SystemConfig::paper(defense::DefenseKind kind, std::uint32_t nrh)
{
    SystemConfig cfg;
    cfg.ctrl.dram = dram::DramConfig::ddr5Paper();
    cfg.defense.kind = kind;
    cfg.defense.nrh = nrh;
    return cfg;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), mapper_(cfg.ctrl.dram.org, cfg.channels, cfg.mapping)
{
    for (std::uint32_t ch = 0; ch < cfg_.channels; ++ch) {
        // The controller config may be adjusted by the defense choice,
        // so resolve the bundle parameters first.
        ctrl::CtrlConfig ctrl_cfg = cfg_.ctrl;
        ctrl_cfg.rfms_per_backoff = cfg_.defense.rfms_per_backoff;
        ctrl_cfg.deterministic_refresh =
            ctrl_cfg.deterministic_refresh ||
            cfg_.defense.kind == defense::DefenseKind::kFrRfm;
        if (cfg_.defense.backoff_rfm_latency)
            ctrl_cfg.dram.timing.tRFM_backoff =
                cfg_.defense.backoff_rfm_latency;
        if (cfg_.defense.aboact_override)
            ctrl_cfg.dram.timing.tABOACT = cfg_.defense.aboact_override;

        auto controller = std::make_unique<ctrl::MemoryController>(
            eq_, ctrl_cfg, ch);
        defense::DefenseSpec spec = cfg_.defense;
        // Independent per-channel seed streams: an additive base + ch
        // collides across neighbouring sweep jobs (job N, ch 1 == job
        // N+1, ch 0), correlating defenses that must be independent.
        spec.seed = sim::seedFanout(cfg_.defense.seed, ch);
        auto bundle = defense::makeDefense(spec, ctrl_cfg.dram,
                                           ctrl_cfg.drain_lead,
                                           controller.get());
        if (bundle.device)
            controller->setDeviceHooks(bundle.device.get());
        if (bundle.controller)
            controller->setControllerDefense(bundle.controller.get());
        ctrls_.push_back(std::move(controller));
        bundles_.push_back(std::move(bundle));
    }
}

ctrl::MemoryController &
System::controller(std::uint32_t ch)
{
    LEAKY_ASSERT(ch < ctrls_.size(), "channel %u out of range", ch);
    return *ctrls_[ch];
}

const ctrl::CtrlStats &
System::stats(std::uint32_t ch) const
{
    LEAKY_ASSERT(ch < ctrls_.size(), "channel %u out of range", ch);
    return ctrls_[ch]->stats();
}

ctrl::CtrlStats
System::aggregateStats() const
{
    ctrl::CtrlStats sum;
    for (const auto &controller : ctrls_)
        sum += controller->stats();
    return sum;
}

const defense::DefenseBundle &
System::defenseBundle(std::uint32_t ch) const
{
    LEAKY_ASSERT(ch < bundles_.size(), "channel %u out of range", ch);
    return bundles_[ch];
}

void
System::setPreventiveListener(std::uint32_t ch,
                              ctrl::MemoryController::Listener listener)
{
    controller(ch).setListener(std::move(listener));
}

void
System::run(Tick duration)
{
    eq_.runUntil(eq_.now() + duration);
}

void
System::schedule(Tick delay, std::function<void()> fn)
{
    eq_.scheduleAfter(delay, std::move(fn));
}

System::PendingSlot &
System::stashRequest(ctrl::Request &&req)
{
    if (pending_free_ == kNoSlot) {
        pending_.emplace_back();
        PendingSlot &fresh = pending_.back();
        fresh.sys = this;
        fresh.retry.bind(&fresh, [](void *ctx) {
            auto *slot = static_cast<PendingSlot *>(ctx);
            slot->sys->dispatchPending(*slot);
        });
        fresh.self = static_cast<std::uint32_t>(pending_.size() - 1);
        fresh.next_free = kNoSlot;
        pending_free_ = fresh.self;
    }
    PendingSlot &slot = pending_[pending_free_];
    pending_free_ = slot.next_free;
    slot.req = std::move(req);
    return slot;
}

void
System::dispatchPending(PendingSlot &slot)
{
    auto &controller = *ctrls_[slot.req.addr.channel];
    if (controller.queueFull(slot.req.type)) {
        eq_.scheduleAfter(slot.retry, cfg_.retry_interval);
        return;
    }
    const bool accepted = controller.enqueue(std::move(slot.req));
    LEAKY_ASSERT(accepted, "enqueue failed with queue space available");
    slot.req = ctrl::Request{};
    slot.next_free = pending_free_;
    pending_free_ = slot.self;
}

void
System::issueRead(std::uint64_t phys_addr, std::int32_t source,
                  ReadCallback cb)
{
    ctrl::Request req;
    req.type = ctrl::Request::Type::kRead;
    req.phys_addr = phys_addr;
    req.addr = mapper_.decode(phys_addr);
    req.source = source;
    const Tick frontend = cfg_.frontend_latency;
    req.on_complete = [this, cb = std::move(cb),
                       frontend](Tick done) mutable {
        // Data still has to travel back to the requestor.
        eq_.schedule(done + frontend > eq_.now() ? done + frontend
                                                 : eq_.now(),
                     [cb = std::move(cb), done,
                      frontend] { cb(done + frontend); });
    };
    PendingSlot &slot = stashRequest(std::move(req));
    eq_.scheduleAfter(slot.retry, frontend);
}

void
System::issueWrite(std::uint64_t phys_addr, std::int32_t source)
{
    ctrl::Request req;
    req.type = ctrl::Request::Type::kWrite;
    req.phys_addr = phys_addr;
    req.addr = mapper_.decode(phys_addr);
    req.source = source;
    PendingSlot &slot = stashRequest(std::move(req));
    eq_.scheduleAfter(slot.retry, cfg_.frontend_latency);
}

} // namespace leaky::sys
