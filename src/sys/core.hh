/**
 * @file
 * Trace-driven core model (the gem5 substitute, §5.1). Replays a trace
 * of (non-memory instruction count, memory access) records through a
 * private cache hierarchy with an instruction-window + MSHR limit, the
 * standard simplified out-of-order front-end used with DRAM simulators:
 * the core runs ahead up to `window` instructions past the oldest
 * outstanding load and sustains up to `mshrs` parallel misses.
 *
 * Cores loop their trace forever (to keep exerting pressure in multi-
 * programmed mixes) but record the tick at which they retire their
 * measurement budget; IPC over that budget feeds weighted speedup
 * (Fig. 13).
 */

#ifndef LEAKY_SYS_CORE_HH
#define LEAKY_SYS_CORE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sys/cache.hh"
#include "sys/port.hh"
#include "sys/prefetcher.hh"

namespace leaky::sys {

/** One trace record: compute burst followed by one memory access. */
struct TraceEntry {
    std::uint32_t non_mem_insts = 0;
    std::uint64_t addr = 0;
    bool is_write = false;
};

/** Core model parameters (paper Table 1: 4-wide OoO at 3 GHz). */
struct CoreConfig {
    double issue_ipc = 4.0;       ///< Peak instructions per cycle.
    double freq_ghz = 3.0;
    std::uint32_t window = 192;   ///< Max insts past oldest pending load.
    std::uint32_t mshrs = 16;     ///< Max outstanding memory reads.
    std::uint64_t inst_budget = 1'000'000; ///< Measurement length.
    bool enable_prefetcher = false;
    CacheHierarchyConfig caches = CacheHierarchyConfig::paperDefault();
};

/** Trace-replaying core. */
class TraceCore
{
  public:
    TraceCore(MemoryPort &port, const CoreConfig &cfg,
              std::vector<TraceEntry> trace, std::int32_t source_id);

    /** Begin execution at the current simulation time. */
    void start();

    /** Instructions retired so far. */
    std::uint64_t instsRetired() const { return insts_retired_; }

    /** True once the measurement budget has been retired. */
    bool budgetDone() const { return finish_tick_ != 0; }

    /** Tick at which the budget was retired (0 if not yet). */
    Tick finishTick() const { return finish_tick_; }

    /** Tick at which the core started executing. */
    Tick startTick() const { return start_tick_; }

    /** IPC over the measurement budget (valid once budgetDone()). */
    double measuredIpc() const;

    /** IPC of whatever has retired by @p now (for capped runs). */
    double ipcAt(Tick now) const;

    const CacheHierarchy &caches() const { return caches_; }
    std::uint64_t memReads() const { return mem_reads_; }
    std::uint64_t memWrites() const { return mem_writes_; }

  private:
    void dispatch();
    void onLoadDone(std::uint64_t inst_index);
    void retire(std::uint64_t insts);
    Tick instTicks(std::uint64_t insts) const;
    void issuePrefetch(std::uint64_t line_addr);

    MemoryPort &port_;
    CoreConfig cfg_;
    std::vector<TraceEntry> trace_;
    std::int32_t source_;
    CacheHierarchy caches_;
    BestOffsetPrefetcher prefetcher_;

    std::size_t trace_pos_ = 0;
    std::uint64_t insts_dispatched_ = 0;
    std::uint64_t insts_retired_ = 0;
    Tick ready_time_ = 0;           ///< Core-local dispatch clock.
    std::deque<std::uint64_t> outstanding_; ///< Inst indices of loads.
    /** MSHR coalescing: line -> inst indices waiting on its fill. */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        pending_fills_;
    bool wake_pending_ = false;
    Tick start_tick_ = 0;
    Tick finish_tick_ = 0;
    std::uint64_t mem_reads_ = 0;
    std::uint64_t mem_writes_ = 0;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_CORE_HH
