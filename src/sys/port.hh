/**
 * @file
 * The narrow interface through which cores, attacker agents, and trace
 * replayers talk to the memory system. Keeping agents behind MemoryPort
 * lets the attack library run against any System configuration (and
 * against mocks in unit tests).
 */

#ifndef LEAKY_SYS_PORT_HH
#define LEAKY_SYS_PORT_HH

#include <cstdint>
#include <functional>

#include "dram/address_mapper.hh"
#include "sim/tick.hh"

namespace leaky::sys {

using sim::Tick;

/** Access point into the simulated memory system. */
class MemoryPort
{
  public:
    using ReadCallback = std::function<void(Tick data_ready)>;

    virtual ~MemoryPort() = default;

    /** Current simulated time. */
    virtual Tick now() const = 0;

    /** Run @p fn after @p delay ticks (models compute/sleep phases). */
    virtual void schedule(Tick delay, std::function<void()> fn) = 0;

    /**
     * Issue a cache-bypassing read (the attacks clflush first, so their
     * loads are always served by DRAM). Retries transparently when the
     * controller queue is full. @p cb fires when data is back at the
     * requestor.
     */
    virtual void issueRead(std::uint64_t phys_addr, std::int32_t source,
                           ReadCallback cb) = 0;

    /** Issue a posted write. */
    virtual void issueWrite(std::uint64_t phys_addr,
                            std::int32_t source) = 0;

    /** Physical-address <-> DRAM-coordinate mapping. */
    virtual const dram::AddressMapper &mapper() const = 0;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_PORT_HH
