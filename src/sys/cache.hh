/**
 * @file
 * Set-associative, write-back, write-allocate cache hierarchy with LRU
 * replacement and clflush support. Functional model with fixed per-level
 * lookup latencies: the attacks flush their lines so almost always miss,
 * while background applications and the browser (website fingerprinting,
 * §8 and §10.3) get realistic filtering of their memory traffic.
 */

#ifndef LEAKY_SYS_CACHE_HH
#define LEAKY_SYS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tick.hh"

namespace leaky::sys {

using sim::Tick;

/** Geometry and latency of one cache level. */
struct CacheLevelConfig {
    std::string name = "L1";
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t line_bytes = 64;
    Tick latency = 1'400; ///< ~4 cycles at 3 GHz.
};

/** One set-associative cache level. */
class CacheLevel
{
  public:
    /** Result of inserting a line: the evicted victim, if any. */
    struct Eviction {
        bool valid = false;
        bool dirty = false;
        std::uint64_t line_addr = 0;
    };

    explicit CacheLevel(const CacheLevelConfig &cfg);

    /** Look up a line; updates LRU on hit and dirtiness on writes. */
    bool access(std::uint64_t line_addr, bool is_write);

    /** Insert a line (after a miss); returns the eviction victim. */
    Eviction insert(std::uint64_t line_addr, bool dirty);

    /** Invalidate a line; @return true if it was present and dirty. */
    bool flush(std::uint64_t line_addr);

    bool contains(std::uint64_t line_addr) const;

    const CacheLevelConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(std::uint64_t line_addr) const;
    std::uint64_t tagOf(std::uint64_t line_addr) const;

    CacheLevelConfig cfg_;
    std::uint32_t sets_;
    std::vector<Line> lines_; ///< sets_ x ways, flattened.
    std::uint64_t lru_clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Configuration of a full (1-3 level) hierarchy. */
struct CacheHierarchyConfig {
    std::vector<CacheLevelConfig> levels;

    /** Paper Table 1: 32 kB L1 + 4 MB LLC (16-way). */
    static CacheHierarchyConfig paperDefault();

    /** §10.3 sensitivity: 32 kB L1 + 256 kB L2 + 6 MB LLC. */
    static CacheHierarchyConfig largeHierarchy();
};

/** Inclusive multi-level hierarchy front-ending one requestor. */
class CacheHierarchy
{
  public:
    /** Outcome of a load/store probe. */
    struct Result {
        bool hit = false;
        Tick latency = 0; ///< Lookup latency (all probed levels).
        /** Dirty lines pushed out to memory by fills. */
        std::vector<std::uint64_t> writebacks;
    };

    explicit CacheHierarchy(const CacheHierarchyConfig &cfg);

    /** Probe for a line; on a miss the caller fetches from memory and
     *  then calls fill(). */
    Result access(std::uint64_t addr, bool is_write);

    /** Install a line in all levels after a memory fetch. */
    void fill(std::uint64_t addr, bool dirty, Result &result);

    /** clflush: drop the line everywhere; @return true if a dirty copy
     *  must be written back. */
    bool flush(std::uint64_t addr);

    /** Total lookup latency of a full miss (all levels probed). */
    Tick missLatency() const;

    std::size_t numLevels() const { return levels_.size(); }
    const CacheLevel &level(std::size_t i) const { return levels_[i]; }

  private:
    std::uint64_t lineOf(std::uint64_t addr) const;

    std::vector<CacheLevel> levels_;
    std::uint32_t line_bytes_;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_CACHE_HH
