#include "sys/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::sys {

CacheLevel::CacheLevel(const CacheLevelConfig &cfg) : cfg_(cfg)
{
    LEAKY_ASSERT(cfg.size_bytes % (cfg.ways * cfg.line_bytes) == 0,
                 "cache size not divisible into sets");
    sets_ = static_cast<std::uint32_t>(
        cfg.size_bytes / (static_cast<std::uint64_t>(cfg.ways) *
                          cfg.line_bytes));
    lines_.resize(static_cast<std::size_t>(sets_) * cfg.ways);
}

std::size_t
CacheLevel::setIndex(std::uint64_t line_addr) const
{
    return static_cast<std::size_t>(line_addr % sets_);
}

std::uint64_t
CacheLevel::tagOf(std::uint64_t line_addr) const
{
    return line_addr / sets_;
}

bool
CacheLevel::access(std::uint64_t line_addr, bool is_write)
{
    const auto set = setIndex(line_addr);
    const auto tag = tagOf(line_addr);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[set * cfg_.ways + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lru_clock_;
            line.dirty = line.dirty || is_write;
            hits_ += 1;
            return true;
        }
    }
    misses_ += 1;
    return false;
}

CacheLevel::Eviction
CacheLevel::insert(std::uint64_t line_addr, bool dirty)
{
    const auto set = setIndex(line_addr);
    const auto tag = tagOf(line_addr);
    // If the line is already present (e.g., refilled by another path),
    // just refresh it.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[set * cfg_.ways + w];
        if (line.valid && line.tag == tag) {
            line.dirty = line.dirty || dirty;
            line.lru = ++lru_clock_;
            return {};
        }
    }
    // Victim: first invalid way, otherwise the least recently used.
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[set * cfg_.ways + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    LEAKY_ASSERT(victim != nullptr, "no victim way found");

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.line_addr = victim->tag * sets_ + set;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lru = ++lru_clock_;
    return ev;
}

bool
CacheLevel::flush(std::uint64_t line_addr)
{
    const auto set = setIndex(line_addr);
    const auto tag = tagOf(line_addr);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[set * cfg_.ways + w];
        if (line.valid && line.tag == tag) {
            const bool dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return dirty;
        }
    }
    return false;
}

bool
CacheLevel::contains(std::uint64_t line_addr) const
{
    const auto set = setIndex(line_addr);
    const auto tag = tagOf(line_addr);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        const Line &line = lines_[set * cfg_.ways + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

CacheHierarchyConfig
CacheHierarchyConfig::paperDefault()
{
    CacheHierarchyConfig cfg;
    cfg.levels.push_back({"L1", 32 * 1024, 8, 64, 1'400});
    cfg.levels.push_back({"LLC", 4ULL * 1024 * 1024, 16, 64, 11'000});
    return cfg;
}

CacheHierarchyConfig
CacheHierarchyConfig::largeHierarchy()
{
    CacheHierarchyConfig cfg;
    cfg.levels.push_back({"L1", 32 * 1024, 8, 64, 1'400});
    cfg.levels.push_back({"L2", 256 * 1024, 8, 64, 4'000});
    cfg.levels.push_back({"LLC", 6ULL * 1024 * 1024, 16, 64, 13'000});
    return cfg;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &cfg)
{
    LEAKY_ASSERT(!cfg.levels.empty(), "hierarchy needs >= 1 level");
    for (const auto &level : cfg.levels)
        levels_.emplace_back(level);
    line_bytes_ = cfg.levels.front().line_bytes;
}

std::uint64_t
CacheHierarchy::lineOf(std::uint64_t addr) const
{
    return addr / line_bytes_;
}

CacheHierarchy::Result
CacheHierarchy::access(std::uint64_t addr, bool is_write)
{
    Result result;
    const auto line = lineOf(addr);
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        result.latency += levels_[i].config().latency;
        if (levels_[i].access(line, is_write)) {
            result.hit = true;
            // Refill upper levels (inclusive hierarchy).
            for (std::size_t j = 0; j < i; ++j) {
                const auto ev = levels_[j].insert(line, is_write);
                if (ev.valid && ev.dirty && j + 1 < levels_.size())
                    levels_[j + 1].insert(ev.line_addr, true);
            }
            return result;
        }
    }
    return result;
}

void
CacheHierarchy::fill(std::uint64_t addr, bool dirty, Result &result)
{
    const auto line = lineOf(addr);
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        const auto ev = levels_[i].insert(line, dirty);
        if (!ev.valid || !ev.dirty)
            continue;
        if (i + 1 < levels_.size()) {
            levels_[i + 1].insert(ev.line_addr, true);
        } else {
            result.writebacks.push_back(ev.line_addr * line_bytes_);
        }
    }
}

bool
CacheHierarchy::flush(std::uint64_t addr)
{
    const auto line = lineOf(addr);
    bool dirty = false;
    for (auto &level : levels_)
        dirty = level.flush(line) || dirty;
    return dirty;
}

Tick
CacheHierarchy::missLatency() const
{
    Tick total = 0;
    for (const auto &level : levels_)
        total += level.config().latency;
    return total;
}

} // namespace leaky::sys
