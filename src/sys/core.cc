#include "sys/core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace leaky::sys {

TraceCore::TraceCore(MemoryPort &port, const CoreConfig &cfg,
                     std::vector<TraceEntry> trace, std::int32_t source_id)
    : port_(port), cfg_(cfg), trace_(std::move(trace)), source_(source_id),
      caches_(cfg.caches)
{
    LEAKY_ASSERT(!trace_.empty(), "core %d has an empty trace", source_id);
}

Tick
TraceCore::instTicks(std::uint64_t insts) const
{
    const double ticks_per_inst =
        1000.0 / (cfg_.issue_ipc * cfg_.freq_ghz);
    return static_cast<Tick>(static_cast<double>(insts) * ticks_per_inst);
}

void
TraceCore::start()
{
    start_tick_ = port_.now();
    ready_time_ = start_tick_;
    dispatch();
}

void
TraceCore::retire(std::uint64_t insts)
{
    insts_retired_ += insts;
    if (finish_tick_ == 0 && insts_retired_ >= cfg_.inst_budget)
        finish_tick_ = std::max<Tick>(port_.now(), ready_time_);
}

double
TraceCore::measuredIpc() const
{
    LEAKY_ASSERT(finish_tick_ > start_tick_, "IPC queried before finish");
    const double cycles = static_cast<double>(finish_tick_ - start_tick_) *
                          cfg_.freq_ghz / 1000.0;
    return static_cast<double>(cfg_.inst_budget) / cycles;
}

double
TraceCore::ipcAt(Tick now) const
{
    if (budgetDone())
        return measuredIpc();
    if (now <= start_tick_)
        return 0.0;
    const double cycles = static_cast<double>(now - start_tick_) *
                          cfg_.freq_ghz / 1000.0;
    const auto insts = std::min(insts_retired_, cfg_.inst_budget);
    return static_cast<double>(insts) / cycles;
}

void
TraceCore::issuePrefetch(std::uint64_t line_addr)
{
    const std::uint64_t addr = line_addr * 64;
    port_.issueRead(addr, source_, [this, addr](Tick) {
        CacheHierarchy::Result result;
        caches_.fill(addr, false, result);
        for (auto wb : result.writebacks)
            port_.issueWrite(wb, source_);
        prefetcher_.onFill(addr / 64);
    });
}

void
TraceCore::onLoadDone(std::uint64_t inst_index)
{
    const auto it = std::find(outstanding_.begin(), outstanding_.end(),
                              inst_index);
    LEAKY_ASSERT(it != outstanding_.end(), "unknown load completion");
    outstanding_.erase(it);
    retire(1);
    dispatch();
}

void
TraceCore::dispatch()
{
    const Tick now = port_.now();
    if (ready_time_ < now)
        ready_time_ = now;

    while (true) {
        // One event per trace record: once the dispatch clock moves past
        // "now", yield and resume via a scheduled wake-up. The pending
        // flag stays set until that wake fires, so dispatch() calls
        // from load completions do not schedule duplicates.
        if (ready_time_ > now) {
            if (!wake_pending_) {
                wake_pending_ = true;
                port_.schedule(ready_time_ - now, [this] {
                    wake_pending_ = false;
                    dispatch();
                });
            }
            return;
        }

        const TraceEntry &entry = trace_[trace_pos_];
        const std::uint64_t last_inst =
            insts_dispatched_ + entry.non_mem_insts + 1;

        // Instruction-window limit past the oldest outstanding load.
        if (!outstanding_.empty() &&
            last_inst - outstanding_.front() > cfg_.window) {
            return; // Resumed by onLoadDone().
        }
        const bool is_load = !entry.is_write;
        if (is_load && outstanding_.size() >= cfg_.mshrs)
            return; // Resumed by onLoadDone().

        // Consume the compute burst.
        ready_time_ += instTicks(entry.non_mem_insts);
        retire(entry.non_mem_insts);

        if (is_load) {
            auto result = caches_.access(entry.addr, false);
            outstanding_.push_back(last_inst);
            if (result.hit) {
                const Tick done = ready_time_ + result.latency;
                port_.schedule(done - now, [this, last_inst] {
                    onLoadDone(last_inst);
                });
            } else {
                const std::uint64_t addr = entry.addr;
                const std::uint64_t line = addr / 64;
                auto pending = pending_fills_.find(line);
                if (pending != pending_fills_.end()) {
                    // Coalesce: an MSHR already tracks this line.
                    pending->second.push_back(last_inst);
                } else {
                    pending_fills_[line] = {last_inst};
                    mem_reads_ += 1;
                    const Tick issue_delay =
                        (ready_time_ - now) + result.latency;
                    port_.schedule(issue_delay, [this, addr, line] {
                        port_.issueRead(addr, source_,
                                        [this, addr, line](Tick) {
                            CacheHierarchy::Result fill;
                            caches_.fill(addr, false, fill);
                            for (auto wb : fill.writebacks)
                                port_.issueWrite(wb, source_);
                            if (cfg_.enable_prefetcher)
                                prefetcher_.onFill(line);
                            auto waiters = std::move(
                                pending_fills_[line]);
                            pending_fills_.erase(line);
                            for (auto inst : waiters)
                                onLoadDone(inst);
                        });
                    });
                }
                if (cfg_.enable_prefetcher) {
                    if (auto pf = prefetcher_.onDemandMiss(addr / 64)) {
                        if (!caches_.access(*pf * 64, false).hit)
                            issuePrefetch(*pf);
                    }
                }
            }
        } else {
            // Store: write-allocate without a blocking fetch.
            auto result = caches_.access(entry.addr, true);
            if (!result.hit) {
                caches_.fill(entry.addr, true, result);
                mem_writes_ += 1;
            }
            for (auto wb : result.writebacks)
                port_.issueWrite(wb, source_);
            retire(1);
        }

        insts_dispatched_ = last_inst;
        trace_pos_ = (trace_pos_ + 1) % trace_.size();
    }
}

} // namespace leaky::sys
