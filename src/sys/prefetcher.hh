/**
 * @file
 * Best-Offset hardware prefetcher (Michaud, HPCA'16), used by the §10.3
 * sensitivity study. Learns the stride ("offset") that would have made
 * recent demand misses timely by scoring candidate offsets against a
 * recent-requests table, then prefetches demand_line + best_offset.
 */

#ifndef LEAKY_SYS_PREFETCHER_HH
#define LEAKY_SYS_PREFETCHER_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace leaky::sys {

/** Best-Offset prefetcher configuration. */
struct PrefetcherConfig {
    std::uint32_t rr_entries = 64;  ///< Recent-requests table size.
    std::uint32_t score_max = 31;   ///< Learning ends when a score hits.
    std::uint32_t round_max = 100;  ///< ... or after this many rounds.
    std::uint32_t bad_score = 1;    ///< Below this, prefetch is disabled.
};

/** Per-core Best-Offset prefetch engine (operates on line addresses). */
class BestOffsetPrefetcher
{
  public:
    explicit BestOffsetPrefetcher(const PrefetcherConfig &cfg = {});

    /**
     * Observe a demand access that reached memory (miss) and return the
     * line address to prefetch, if prefetching is currently active.
     */
    std::optional<std::uint64_t> onDemandMiss(std::uint64_t line_addr);

    /** Observe a fill completing (trains the recent-requests table). */
    void onFill(std::uint64_t line_addr);

    int bestOffset() const { return best_offset_; }
    bool active() const { return active_; }
    std::uint64_t issued() const { return issued_; }

  private:
    void learn(std::uint64_t line_addr);
    bool rrContains(std::uint64_t line_addr) const;
    void rrInsert(std::uint64_t line_addr);

    PrefetcherConfig cfg_;
    std::vector<std::uint64_t> rr_;
    std::vector<bool> rr_valid_;
    std::size_t rr_pos_ = 0;

    std::vector<int> offsets_;
    std::vector<std::uint32_t> scores_;
    std::size_t test_index_ = 0;
    std::uint32_t round_ = 0;

    int best_offset_ = 1;
    bool active_ = true;
    std::uint64_t issued_ = 0;
};

} // namespace leaky::sys

#endif // LEAKY_SYS_PREFETCHER_HH
