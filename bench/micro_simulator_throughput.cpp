/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate itself:
 * event-queue throughput, DRAM command issue, controller request
 * service, and end-to-end covert-channel window simulation speed.
 */

#include <benchmark/benchmark.h>

#include "core/leakyhammer.hh"

namespace {

using namespace leaky;

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t counter = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(static_cast<sim::Tick>(i % 97),
                             [&counter] { counter += 1; });
        eq.run();
    }
    benchmark::DoNotOptimize(counter);
    state.SetItemsProcessed(static_cast<std::int64_t>(counter));
}
BENCHMARK(BM_EventQueue);

void
BM_DramCommandIssue(benchmark::State &state)
{
    dram::DramChannel chan(dram::DramConfig::ddr5Paper());
    dram::Address a;
    sim::Tick now = 0;
    std::uint64_t commands = 0;
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            a.row = static_cast<std::uint32_t>(i % 64);
            now = std::max(now, chan.earliestIssue(dram::Command::kAct,
                                                   a));
            chan.issue(dram::Command::kAct, a, now);
            now = std::max(now + 1,
                           chan.earliestIssue(dram::Command::kRd, a));
            chan.issue(dram::Command::kRd, a, now);
            now = std::max(now + 1,
                           chan.earliestIssue(dram::Command::kPre, a));
            chan.issue(dram::Command::kPre, a, now);
            commands += 3;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(commands));
}
BENCHMARK(BM_DramCommandIssue);

void
BM_ControllerRequests(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sys::SystemConfig cfg =
            sys::SystemConfig::paper(defense::DefenseKind::kPrac);
        sys::System system(cfg);
        state.ResumeTiming();

        std::uint64_t served = 0;
        for (int i = 0; i < 2000; ++i) {
            const auto addr = attack::rowAddress(
                system.mapper(), 0, 0,
                static_cast<std::uint32_t>(i % 8),
                static_cast<std::uint32_t>(i % 4),
                static_cast<std::uint32_t>(i % 1024));
            system.issueRead(addr, 0, [&served](sim::Tick) {
                served += 1;
            });
        }
        system.run(sim::kMs);
        benchmark::DoNotOptimize(served);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.items_processed() + served));
    }
}
BENCHMARK(BM_ControllerRequests)->Unit(benchmark::kMillisecond);

void
BM_CovertWindow(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sys::SystemConfig sys_cfg = core::pracAttackSystem();
        sys::System system(sys_cfg);
        auto cfg = attack::makeChannelConfig(
            system, attack::ChannelKind::kPrac);
        state.ResumeTiming();

        std::vector<std::uint8_t> symbols = {1, 0, 1, 0};
        attack::runCovertChannel(system, cfg, symbols);
    }
    state.SetLabel("4 windows of 25 us each");
}
BENCHMARK(BM_CovertWindow)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
