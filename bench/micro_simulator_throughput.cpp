/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate itself:
 * event-queue throughput (one-shot and member-bound reusable events),
 * schedule/cancel churn, DRAM command issue, controller request
 * service, and end-to-end covert-channel window simulation speed.
 *
 * Besides the console output, a run always writes a JSON report
 * (items/sec per bench) to BENCH_kernel.json -- override the path with
 * the LEAKY_BENCH_OUT environment variable -- so perf changes can be
 * tracked across commits. Smoke mode for CI:
 *
 *   micro_simulator_throughput --benchmark_min_time=0.01
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/leakyhammer.hh"
#include "runner/pool.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"

namespace {

using namespace leaky;

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t counter = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(static_cast<sim::Tick>(i % 97),
                             [&counter] { counter += 1; });
        eq.run();
    }
    benchmark::DoNotOptimize(counter);
    state.SetItemsProcessed(static_cast<std::int64_t>(counter));
}
BENCHMARK(BM_EventQueue);

/** A component self-clocking off one reusable member-bound event --
 *  the controller's steady-state pattern (zero allocations). */
struct Ticker {
    explicit Ticker(sim::EventQueue &q)
        : eq(q), ev(sim::memberEvent<&Ticker::tick>(this))
    {
    }

    void
    tick()
    {
        fired += 1;
        if (fired < target)
            eq.schedule(ev, eq.now() + 10);
    }

    sim::EventQueue &eq;
    sim::Event ev;
    std::uint64_t fired = 0;
    std::uint64_t target = 0;
};

void
BM_EventQueueBound(benchmark::State &state)
{
    sim::EventQueue eq;
    Ticker ticker(eq);
    for (auto _ : state) {
        ticker.target += 1000;
        eq.schedule(ticker.ev, eq.now());
        eq.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ticker.fired));
}
BENCHMARK(BM_EventQueueBound);

/** Wake-timer churn: reschedule a pending event (cancel + schedule),
 *  as the controller does whenever a nearer wake-up appears. */
void
BM_EventQueueCancelReschedule(benchmark::State &state)
{
    sim::EventQueue eq;
    Ticker ticker(eq);
    std::uint64_t moves = 0;
    for (auto _ : state) {
        ticker.target = ~std::uint64_t{0};
        eq.schedule(ticker.ev, eq.now() + 1'000'000);
        for (int i = 0; i < 1000; ++i) {
            eq.reschedule(ticker.ev, eq.now() + 1'000'000 -
                                         static_cast<sim::Tick>(i));
            moves += 1;
        }
        eq.deschedule(ticker.ev);
        // Drain the stale heap entries the churn left behind, outside
        // the timed region, so iterations measure steady-state cost
        // rather than an ever-growing heap.
        state.PauseTiming();
        eq.run();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(moves));
}
BENCHMARK(BM_EventQueueCancelReschedule);

void
BM_DramCommandIssue(benchmark::State &state)
{
    dram::DramChannel chan(dram::DramConfig::ddr5Paper());
    dram::Address a;
    // The controller annotates every queued address once at enqueue;
    // issue against the same pre-flattened form here.
    chan.config().org.annotate(a);
    sim::Tick now = 0;
    std::uint64_t commands = 0;
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            a.row = static_cast<std::uint32_t>(i % 64);
            now = std::max(now, chan.earliestIssue(dram::Command::kAct,
                                                   a));
            chan.issue(dram::Command::kAct, a, now);
            now = std::max(now + 1,
                           chan.earliestIssue(dram::Command::kRd, a));
            chan.issue(dram::Command::kRd, a, now);
            now = std::max(now + 1,
                           chan.earliestIssue(dram::Command::kPre, a));
            chan.issue(dram::Command::kPre, a, now);
            commands += 3;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(commands));
}
BENCHMARK(BM_DramCommandIssue);

void
BM_ControllerRequests(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sys::SystemConfig cfg =
            sys::SystemConfig::paper(defense::DefenseKind::kPrac);
        sys::System system(cfg);
        state.ResumeTiming();

        std::uint64_t served = 0;
        for (int i = 0; i < 2000; ++i) {
            const auto addr = attack::rowAddress(
                system.mapper(), 0, 0,
                static_cast<std::uint32_t>(i % 8),
                static_cast<std::uint32_t>(i % 4),
                static_cast<std::uint32_t>(i % 1024));
            system.issueRead(addr, 0, [&served](sim::Tick) {
                served += 1;
            });
        }
        system.run(sim::kMs);
        benchmark::DoNotOptimize(served);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.items_processed() + served));
    }
}
BENCHMARK(BM_ControllerRequests)->Unit(benchmark::kMillisecond);

void
BM_CovertWindow(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        sys::SystemConfig sys_cfg = core::pracAttackSystem();
        sys::System system(sys_cfg);
        auto cfg = attack::makeChannelConfig(
            system, attack::ChannelKind::kPrac);
        state.ResumeTiming();

        std::vector<std::uint8_t> symbols = {1, 0, 1, 0};
        attack::runCovertChannel(system, cfg, symbols);
    }
    state.SetLabel("4 windows of 25 us each");
}
BENCHMARK(BM_CovertWindow)->Unit(benchmark::kMillisecond);

/** Sweep-runner throughput: expand + pool-execute + merge a batch of
 *  synthetic jobs (a seeded RNG spin standing in for a short
 *  simulation). Arg = worker threads; jobs/s is the tracked number. */
void
BM_SweepRunner(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    runner::SweepPool pool(threads);
    const runner::SweepSpec spec = runner::syntheticBenchSpec(256,
                                                             20'000);

    std::uint64_t jobs = 0;
    for (auto _ : state) {
        const auto result = runner::runSweep(spec, pool);
        jobs += result.jobs;
        benchmark::DoNotOptimize(result.rows.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}

/** 1, 4, and one-per-hardware-thread workers (deduplicated). */
void
sweepRunnerThreadCounts(benchmark::internal::Benchmark *bench)
{
    std::vector<int> counts = {
        1, 4,
        static_cast<int>(runner::SweepPool::resolveThreads(0))};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    for (int threads : counts)
        bench->Arg(threads);
}
BENCHMARK(BM_SweepRunner)->Apply(sweepRunnerThreadCounts);

} // namespace

int
main(int argc, char **argv)
{
    // Default to emitting BENCH_kernel.json unless the caller already
    // chose an output file; explicit flags always win.
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }

    const char *out_path = std::getenv("LEAKY_BENCH_OUT");
    std::string out_flag = "--benchmark_out=";
    out_flag += out_path ? out_path : "BENCH_kernel.json";
    std::string fmt_flag = "--benchmark_out_format=json";

    std::vector<char *> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_count = static_cast<int>(args.size());
    args.push_back(nullptr);

    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
