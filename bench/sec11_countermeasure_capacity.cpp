/**
 * @file
 * §11.4 "Channel Capacity Reduction": the PRAC covert channel attacked
 * against systems protected by the paper's countermeasures.
 *
 *  - FR-RFM (§11.1) decouples preventive actions from access patterns:
 *    the receiver observes only the fixed-rate RFMs regardless of the
 *    sender, eliminating the channel (paper: -100% capacity).
 *  - PRAC-RIAC (§11.2) randomises counter initialisation, injecting
 *    unintentional back-offs that corrupt the decoding (paper: -86%
 *    on average, under ambient activity).
 *  - Bank-Level PRAC (§11.3) confines back-off visibility to one bank:
 *    a receiver in a different bank sees nothing (scope reduction);
 *    same-bank attacks still work.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

namespace {

leaky::attack::ChannelResult
runAgainst(leaky::defense::DefenseKind kind, bool cross_bank,
           leaky::sim::Tick noise_sleep)
{
    using namespace leaky;
    sys::SystemConfig sys_cfg = core::pracAttackSystem();
    sys_cfg.defense.kind = kind;
    if (kind == defense::DefenseKind::kFrRfm) {
        sys_cfg.defense.nrh = 160;
        sys_cfg.defense.nbo_override = 0;
    }
    sys::System system(sys_cfg);

    attack::CovertConfig cfg =
        attack::makeChannelConfig(system, attack::ChannelKind::kPrac);
    if (cross_bank) {
        // Receiver in a different bank group/bank than the sender; the
        // sender self-conflicts between two of its own rows and needs
        // a longer window to charge the counters alone.
        cfg.sender_addr2 =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1064);
        cfg.receiver_addr =
            attack::rowAddress(system.mapper(), 0, 0, 4, 2, 2000);
        cfg.window = 50 * sim::kUs;
    }

    std::unique_ptr<attack::NoiseAgent> noise;
    if (noise_sleep > 0) {
        attack::NoiseConfig noise_cfg;
        noise_cfg.addrs = attack::rowsInBank(system.mapper(), 0, 0, 0, 0,
                                             3000, 6, 512);
        noise_cfg.sleep = noise_sleep;
        noise = std::make_unique<attack::NoiseAgent>(system, noise_cfg);
        noise->start();
    }

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0,
        (leaky::core::fullScale() ? 100 : 25) * 8);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    return attack::runCovertChannel(system, cfg, symbols);
}

} // namespace

int
main()
{
    using namespace leaky;
    core::banner("§11.4: LeakyHammer vs countermeasures");

    // Ambient activity (the paper's noisy-environment assumption for
    // the RIAC evaluation, §11.2 footnote 12: the reduction depends on
    // memory access patterns): the Eq.-2 microbenchmark at 75%
    // intensity, applied identically to every defense.
    const sim::Tick ambient = 650'000;

    const auto baseline =
        runAgainst(defense::DefenseKind::kPrac, false, ambient);
    const auto riac =
        runAgainst(defense::DefenseKind::kPracRiac, false, ambient);
    const auto fr_rfm =
        runAgainst(defense::DefenseKind::kFrRfm, false, ambient);
    const auto bank_cross =
        runAgainst(defense::DefenseKind::kPracBank, true, ambient);
    const auto bank_same =
        runAgainst(defense::DefenseKind::kPracBank, false, ambient);

    const auto reduction = [&baseline](double capacity) {
        return baseline.capacity > 0.0
                   ? (1.0 - capacity / baseline.capacity) * 100.0
                   : 0.0;
    };

    core::Table table({"defense", "error prob", "capacity (Kbps)",
                       "capacity reduction"});
    const auto row = [&](const char *name,
                         const attack::ChannelResult &r) {
        table.addRow({name, core::fmt(r.symbol_error, 3),
                      core::fmt(r.capacity / 1000.0, 1),
                      core::fmt(reduction(r.capacity), 0) + "%"});
    };
    row("PRAC (insecure baseline)", baseline);
    row("PRAC-RIAC", riac);
    row("FR-RFM", fr_rfm);
    row("Bank-PRAC (cross-bank rx)", bank_cross);
    row("Bank-PRAC (same-bank rx)", bank_same);
    std::printf("%s", table.str().c_str());
    std::printf("\npaper reference: FR-RFM -100%%, PRAC-RIAC -86%%; "
                "Bank-Level PRAC removes cross-bank visibility but not "
                "same-bank attacks\n");
    return 0;
}
