/**
 * @file
 * §9.1 / Table 3 (row granularity): leaking a PRAC activation-counter
 * value by sharing a row with the victim. The victim primes the shared
 * row's counter with a secret count; the attacker hammers the row and
 * counts its own activations until the back-off, recovering
 * NBO - own_count. Paper: a 7-bit counter value leaks in 13.6 us on
 * average => 501 Kbps.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("§9.1: PRAC activation-counter value leakage");

    const std::uint32_t trials = core::fullScale() ? 64 : 24;
    sim::Rng rng(1234);

    double total_us = 0.0;
    double total_abs_err = 0.0;
    std::uint32_t exact = 0;
    core::Table table({"trial", "secret", "leaked", "time (us)"});

    for (std::uint32_t t = 0; t < trials; ++t) {
        sys::SystemConfig cfg = core::pracAttackSystem();
        sys::System system(cfg);

        const auto shared =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000);
        const auto victim_conflict =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000);
        const auto attacker_conflict =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 3000);

        // Secret: victim's activation count, up to ~NBO/2 so neither
        // the priming nor the victim's own row triggers the back-off.
        const auto secret =
            static_cast<std::uint32_t>(rng.range(4, 60));

        attack::CounterLeakConfig leak_cfg;
        leak_cfg.shared_addr = shared;
        leak_cfg.conflict_addr = attacker_conflict;
        leak_cfg.nbo = 128;
        leak_cfg.classifier = attack::LatencyClassifier::forTiming(
            cfg.ctrl.dram.timing);

        attack::CounterLeakVictim victim(system, shared, victim_conflict);
        attack::CounterLeakAttacker attacker(system, leak_cfg);

        attack::CounterLeakResult result;
        bool done = false;
        victim.prime(secret, [&] {
            attacker.leak([&](const attack::CounterLeakResult &r) {
                result = r;
                done = true;
            });
        });
        while (!done)
            system.run(sim::kMs);

        const double us = static_cast<double>(result.elapsed) / 1e6;
        total_us += us;
        const int err = static_cast<int>(result.leaked_count) -
                        static_cast<int>(secret);
        total_abs_err += err < 0 ? -err : err;
        exact += (err >= -2 && err <= 2) ? 1 : 0;
        if (t < 8) {
            table.addRow({std::to_string(t), std::to_string(secret),
                          std::to_string(result.leaked_count),
                          core::fmt(us, 1)});
        }
    }
    std::printf("%s\n", table.str().c_str());

    const double mean_us = total_us / trials;
    const double bits = 7.0; // log2(NBO = 128).
    std::printf("trials:                  %u\n", trials);
    std::printf("mean leak time:          %.1f us (paper: 13.6 us)\n",
                mean_us);
    std::printf("mean |error| (counts):   %.2f\n",
                total_abs_err / trials);
    std::printf("within +/-2 counts:      %u / %u\n", exact, trials);
    std::printf("leakage throughput:      %.0f Kbps (paper: 501 Kbps)\n",
                bits / (mean_us * 1e-6) / 1000.0);
    return 0;
}
