/**
 * @file
 * Fig. 7: RFM covert channel capacity and error probability versus
 * noise intensity (same Eq.-2 sweep as Fig. 4). Paper: <0.01 error /
 * 46.3 Kbps at 1%; capacity > 20.7 Kbps until ~50% intensity, then a
 * rapid decline -- PRFM's bank-level counters make this channel less
 * noise-tolerant than the PRAC channel.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 7: RFM channel vs noise intensity");

    const sim::Tick min_sleep = 200'000;
    const sim::Tick max_sleep = 2'000'000;
    const std::vector<double> intensities =
        core::fullScale()
            ? std::vector<double>{1,  10, 20, 30, 40, 50,
                                  60, 70, 80, 90, 100}
            : std::vector<double>{1, 25, 50, 75, 100};

    core::Table table({"intensity (%)", "sleep (us)", "error prob",
                       "capacity (Kbps)"});
    for (double intensity : intensities) {
        const auto sleep =
            stats::sleepForIntensity(intensity, min_sleep, max_sleep);
        core::ChannelRunSpec spec;
        spec.kind = attack::ChannelKind::kRfm;
        spec.noise_sleep = sleep;
        spec.message_bytes = core::fullScale() ? 100 : 20;
        const auto result = core::runPatternSweep(spec);
        table.addRow({core::fmt(intensity, 0),
                      core::fmt(static_cast<double>(sleep) / 1e6, 2),
                      core::fmt(result.error_probability, 3),
                      core::fmt(result.capacity / 1000.0, 1)});
        std::printf("intensity %5.0f%%: error %.3f capacity %s\n",
                    intensity, result.error_probability,
                    core::fmtKbps(result.capacity).c_str());
    }
    std::printf("\nCSV:\n%s", table.csv().c_str());
    std::printf("\npaper reference: <0.01 error / 46.3 Kbps @1%%; "
                ">20.7 Kbps until 50%%\n");
    return 0;
}
