/**
 * @file
 * Fig. 10: accuracy of the eight classical ML models on website
 * fingerprints (back-off traces) under PRAC at NRH=64. Paper ranking:
 * decision tree 0.75 > random forest 0.48 > gradient boosting 0.47 >
 * kNN 0.30 > SVM 0.11 > logistic regression 0.08 > AdaBoost 0.08 >
 * perceptron 0.06; random-guess chance 1/40 = 0.025.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 10: website-fingerprint classifier accuracy");

    core::FingerprintSpec spec;
    spec.sites = core::fullScale() ? 40 : 12;
    spec.loads_per_site = core::fullScale() ? 50 : 12;
    spec.duration = core::fullScale() ? 4 * sim::kMs : 2 * sim::kMs;

    std::printf("collecting %u sites x %u loads...\n", spec.sites,
                spec.loads_per_site);
    const auto raw = core::collectFingerprints(spec);
    const auto data = core::fingerprintDataset(raw);
    std::printf("dataset: %zu samples, %zu features, %d classes "
                "(chance = %.3f)\n\n",
                data.size(), data.features(), data.n_classes,
                1.0 / data.n_classes);

    const auto split = ml::stratifiedSplit(data, 0.25, 77);
    core::Table table({"model", "test accuracy"});
    for (const auto &model : ml::makeFig10Models()) {
        model->fit(split.train);
        const auto cm = ml::evaluate(*model, split.test);
        table.addRow({model->name(), core::fmt(cm.accuracy(), 3)});
        std::printf("%-20s accuracy %.3f\n", model->name().c_str(),
                    cm.accuracy());
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\npaper reference: DT 0.75, RF 0.48, GB 0.47, "
                "kNN 0.30, SVM 0.11, LR 0.08, Ada 0.08, Perc 0.06 "
                "(chance 0.025)\n");
    return 0;
}
