/**
 * @file
 * Table 3: what LeakyHammer-PRAC, LeakyHammer-RFM, and DRAMA leak at
 * each colocation granularity, demonstrated empirically:
 *
 *  - channel granularity: only LeakyHammer-PRAC observes the victim's
 *    preventive actions (receiver in a different bank group still
 *    decodes the sender's pattern under PRAC; DRAMA has no signal);
 *  - bank-group granularity: LeakyHammer-RFM observes same-bank RFMs;
 *  - row granularity: LeakyHammer-PRAC leaks the activation counter
 *    value itself (§9.1; see sec9_counter_leak).
 */

#include <cstdio>

#include "core/leakyhammer.hh"

namespace {

/**
 * Channel error with the receiver moved to (bankgroup, bank); the
 * sender stays at (0, 0). (-1, -1) keeps the same-bank default.
 * LeakyHammer-PRAC works anywhere in the channel; LeakyHammer-RFM
 * needs the same bank index (RFMsb blocks that bank in every bank
 * group), which is exactly Table 3's granularity distinction.
 */
double
channelError(leaky::attack::ChannelKind kind, int bankgroup, int bank)
{
    using namespace leaky;
    sys::SystemConfig sys_cfg = kind == attack::ChannelKind::kPrac
                                    ? core::pracAttackSystem()
                                    : core::prfmAttackSystem();
    sys::System system(sys_cfg);
    attack::CovertConfig cfg = attack::makeChannelConfig(system, kind);
    if (bankgroup >= 0) {
        // Non-colocated receiver: the sender must self-conflict, and
        // charging the counters alone takes ~2x as long per bit.
        cfg.sender_addr2 =
            attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1064);
        cfg.receiver_addr = attack::rowAddress(
            system.mapper(), 0, 0, static_cast<std::uint32_t>(bankgroup),
            static_cast<std::uint32_t>(bank), 2000);
        if (kind == attack::ChannelKind::kPrac)
            cfg.window = 50 * sim::kUs;
    }
    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered1,
        (core::fullScale() ? 50 : 20) * 8);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    const auto result = attack::runCovertChannel(system, cfg, symbols);
    return result.symbol_error;
}

const char *
verdict(double error)
{
    return error < 0.15 ? "leaks" : "no signal";
}

} // namespace

int
main()
{
    using namespace leaky;
    core::banner("Table 3: leaked information vs colocation");

    // PRAC: receiver in an arbitrary other bank (bg 5, bank 3).
    const double prac_channel =
        channelError(attack::ChannelKind::kPrac, 5, 3);
    const double prac_bank =
        channelError(attack::ChannelKind::kPrac, -1, -1);
    // RFM: receiver shares the bank index (bg 5, bank 0).
    const double rfm_channel =
        channelError(attack::ChannelKind::kRfm, 5, 0);
    const double rfm_bank =
        channelError(attack::ChannelKind::kRfm, -1, -1);

    core::Table table({"attack", "channel/bank-group coloc.",
                       "same-bank coloc.", "row coloc."});
    table.addRow({"LeakyHammer-PRAC",
                  std::string(verdict(prac_channel)) + " (err " +
                      core::fmt(prac_channel, 2) + ")",
                  std::string(verdict(prac_bank)) + " (err " +
                      core::fmt(prac_bank, 2) + ")",
                  "activation count (§9.1)"});
    table.addRow({"LeakyHammer-RFM",
                  std::string(verdict(rfm_channel)) + " (err " +
                      core::fmt(rfm_channel, 2) + ")",
                  std::string(verdict(rfm_bank)) + " (err " +
                      core::fmt(rfm_bank, 2) + ")",
                  "bank activation count"});
    table.addRow({"DRAMA (row-buffer)", "no signal (needs same bank)",
                  "row hit/conflict only", "row hit/conflict only"});
    std::printf("%s", table.str().c_str());
    std::printf("\npaper reference (Table 3): only LeakyHammer leaks at "
                "channel/bank-group granularity; PRAC leaks counter "
                "values at row granularity\n");
    return 0;
}
