/**
 * @file
 * Fig. 6: RFM-based (PRFM, TRFM = 40) covert channel transmitting the
 * 40-bit "MICRO" message; the receiver counts RFM-latency events per
 * window and compares against Trecv. Also reports the §7.3 raw bit
 * rate over the four 100-byte patterns (paper: 48.7 Kbps).
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 6: RFM covert channel, 40-bit \"MICRO\"");

    const auto demo = core::runMessageDemo(attack::ChannelKind::kRfm);
    core::Table table({"window", "sent", "RFMs seen", "decoded"});
    for (std::size_t i = 0; i < demo.sent_bits.size(); ++i) {
        table.addRow({std::to_string(i),
                      demo.sent_bits[i] ? "1" : "0",
                      std::to_string(demo.detections[i]),
                      demo.received_bits[i] ? "1" : "0"});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("decoded message: \"%s\" (expected \"MICRO\")\n",
                demo.decoded_text.c_str());

    core::banner("§7.3: raw bit rate over four message patterns");
    core::ChannelRunSpec spec;
    spec.kind = attack::ChannelKind::kRfm;
    spec.message_bytes = core::fullScale() ? 100 : 25;
    const auto sweep = core::runPatternSweep(spec);
    std::printf("raw bit rate:  %s (paper: 48.7 Kbps)\n",
                core::fmtKbps(sweep.raw_bit_rate).c_str());
    std::printf("error prob.:   %.3f\n", sweep.error_probability);
    std::printf("capacity:      %s\n",
                core::fmtKbps(sweep.capacity).c_str());
    return 0;
}
