/**
 * @file
 * Fig. 13: normalized weighted speedup of PRAC, PRFM, PRAC-RIAC,
 * FR-RFM, and Bank-Level PRAC over NRH in {1024..64}, versus a
 * baseline with no RowHammer mitigation, on multiprogrammed four-core
 * SPEC-like mixes. Paper headlines: FR-RFM ~7% overhead at NRH=1024,
 * 18.2x at NRH=64; PRAC-RIAC 2.14x at NRH=64 (cheaper than FR-RFM at
 * very low thresholds); PRAC-Bank within 2.5% of PRAC everywhere.
 */

#include <cstdio>
#include <map>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 13: mitigation performance (normalized WS)");

    core::PerfSpec spec;
    spec.mixes = core::fullScale() ? 60 : 6;
    spec.insts_per_core = core::fullScale() ? 500'000 : 120'000;

    const auto points = core::runMitigationPerf(spec);

    // Pivot: one row per defense, one column per NRH.
    std::vector<std::string> headers = {"defense"};
    for (auto nrh : spec.nrh_values)
        headers.push_back("NRH=" + std::to_string(nrh));
    core::Table table(headers);

    std::map<std::string, std::vector<double>> by_defense;
    std::vector<std::string> order;
    for (const auto &p : points) {
        if (by_defense.find(p.defense) == by_defense.end())
            order.push_back(p.defense);
        by_defense[p.defense].push_back(p.normalized_ws);
    }
    for (const auto &name : order) {
        std::vector<std::string> row = {name};
        for (double ws : by_defense[name])
            row.push_back(core::fmt(ws, 3));
        table.addRow(row);
        std::printf("%-10s:", name.c_str());
        for (double ws : by_defense[name])
            std::printf(" %6.3f", ws);
        std::printf("\n");
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\nCSV:\n%s", table.csv().c_str());
    std::printf("\npaper reference: FR-RFM 0.93 @1024 and 0.055 "
                "(18.2x) @64; PRAC-RIAC 0.84 @1024, 0.64 @128, 0.47 "
                "(2.14x) @64; PRAC-Bank within 2.5%% of PRAC\n");
    return 0;
}
