/**
 * @file
 * Table 2: 10-fold cross-validation of the best fingerprinting model
 * (decision tree): macro F1 / precision / recall, mean and standard
 * deviation across folds. Paper: F1 71.8 (4.2), precision 74.1 (4.4),
 * recall 72.4 (4.2).
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Table 2: decision tree, 10-fold cross-validation");

    core::FingerprintSpec spec;
    spec.sites = core::fullScale() ? 40 : 12;
    spec.loads_per_site = core::fullScale() ? 50 : 12;
    spec.duration = core::fullScale() ? 4 * sim::kMs : 2 * sim::kMs;

    std::printf("collecting %u sites x %u loads...\n", spec.sites,
                spec.loads_per_site);
    const auto raw = core::collectFingerprints(spec);
    const auto data = core::fingerprintDataset(raw);

    const std::uint32_t folds = core::fullScale() ? 10 : 5;
    const auto result = ml::crossValidate(
        [] { return std::make_unique<ml::DecisionTree>(); }, data,
        folds);

    core::Table table({"metric", "mean (%)", "stddev"});
    table.addRow({"F1", core::fmt(result.f1.mean * 100.0, 1),
                  core::fmt(result.f1.stddev * 100.0, 1)});
    table.addRow({"Precision",
                  core::fmt(result.precision.mean * 100.0, 1),
                  core::fmt(result.precision.stddev * 100.0, 1)});
    table.addRow({"Recall", core::fmt(result.recall.mean * 100.0, 1),
                  core::fmt(result.recall.stddev * 100.0, 1)});
    table.addRow({"Accuracy",
                  core::fmt(result.accuracy.mean * 100.0, 1),
                  core::fmt(result.accuracy.stddev * 100.0, 1)});
    std::printf("%s", table.str().c_str());
    std::printf("\npaper reference (10-fold): F1 71.8 (4.2), precision "
                "74.1 (4.4), recall 72.4 (4.2)\n");
    return 0;
}
