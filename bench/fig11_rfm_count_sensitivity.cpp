/**
 * @file
 * Fig. 11: effect of the number of recovery RFMs per back-off. With 2
 * RFMs (a) and especially 1 RFM (b), the back-off latency shrinks
 * toward the periodic-refresh band, so the receiver misclassifies
 * events and error probability rises across all noise intensities.
 * Paper: 0.04 error / 29.95 Kbps at the lowest noise with 2 RFMs;
 * 1 RFM is worse at every point.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 11: RFMs per back-off (PRAC channel)");

    const sim::Tick min_sleep = 200'000;
    const sim::Tick max_sleep = 2'000'000;
    const std::vector<double> intensities =
        core::fullScale() ? std::vector<double>{1, 25, 50, 75, 100}
                          : std::vector<double>{1, 50, 100};

    core::Table table({"RFMs/back-off", "intensity (%)", "error prob",
                       "capacity (Kbps)"});
    for (std::uint32_t rfms : {4u, 2u, 1u}) {
        for (double intensity : intensities) {
            core::ChannelRunSpec spec;
            spec.kind = attack::ChannelKind::kPrac;
            spec.rfms_per_backoff = rfms;
            spec.filter_refresh = rfms < 4;
            spec.noise_sleep = stats::sleepForIntensity(
                intensity, min_sleep, max_sleep);
            spec.message_bytes = core::fullScale() ? 50 : 16;
            const auto result = core::runPatternSweep(spec);
            table.addRow({std::to_string(rfms),
                          core::fmt(intensity, 0),
                          core::fmt(result.error_probability, 3),
                          core::fmt(result.capacity / 1000.0, 1)});
            std::printf("%u RFMs, intensity %5.0f%%: error %.3f "
                        "capacity %s\n",
                        rfms, intensity, result.error_probability,
                        core::fmtKbps(result.capacity).c_str());
        }
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\npaper reference: 2-RFM 0.04 error / 29.95 Kbps at "
                "lowest noise; 1-RFM worse everywhere (overlaps the "
                "refresh band)\n");
    return 0;
}
