/**
 * @file
 * Fig. 12: channel capacity versus preventive-action latency. A
 * single-RFM back-off whose window is swept from 0 to 250 ns: the
 * timing channel survives any latency above the attacker's conflict
 * jitter (~10 ns in the paper), far below the minimum refresh-based
 * preventive action (96 ns for blast radius 1, 192 ns for 2).
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 12: capacity vs preventive-action latency");

    const std::vector<std::uint64_t> latencies_ns =
        core::fullScale()
            ? std::vector<std::uint64_t>{0,  2,  5,  10, 20,  40,
                                         96, 150, 192, 250}
            : std::vector<std::uint64_t>{0, 5, 10, 40, 96, 192, 250};

    core::Table table(
        {"latency (ns)", "error prob", "capacity (Kbps)"});
    for (auto ns : latencies_ns) {
        core::ChannelRunSpec spec;
        spec.kind = attack::ChannelKind::kPrac;
        spec.rfms_per_backoff = 1;
        spec.backoff_rfm_latency = ns ? ns * 1000 : 1;
        // Model the preventive action as immediately following the
        // triggering activation (paper Fig. 12 abstraction).
        spec.aboact_override = 1'000;
        spec.filter_refresh = true;
        // Detection threshold just above the conflict band: the action
        // partially overlaps the access's own precharge, so the
        // observed delta is sub-linear in L.
        spec.backoff_min_override = 105'000 + ns * 150;
        spec.message_bytes = core::fullScale() ? 50 : 16;
        const auto result = core::runPatternSweep(spec);
        table.addRow({std::to_string(ns),
                      core::fmt(result.error_probability, 3),
                      core::fmt(result.capacity / 1000.0, 1)});
        std::printf("latency %4llu ns: error %.3f capacity %s\n",
                    static_cast<unsigned long long>(ns),
                    result.error_probability,
                    core::fmtKbps(result.capacity).c_str());
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\nvertical reference lines: BR=1 at 96 ns, BR=2 at "
                "192 ns (minimum refresh-based preventive action)\n");
    std::printf("paper reference: channel eliminated only below ~10 ns.\n"
                "NOTE: in this simulator even a zero-latency action "
                "leaks through its drain artifacts and bank contention "
                "(~45 ns observable floor vs the paper's ~10 ns jitter "
                "floor), so the left-edge elimination point is not "
                "directly observable; the preserved conclusion is that "
                "latencies at or above the minimum refresh-based action "
                "(96/192 ns) never eliminate the channel.\n");
    return 0;
}
