/**
 * @file
 * §12: trigger-algorithm taxonomy. Exact trigger algorithms (PRAC,
 * PRFM) let an attacker deterministically trigger and observe
 * preventive actions; stateless random algorithms (PARA) fire
 * independently of the count, so the receiver's per-window observable
 * distribution barely separates sender-active from sender-idle windows
 * and the channel degrades.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

namespace {

leaky::attack::ChannelResult
runOn(leaky::defense::DefenseKind kind, double para_p)
{
    using namespace leaky;
    sys::SystemConfig sys_cfg = core::pracAttackSystem();
    sys_cfg.defense.kind = kind;
    sys_cfg.defense.para_probability = para_p;
    sys::System system(sys_cfg);

    // Receiver strategy per defense: PRAC's big back-offs use the
    // back-off detector; PRFM/PARA preventive actions are smaller, so
    // the receiver counts slow events per window against Trecv.
    attack::CovertConfig cfg = attack::makeChannelConfig(
        system, kind == defense::DefenseKind::kPrac
                    ? attack::ChannelKind::kPrac
                    : attack::ChannelKind::kRfm);
    cfg.window = 25 * sim::kUs;
    cfg.trecv = 3;

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0,
        (core::fullScale() ? 64 : 24) * 8);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    return attack::runCovertChannel(system, cfg, symbols);
}

} // namespace

int
main()
{
    using namespace leaky;
    core::banner("§12: exact vs random trigger algorithms");

    core::Table table({"defense (trigger class)", "error prob",
                       "capacity (Kbps)"});

    const auto prac = runOn(defense::DefenseKind::kPrac, 0.0);
    table.addRow({"PRAC (exact, device)",
                  core::fmt(prac.symbol_error, 3),
                  core::fmt(prac.capacity / 1000.0, 1)});

    const auto prfm = runOn(defense::DefenseKind::kPrfm, 0.0);
    table.addRow({"PRFM (exact, controller)",
                  core::fmt(prfm.symbol_error, 3),
                  core::fmt(prfm.capacity / 1000.0, 1)});

    for (double p : {0.005, 0.02, 0.08}) {
        const auto para = runOn(defense::DefenseKind::kPara, p);
        table.addRow({"PARA (random, p=" + core::fmt(p, 3) + ")",
                      core::fmt(para.symbol_error, 3),
                      core::fmt(para.capacity / 1000.0, 1)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\npaper reference (§12, footnote 7): exact triggers "
                "enable reliable channels; random triggers cannot be "
                "triggered reliably, so the channel degrades at low "
                "action rates -- though at higher p a statistical "
                "channel persists (secure low-NRH PARA configurations "
                "pay for this with performance overhead)\n");
    return 0;
}
