/**
 * @file
 * Fig. 2: memory-request latencies (Listing 1 routine) under PRAC with
 * NBO = 128 -- row-buffer conflicts, periodic refreshes, and PRAC
 * back-offs as seen from userspace, including the 255-request back-off
 * period and the §6.2 latency statistics.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 2: PRAC-induced memory access latency");

    // 560 requests capture two back-off events separated by the
    // 2 x NBO - 1 = 255-request period (paper Fig. 2 shows 512).
    const auto result = core::runLatencyTrace(560);

    // Latency band histogram.
    std::uint64_t bands[5] = {0, 0, 0, 0, 0};
    for (const auto &s : result.samples)
        bands[static_cast<int>(result.classifier.classify(s.latency))]++;
    core::Table table({"band", "count", "mean latency (ns)"});
    table.addRow({"row buffer conflict", std::to_string(bands[1]),
                  core::fmt(result.mean_conflict_latency_ns, 1)});
    table.addRow({"periodic refresh",
                  std::to_string(bands[2] + bands[3]),
                  core::fmt(result.mean_refresh_latency_ns, 1)});
    table.addRow({"PRAC back-off", std::to_string(bands[4]),
                  core::fmt(result.mean_backoff_latency_ns, 1)});
    std::printf("%s\n", table.str().c_str());

    // Back-off period in requests (paper: 255 = 2 x NBO - 1).
    std::vector<std::size_t> backoff_positions;
    for (std::size_t i = 0; i < result.samples.size(); ++i) {
        if (result.classifier.classify(result.samples[i].latency) ==
            attack::LatencyClass::kBackoff)
            backoff_positions.push_back(i);
    }
    std::printf("back-off positions (request #): ");
    for (auto p : backoff_positions)
        std::printf("%zu ", p);
    std::printf("\n(expected period: 2 x NBO - 1 = 255 requests)\n");

    const double ratio = result.mean_backoff_latency_ns /
                         (result.mean_refresh_latency_ns > 0
                              ? result.mean_refresh_latency_ns
                              : 1.0);
    std::printf("\nback-off / refresh latency ratio: %.1fx "
                "(paper: 1.9x)\n",
                ratio);

    // The latency series itself, as a sparkline (x = request index).
    std::vector<double> series;
    for (const auto &s : result.samples)
        series.push_back(static_cast<double>(s.latency));
    std::printf("\nlatency series (%zu requests):\n%s\n",
                series.size(), core::sparkline(series).c_str());

    // CSV for plotting.
    core::Table csv({"request", "latency_ns"});
    for (std::size_t i = 0; i < result.samples.size(); ++i)
        csv.addRow({std::to_string(i),
                    std::to_string(result.samples[i].latency / 1000)});
    std::printf("\nCSV:\n%s", csv.csv().c_str());
    return 0;
}
