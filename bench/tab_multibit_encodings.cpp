/**
 * @file
 * §6.3 "Multibit Covert Channels": binary, ternary, and quaternary
 * PRAC channels. The sender encodes symbols in its memory intensity so
 * the receiver observes the back-off after a symbol-specific number of
 * its own accesses. Paper: raw rates 39.0 / 61.7 / 76.8 Kbps and
 * capacities 38+ / 46.7 / 10.1 Kbps (error 0.00 / 0.04 / 0.29) --
 * higher rates trade off noise margin.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("§6.3: multibit PRAC covert channels");

    core::Table table({"encoding", "bits/symbol", "raw (Kbps)",
                       "sym error", "capacity (Kbps)"});
    const char *names[] = {"binary", "ternary", "quaternary"};
    for (std::uint32_t levels = 2; levels <= 4; ++levels) {
        core::ChannelRunSpec spec;
        spec.kind = attack::ChannelKind::kPrac;
        spec.levels = levels;
        spec.message_bytes = core::fullScale() ? 32 : 16;
        // The paper transmits 32-byte messages; a random payload
        // exercises all symbol values.
        spec.pattern = attack::MessagePattern::kRandom;
        const auto run = core::runChannel(spec);
        core::PatternSweepResult result;
        result.raw_bit_rate = run.raw_bit_rate;
        result.error_probability = run.symbol_error;
        result.capacity = run.capacity;
        table.addRow({names[levels - 2],
                      core::fmt(attack::bitsPerSymbol(levels), 2),
                      core::fmt(result.raw_bit_rate / 1000.0, 1),
                      core::fmt(result.error_probability, 3),
                      core::fmt(result.capacity / 1000.0, 1)});
        std::printf("%-10s: raw %s, error %.3f, capacity %s\n",
                    names[levels - 2],
                    core::fmtKbps(result.raw_bit_rate).c_str(),
                    result.error_probability,
                    core::fmtKbps(result.capacity).c_str());
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\npaper reference: raw 39.0 / 61.7 / 76.8 Kbps; "
                "multibit errors 0.04 / 0.29\n");
    return 0;
}
