/**
 * @file
 * §10.3: sensitivity to a larger cache hierarchy (256 kB L2 + 6 MB LLC)
 * with Best-Offset prefetching. Paper: PRAC / RFM channel capacities
 * drop slightly (36.7 / 47.7 Kbps, i.e., -5.8% / -2.1%) and website
 * classification drops ~4.2% -- larger caches and prefetching do NOT
 * prevent LeakyHammer.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("§10.3: larger caches + Best-Offset prefetching");

    core::Table table({"attack", "baseline", "large caches + BO"});

    for (auto kind :
         {attack::ChannelKind::kPrac, attack::ChannelKind::kRfm}) {
        const char *name =
            kind == attack::ChannelKind::kPrac ? "PRAC channel"
                                               : "RFM channel";
        double capacity[2];
        for (int large = 0; large < 2; ++large) {
            core::ChannelRunSpec spec;
            spec.kind = kind;
            spec.message_bytes = core::fullScale() ? 100 : 20;
            spec.large_caches = large == 1;
            // A background app exercises the caches/prefetcher.
            spec.background = {workload::appsWithIntensity(
                workload::Intensity::kMedium)[1]};
            capacity[large] = core::runPatternSweep(spec).capacity;
        }
        table.addRow({name, core::fmtKbps(capacity[0]),
                      core::fmtKbps(capacity[1])});
        std::printf("%s: %s -> %s (%.1f%%)\n", name,
                    core::fmtKbps(capacity[0]).c_str(),
                    core::fmtKbps(capacity[1]).c_str(),
                    (capacity[1] / capacity[0] - 1.0) * 100.0);
    }

    // Fingerprinting accuracy with the larger hierarchy.
    core::FingerprintSpec spec;
    spec.sites = core::fullScale() ? 40 : 10;
    spec.loads_per_site = core::fullScale() ? 50 : 10;
    spec.duration = 2 * sim::kMs;
    double acc[2];
    for (int large = 0; large < 2; ++large) {
        core::FingerprintSpec fp = spec;
        fp.large_caches = large == 1;
        const auto data =
            core::fingerprintDataset(core::collectFingerprints(fp));
        const auto split = ml::stratifiedSplit(data, 0.25, 77);
        ml::DecisionTree dt;
        dt.fit(split.train);
        acc[large] = ml::evaluate(dt, split.test).accuracy();
    }
    table.addRow({"fingerprint accuracy", core::fmt(acc[0], 3),
                  core::fmt(acc[1], 3)});
    std::printf("fingerprint accuracy: %.3f -> %.3f\n", acc[0], acc[1]);

    std::printf("\n%s", table.str().c_str());
    std::printf("\npaper reference: 36.7 Kbps (-5.8%%), 47.7 Kbps "
                "(-2.1%%), accuracy 71.8%% (-4.2%%)\n");
    return 0;
}
