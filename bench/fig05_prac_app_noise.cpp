/**
 * @file
 * Fig. 5: PRAC covert channel with concurrently running SPEC-like
 * applications of low / medium / high memory intensity (classified by
 * RBMPKI). Paper: error 0.01/0.02/0.03 and capacity 36.0/32.2/31.2
 * Kbps for L/M/H.
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 5: PRAC channel vs application noise");

    core::Table table(
        {"intensity", "apps", "error prob", "capacity (Kbps)"});
    for (auto level :
         {workload::Intensity::kLow, workload::Intensity::kMedium,
          workload::Intensity::kHigh}) {
        const auto apps = workload::appsWithIntensity(level);
        core::ChannelRunSpec spec;
        spec.kind = attack::ChannelKind::kPrac;
        spec.message_bytes = core::fullScale() ? 100 : 20;
        // One concurrent application per run (paper §6.3); pick the
        // first of the class for a stable, documented selection.
        spec.background = {apps[0]};
        const auto result = core::runPatternSweep(spec);
        table.addRow({workload::intensityName(level),
                      apps[0].name,
                      core::fmt(result.error_probability, 3),
                      core::fmt(result.capacity / 1000.0, 1)});
        std::printf("%s: error %.3f capacity %s\n",
                    workload::intensityName(level),
                    result.error_probability,
                    core::fmtKbps(result.capacity).c_str());
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\npaper reference: capacity 36.0 / 32.2 / 31.2 Kbps "
                "and error 0.01 / 0.02 / 0.03 for L / M / H\n");
    return 0;
}
