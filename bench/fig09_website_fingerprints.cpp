/**
 * @file
 * Fig. 9: website fingerprints as back-off strips. Collects two loads
 * each of three sites (the paper shows wikipedia/reddit/youtube) under
 * PRAC at NRH=64 and renders the attacker-observed back-off counts per
 * execution window, demonstrating (1) intra-site similarity,
 * (2) inter-site differences, (3) similar early windows (shared
 * browser-startup work).
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;
    core::banner("Fig. 9: website fingerprints (back-off strips)");

    // Site indices of wikipedia (34), reddit (24), youtube (38).
    const std::uint32_t sites[] = {34, 24, 38};
    const std::uint32_t windows = 24;

    core::FingerprintSpec spec;
    spec.sites = 40; // Full catalogue; we collect selected sites only.
    spec.loads_per_site = 1;
    spec.duration = core::fullScale() ? 4 * sim::kMs : 2 * sim::kMs;

    for (std::uint32_t site : sites) {
        for (std::uint32_t load = 0; load < 2; ++load) {
            const auto sample =
                core::collectOneFingerprint(spec, site, load);
            const auto features = attack::extractFeatures(
                sample.backoff_times, sample.duration, windows);
            std::vector<double> strip(features.values.begin(),
                                      features.values.begin() + windows);
            std::printf("%-12s load %u  [%s]  (%3zu back-offs)\n",
                        workload::websiteNames()[site].c_str(), load,
                        core::sparkline(strip).c_str(),
                        sample.backoff_times.size());
        }
    }
    std::printf("\nEach cell is one execution window; darker = more "
                "back-offs. Loads of one site match; sites differ; "
                "early windows look alike (browser startup).\n");
    return 0;
}
