#!/usr/bin/env python3
"""Docs gate: keep the documentation verifiably in sync with the code.

Four checks, stdlib-only so CI and laptops run it with any Python 3:

1. **Figure catalogue coverage** (needs --names): every figure name the
   `leakyhammer` binary registers must have a `### `name`` entry in
   docs/FIGURES.md, and every catalogue entry must name a registered
   figure — the catalogue can neither lag behind nor run ahead of the
   registry.

       build/leakyhammer list --names > names.txt
       tools/check_docs.py --names names.txt

2. **Golden coverage** (needs --names): every registered figure must
   have a golden CSV in tests/golden/ (regenerate with `leakyhammer
   repro --update-golden`), and every golden CSV must name a registered
   figure — goldens can neither lag behind the registry nor outlive a
   deleted figure silently.

3. **Lint-rule catalogue coverage** (always): docs/LINTING.md must hold
   a `### `rule-id`` heading for exactly the rule ids the leaky-lint
   registry exposes (the same set `tools/lint/leaky_lint.py
   --list-rules` prints, meta rules included) — the rule catalogue can
   neither lag behind nor run ahead of the analyzer.

4. **Link resolution** (always): every relative markdown link in
   README.md and docs/*.md must point at an existing file. External
   (http/https/mailto) links and pure #anchors are skipped; a trailing
   #fragment on a relative link is stripped before the check.

Exit status: 0 = docs in sync, 1 = at least one failure, 2 = bad
invocation.
"""

import argparse
import os
import re
import sys

HEADING_RE = re.compile(r"^###\s+`([^`]+)`")
# [text](target) with no whitespace in the target; images (![...]) match
# too via the optional bang.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def doc_files(root):
    files = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return [f for f in files if os.path.isfile(f)]


def check_catalogue(names_path, figures_md, failures):
    registered = read_names(names_path, failures)
    if registered is None:
        return
    try:
        with open(figures_md) as fh:
            documented = [m.group(1) for m in
                          (HEADING_RE.match(line) for line in fh) if m]
    except OSError as err:
        failures.append("cannot read %s: %s" % (figures_md, err))
        return

    for name in registered:
        if name not in documented:
            failures.append(
                "figure '%s' is registered but has no '### `%s`' entry "
                "in docs/FIGURES.md" % (name, name))
    for name in documented:
        if name not in registered:
            failures.append(
                "docs/FIGURES.md documents '%s', which the binary does "
                "not register (stale entry?)" % name)
    seen = set()
    for name in documented:
        if name in seen:
            failures.append(
                "docs/FIGURES.md documents '%s' twice" % name)
        seen.add(name)
    if not failures:
        print("check_docs: catalogue in sync (%d figures)"
              % len(registered))


def read_names(names_path, failures):
    try:
        with open(names_path) as fh:
            return [line.strip() for line in fh if line.strip()]
    except OSError as err:
        failures.append("cannot read --names file: %s" % err)
        return None


def check_goldens(names_path, golden_dir, failures):
    registered = read_names(names_path, failures)
    if registered is None:
        return
    if not os.path.isdir(golden_dir):
        failures.append(
            "golden directory '%s' does not exist (run `leakyhammer "
            "repro --update-golden`)" % golden_dir)
        return
    goldens = sorted(
        name[:-len(".csv")] for name in os.listdir(golden_dir)
        if name.endswith(".csv"))
    for name in registered:
        if name not in goldens:
            failures.append(
                "figure '%s' is registered but has no golden CSV in "
                "%s (run `leakyhammer repro --update-golden`)"
                % (name, golden_dir))
    for name in goldens:
        if name not in registered:
            failures.append(
                "%s/%s.csv has no registered figure (stale golden? "
                "delete it or restore the figure)" % (golden_dir, name))
    if not failures:
        print("check_docs: goldens in sync (%d figures)" % len(goldens))


def check_lint_rules(root, failures):
    """docs/LINTING.md headings <-> the leaky-lint rule registry.

    Imports the same registry `leaky_lint.py --list-rules` prints, so
    the doc check and the tool cannot disagree about what a rule is.
    """
    sys.path.insert(0, os.path.join(root, "tools", "lint"))
    try:
        import rules as lint_rules
    except Exception as err:  # Import failure is a docs-gate failure.
        failures.append(
            "cannot import the tools/lint rules package: %s" % err)
        return
    registered = lint_rules.all_rule_ids()
    linting_md = os.path.join(root, "docs", "LINTING.md")
    try:
        with open(linting_md) as fh:
            documented = [m.group(1) for m in
                          (HEADING_RE.match(line) for line in fh) if m]
    except OSError as err:
        failures.append("cannot read %s: %s" % (linting_md, err))
        return
    for rule_id in registered:
        if rule_id not in documented:
            failures.append(
                "lint rule '%s' is registered but has no '### `%s`' "
                "entry in docs/LINTING.md" % (rule_id, rule_id))
    for rule_id in documented:
        if rule_id not in registered:
            failures.append(
                "docs/LINTING.md documents rule '%s', which "
                "leaky_lint.py does not register (stale entry?)"
                % rule_id)
    seen = set()
    for rule_id in documented:
        if rule_id in seen:
            failures.append(
                "docs/LINTING.md documents rule '%s' twice" % rule_id)
        seen.add(rule_id)
    if not failures:
        print("check_docs: lint-rule catalogue in sync (%d rules)"
              % len(registered))


def check_links(files, failures):
    checked = 0
    for path in files:
        base = os.path.dirname(path)
        with open(path) as fh:
            text = fh.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                failures.append(
                    "%s: broken relative link '%s'"
                    % (os.path.relpath(path, repo_root()),
                       match.group(1)))
    print("check_docs: %d relative links checked" % checked)


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--names",
        help="file with one registered figure name per line (from "
             "`leakyhammer list --names`); omits the catalogue and "
             "golden checks when absent")
    parser.add_argument(
        "--golden-dir",
        help="golden CSV directory to cross-check against --names "
             "(default: tests/golden)")
    args = parser.parse_args(argv)

    root = repo_root()
    failures = []
    if args.names:
        check_catalogue(args.names, os.path.join(root, "docs",
                                                 "FIGURES.md"),
                        failures)
        check_goldens(args.names,
                      args.golden_dir or os.path.join(root, "tests",
                                                      "golden"),
                      failures)
    check_lint_rules(root, failures)
    check_links(doc_files(root), failures)

    for failure in failures:
        print("check_docs: %s" % failure, file=sys.stderr)
    if failures:
        print("check_docs: %d failure(s)" % len(failures),
              file=sys.stderr)
        return 1
    print("check_docs: docs are in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
