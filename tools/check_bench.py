#!/usr/bin/env python3
"""Bench-regression guard: compare a freshly emitted BENCH_kernel.json
against the checked-in baseline and fail when any benchmark regresses
beyond the tolerance.

Stdlib-only on purpose — CI and laptops run it with any Python 3.

For throughput benchmarks (items_per_second) a regression is a LOWER
rate; for the rest a regression is a HIGHER cpu_time. The default
tolerance is deliberately loose (25%) to absorb shared-runner noise;
tighten or loosen it per environment:

    tools/check_bench.py --current build/BENCH_kernel.json
    LEAKY_BENCH_TOLERANCE=0.40 tools/check_bench.py ...   # noisy runner
    tools/check_bench.py --tolerance 0.10 ...             # quiet box

Headline metrics carry their own stricter ceiling (PER_BENCH_TOLERANCE):
the effective tolerance for those is min(blanket, per-bench), so a noisy
runner's widened blanket never loosens the tracked hot-loop guarantee.

Exit status: 0 = no regressions, 1 = at least one regression (or a
baseline benchmark missing from the current run), 2 = bad invocation.
"""

import argparse
import json
import os
import sys

# Stricter per-benchmark ceilings for tracked headline metrics. The
# controller hot loop is the repo's optimisation target; a 10% loss
# there is a real regression, not runner noise.
PER_BENCH_TOLERANCE = {
    "BM_ControllerRequests": 0.10,
}


def load_benchmarks(path):
    """Map benchmark name -> record for per-iteration runs."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for record in data.get("benchmarks", []):
        if record.get("run_type", "iteration") != "iteration":
            continue  # Skip aggregate rows (mean/median/stddev).
        out[record["name"]] = record
    return out


def metric_of(record):
    """(value, higher_is_better, label) for one benchmark record."""
    if "items_per_second" in record:
        return record["items_per_second"], True, "items/s"
    return record["cpu_time"], False, "cpu_time (%s)" % record.get(
        "time_unit", "ns")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--baseline", default="BENCH_kernel.json",
        help="tracked baseline JSON (default: %(default)s)")
    parser.add_argument(
        "--current", required=True,
        help="freshly emitted JSON from --benchmark_out")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("LEAKY_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional regression (default 0.25; env "
             "override LEAKY_BENCH_TOLERANCE)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
    except (OSError, ValueError) as err:
        print("check_bench: %s" % err, file=sys.stderr)
        return 2

    failures = []
    width = max(len(name) for name in baseline) if baseline else 0
    for name, base_record in sorted(baseline.items()):
        if name not in current:
            failures.append(name)
            print("%-*s  MISSING from current run" % (width, name))
            continue
        base, higher_better, label = metric_of(base_record)
        cur, _, _ = metric_of(current[name])
        if base <= 0:
            continue  # Degenerate baseline; nothing to compare.
        # Positive change = improvement, in either metric direction.
        change = (cur - base) / base if higher_better \
            else (base - cur) / base
        tolerance = min(args.tolerance,
                        PER_BENCH_TOLERANCE.get(name, args.tolerance))
        regressed = change < -tolerance
        if regressed:
            failures.append(name)
        print("%-*s  %+7.1f%%  %s  (%s, tol %.0f%%)" %
              (width, name, change * 100.0,
               "REGRESSED" if regressed else "ok", label,
               tolerance * 100.0))

    for name in sorted(set(current) - set(baseline)):
        print("%-*s  (new; no baseline)" % (width, name))

    if failures:
        print("check_bench: %d benchmark(s) beyond tolerance: %s" %
              (len(failures), ", ".join(failures)),
              file=sys.stderr)
        return 1
    print("check_bench: all %d benchmarks within tolerance "
          "(blanket %.0f%%)" %
          (len(baseline), args.tolerance * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
