"""Shared infrastructure for leaky-lint rules."""


class FileContext:
    """Everything a rule may inspect about one file.

    ``tokens`` is the comment-stripped token stream of the file itself;
    ``sibling_tokens`` is the stream of the sibling header (``foo.hh``
    next to ``foo.cc``) when one exists, so rules that need member
    declarations (the unordered-container rule) see class members
    declared in the header a ``.cc`` file implements. That one hop is
    the only cross-file knowledge in the tool — by design: rules must
    stay sound under it, not depend on whole-program resolution.
    """

    def __init__(self, relpath, tokens, sibling_tokens=()):
        self.relpath = relpath
        self.tokens = tokens
        self.sibling_tokens = list(sibling_tokens)


class Rule:
    rule_id = None
    summary = None

    def applies(self, relpath):
        raise NotImplementedError

    def check(self, ctx):
        raise NotImplementedError


def in_dir(relpath, *prefixes):
    return any(relpath == p or relpath.startswith(p + "/")
               for p in prefixes)


def match_close(tokens, open_idx, open_text="(", close_text=")"):
    """Index of the token matching ``tokens[open_idx]``, or None.

    Nesting-aware over the single open/close pair given; the token
    stream has comments/strings already collapsed, so parentheses in
    literals cannot confuse the count.
    """
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i]
        if t.kind != "punct":
            continue
        if t.text == open_text:
            depth += 1
        elif t.text == close_text:
            depth -= 1
            if depth == 0:
                return i
    return None


def calls_of(tokens, name):
    """Indices i where tokens[i] is ident ``name`` followed by '('."""
    out = []
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text == name and \
                i + 1 < len(tokens) and tokens[i + 1].kind == "punct" \
                and tokens[i + 1].text == "(":
            out.append(i)
    return out


def prev_code(tokens, i):
    """The token before index i, or None at the start."""
    return tokens[i - 1] if i > 0 else None
