"""Assertion hygiene rules.

``LEAKY_ASSERT`` is on in every build; ``LEAKY_DCHECK`` compiles out
under ``-DLEAKY_DCHECKS=OFF`` (the release/perf configuration). Two
invariants follow: raw ``assert`` (whose availability depends on
``NDEBUG``, which this repo deliberately does not key checks on) is
banned, and a ``LEAKY_DCHECK`` may not contain side effects — an
increment inside one runs in the dev build and vanishes in release,
the classic heisenbug.
"""

from .base import Rule, calls_of, in_dir, match_close

_MUTATING_PUNCTS = frozenset((
    "++", "--", "=", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<=", ">>=",
))


class NoRawAssert(Rule):
    rule_id = "no-raw-assert"
    summary = ("Use LEAKY_ASSERT / LEAKY_DCHECK instead of raw "
               "assert() (static_assert is exempt)")

    def applies(self, relpath):
        return in_dir(relpath, "src", "tests", "bench")

    def check(self, ctx):
        # static_assert lexes as its own identifier, so only the bare
        # C assert macro can match here.
        return [(ctx.tokens[i].line,
                 "raw assert(); use LEAKY_ASSERT (always on) or "
                 "LEAKY_DCHECK (hot paths, off in perf builds)")
                for i in calls_of(ctx.tokens, "assert")]


class NoSideEffectDchecks(Rule):
    rule_id = "no-side-effect-dchecks"
    summary = ("No ++/--/assignment inside LEAKY_DCHECK(...): it "
               "compiles out under -DLEAKY_DCHECKS=OFF")

    def applies(self, relpath):
        return in_dir(relpath, "src", "tests", "bench")

    def check(self, ctx):
        out = []
        toks = ctx.tokens
        for i in calls_of(toks, "LEAKY_DCHECK"):
            close = match_close(toks, i + 1)
            if close is None:
                continue
            for t in toks[i + 2:close]:
                if t.kind == "punct" and t.text in _MUTATING_PUNCTS:
                    out.append(
                        (t.line,
                         "side effect ('%s') inside LEAKY_DCHECK; the "
                         "expression is removed entirely when "
                         "LEAKY_DCHECKS=OFF" % t.text))
                    break
        return out
