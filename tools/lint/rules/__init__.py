"""leaky-lint rule registry.

Each rule is an object with:

  ``rule_id``   stable kebab-case id, printed in diagnostics and used
                by the waiver grammar ``// lint:allow(rule-id): reason``
  ``summary``   one-line description (``--list-rules --verbose``)
  ``applies(relpath)``
                scope predicate over the repo-root-relative posix path
  ``check(ctx)``
                returns a list of ``(line, message)`` violations

Rules scan the comment-stripped token stream from
:mod:`cpplex` — never raw text — so banned names inside strings, raw
strings, and comments can not fire, and ``static_assert`` is naturally
distinct from ``assert``.

Two meta rule ids are emitted by the engine itself rather than by a
rule object, and are registered here so ``--list-rules`` and the
docs/LINTING.md cross-check cover them:

  ``bad-waiver``     malformed waiver comment, unknown rule id, or
                     empty reason
  ``unused-waiver``  a waiver that suppressed no diagnostic — stale
                     waivers are themselves contract violations
"""

from . import assertions, channels, determinism, signals

#: Rule ids the engine emits without a rule object.
META_RULE_IDS = ("bad-waiver", "unused-waiver")

#: Meta-rule summaries (for --list-rules --verbose and docs).
META_RULE_SUMMARIES = {
    "bad-waiver": "Waiver comment is malformed, names an unknown rule, "
                  "or gives no reason",
    "unused-waiver": "Waiver suppressed no diagnostic; delete it or "
                     "fix the rule id / target line",
}

ALL_RULES = (
    determinism.NoWallclock(),
    determinism.NoAmbientRng(),
    determinism.NoUnorderedIterationInResultPaths(),
    channels.ExplicitChannel(),
    assertions.NoRawAssert(),
    assertions.NoSideEffectDchecks(),
    signals.SignalHandlerSafety(),
)


def all_rule_ids():
    """Every id a diagnostic can carry, sorted: rules + meta rules."""
    return sorted([r.rule_id for r in ALL_RULES] + list(META_RULE_IDS))


def rule_summaries():
    """id -> one-line summary, meta rules included."""
    out = {r.rule_id: r.summary for r in ALL_RULES}
    out.update(META_RULE_SUMMARIES)
    return out
