"""Signal-handler safety rule.

Pins the contract documented at the top of ``src/campaign/campaign.cc``:
a function installed via ``std::signal`` executes at arbitrary points,
so its body may touch only ``volatile std::sig_atomic_t`` variables and
lock-free atomics — no locks, no allocation, no stdio, no reads of
ordinary globals. The rule resolves each installed handler to its
definition in the same file (handlers must be defined next to their
installation site precisely so this stays checkable) and walks the
body token by token.
"""

from .base import Rule, calls_of, in_dir, match_close

# Identifiers a handler body may always mention: types, qualifiers,
# literals, and the namespaces needed to spell them.
_NEUTRAL_IDENTS = frozenset((
    "int", "void", "bool", "true", "false", "const", "volatile",
    "std", "sig_atomic_t", "static_cast", "memory_order_relaxed",
    "memory_order_release", "memory_order_seq_cst", "memory_order",
))
# Member functions of lock-free atomics that are async-signal-safe.
_ATOMIC_METHODS = frozenset((
    "store", "load", "exchange", "test_and_set", "clear",
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor",
))
_INSTALL_FNS = frozenset(("signal", "sigaction"))
_NOT_HANDLERS = frozenset(("SIG_IGN", "SIG_DFL", "SIG_ERR", "nullptr"))


class SignalHandlerSafety(Rule):
    rule_id = "signal-handler-safety"
    summary = ("Signal handlers may only touch volatile sig_atomic_t "
               "and lock-free atomics, and must be defined in the "
               "file that installs them")

    def applies(self, relpath):
        return in_dir(relpath, "src")

    def check(self, ctx):
        toks = ctx.tokens
        handlers = self._installed_handlers(toks)
        if not handlers:
            return []
        safe = self._safe_variables(toks)
        out = []
        for name, install_line in handlers:
            body = self._handler_body(toks, name)
            if body is None:
                out.append(
                    (install_line,
                     "signal handler '%s' is not defined in this "
                     "file; define it next to the std::signal call "
                     "so its body stays verifiable" % name))
                continue
            out.extend(self._check_body(name, body, safe))
        return out

    @staticmethod
    def _installed_handlers(toks):
        """(handler-name, line) for each std::signal(SIG..., name)."""
        found = []
        for fn in _INSTALL_FNS:
            for i in calls_of(toks, fn):
                close = match_close(toks, i + 1)
                if close is None:
                    continue
                args = toks[i + 2:close]
                # Handler = last top-level identifier argument.
                depth = 0
                last_arg_start = 0
                for k, t in enumerate(args):
                    if t.kind != "punct":
                        continue
                    if t.text in ("(", "[", "{"):
                        depth += 1
                    elif t.text in (")", "]", "}"):
                        depth -= 1
                    elif t.text == "," and depth == 0:
                        last_arg_start = k + 1
                handler = [t for t in args[last_arg_start:]
                           if t.kind == "ident" and
                           t.text not in _NEUTRAL_IDENTS]
                if len(handler) == 1 and \
                        handler[0].text not in _NOT_HANDLERS:
                    found.append((handler[0].text, toks[i].line))
        return found

    @staticmethod
    def _safe_variables(toks):
        """Names declared volatile sig_atomic_t or std::atomic*."""
        safe = set()
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text == "sig_atomic_t":
                # Require a volatile qualifier nearby (the contract is
                # `volatile std::sig_atomic_t name`).
                window = [w.text for w in toks[max(0, i - 4):i]]
                j = i + 1
                if "volatile" in window and j < len(toks) and \
                        toks[j].kind == "ident":
                    safe.add(toks[j].text)
            elif t.text in ("atomic", "atomic_flag", "atomic_bool",
                            "atomic_int", "atomic_uint"):
                j = i + 1
                if j < len(toks) and toks[j].text == "<":
                    close = match_close(toks, j, "<", ">")
                    j = close + 1 if close is not None else None
                if j is not None and j < len(toks) and \
                        toks[j].kind == "ident":
                    safe.add(toks[j].text)
        return safe

    @staticmethod
    def _handler_body(toks, name):
        """Tokens of the handler's function body, or None.

        Matches `name ( ...params... ) { body }` — i.e. a definition,
        not the installation call or a declaration.
        """
        for i in calls_of(toks, name):
            close = match_close(toks, i + 1)
            if close is None or close + 1 >= len(toks):
                continue
            if toks[close + 1].text != "{":
                continue
            end = match_close(toks, close + 1, "{", "}")
            if end is None:
                continue
            params = {t.text for t in toks[i + 2:close]
                      if t.kind == "ident"}
            return params, toks[close + 2:end]
        return None

    @staticmethod
    def _check_body(name, body, safe):
        params, tokens = body
        out = []
        for k, t in enumerate(tokens):
            if t.kind != "ident":
                continue
            is_call = k + 1 < len(tokens) and \
                tokens[k + 1].kind == "punct" and \
                tokens[k + 1].text == "("
            prev = tokens[k - 1] if k > 0 else None
            is_member = prev is not None and prev.kind == "punct" \
                and prev.text in (".", "->")
            if is_call:
                if is_member and t.text in _ATOMIC_METHODS:
                    continue
                out.append(
                    (t.line,
                     "signal handler '%s' calls '%s()'; handlers may "
                     "only assign volatile sig_atomic_t / lock-free "
                     "atomics" % (name, t.text)))
                continue
            if t.text in _NEUTRAL_IDENTS or t.text in params or \
                    t.text in safe or \
                    (is_member and t.text in _ATOMIC_METHODS):
                continue
            out.append(
                (t.line,
                 "signal handler '%s' touches '%s', which is not a "
                 "volatile sig_atomic_t or lock-free atomic declared "
                 "in this file" % (name, t.text)))
        return out
