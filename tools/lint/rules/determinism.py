"""Determinism rules: the bit-identical reproduction contract at rest.

Every figure CSV, golden file, and fuzz artifact this repo produces is
promised to be byte-identical for any thread count, shard count, or
resume schedule. These rules ban the three ways that promise quietly
rots: wall-clock reads feeding simulation results, randomness that does
not flow through ``sim::seedFanout``, and hash-order iteration on a
path that renders output rows.
"""

from .base import Rule, in_dir, match_close

# Chrono clocks and C time APIs whose mere presence in simulation code
# is a violation — simulated Ticks are the only time source.
_CLOCK_IDENTS = frozenset((
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get", "ftime",
))
# C functions that are only violations when *called* (the bare names
# are common as members/locals: `job.time`, `Tick time` ...).
_CLOCK_CALLS = frozenset(("time", "clock"))

_ENGINE_IDENTS = frozenset((
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "knuth_b",
    "ranlux24", "ranlux24_base", "ranlux48", "ranlux48_base",
))
_RAND_CALLS = frozenset(("rand", "srand", "rand_r", "random", "srandom"))

_UNORDERED = frozenset((
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
))


def _is_member_access(tokens, i):
    """True when tokens[i] is reached via `.` or `->` (a member)."""
    if i == 0:
        return False
    return tokens[i - 1].kind == "punct" and \
        tokens[i - 1].text in (".", "->")


# Keywords that precede an *expression*, so `return time(...)` is a
# call, not a declaration `Tick time(...)`.
_EXPR_KEYWORDS = frozenset((
    "return", "throw", "case", "else", "do", "goto",
    "co_return", "co_yield", "co_await",
))


def _is_declared_name(tokens, i):
    """True when tokens[i] names a declared entity (`Tick time(...)`):
    the previous token is a (non-expression-keyword) identifier or a
    closing angle bracket of a template type (`std::vector<int> time`)."""
    if i == 0:
        return False
    p = tokens[i - 1]
    if p.kind == "ident":
        return p.text not in _EXPR_KEYWORDS
    return p.kind == "punct" and p.text == ">"


class NoWallclock(Rule):
    rule_id = "no-wallclock"
    summary = ("Wall-clock reads are banned in src/ — simulation time "
               "is sim ticks only")

    def applies(self, relpath):
        return in_dir(relpath, "src")

    def check(self, ctx):
        out = []
        toks = ctx.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text in _CLOCK_IDENTS:
                out.append((t.line,
                            "wall-clock source '%s' in simulation code; "
                            "results must depend on sim ticks only"
                            % t.text))
            elif t.text in _CLOCK_CALLS and i + 1 < len(toks) and \
                    toks[i + 1].kind == "punct" and \
                    toks[i + 1].text == "(" and \
                    not _is_member_access(toks, i) and \
                    not _is_declared_name(toks, i):
                out.append((t.line,
                            "call to wall-clock function '%s()'"
                            % t.text))
        return out


class NoAmbientRng(Rule):
    rule_id = "no-ambient-rng"
    summary = ("All randomness must flow through sim::seedFanout / "
               "sim::Rng; std engines and std::rand are banned")

    def applies(self, relpath):
        # sim/rng.hh is the one sanctioned randomness implementation.
        return in_dir(relpath, "src", "tests", "bench") and \
            relpath != "src/sim/rng.hh"

    def check(self, ctx):
        out = []
        toks = ctx.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text in _ENGINE_IDENTS:
                out.append((t.line,
                            "ambient randomness source '%s'; seed a "
                            "sim::Rng via sim::seedFanout instead"
                            % t.text))
            elif t.text in _RAND_CALLS and i + 1 < len(toks) and \
                    toks[i + 1].kind == "punct" and \
                    toks[i + 1].text == "(" and \
                    not _is_member_access(toks, i) and \
                    not _is_declared_name(toks, i):
                out.append((t.line,
                            "call to ambient RNG '%s()'" % t.text))
        return out


class NoUnorderedIterationInResultPaths(Rule):
    """Range-for over an unordered container in a file that renders
    CSV/report rows.

    Hash iteration order is unspecified across standard libraries and
    can change with load factor; letting it reach an output row breaks
    the byte-identical contract in the least debuggable way possible.
    A file is a *result path* when its code mentions a CSV- or
    report-flavoured identifier (``csvCell``, ``mergedCsv``,
    ``renderReport``...). Detection is per-file plus the sibling
    header, so members declared in ``foo.hh`` are known while checking
    ``foo.cc``.
    """

    rule_id = "no-unordered-iteration-in-result-paths"
    summary = ("No range-for over unordered containers in files that "
               "render CSV/report rows")

    def applies(self, relpath):
        return in_dir(relpath, "src")

    def check(self, ctx):
        toks = ctx.tokens
        if not self._is_result_path(toks):
            return []
        names = self._unordered_names(ctx.sibling_tokens)
        names |= self._unordered_names(toks)
        names |= self._aliases(toks, names)
        if not names:
            return []
        out = []
        for line, range_expr in self._range_fors(toks):
            for t in range_expr:
                if t.kind == "ident" and t.text in names:
                    out.append(
                        (line,
                         "range-for over unordered container '%s' in a "
                         "result path; hash order is not part of the "
                         "bit-identical contract — use an ordered "
                         "container or sort before rendering" % t.text))
                    break
        return out

    @staticmethod
    def _is_result_path(toks):
        for t in toks:
            if t.kind != "ident":
                continue
            low = t.text.lower()
            if "csv" in low or "report" in low:
                return True
        return False

    @staticmethod
    def _unordered_names(toks):
        """Names declared with an unordered_{map,set,...} type."""
        names = set()
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "ident" and t.text in _UNORDERED and \
                    i + 1 < len(toks) and toks[i + 1].text == "<":
                close = match_close(toks, i + 1, "<", ">")
                if close is not None and close + 1 < len(toks) and \
                        toks[close + 1].kind == "ident":
                    names.add(toks[close + 1].text)
                    i = close + 2
                    continue
            i += 1
        return names

    @staticmethod
    def _aliases(toks, names):
        """One-hop `auto [&]x = <...>.member;` aliases of known names.

        Only plain member-access initialisers count — an initialiser
        containing a call (``m.find(k)``) yields an iterator, not the
        container, and must not taint the alias.
        """
        aliases = set()
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text != "auto":
                continue
            j = i + 1
            while j < len(toks) and toks[j].text in ("&", "const"):
                j += 1
            if j + 1 >= len(toks) or toks[j].kind != "ident" or \
                    toks[j + 1].text != "=":
                continue
            alias = toks[j].text
            k = j + 2
            init = []
            while k < len(toks) and toks[k].text != ";":
                init.append(toks[k])
                k += 1
            if any(t2.text == "(" for t2 in init):
                continue
            if any(t2.kind == "ident" and t2.text in names
                   for t2 in init):
                aliases.add(alias)
        return aliases

    @staticmethod
    def _range_fors(toks):
        """Yield (line, range_expression_tokens) per range-based for."""
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text != "for":
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            close = match_close(toks, i + 1)
            if close is None:
                continue
            body = toks[i + 2:close]
            colon = None
            depth = 0
            for k, b in enumerate(body):
                if b.kind != "punct":
                    continue
                if b.text in ("(", "[", "{", "<"):
                    depth += 1
                elif b.text in (")", "]", "}", ">"):
                    depth -= 1
                elif b.text == ":" and depth <= 0:
                    colon = k
                    break
            if colon is not None:
                yield t.line, body[colon + 1:]
