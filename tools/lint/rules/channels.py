"""Explicit-channel rule.

PR 5 fixed the dormant multi-channel path by threading explicit target
channels through every attack, and its acceptance check was a raw
``grep -rn "controller(0)"``. This rule re-encodes that check as a
permanent, lexer-aware invariant: attack and experiment code may never
read controller state through a hard-coded channel index — not 0, not
any literal — because a literal silently pins the code to one channel
and reintroduces the cross-channel aggregation bugs PR 5 removed.
"""

from .base import Rule, in_dir

_ACCESSORS = frozenset(("controller", "stats"))


class ExplicitChannel(Rule):
    rule_id = "explicit-channel"
    summary = ("Attack/experiment code must not index controllers or "
               "channel stats with an integer literal")

    def applies(self, relpath):
        return in_dir(relpath, "src/attack", "src/core")

    def check(self, ctx):
        out = []
        toks = ctx.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text not in _ACCESSORS:
                continue
            if i + 3 >= len(toks):
                continue
            if toks[i + 1].text == "(" and \
                    toks[i + 2].kind == "number" and \
                    toks[i + 3].text == ")":
                out.append(
                    (t.line,
                     "hard-coded channel index '%s(%s)'; thread the "
                     "target channel through explicitly (PR 5 "
                     "contract)" % (t.text, toks[i + 2].text)))
        return out
