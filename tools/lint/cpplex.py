"""Comment/string/raw-string aware C++ lexer for leaky-lint.

A deliberately small scanner: it does not parse C++, it produces a flat
token stream precise enough that rules never fire on text inside
comments, string literals, character literals, or raw strings — the
failure mode that makes naive ``grep`` acceptance checks (PR 5's
``controller(0)`` grep) unsound as permanent invariants.

Token kinds:

  ``ident``    identifiers and keywords (``static_assert`` is ONE token,
               so assertion rules exempt it for free)
  ``number``   pp-numbers (ints, floats, hex, digit separators)
  ``string``   string literals, including encoding prefixes and raw
               strings ``R"delim(...)delim"``
  ``char``     character literals
  ``punct``    operators/punctuators, maximal munch (``==`` is one
               token, so ``=`` inside a DCHECK is a real assignment)
  ``comment``  ``//`` and ``/* */`` comments, preserved because the
               waiver grammar lives in them

Backslash-newline line splices are honoured inside line comments and
ordinary string literals (but, per the standard, not inside raw
strings). Unterminated block comments or raw strings raise
:class:`LexError` — a tool error (exit 3), never silently mislexed.
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])


class LexError(Exception):
    """Input that cannot be soundly tokenized (tool error, exit 3)."""

    def __init__(self, line, message):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


# Longest first so maximal munch falls out of a linear scan.
_PUNCTS = (
    ">>=", "<<=", "...", "->*", "##",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

# pp-number: digits with ' separators, hex/bin prefixes, float
# exponents (e/E for decimal, p/P for hex) with optional sign, and any
# trailing literal suffix (which scans as identifier chars).
_NUMBER_RE = re.compile(
    r"\.?\d(?:[\w.']|[eEpP][+-])*")

# Encoding prefix of a string/char literal that may precede " or '.
_STR_PREFIXES = ("u8", "u", "U", "L")


def lex(text):
    """Tokenize ``text``; returns a list of :class:`Token`."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            i, line, tok = _line_comment(text, i, line)
            tokens.append(tok)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i, line, tok = _block_comment(text, i, line)
            tokens.append(tok)
            continue
        lit = _try_literal(text, i, line)
        if lit is not None:
            i, line, tok = lit
            tokens.append(tok)
            continue
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        if c in _DIGITS or (c == "." and i + 1 < n and
                            text[i + 1] in _DIGITS):
            m = _NUMBER_RE.match(text, i)
            tokens.append(Token("number", m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def _line_comment(text, i, line):
    start = i
    start_line = line
    n = len(text)
    while i < n:
        if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1  # Spliced line comment continues.
            i += 2
            continue
        if text[i] == "\n":
            break
        i += 1
    return i, line, Token("comment", text[start:i], start_line)


def _block_comment(text, i, line):
    start = i
    start_line = line
    end = text.find("*/", i + 2)
    if end == -1:
        raise LexError(start_line, "unterminated block comment")
    body = text[start:end + 2]
    return end + 2, line + body.count("\n"), \
        Token("comment", body, start_line)


def _try_literal(text, i, line):
    """Match a string/char literal (with prefix / rawness) at i."""
    j = i
    n = len(text)
    for p in _STR_PREFIXES:
        if text.startswith(p, j) and j + len(p) < n and \
                text[j + len(p)] in "\"'R":
            # Reject identifiers like `u8something`: the prefix must
            # abut the quote or an R that abuts a quote.
            k = j + len(p)
            if text[k] in "\"'" or (text[k] == "R" and k + 1 < n and
                                    text[k + 1] == '"'):
                j = k
                break
    if j < n and text[j] == "R" and j + 1 < n and text[j + 1] == '"':
        return _raw_string(text, i, j, line)
    if j < n and text[j] == '"':
        return _quoted(text, i, j, line, '"', "string")
    if j < n and text[j] == "'":
        if j == i and not _is_char_literal(text, i):
            return None  # A lone ' separator-ish context; not expected.
        return _quoted(text, i, j, line, "'", "char")
    return None


def _is_char_literal(text, i):
    return text[i] == "'"


def _quoted(text, start, open_idx, line, quote, kind):
    i = open_idx + 1
    n = len(text)
    lines = 0
    while i < n:
        c = text[i]
        if c == "\\":
            if i + 1 < n and text[i + 1] == "\n":
                lines += 1
            i += 2
            continue
        if c == "\n":
            raise LexError(line, "unterminated %s literal" % kind)
        if c == quote:
            return i + 1, line + lines, \
                Token(kind, text[start:i + 1], line)
        i += 1
    raise LexError(line, "unterminated %s literal" % kind)


def _raw_string(text, start, r_idx, line):
    # R"delim( ... )delim" — no escapes, no splices, delim up to 16
    # chars of non-parenthesis/space/backslash.
    open_paren = text.find("(", r_idx + 2)
    if open_paren == -1 or open_paren - (r_idx + 2) > 16:
        raise LexError(line, "malformed raw string delimiter")
    delim = text[r_idx + 2:open_paren]
    closer = ")" + delim + '"'
    end = text.find(closer, open_paren + 1)
    if end == -1:
        raise LexError(line, "unterminated raw string")
    body = text[start:end + len(closer)]
    return end + len(closer), line + body.count("\n"), \
        Token("string", body, line)


def code_tokens(tokens):
    """The token stream with comments removed (what rules scan)."""
    return [t for t in tokens if t.kind != "comment"]
