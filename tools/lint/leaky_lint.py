#!/usr/bin/env python3
"""leaky-lint: project-invariant static analyzer for leakyhammer.

The repo's reproduction guarantees (bit-identical CSVs for any
thread/shard count, all randomness through ``sim::seedFanout``,
zero-allocation steady state) are enforced dynamically by tests — but
only on the paths CI happens to execute. This tool proves the cheap
half of those contracts *at rest*: it tokenizes every C++ file with a
comment/string/raw-string aware lexer (``cpplex.py``) and runs the
rule set in ``rules/`` over the token stream, so a banned construct in
a comment or string can never fire and a real one can never hide.

Usage::

    python3 tools/lint/leaky_lint.py src tests bench
    python3 tools/lint/leaky_lint.py --list-rules

Diagnostics are printed one per line in the pinned format::

    file:line: [rule-id] message

Waivers: a violation is suppressed by a line comment ::

    // lint:allow(rule-id): reason

placed either on the offending line (trailing) or alone on the line
above it. The reason is mandatory; a waiver that names an unknown rule
or suppresses nothing is itself an error (``bad-waiver`` /
``unused-waiver``), so stale waivers cannot accumulate.

Exit status: 0 = clean, 2 = at least one diagnostic, 3 = tool error
(unreadable file, lexer failure, bad invocation).
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplex  # noqa: E402
import rules as rules_pkg  # noqa: E402
from rules.base import FileContext  # noqa: E402

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 2
EXIT_TOOL_ERROR = 3

EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h", ".cxx")

WAIVER_RE = re.compile(r"lint:allow\(([^)]*)\)\s*(?::\s*(.*))?\s*$")


class ToolError(Exception):
    pass


class Parser(argparse.ArgumentParser):
    """argparse, but bad invocations are tool errors (exit 3), keeping
    exit 2 unambiguous for 'violations found'."""

    def error(self, message):
        self.print_usage(sys.stderr)
        print("%s: error: %s" % (self.prog, message), file=sys.stderr)
        sys.exit(EXIT_TOOL_ERROR)


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def discover(paths):
    """All C++ files under the given paths, sorted, duplicates removed."""
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if not d.startswith(("build", "."))]
                for name in sorted(filenames):
                    if name.endswith(EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            raise ToolError("no such file or directory: %s" % path)
    seen = set()
    unique = []
    for f in files:
        key = os.path.abspath(f)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def rel_to_root(path, root):
    abspath = os.path.abspath(path)
    if abspath.startswith(root + os.sep):
        return os.path.relpath(abspath, root).replace(os.sep, "/")
    return path.replace(os.sep, "/")


class Waiver:
    def __init__(self, rule_id, target_line, comment_line):
        self.rule_id = rule_id
        self.target_line = target_line
        self.comment_line = comment_line
        self.used = False


def parse_waivers(tokens, relpath, known_ids):
    """Extract waivers from `//` comments; returns (waivers, bad).

    ``bad`` is a list of (line, message) for malformed waivers. A
    trailing comment (code precedes it on the same line) targets its
    own line; a comment alone on its line targets the next line that
    holds a code token.
    """
    waivers = []
    bad = []
    for idx, tok in enumerate(tokens):
        if tok.kind != "comment" or not tok.text.startswith("//"):
            continue
        if "lint:allow" not in tok.text:
            continue
        m = WAIVER_RE.search(tok.text)
        if not m:
            bad.append((tok.line,
                        "malformed waiver; expected "
                        "'// lint:allow(rule-id): reason'"))
            continue
        rule_id = m.group(1).strip()
        reason = (m.group(2) or "").strip()
        if rule_id not in known_ids:
            bad.append((tok.line,
                        "waiver names unknown rule '%s' (see "
                        "--list-rules)" % rule_id))
            continue
        if rule_id in rules_pkg.META_RULE_IDS:
            bad.append((tok.line,
                        "meta rule '%s' cannot be waived" % rule_id))
            continue
        if not reason:
            bad.append((tok.line,
                        "waiver for '%s' gives no reason; the reason "
                        "is part of the grammar" % rule_id))
            continue
        target = _waiver_target(tokens, idx)
        waivers.append(Waiver(rule_id, target, tok.line))
    return waivers, bad


def _waiver_target(tokens, comment_idx):
    line = tokens[comment_idx].line
    for prev in reversed(tokens[:comment_idx]):
        if prev.line < line:
            break
        if prev.kind != "comment":
            return line  # Trailing comment: waives its own line.
    for nxt in tokens[comment_idx + 1:]:
        if nxt.kind != "comment":
            return nxt.line  # Own-line comment: waives the next code line.
    return line


def lint_file(path, relpath, active_rules, known_ids):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as err:
        raise ToolError("cannot read %s: %s" % (path, err))
    try:
        tokens = cpplex.lex(text)
    except cpplex.LexError as err:
        raise ToolError("%s: lexer failure: %s" % (relpath, err))
    code = cpplex.code_tokens(tokens)
    sibling = []
    if relpath.endswith(".cc"):
        header = os.path.splitext(path)[0] + ".hh"
        if os.path.isfile(header):
            try:
                with open(header, encoding="utf-8",
                          errors="replace") as fh:
                    sibling = cpplex.code_tokens(cpplex.lex(fh.read()))
            except (OSError, cpplex.LexError):
                sibling = []  # The header is linted on its own pass.
    ctx = FileContext(relpath, code, sibling)

    diags = []  # (line, rule_id, message)
    for rule in active_rules:
        if not rule.applies(relpath):
            continue
        for line, message in rule.check(ctx):
            diags.append((line, rule.rule_id, message))

    waivers, bad = parse_waivers(tokens, relpath, known_ids)
    kept = []
    for line, rule_id, message in diags:
        suppressed = False
        for w in waivers:
            if w.rule_id == rule_id and w.target_line == line:
                w.used = True
                suppressed = True
        if not suppressed:
            kept.append((line, rule_id, message))
    for line, message in bad:
        kept.append((line, "bad-waiver", message))
    for w in waivers:
        if not w.used:
            kept.append((w.comment_line, "unused-waiver",
                         "waiver for '%s' suppressed no diagnostic; "
                         "delete it or move it onto the offending "
                         "line" % w.rule_id))
    return [(relpath, line, rule_id, message)
            for line, rule_id, message in kept]


def main(argv):
    parser = Parser(
        prog="leaky_lint.py",
        description="Static analyzer for leakyhammer's project "
                    "invariants (see docs/LINTING.md).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(e.g. src tests bench)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule id (one per line) and "
                             "exit; includes the bad-waiver / "
                             "unused-waiver meta rules")
    parser.add_argument("--verbose", action="store_true",
                        help="with --list-rules, add one-line "
                             "summaries")
    args = parser.parse_args(argv)

    if args.list_rules:
        summaries = rules_pkg.rule_summaries()
        for rule_id in rules_pkg.all_rule_ids():
            if args.verbose:
                print("%-42s %s" % (rule_id, summaries[rule_id]))
            else:
                print(rule_id)
        return EXIT_CLEAN
    if not args.paths:
        parser.error("no paths given (try: src tests bench)")

    root = repo_root()
    known_ids = set(rules_pkg.all_rule_ids())
    diagnostics = []
    try:
        files = discover(args.paths)
        for path in files:
            relpath = rel_to_root(path, root)
            diagnostics.extend(
                lint_file(path, relpath, rules_pkg.ALL_RULES,
                          known_ids))
    except ToolError as err:
        print("leaky_lint: error: %s" % err, file=sys.stderr)
        return EXIT_TOOL_ERROR

    diagnostics.sort(key=lambda d: (d[0], d[1], d[2]))
    for relpath, line, rule_id, message in diagnostics:
        print("%s:%d: [%s] %s" % (relpath, line, rule_id, message))
    if diagnostics:
        print("leaky_lint: %d diagnostic(s) in %d file(s)"
              % (len(diagnostics),
                 len({d[0] for d in diagnostics})), file=sys.stderr)
        return EXIT_VIOLATIONS
    print("leaky_lint: %d file(s) clean" % len(files),
          file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
