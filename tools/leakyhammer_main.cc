/** @file `leakyhammer` binary: all dispatch lives in runner/cli.cc. */

#include "runner/cli.hh"

int
main(int argc, char **argv)
{
    return leaky::runner::cliMain(argc, argv);
}
