/**
 * @file
 * Countermeasure comparison demo (paper §11): channel capacity and
 * weighted speedup of every defense at one RowHammer threshold. Thin
 * wrapper over `leakyhammer run mitigation` (src/runner/demos.cc).
 *
 * Usage: mitigation_comparison [--nrh <n>]
 */

#include "runner/demos.hh"

int
main(int argc, char **argv)
{
    return leaky::runner::mitigationMain(argc - 1, argv + 1,
                                         "mitigation_comparison");
}
