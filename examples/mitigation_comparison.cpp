/**
 * @file
 * Countermeasure comparison demo (paper §11): for one RowHammer
 * threshold, run the PRAC covert channel against every defense and
 * measure both the channel capacity (security) and the weighted
 * speedup of a four-core mix (performance) -- the security/performance
 * trade-off that Fig. 13 and §11.4 quantify.
 *
 * Usage: mitigation_comparison [nrh]
 */

#include <cstdio>
#include <cstdlib>

#include "core/leakyhammer.hh"

namespace {

using namespace leaky;

double
channelCapacityAgainst(defense::DefenseKind kind, std::uint32_t nrh)
{
    sys::SystemConfig cfg = core::pracAttackSystem();
    cfg.defense.kind = kind;
    if (kind == defense::DefenseKind::kFrRfm ||
        kind == defense::DefenseKind::kPrfm) {
        cfg.defense.nrh = nrh;
        cfg.defense.nbo_override = 0;
    }
    sys::System system(cfg);
    auto channel_cfg =
        attack::makeChannelConfig(system, attack::ChannelKind::kPrac);

    const auto bits = attack::patternBits(
        attack::MessagePattern::kCheckered0, 160);
    std::vector<std::uint8_t> symbols;
    for (bool b : bits)
        symbols.push_back(b ? 1 : 0);
    return attack::runCovertChannel(system, channel_cfg, symbols)
        .capacity;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leaky;
    const std::uint32_t nrh =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
    core::banner("Defense comparison at NRH = " + std::to_string(nrh));

    const auto mixes = workload::makeMixes(3, 4, 7);
    core::Table table({"defense", "channel capacity", "normalized WS"});
    for (auto kind :
         {defense::DefenseKind::kPrac, defense::DefenseKind::kPrfm,
          defense::DefenseKind::kPracRiac, defense::DefenseKind::kFrRfm,
          defense::DefenseKind::kPracBank}) {
        const double capacity = channelCapacityAgainst(kind, nrh);
        const double ws =
            core::runPerfCell(kind, nrh, mixes, 4, 100'000);
        table.addRow({defense::defenseName(kind),
                      core::fmtKbps(capacity), core::fmt(ws, 3)});
        std::printf("%-10s capacity %-12s normalized WS %.3f\n",
                    defense::defenseName(kind),
                    core::fmtKbps(capacity).c_str(), ws);
    }
    std::printf("\n%s", table.str().c_str());
    std::printf("\nFR-RFM closes the channel completely; at low NRH its "
                "performance cost explodes, which is the paper's central "
                "trade-off (§11, Fig. 13).\n");
    return 0;
}
