/**
 * @file
 * Covert-channel demo: transmit a message over the PRAC-based and the
 * RFM-based LeakyHammer channels (paper §6.3 and §7.3). Thin wrapper
 * over `leakyhammer run covert` (src/runner/demos.cc).
 *
 * Usage: covert_channel_demo [--message <text>] [--mapping <spec>]
 */

#include "runner/demos.hh"

int
main(int argc, char **argv)
{
    return leaky::runner::covertMain(argc - 1, argv + 1,
                                     "covert_channel_demo");
}
