/**
 * @file
 * Covert-channel demo: transmit a user-supplied message over the
 * PRAC-based and the RFM-based LeakyHammer channels (paper §6.3 and
 * §7.3) and print the per-window detections, the decoded text, and the
 * channel metrics.
 *
 * Usage: covert_channel_demo [message]
 */

#include <cstdio>
#include <string>

#include "core/leakyhammer.hh"

namespace {

void
demo(leaky::attack::ChannelKind kind, const std::string &message)
{
    using namespace leaky;
    const char *name =
        kind == attack::ChannelKind::kPrac ? "PRAC" : "RFM (PRFM)";
    core::banner(std::string(name) + " covert channel");

    const auto result = core::runMessageDemo(kind, message);

    std::printf("sent bits:     ");
    for (bool b : result.sent_bits)
        std::printf("%d", b ? 1 : 0);
    std::printf("\nreceived bits: ");
    for (bool b : result.received_bits)
        std::printf("%d", b ? 1 : 0);
    std::printf("\ndetections:    ");
    for (auto d : result.detections)
        std::printf("%u", d > 9 ? 9 : d);
    std::printf("\ndecoded text:  \"%s\"\n",
                result.decoded_text.c_str());

    std::size_t errors = 0;
    for (std::size_t i = 0; i < result.sent_bits.size(); ++i)
        errors += result.sent_bits[i] != result.received_bits[i];
    std::printf("bit errors:    %zu / %zu\n", errors,
                result.sent_bits.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string message = argc > 1 ? argv[1] : "MICRO";
    demo(leaky::attack::ChannelKind::kPrac, message);
    demo(leaky::attack::ChannelKind::kRfm, message);
    return 0;
}
