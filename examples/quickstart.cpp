/**
 * @file
 * Quickstart: the Listing-1 latency-measurement routine against PRAC,
 * showing the three latency bands of Fig. 2. Thin wrapper over
 * `leakyhammer run quickstart` (src/runner/demos.cc).
 *
 * Build and run:
 *   cmake -B build && cmake --build build
 *   ./build/examples/quickstart
 */

#include "runner/demos.hh"

int
main(int argc, char **argv)
{
    return leaky::runner::quickstartMain(argc - 1, argv + 1,
                                         "quickstart");
}
