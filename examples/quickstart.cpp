/**
 * @file
 * Quickstart: build the paper's system with PRAC, run the Listing-1
 * latency-measurement routine against two rows of one bank, and watch
 * the three latency bands of Fig. 2 appear (row conflicts, periodic
 * refreshes, PRAC back-offs).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/leakyhammer.hh"

int
main()
{
    using namespace leaky;

    // 1. A DDR5 system (paper Table 1) protected by PRAC with the
    //    attack-study operating point NBO = 128.
    sys::SystemConfig cfg = core::pracAttackSystem();
    sys::System system(cfg);

    // 2. Two attacker-controlled rows in the same bank. Alternating
    //    loads force a row-buffer conflict -- and thus an activation --
    //    on every access, charging the PRAC counters.
    attack::ProbeConfig probe_cfg;
    probe_cfg.addrs = {
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 1000),
        attack::rowAddress(system.mapper(), 0, 0, 0, 0, 2000)};
    probe_cfg.iterations = 512;

    attack::LatencyProbe probe(system, probe_cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    while (!done)
        system.run(sim::kMs);

    // 3. Classify what the user-space loop observed.
    const auto classifier = attack::LatencyClassifier::forTiming(
        cfg.ctrl.dram.timing);
    std::uint64_t by_class[5] = {0, 0, 0, 0, 0};
    for (const auto &sample : probe.samples())
        by_class[static_cast<int>(classifier.classify(sample.latency))]++;

    std::printf("Observed %zu request latencies:\n",
                probe.samples().size());
    const char *names[5] = {"fast (row hit)", "row conflict",
                            "RFM window", "periodic refresh",
                            "PRAC back-off"};
    for (int c = 0; c < 5; ++c)
        std::printf("  %-18s %5llu\n", names[c],
                    static_cast<unsigned long long>(by_class[c]));

    const auto &stats = system.controller(0).stats();
    std::printf("\nGround truth from the controller:\n");
    std::printf("  back-offs: %llu, refreshes: %llu, reads: %llu\n",
                static_cast<unsigned long long>(stats.backoffs),
                static_cast<unsigned long long>(stats.refreshes),
                static_cast<unsigned long long>(stats.reads_served));
    std::printf("\nFirst samples (ns): ");
    for (std::size_t i = 0; i < 12 && i < probe.samples().size(); ++i)
        std::printf("%llu ", static_cast<unsigned long long>(
                                 probe.samples()[i].latency / 1000));
    std::printf("\n");
    return 0;
}
