/**
 * @file
 * Website-fingerprinting side channel demo (paper §8): simulate a
 * browser loading a few websites under PRAC at NRH=64, collect the
 * attacker's back-off traces with the Listing-2 probe, train a
 * classifier, and identify an unseen load.
 *
 * Usage: website_fingerprinting [n_sites] [loads_per_site]
 */

#include <cstdio>
#include <cstdlib>

#include "core/leakyhammer.hh"

int
main(int argc, char **argv)
{
    using namespace leaky;
    core::banner("Website fingerprinting via PRAC back-offs");

    core::FingerprintSpec spec;
    spec.sites = argc > 1 ? static_cast<std::uint32_t>(
                                std::atoi(argv[1]))
                          : 6;
    spec.loads_per_site =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
    spec.duration = 2 * sim::kMs;

    std::printf("collecting %u sites x %u loads (NRH = %u)...\n",
                spec.sites, spec.loads_per_site, spec.nrh);
    const auto raw = core::collectFingerprints(spec);

    // Show one strip per site.
    for (std::uint32_t site = 0; site < spec.sites; ++site) {
        for (const auto &sample : raw) {
            if (sample.site != site || sample.load != 0)
                continue;
            const auto features = attack::extractFeatures(
                sample.backoff_times, sample.duration, 24);
            std::vector<double> strip(features.values.begin(),
                                      features.values.begin() + 24);
            std::printf("%-12s [%s] %3zu back-offs\n",
                        workload::websiteNames()[site].c_str(),
                        core::sparkline(strip).c_str(),
                        sample.backoff_times.size());
        }
    }

    // Train on most loads, classify the held-out ones.
    const auto data = core::fingerprintDataset(raw);
    const auto split = ml::stratifiedSplit(data, 0.25, 99);
    ml::RandomForest model;
    model.fit(split.train);
    const auto cm = ml::evaluate(model, split.test);

    std::printf("\nrandom forest on held-out loads: accuracy %.2f "
                "(chance %.3f)\n",
                cm.accuracy(), 1.0 / data.n_classes);
    std::printf("macro F1 %.2f, precision %.2f, recall %.2f\n",
                cm.macroF1(), cm.macroPrecision(), cm.macroRecall());
    return 0;
}
