/**
 * @file
 * Website-fingerprinting side channel demo (paper §8): collect back-off
 * traces, train a classifier, identify unseen loads. Thin wrapper over
 * `leakyhammer run fingerprint` (src/runner/demos.cc).
 *
 * Usage: website_fingerprinting [--sites <n>] [--loads <n>]
 */

#include "runner/demos.hh"

int
main(int argc, char **argv)
{
    return leaky::runner::fingerprintMain(argc - 1, argv + 1,
                                          "website_fingerprinting");
}
