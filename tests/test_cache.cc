/** @file Cache level and hierarchy tests: LRU, dirtiness, clflush. */

#include <gtest/gtest.h>

#include "sys/cache.hh"

namespace {

using leaky::sys::CacheHierarchy;
using leaky::sys::CacheHierarchyConfig;
using leaky::sys::CacheLevel;
using leaky::sys::CacheLevelConfig;

CacheLevelConfig
tinyCache(std::uint32_t ways = 2, std::uint64_t lines = 8)
{
    CacheLevelConfig cfg;
    cfg.name = "tiny";
    cfg.line_bytes = 64;
    cfg.ways = ways;
    cfg.size_bytes = lines * 64;
    cfg.latency = 1'000;
    return cfg;
}

TEST(CacheLevel, MissThenHit)
{
    CacheLevel cache(tinyCache());
    EXPECT_FALSE(cache.access(5, false));
    cache.insert(5, false);
    EXPECT_TRUE(cache.access(5, false));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed)
{
    // 2 ways, 4 sets: lines 0, 4, 8 map to set 0.
    CacheLevel cache(tinyCache());
    cache.insert(0, false);
    cache.insert(4, false);
    EXPECT_TRUE(cache.access(0, false)); // Touch 0: 4 becomes LRU.
    const auto ev = cache.insert(8, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, 4u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(8));
    EXPECT_FALSE(cache.contains(4));
}

TEST(CacheLevel, DirtyEvictionReported)
{
    CacheLevel cache(tinyCache());
    cache.insert(0, false);
    cache.access(0, /*is_write=*/true); // Dirty it.
    cache.insert(4, false);
    const auto ev = cache.insert(8, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, 0u);
    EXPECT_TRUE(ev.dirty);
}

TEST(CacheLevel, FlushReportsDirtiness)
{
    CacheLevel cache(tinyCache());
    cache.insert(3, true);
    EXPECT_TRUE(cache.flush(3));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.flush(3)); // Already gone.
    cache.insert(3, false);
    EXPECT_FALSE(cache.flush(3)); // Clean flush.
}

TEST(CacheHierarchy, MissProbesAllLevelsAndFills)
{
    CacheHierarchy caches(CacheHierarchyConfig::paperDefault());
    auto first = caches.access(0x1000, false);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.latency, caches.missLatency());
    caches.fill(0x1000, false, first);

    const auto second = caches.access(0x1000, false);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.latency, caches.level(0).config().latency);
}

TEST(CacheHierarchy, FlushForcesNextAccessToMiss)
{
    CacheHierarchy caches(CacheHierarchyConfig::paperDefault());
    auto res = caches.access(0x2000, false);
    caches.fill(0x2000, false, res);
    EXPECT_TRUE(caches.access(0x2000, false).hit);
    EXPECT_FALSE(caches.flush(0x2000));
    EXPECT_FALSE(caches.access(0x2000, false).hit);
}

TEST(CacheHierarchy, DirtyLlcEvictionBecomesWriteback)
{
    // Tiny two-level hierarchy so evictions are easy to force.
    CacheHierarchyConfig cfg;
    cfg.levels.push_back(tinyCache(1, 2)); // 2 sets, direct-mapped.
    cfg.levels.push_back(tinyCache(1, 4)); // 4 sets, direct-mapped.
    CacheHierarchy caches(cfg);

    auto res = caches.access(0 * 64, true);
    caches.fill(0 * 64, true, res);
    EXPECT_TRUE(res.writebacks.empty());

    // Line 4 maps to LLC set 0 too: evicts dirty line 0 to memory.
    auto res2 = caches.access(4 * 64, false);
    caches.fill(4 * 64, false, res2);
    ASSERT_EQ(res2.writebacks.size(), 1u);
    EXPECT_EQ(res2.writebacks[0], 0u);
}

TEST(CacheHierarchy, ConfigsMatchPaper)
{
    const auto paper = CacheHierarchyConfig::paperDefault();
    ASSERT_EQ(paper.levels.size(), 2u);
    EXPECT_EQ(paper.levels[0].size_bytes, 32u * 1024);
    EXPECT_EQ(paper.levels[1].size_bytes, 4ull * 1024 * 1024);
    EXPECT_EQ(paper.levels[1].ways, 16u);

    const auto large = CacheHierarchyConfig::largeHierarchy();
    ASSERT_EQ(large.levels.size(), 3u);
    EXPECT_EQ(large.levels[1].size_bytes, 256u * 1024);
    EXPECT_EQ(large.levels[2].size_bytes, 6ull * 1024 * 1024);
}

} // namespace
