/** @file Latency probe (Listing 1) and classifier tests. */

#include <gtest/gtest.h>

#include "attack/dram_addr.hh"
#include "attack/probe.hh"
#include "core/experiments.hh"
#include "sys/system.hh"

namespace {

using namespace leaky;
using attack::LatencyClass;
using attack::LatencyClassifier;

TEST(LatencyClassifier, BandsAreOrdered)
{
    const auto c = LatencyClassifier::forTiming(dram::Timing{});
    EXPECT_LT(c.conflict_min, c.rfm_min);
    EXPECT_LT(c.rfm_min, c.refresh_min);
    EXPECT_LT(c.refresh_min, c.backoff_min);
}

TEST(LatencyClassifier, ClassifiesRepresentativeLatencies)
{
    const auto c = LatencyClassifier::forTiming(dram::Timing{});
    EXPECT_EQ(c.classify(55'000), LatencyClass::kFast);
    EXPECT_EQ(c.classify(86'000), LatencyClass::kConflict);
    EXPECT_EQ(c.classify(380'000), LatencyClass::kRfm);
    EXPECT_EQ(c.classify(676'000), LatencyClass::kRefresh);
    EXPECT_EQ(c.classify(1'490'000), LatencyClass::kBackoff);
}

TEST(LatencyClassifier, FewerRecoveryRfmsLowerTheBackoffBand)
{
    const auto four = LatencyClassifier::forTiming(dram::Timing{},
                                                   90'000, 4);
    const auto one = LatencyClassifier::forTiming(dram::Timing{},
                                                  90'000, 1);
    EXPECT_LT(one.backoff_min, four.backoff_min);
    // With one RFM the band collapses into the refresh range: the
    // Fig. 11 observation.
    EXPECT_LT(one.backoff_min, one.refresh_min);
}

TEST(LatencyProbe, AlternatingRowsSeeConflictLatencies)
{
    sys::System system(core::pracAttackSystem());
    attack::ProbeConfig cfg;
    cfg.addrs = {attack::rowAddress(system.mapper(), 0, 0, 0, 0, 100),
                 attack::rowAddress(system.mapper(), 0, 0, 0, 0, 200)};
    cfg.iterations = 64;
    attack::LatencyProbe probe(system, cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    system.run(sim::kMs);
    ASSERT_TRUE(done);
    ASSERT_EQ(probe.samples().size(), 64u);

    const auto classifier =
        attack::LatencyClassifier::forTiming(dram::Timing{});
    std::size_t conflicts = 0;
    for (const auto &s : probe.samples()) {
        if (classifier.classify(s.latency) == LatencyClass::kConflict)
            conflicts += 1;
    }
    EXPECT_GT(conflicts, 55u); // Nearly all accesses conflict.
}

TEST(LatencyProbe, SingleRowSeesFastHits)
{
    sys::System system(core::pracAttackSystem());
    attack::ProbeConfig cfg;
    cfg.addrs = {attack::rowAddress(system.mapper(), 0, 0, 0, 0, 100)};
    cfg.iterations = 64;
    attack::LatencyProbe probe(system, cfg);
    bool done = false;
    probe.start([&done] { done = true; });
    system.run(sim::kMs);
    ASSERT_TRUE(done);

    const auto classifier =
        attack::LatencyClassifier::forTiming(dram::Timing{});
    std::size_t fast = 0;
    for (const auto &s : probe.samples()) {
        if (classifier.classify(s.latency) == LatencyClass::kFast)
            fast += 1;
    }
    EXPECT_GT(fast, 55u);
}

TEST(LatencyProbe, DetectsBackoffAtNboPeriod)
{
    // The Fig. 2 experiment in miniature: the first back-off appears
    // after 2 x NBO - 1 alternating accesses.
    const auto result = core::runLatencyTrace(300);
    std::vector<std::size_t> backoff_positions;
    for (std::size_t i = 0; i < result.samples.size(); ++i) {
        if (result.classifier.classify(result.samples[i].latency) ==
            LatencyClass::kBackoff)
            backoff_positions.push_back(i);
    }
    ASSERT_GE(backoff_positions.size(), 1u);
    EXPECT_NEAR(static_cast<double>(backoff_positions[0]), 255.0, 8.0);
    EXPECT_GE(result.backoffs, 1u);
}

TEST(LatencyProbe, BackoffLatencyNearPaperValue)
{
    const auto result = core::runLatencyTrace(300);
    // Paper §6.2: mean observed back-off latency 1929 ns (>= the
    // standard's 1400 ns because the loop time is included).
    EXPECT_GT(result.mean_backoff_latency_ns, 1400.0);
    EXPECT_LT(result.mean_backoff_latency_ns, 2400.0);
    // Conflicts land two orders of magnitude lower.
    EXPECT_LT(result.mean_conflict_latency_ns, 200.0);
}

} // namespace
