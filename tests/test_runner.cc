/**
 * @file
 * Sweep-engine tests: cartesian expansion and seed fan-out, the
 * work-stealing pool's correctness (full coverage, rebalancing,
 * exception propagation), collector merge order, CSV round-trip
 * formatting, and the load-bearing property of the whole runner:
 * results are bit-identical under 1 vs N threads — including for a
 * job that simulates a real sys::System.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <vector>

#include "attack/covert.hh"
#include "core/experiments.hh"
#include "runner/figures.hh"
#include "runner/flags.hh"
#include "runner/pool.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/rng.hh"

namespace {

using namespace leaky;
using runner::Axis;
using runner::Job;
using runner::JobRows;
using runner::SweepSpec;

// ---------------------------------------------------------- expansion

SweepSpec
twoAxisSpec()
{
    SweepSpec spec;
    spec.name = "test";
    spec.axes = {{"a", {1, 2, 3}}, {"b", {10, 20}}};
    spec.columns = {"a", "b"};
    spec.job = [](const Job &job) -> JobRows {
        return {{job.param("a"), job.param("b")}};
    };
    return spec;
}

TEST(SweepExpansion, CartesianProductRowMajor)
{
    const auto spec = twoAxisSpec();
    EXPECT_EQ(runner::jobCount(spec), 6u);
    const auto jobs = runner::expandJobs(spec);
    ASSERT_EQ(jobs.size(), 6u);
    // First axis slowest, second fastest.
    EXPECT_EQ(jobs[0].param("a"), 1);
    EXPECT_EQ(jobs[0].param("b"), 10);
    EXPECT_EQ(jobs[1].param("a"), 1);
    EXPECT_EQ(jobs[1].param("b"), 20);
    EXPECT_EQ(jobs[2].param("a"), 2);
    EXPECT_EQ(jobs[5].param("a"), 3);
    EXPECT_EQ(jobs[5].param("b"), 20);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepExpansion, RepetitionsFanOutInnermost)
{
    auto spec = twoAxisSpec();
    spec.axes = {{"a", {1, 2}}};
    spec.repetitions = 3;
    const auto jobs = runner::expandJobs(spec);
    ASSERT_EQ(jobs.size(), 6u);
    // Repetitions cycle within one axis point.
    EXPECT_EQ(jobs[0].repetition, 0u);
    EXPECT_EQ(jobs[1].repetition, 1u);
    EXPECT_EQ(jobs[2].repetition, 2u);
    EXPECT_EQ(jobs[0].param("a"), 1);
    EXPECT_EQ(jobs[2].param("a"), 1);
    EXPECT_EQ(jobs[3].param("a"), 2);
    EXPECT_EQ(jobs[3].repetition, 0u);
}

TEST(SweepExpansion, SeedFanOutIsStableAndDistinct)
{
    // Same (base, index) -> same seed; different index or base ->
    // (practically) different seed; never the 0 sentinel.
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; ++i) {
        const auto seed = runner::jobSeed(42, i);
        EXPECT_EQ(seed, runner::jobSeed(42, i));
        EXPECT_NE(seed, 0u);
        seen.insert(seed);
    }
    EXPECT_EQ(seen.size(), 1000u);
    EXPECT_NE(runner::jobSeed(42, 7), runner::jobSeed(43, 7));

    auto spec = twoAxisSpec();
    spec.base_seed = 9;
    const auto jobs = runner::expandJobs(spec);
    EXPECT_EQ(jobs[2].seed, runner::jobSeed(9, 2));
}

// --------------------------------------------------------------- pool

TEST(SweepPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        runner::SweepPool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h = 0;
        pool.forEach(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(SweepPool, ReusableAcrossBatches)
{
    runner::SweepPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    for (int batch = 0; batch < 5; ++batch)
        pool.forEach(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 5u * (99u * 100u / 2u));
}

TEST(SweepPool, PropagatesFirstException)
{
    runner::SweepPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.forEach(64,
                              [&](std::size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 13)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    // The batch still drains: every job ran despite the throw.
    EXPECT_EQ(ran.load(), 64);
    // And the pool stays usable.
    pool.forEach(8, [](std::size_t) {});
}

TEST(SweepPool, IsolatedRunCollectsEveryFailureSorted)
{
    runner::SweepPool pool(4);
    std::atomic<int> ran{0};
    const auto errors = pool.forEachIsolated(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i % 16 == 5)
            throw std::runtime_error("boom " + std::to_string(i));
    });
    // No throw, full drain, and every failing index reported once,
    // in index order regardless of which worker hit it.
    EXPECT_EQ(ran.load(), 64);
    ASSERT_EQ(errors.size(), 4u);
    for (std::size_t k = 0; k < errors.size(); ++k) {
        EXPECT_EQ(errors[k].index, 16 * k + 5);
        EXPECT_EQ(errors[k].message,
                  "boom " + std::to_string(16 * k + 5));
        EXPECT_TRUE(errors[k].error);
    }
    EXPECT_TRUE(pool.forEachIsolated(8, [](std::size_t) {}).empty());
}

// ---------------------------------------------------------- collector

TEST(SweepRunner, MergesRowsInJobIndexOrder)
{
    SweepSpec spec;
    spec.name = "merge";
    spec.axes = {{"i", {0, 1, 2, 3, 4, 5, 6, 7}}};
    spec.columns = {"i", "sub"};
    // Job i contributes i % 3 + 1 rows; merge must keep job order and
    // intra-job row order regardless of completion order.
    spec.job = [](const Job &job) -> JobRows {
        JobRows rows;
        const auto i = job.param("i");
        for (int sub = 0; sub < static_cast<int>(i) % 3 + 1; ++sub)
            rows.push_back({i, static_cast<double>(sub)});
        return rows;
    };
    const auto result = runner::runSweep(spec, 4);
    ASSERT_EQ(result.jobs, 8u);
    std::vector<std::vector<double>> expected;
    for (int i = 0; i < 8; ++i)
        for (int sub = 0; sub < i % 3 + 1; ++sub)
            expected.push_back({static_cast<double>(i),
                                static_cast<double>(sub)});
    EXPECT_EQ(result.rows, expected);
}

TEST(SweepRunner, CsvFormatsHeaderAndRoundTripCells)
{
    runner::SweepResult result;
    result.columns = {"x", "y"};
    result.rows = {{1.0, 0.1}, {1e6, 1.0 / 3.0}};
    const auto csv = runner::toCsv(result);
    EXPECT_EQ(csv, "x,y\n1,0.1\n1e+06,0.3333333333333333\n");
    // Cells parse back to the exact double.
    EXPECT_EQ(std::stod(runner::csvCell(1.0 / 3.0)), 1.0 / 3.0);
    EXPECT_EQ(std::stod(runner::csvCell(0.1)), 0.1);
}

TEST(SweepRunner, SweepErrorCarriesPartialRowsAndFailingParams)
{
    auto spec = twoAxisSpec();
    spec.name = "partial";
    spec.job = [](const Job &job) -> JobRows {
        if (job.param("a") == 2 && job.param("b") == 20)
            throw std::runtime_error("bad cell");
        return {{job.param("a"), job.param("b")}};
    };
    try {
        runner::runSweep(spec, 2);
        FAIL() << "expected SweepError";
    } catch (const runner::SweepError &e) {
        // Job 3 is (a=2, b=20); the other five completed and their
        // rows stay collectable in expansion order. Params render in
        // csvCell form (shortest round-trip), hence 20 -> 2e+01.
        const std::string what = e.what();
        EXPECT_NE(what.find("job 3 (a=2, b=2e+01) failed: bad cell"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("5/6 jobs completed"), std::string::npos)
            << what;
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].index, 3u);
        EXPECT_EQ(e.failures()[0].params, "a=2, b=2e+01");
        EXPECT_EQ(e.failures()[0].message, "bad cell");
        const std::vector<std::vector<double>> expected = {
            {1, 10}, {1, 20}, {2, 10}, {3, 10}, {3, 20}};
        EXPECT_EQ(e.partial().rows, expected);
    }
}

TEST(SweepRunner, WriteFileIsAtomicAndLeavesNoTmp)
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "leaky_write_atomic.csv")
                          .string();
    std::filesystem::remove(path);
    runner::writeFile(path, "first\n");
    // Overwrite: the reader either sees the old or the new content,
    // never a truncated in-between, and no .tmp survives.
    runner::writeFile(path, "second\n");
    std::ifstream file(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "second\n");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::filesystem::remove(path);
}

// -------------------------------------------------------- determinism

TEST(SweepRunner, SyntheticSweepIsThreadCountInvariant)
{
    SweepSpec spec;
    spec.name = "rng";
    spec.base_seed = 77;
    spec.axes = {{"i", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}};
    spec.repetitions = 3;
    spec.columns = {"i", "draw"};
    spec.job = [](const Job &job) -> JobRows {
        sim::Rng rng(job.seed);
        return {{job.param("i"), rng.uniform()}};
    };
    const auto serial = runner::runSweep(spec, 1);
    const auto parallel = runner::runSweep(spec, 4);
    EXPECT_EQ(serial.rows, parallel.rows);
    EXPECT_EQ(runner::toCsv(serial), runner::toCsv(parallel));
}

TEST(SweepRunner, RealSystemSweepIsThreadCountInvariant)
{
    // Each job simulates a complete covert-channel run on its own
    // sys::System; the merged metrics must not depend on how jobs
    // were scheduled across threads.
    SweepSpec spec;
    spec.name = "channel";
    spec.base_seed = 5;
    spec.axes = {{"pattern", {2, 3}}};
    spec.columns = {"pattern", "error", "capacity", "backoffs"};
    spec.job = [](const Job &job) -> JobRows {
        core::ChannelRunSpec run;
        run.kind = attack::ChannelKind::kPrac;
        run.pattern = static_cast<attack::MessagePattern>(
            static_cast<int>(job.param("pattern")));
        run.message_bytes = 2;
        run.seed = job.seed;
        const auto result = core::runChannel(run);
        return {{job.param("pattern"), result.symbol_error,
                 result.capacity,
                 static_cast<double>(result.backoffs)}};
    };
    const auto serial = runner::runSweep(spec, 1);
    const auto parallel = runner::runSweep(spec, 4);
    EXPECT_EQ(serial.rows, parallel.rows);
}

// ------------------------------------------------------------ figures
// Registry-wide coverage (entry count, smoke-spec bounds, ported-
// figure determinism) lives in tests/test_figures.cc; this file keeps
// the headline lookup contract only.

TEST(Figures, RegistryExposesHeadlineFigures)
{
    for (const char *name :
         {"latency", "capacity", "threshold", "fingerprint",
          "mitigation"}) {
        const auto *figure = runner::findFigure(name);
        ASSERT_NE(figure, nullptr) << name;
        EXPECT_FALSE(figure->csv_name.empty());
        EXPECT_NE(figure->csv_name.find("fig_"), std::string::npos);
    }
    EXPECT_EQ(runner::findFigure("nope"), nullptr);
}

// -------------------------------------------------------------- flags

TEST(Flags, ParsesTypedFlagsAndEqualsSyntax)
{
    std::uint32_t n = 1;
    double x = 0;
    bool flag = false;
    std::string s;
    runner::FlagParser parser;
    parser.addUint("n", &n, "");
    parser.addDouble("x", &x, "");
    parser.addBool("b", &flag, "");
    parser.addString("s", &s, "");
    const char *argv[] = {"--n", "42", "--x=2.5", "--b", "--s", "hi"};
    std::string error;
    ASSERT_TRUE(parser.parse(6, const_cast<char **>(argv), &error))
        << error;
    EXPECT_EQ(n, 42u);
    EXPECT_EQ(x, 2.5);
    EXPECT_TRUE(flag);
    EXPECT_EQ(s, "hi");
}

TEST(Flags, RejectsBadInputInsteadOfFallingBack)
{
    std::uint32_t n = 7;
    runner::FlagParser parser;
    parser.addUint("n", &n, "");
    std::string error;

    const char *unknown[] = {"--m", "3"};
    EXPECT_FALSE(parser.parse(2, const_cast<char **>(unknown), &error));

    const char *malformed[] = {"--n", "12x"};
    EXPECT_FALSE(parser.parse(2, const_cast<char **>(malformed),
                              &error));

    const char *negative[] = {"--n", "-3"};
    EXPECT_FALSE(parser.parse(2, const_cast<char **>(negative),
                              &error));

    const char *missing[] = {"--n"};
    EXPECT_FALSE(parser.parse(1, const_cast<char **>(missing), &error));

    const char *positional[] = {"stray"};
    EXPECT_FALSE(parser.parse(1, const_cast<char **>(positional),
                              &error));

    const char *overflow[] = {"--n", "4294967296"};
    EXPECT_FALSE(parser.parse(2, const_cast<char **>(overflow),
                              &error));
}

} // namespace
