/** @file DramChannel timing-rule tests (the JEDEC constraints). */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace {

using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramChannel;
using leaky::dram::DramConfig;
using leaky::dram::RowStatus;
using leaky::sim::Tick;

class DramChannelTest : public ::testing::Test
{
  protected:
    DramChannelTest() : cfg_(DramConfig::ddr5Paper()), chan_(cfg_) {}

    Address
    addr(std::uint32_t bg, std::uint32_t bank, std::uint32_t row,
         std::uint32_t rank = 0) const
    {
        Address a;
        a.rank = rank;
        a.bankgroup = bg;
        a.bank = bank;
        a.row = row;
        return a;
    }

    DramConfig cfg_;
    DramChannel chan_;
};

TEST_F(DramChannelTest, BanksStartClosed)
{
    EXPECT_EQ(chan_.openRow(addr(0, 0, 0)), DramChannel::kNoRow);
    EXPECT_EQ(chan_.rowStatus(addr(0, 0, 5)), RowStatus::kEmpty);
    EXPECT_TRUE(chan_.allBanksClosed(0));
    EXPECT_TRUE(chan_.allBanksClosed(1));
}

TEST_F(DramChannelTest, ActOpensRowAndClassifiesStatus)
{
    chan_.issue(Command::kAct, addr(0, 0, 42), 0);
    EXPECT_EQ(chan_.openRow(addr(0, 0, 0)), 42);
    EXPECT_EQ(chan_.rowStatus(addr(0, 0, 42)), RowStatus::kHit);
    EXPECT_EQ(chan_.rowStatus(addr(0, 0, 43)), RowStatus::kConflict);
    EXPECT_FALSE(chan_.allBanksClosed(0));
}

TEST_F(DramChannelTest, ReadWaitsForTrcd)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 1000);
    EXPECT_EQ(chan_.earliestIssue(Command::kRd, addr(0, 0, 1)),
              1000 + cfg_.timing.tRCD);
}

TEST_F(DramChannelTest, PrechargeWaitsForTras)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    EXPECT_EQ(chan_.earliestIssue(Command::kPre, addr(0, 0, 1)),
              cfg_.timing.tRAS);
}

TEST_F(DramChannelTest, SameBankActToActWaitsForTrc)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    const Tick pre_at = cfg_.timing.tRAS;
    chan_.issue(Command::kPre, addr(0, 0, 1), pre_at);
    const Tick earliest = chan_.earliestIssue(Command::kAct,
                                              addr(0, 0, 2));
    EXPECT_GE(earliest, cfg_.timing.tRC);
    EXPECT_GE(earliest, pre_at + cfg_.timing.tRP);
}

TEST_F(DramChannelTest, SameGroupActUsesLongRrd)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(0, 1, 1)),
              cfg_.timing.tRRD_L);
    // Different bank group: short tRRD.
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(1, 0, 1)),
              cfg_.timing.tRRD_S);
}

TEST_F(DramChannelTest, FourActivateWindowLimitsFifthAct)
{
    Tick t = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        const Address a = addr(i, 0, 1);
        t = std::max(t, chan_.earliestIssue(Command::kAct, a));
        chan_.issue(Command::kAct, a, t);
    }
    // The 5th ACT must respect tFAW from the 1st.
    const Tick first_act = 0;
    EXPECT_GE(chan_.earliestIssue(Command::kAct, addr(4, 0, 1)),
              first_act + cfg_.timing.tFAW);
}

TEST_F(DramChannelTest, ReadDataReturnsAfterClPlusBurst)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    const Tick rd_at = cfg_.timing.tRCD;
    const Tick done = chan_.issue(Command::kRd, addr(0, 0, 1), rd_at);
    EXPECT_EQ(done, rd_at + cfg_.timing.tCL + cfg_.timing.tBURST);
}

TEST_F(DramChannelTest, WriteDelaysPrechargeByWriteRecovery)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    const Tick wr_at = cfg_.timing.tRCD;
    chan_.issue(Command::kWr, addr(0, 0, 1), wr_at);
    const Tick burst_end = wr_at + cfg_.timing.tCWL + cfg_.timing.tBURST;
    EXPECT_GE(chan_.earliestIssue(Command::kPre, addr(0, 0, 1)),
              burst_end + cfg_.timing.tWR);
}

TEST_F(DramChannelTest, RefreshBlocksRankForTrfc)
{
    Address rank0;
    const Tick end = chan_.issue(Command::kRef, rank0, 0);
    EXPECT_EQ(end, cfg_.timing.tRFC);
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(3, 2, 9)),
              cfg_.timing.tRFC);
    // The other rank is unaffected.
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(3, 2, 9, 1)), 0u);
}

TEST_F(DramChannelTest, RefreshRequiresClosedBanks)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    Address rank0;
    // An open bank makes REF unissuable: its earliest-issue time is
    // pushed to "never", so the timing assertion trips.
    EXPECT_EQ(chan_.earliestIssue(Command::kRef, rank0),
              leaky::sim::kTickMax);
    EXPECT_DEATH(chan_.issue(Command::kRef, rank0, cfg_.timing.tRFC * 2),
                 "violates timing|REF with open banks");
}

TEST_F(DramChannelTest, PreAllClosesEveryOpenBank)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    Tick t = chan_.earliestIssue(Command::kAct, addr(5, 3, 7));
    chan_.issue(Command::kAct, addr(5, 3, 7), t);
    Address rank0;
    t = chan_.earliestIssue(Command::kPreAll, rank0);
    chan_.issue(Command::kPreAll, rank0, t);
    EXPECT_TRUE(chan_.allBanksClosed(0));
}

TEST_F(DramChannelTest, RfmSameBankBlocksBankInAllGroups)
{
    Address target;
    target.bank = 2;
    const Tick end = chan_.issue(Command::kRfmSameBank, target, 0);
    EXPECT_EQ(end, cfg_.timing.tRFM);
    for (std::uint32_t bg = 0; bg < cfg_.org.bankgroups; ++bg) {
        EXPECT_GE(chan_.earliestIssue(Command::kAct, addr(bg, 2, 1)),
                  cfg_.timing.tRFM);
    }
    // Other bank indices proceed immediately.
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(0, 1, 1)), 0u);
}

TEST_F(DramChannelTest, RfmOneBankBlocksExactlyOneBank)
{
    Address target;
    target.bankgroup = 3;
    target.bank = 1;
    chan_.issue(Command::kRfmOneBank, target, 0, 305'000);
    EXPECT_GE(chan_.earliestIssue(Command::kAct, addr(3, 1, 1)),
              305'000u);
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(3, 2, 1)), 0u);
    EXPECT_EQ(chan_.earliestIssue(Command::kAct, addr(2, 1, 1)), 0u);
}

TEST_F(DramChannelTest, RfmLatencyOverrideApplies)
{
    Address rank0;
    const Tick end = chan_.issue(Command::kRfmAll, rank0, 0, 123'000);
    EXPECT_EQ(end, 123'000u);
}

TEST_F(DramChannelTest, CommandCountsAccumulate)
{
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    chan_.issue(Command::kRd, addr(0, 0, 1), cfg_.timing.tRCD);
    EXPECT_EQ(chan_.commandCount(Command::kAct), 1u);
    EXPECT_EQ(chan_.commandCount(Command::kRd), 1u);
    EXPECT_EQ(chan_.commandCount(Command::kWr), 0u);
}

TEST_F(DramChannelTest, TimingViolationPanics)
{
#ifndef LEAKY_DCHECKS_ENABLED
    GTEST_SKIP() << "timing re-verification needs -DLEAKY_DCHECKS=ON";
#else
    chan_.issue(Command::kAct, addr(0, 0, 1), 0);
    EXPECT_DEATH(chan_.issue(Command::kRd, addr(0, 0, 1), 1),
                 "violates timing");
#endif
}

/** Hook observation: every ACT/PRE is reported with the right row. */
class RecordingHooks final : public leaky::dram::DeviceHooks
{
  public:
    void
    onActivate(const Address &a, Tick) override
    {
        activates.push_back(a.row);
    }
    void
    onPrecharge(const Address &a, Tick) override
    {
        precharges.push_back(a.row);
    }
    void onRefresh(std::uint32_t, Tick) override { refreshes += 1; }
    void
    onRfm(Command, const Address &, bool, Tick) override
    {
        rfms += 1;
    }

    std::vector<std::uint32_t> activates;
    std::vector<std::uint32_t> precharges;
    int refreshes = 0;
    int rfms = 0;
};

TEST_F(DramChannelTest, HooksSeeCommandsWithClosingRow)
{
    RecordingHooks hooks;
    chan_.setHooks(&hooks);
    chan_.issue(Command::kAct, addr(0, 0, 7), 0);
    chan_.issue(Command::kPre, addr(0, 0, 99), cfg_.timing.tRAS);
    ASSERT_EQ(hooks.activates.size(), 1u);
    EXPECT_EQ(hooks.activates[0], 7u);
    // The precharge hook reports the row that was actually open.
    ASSERT_EQ(hooks.precharges.size(), 1u);
    EXPECT_EQ(hooks.precharges[0], 7u);
}

} // namespace
