/** @file Property/fuzz tests of the DRAM timing engine: thousands of
 *  random legal command sequences, checking structural invariants.
 *  The channel's own timing assertions act as the oracle -- any
 *  sequencing bug panics. */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/channel.hh"
#include "sim/rng.hh"

namespace {

using leaky::dram::Address;
using leaky::dram::Command;
using leaky::dram::DramChannel;
using leaky::dram::DramConfig;
using leaky::dram::RowStatus;
using leaky::sim::Rng;
using leaky::sim::Tick;

/** Drives random legal command streams against one channel. */
class RandomCommandDriver
{
  public:
    RandomCommandDriver(DramChannel &chan, std::uint64_t seed)
        : chan_(chan), cfg_(chan.config()), rng_(seed)
    {
    }

    /** Issue one random legal command; returns the command issued. */
    Command
    step()
    {
        Address a;
        a.rank = static_cast<std::uint32_t>(rng_.below(cfg_.org.ranks));
        a.bankgroup = static_cast<std::uint32_t>(
            rng_.below(cfg_.org.bankgroups));
        a.bank = static_cast<std::uint32_t>(
            rng_.below(cfg_.org.banks_per_group));
        a.row = static_cast<std::uint32_t>(rng_.below(256));

        // Choose a command legal for the current bank state.
        const auto open = chan_.openRow(a);
        Command cmd;
        if (open == DramChannel::kNoRow) {
            cmd = pick({Command::kAct, Command::kRef, Command::kRfmAll,
                        Command::kRfmSameBank, Command::kRfmOneBank});
            // Rank-scope commands need the whole scope closed.
            if ((cmd == Command::kRef || cmd == Command::kRfmAll) &&
                !chan_.allBanksClosed(a.rank)) {
                cmd = Command::kAct;
            }
            if (cmd == Command::kRfmSameBank &&
                !chan_.sameBankClosed(a.rank, a.bank)) {
                cmd = Command::kAct;
            }
        } else {
            a.row = static_cast<std::uint32_t>(open); // Hit the open row.
            cmd = pick({Command::kRd, Command::kWr, Command::kPre,
                        Command::kRd});
        }

        const Tick earliest = chan_.earliestIssue(cmd, a);
        EXPECT_NE(earliest, leaky::sim::kTickMax)
            << leaky::dram::commandName(cmd) << " unissuable";
        now_ = std::max(now_ + 1, earliest + rng_.below(5'000));
        chan_.issue(cmd, a, now_);
        return cmd;
    }

    Tick now() const { return now_; }

  private:
    Command
    pick(std::initializer_list<Command> options)
    {
        const auto idx = rng_.below(options.size());
        return *(options.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    DramChannel &chan_;
    DramConfig cfg_;
    Rng rng_;
    Tick now_ = 0;
};

/** Fuzz across seeds: no random legal stream may violate timing. */
class DramFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramFuzz, RandomLegalStreamsNeverViolateTiming)
{
    DramChannel chan(DramConfig::ddr5Paper());
    RandomCommandDriver driver(chan, GetParam());
    std::uint64_t issued = 0;
    for (int i = 0; i < 3000; ++i) {
        driver.step();
        issued += 1;
    }
    // The per-kind counters account for every issue.
    std::uint64_t counted = 0;
    for (std::size_t k = 0; k < leaky::dram::kNumCommands; ++k)
        counted += chan.commandCount(static_cast<Command>(k));
    EXPECT_EQ(counted, issued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramFuzz,
                         ::testing::Values(1, 7, 42, 1337, 9001, 31415,
                                           271828, 1618033));

TEST(DramInvariants, EarliestIssueIsMonotoneUnderIdleness)
{
    // Waiting longer never makes a command illegal: earliestIssue is a
    // fixed point once reached.
    DramChannel chan(DramConfig::ddr5Paper());
    Address a;
    a.row = 3;
    chan.issue(Command::kAct, a, 0);
    const Tick t1 = chan.earliestIssue(Command::kRd, a);
    const Tick t2 = chan.earliestIssue(Command::kRd, a);
    EXPECT_EQ(t1, t2); // Query has no side effects.
    chan.issue(Command::kRd, a, t1 + 50'000); // Late issue is legal.
}

TEST(DramInvariants, RowStatusConsistentWithOpenRow)
{
    DramChannel chan(DramConfig::ddr5Paper());
    Rng rng(5);
    Address a;
    Tick now = 0;
    for (int i = 0; i < 500; ++i) {
        a.bankgroup = static_cast<std::uint32_t>(rng.below(8));
        a.bank = static_cast<std::uint32_t>(rng.below(4));
        a.row = static_cast<std::uint32_t>(rng.below(64));
        const auto open = chan.openRow(a);
        const auto status = chan.rowStatus(a);
        if (open == DramChannel::kNoRow) {
            EXPECT_EQ(status, RowStatus::kEmpty);
            now = std::max(now, chan.earliestIssue(Command::kAct, a));
            chan.issue(Command::kAct, a, now);
        } else if (open == static_cast<std::int32_t>(a.row)) {
            EXPECT_EQ(status, RowStatus::kHit);
            now = std::max(now, chan.earliestIssue(Command::kPre, a));
            chan.issue(Command::kPre, a, now);
        } else {
            EXPECT_EQ(status, RowStatus::kConflict);
            now = std::max(now, chan.earliestIssue(Command::kPre, a));
            chan.issue(Command::kPre, a, now);
        }
    }
}

TEST(DramInvariants, RefreshLeavesAllBanksClosedAndServiceable)
{
    DramChannel chan(DramConfig::ddr5Paper());
    Address rank0;
    const Tick end = chan.issue(Command::kRef, rank0, 0);
    EXPECT_TRUE(chan.allBanksClosed(0));
    // Right after the window, any bank activates normally.
    Address a;
    a.bankgroup = 3;
    a.bank = 1;
    a.row = 9;
    EXPECT_EQ(chan.earliestIssue(Command::kAct, a), end);
    chan.issue(Command::kAct, a, end);
    EXPECT_EQ(chan.rowStatus(a), RowStatus::kHit);
}

} // namespace
