/** @file MemoryController integration tests: latencies, refresh
 *  postponing, ABO back-off protocol, RFM tasks, write draining. */

#include <gtest/gtest.h>

#include <optional>

#include "ctrl/controller.hh"
#include "defense/prac.hh"
#include "defense/prfm.hh"
#include "sim/event_queue.hh"
#include "testing_alloc_counter.hh"

namespace {

using leaky::ctrl::CtrlConfig;
using leaky::ctrl::MemoryController;
using leaky::ctrl::PreventiveEvent;
using leaky::ctrl::Request;
using leaky::defense::PracConfig;
using leaky::defense::PracDefense;
using leaky::defense::PrfmConfig;
using leaky::defense::PrfmDefense;
using leaky::dram::Address;
using leaky::sim::EventQueue;
using leaky::sim::Tick;

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest() : ctrl_(eq_, CtrlConfig{}) {}

    Address
    addr(std::uint32_t bg, std::uint32_t bank, std::uint32_t row,
         std::uint32_t col = 0) const
    {
        Address a;
        a.bankgroup = bg;
        a.bank = bank;
        a.row = row;
        a.column = col;
        return a;
    }

    /** Enqueue a read and return its completion tick when served.
     *  Steps in small increments so consecutive reads stay close
     *  together in time (no intervening refresh). */
    std::optional<Tick>
    readAndWait(const Address &a, Tick run_for = 2'000'000)
    {
        std::optional<Tick> done;
        Request req;
        req.type = Request::Type::kRead;
        req.addr = a;
        req.on_complete = [&done](Tick t) { done = t; };
        EXPECT_TRUE(ctrl_.enqueue(req));
        const Tick deadline = eq_.now() + run_for;
        while (!done && eq_.now() < deadline)
            eq_.runUntil(eq_.now() + 1'000);
        return done;
    }

    EventQueue eq_;
    MemoryController ctrl_;
};

TEST_F(ControllerTest, ColdReadTakesActPlusClPlusBurst)
{
    const Tick start = eq_.now();
    const auto done = readAndWait(addr(0, 0, 10));
    ASSERT_TRUE(done.has_value());
    const auto &t = ctrl_.config().dram.timing;
    // ACT + tRCD + tCL + tBURST (plus the command-gap slack).
    EXPECT_GE(*done - start, t.tRCD + t.tCL + t.tBURST);
    EXPECT_LE(*done - start, t.tRCD + t.tCL + t.tBURST + 10'000);
    EXPECT_EQ(ctrl_.stats().reads_served, 1u);
    EXPECT_EQ(ctrl_.stats().row_misses, 1u);
}

TEST_F(ControllerTest, RowHitIsFasterThanConflict)
{
    const auto first = readAndWait(addr(0, 0, 10));
    ASSERT_TRUE(first.has_value());
    const Tick hit_start = eq_.now();
    const auto hit = readAndWait(addr(0, 0, 10, 1));
    ASSERT_TRUE(hit.has_value());
    const Tick hit_latency = *hit - hit_start;

    const Tick conflict_start = eq_.now();
    const auto conflict = readAndWait(addr(0, 0, 99));
    ASSERT_TRUE(conflict.has_value());
    const Tick conflict_latency = *conflict - conflict_start;

    EXPECT_LT(hit_latency, conflict_latency);
    EXPECT_EQ(ctrl_.stats().row_hits, 1u);
    EXPECT_EQ(ctrl_.stats().row_conflicts, 1u);
}

TEST_F(ControllerTest, WritesCompleteOnAcceptance)
{
    bool completed = false;
    Request req;
    req.type = Request::Type::kWrite;
    req.addr = addr(0, 0, 10);
    req.on_complete = [&completed](Tick) {
        completed = true;
    };
    ASSERT_TRUE(ctrl_.enqueue(req));
    eq_.runUntil(eq_.now() + 1000);
    EXPECT_TRUE(completed);
}

TEST_F(ControllerTest, QueueFullRejectsRequest)
{
    for (std::uint32_t i = 0; i < ctrl_.config().read_queue_depth; ++i) {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(i % 8, i % 4, i);
        EXPECT_TRUE(ctrl_.enqueue(req));
    }
    Request extra;
    extra.type = Request::Type::kRead;
    extra.addr = addr(0, 0, 12345);
    EXPECT_FALSE(ctrl_.enqueue(extra));
}

TEST_F(ControllerTest, IdleSystemRefreshesEveryTrefi)
{
    eq_.runUntil(20 * ctrl_.config().dram.timing.tREFI);
    // ~20 intervals elapsed; allow slack for drain timing.
    EXPECT_GE(ctrl_.stats().refreshes, 18u);
    EXPECT_LE(ctrl_.stats().refreshes, 21u);
}

TEST_F(ControllerTest, BusyTrafficPostponesThenDoublesRefresh)
{
    // Dependent-load loop that keeps the controller busy: reissue on
    // completion, alternating rows.
    std::uint64_t served = 0;
    std::function<void()> next = [&] {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(0, 0, served % 2 ? 10 : 20);
        req.on_complete = [&](Tick) {
            served += 1;
            eq_.scheduleAfter(15'000, next);
        };
        ctrl_.enqueue(req);
    };

    std::vector<std::pair<Tick, Tick>> refreshes;
    ctrl_.setListener([&](PreventiveEvent ev, Tick start, Tick end,
                          const Address &) {
        if (ev == PreventiveEvent::kRefresh)
            refreshes.emplace_back(start, end);
    });

    next();
    const auto trefi = ctrl_.config().dram.timing.tREFI;
    eq_.runUntil(8 * trefi);

    // Refreshes come in back-to-back pairs roughly every 2 x tREFI.
    ASSERT_GE(refreshes.size(), 2u);
    bool found_pair = false;
    for (std::size_t i = 1; i < refreshes.size(); ++i) {
        if (refreshes[i].first - refreshes[i - 1].first <
            ctrl_.config().dram.timing.tRFC + 50'000) {
            found_pair = true;
        }
    }
    EXPECT_TRUE(found_pair) << "no back-to-back refresh pair observed";
}

class ControllerPracTest : public ControllerTest
{
  protected:
    ControllerPracTest()
    {
        PracConfig cfg;
        cfg.nbo = 16; // Small threshold: back-offs come quickly.
        cfg.rfms_per_backoff = 4;
        prac_ = std::make_unique<PracDefense>(ctrl_.config().dram, cfg,
                                              &ctrl_);
        ctrl_.setDeviceHooks(prac_.get());
    }

    std::unique_ptr<PracDefense> prac_;
};

TEST_F(ControllerPracTest, HammeringTriggersBackoffProtocol)
{
    std::vector<std::pair<Tick, Tick>> backoffs;
    ctrl_.setListener([&](PreventiveEvent ev, Tick start, Tick end,
                          const Address &) {
        if (ev == PreventiveEvent::kBackoff)
            backoffs.emplace_back(start, end);
    });

    // Alternate two rows: every access precharges the other row.
    std::uint64_t served = 0;
    std::function<void()> next = [&] {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(0, 0, served % 2 ? 100 : 200);
        req.on_complete = [&](Tick) {
            served += 1;
            if (served < 200)
                eq_.scheduleAfter(15'000, next);
        };
        ctrl_.enqueue(req);
    };
    next();
    eq_.runUntil(100 * leaky::sim::kUs);

    ASSERT_GE(backoffs.size(), 1u);
    EXPECT_EQ(ctrl_.stats().backoffs, backoffs.size());

    // The back-off window spans tABOACT plus 4 recovery RFM windows.
    const auto &t = ctrl_.config().dram.timing;
    const Tick span = backoffs[0].second - backoffs[0].first;
    EXPECT_GE(span, t.tABOACT + 4 * t.tRFM_backoff);
    EXPECT_LE(span, t.tABOACT + 4 * t.tRFM_backoff + 200'000);

    // Alert count matches controller back-off count.
    EXPECT_EQ(prac_->alertCount(), ctrl_.stats().backoffs);
}

TEST_F(ControllerPracTest, BackoffBlocksRequestsDuringRecovery)
{
    // Trigger a back-off, then measure a request issued mid-recovery.
    std::uint64_t served = 0;
    Tick backoff_start = 0;
    ctrl_.setListener([&](PreventiveEvent ev, Tick start, Tick,
                          const Address &) {
        if (ev == PreventiveEvent::kBackoff && backoff_start == 0)
            backoff_start = start;
    });
    std::function<void()> next = [&] {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(0, 0, served % 2 ? 100 : 200);
        req.on_complete = [&](Tick) {
            served += 1;
            if (backoff_start == 0)
                eq_.scheduleAfter(15'000, next);
        };
        ctrl_.enqueue(req);
    };
    next();
    eq_.runUntil(100 * leaky::sim::kUs);
    ASSERT_GT(backoff_start, 0u);

    // A fresh request right after the alert waits out the recovery.
    const Tick start = eq_.now();
    const auto done = readAndWait(addr(7, 3, 5));
    ASSERT_TRUE(done.has_value());
    EXPECT_GT(*done, start);
}

TEST_F(ControllerTest, PrfmIssuesRfmEveryTrfmActivations)
{
    PrfmConfig cfg;
    cfg.trfm = 8;
    PrfmDefense prfm(ctrl_.config().dram, cfg);
    ctrl_.setControllerDefense(&prfm);

    std::uint64_t rfms_seen = 0;
    ctrl_.setListener([&](PreventiveEvent ev, Tick, Tick,
                          const Address &) {
        if (ev == PreventiveEvent::kRfm)
            rfms_seen += 1;
    });

    std::uint64_t served = 0;
    std::function<void()> next = [&] {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(0, 0, served % 2 ? 100 : 200);
        req.on_complete = [&](Tick) {
            served += 1;
            if (served < 64)
                eq_.scheduleAfter(15'000, next);
        };
        ctrl_.enqueue(req);
    };
    next();
    eq_.runUntil(50 * leaky::sim::kUs);

    // 64 activations at TRFM=8 -> ~8 RFMs (the last may be pending).
    EXPECT_GE(rfms_seen, 6u);
    EXPECT_LE(rfms_seen, 9u);
    EXPECT_EQ(ctrl_.stats().rfms, rfms_seen);
}

TEST_F(ControllerTest, WriteDrainingServesWriteBurst)
{
    for (std::uint32_t i = 0; i < ctrl_.config().wq_drain_high; ++i) {
        Request req;
        req.type = Request::Type::kWrite;
        req.addr = addr(i % 8, i % 4, i % 32);
        ASSERT_TRUE(ctrl_.enqueue(req));
    }
    eq_.runUntil(eq_.now() + 20 * leaky::sim::kUs);
    EXPECT_GE(ctrl_.stats().writes_served,
              ctrl_.config().wq_drain_high -
                  ctrl_.config().wq_drain_low);
}

// ---------------------------------------------------------------------
// Livelock detector vs the batched-issue path. A wake-up that issues
// nothing must still count as a stall (the batching loop must not mask
// it), while legitimate same-tick batches (cmd_gap == 0) and long
// filter-blocked waits with forward-moving wake-ups must not trip.

/** A buggy defense that demands a same-tick wake-up forever without
 *  ever having work: the classic livelock the detector exists for. */
class SameTickDefense final : public leaky::ctrl::ControllerDefense
{
  public:
    void onActivate(const Address &, Tick) override {}
    std::optional<leaky::ctrl::RfmRequest> pendingRfm(Tick) override
    {
        return std::nullopt;
    }
    void onRfmIssued(const leaky::ctrl::RfmRequest &, Tick, Tick) override
    {
    }
    Tick nextEventTick(Tick now) const override { return now; }
};

TEST_F(ControllerTest, LivelockDetectorTripsOnZeroProgressSpin)
{
    // A queued request whose bank a back-off task's filter blocks, plus
    // a defense pinning the wake-up to the current tick: once nothing
    // is issuable, the controller re-wakes at one tick forever and the
    // detector must panic rather than spin silently.
    SameTickDefense defense;
    ctrl_.setControllerDefense(&defense);
    Request req;
    req.type = Request::Type::kRead;
    req.addr = addr(0, 0, 10);
    ASSERT_TRUE(ctrl_.enqueue(req));
    leaky::dram::AlertInfo info;
    info.bank_scoped = true;
    info.bank = addr(0, 0, 0);
    ctrl_.raiseAlert(info);
    EXPECT_DEATH(eq_.runUntil(10 * leaky::sim::kUs), "livelocked");
}

TEST_F(ControllerTest, SameTickBatchWithZeroGapDoesNotTrip)
{
    // cmd_gap == 0 makes a whole row-hit burst issuable at one tick;
    // the batched loop drains it in a single wake-up. Progress at an
    // unchanged tick must reset the stall counter, not trip it.
    CtrlConfig cfg;
    cfg.cmd_gap = 0;
    MemoryController ctrl(eq_, cfg);
    std::uint64_t completions = 0;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(0, 0, 10, static_cast<std::uint32_t>(i));
        req.on_complete = [&completions](Tick) { completions += 1; };
        ASSERT_TRUE(ctrl.enqueue(std::move(req)));
    }
    eq_.runUntil(eq_.now() + 2 * leaky::sim::kUs);
    EXPECT_EQ(completions, 8u);
    EXPECT_EQ(ctrl.stats().reads_served, 8u);
}

TEST_F(ControllerTest, FilterBlockedRequestWaitsWithoutTripping)
{
    // A bank back-off blocks the only queued request's bank for the
    // whole recovery burst; the wake-ups keep moving forward, so the
    // wait is legitimate and the request completes afterwards.
    leaky::dram::AlertInfo info;
    info.bank_scoped = true;
    info.bank = addr(0, 0, 0);
    ctrl_.raiseAlert(info);
    // Enter the post-window phase first: the filter only blocks new
    // activations once tAlert + tABOACT have elapsed and the recovery
    // RFMs are being slotted in.
    const auto &t = ctrl_.config().dram.timing;
    eq_.runUntil(eq_.now() + t.tAlert + t.tABOACT + 1);
    const auto done = readAndWait(addr(0, 0, 10), 20'000'000);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(ctrl_.stats().bank_backoffs, 1u);
    EXPECT_EQ(ctrl_.stats().reads_served, 1u);
}

// ---------------------------------------------------------------------
// Zero-allocation steady state: controller tick(), the scheduler scan
// and request completion must not touch the heap once every pool and
// queue has grown to its high-water mark (see testing_alloc_counter.hh).

TEST_F(ControllerTest, SteadyStateServiceDoesNotAllocate)
{
    std::uint64_t completions = 0;
    const auto read = [&](int i) {
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr(static_cast<std::uint32_t>(i) % 8,
                        (static_cast<std::uint32_t>(i) / 8) % 4,
                        static_cast<std::uint32_t>(i) % 64);
        req.on_complete = [&completions](Tick) { completions += 1; };
        return ctrl_.enqueue(std::move(req));
    };

    // Warm-up: grow the event slab, the request queues' packed mirrors
    // and the scheduler's status scratch past their high-water marks,
    // and cross at least one refresh drain. Retry rejected enqueues so
    // every request eventually lands (the queue saturates at depth).
    for (int i = 0; i < 200; ++i) {
        while (!read(i))
            eq_.runUntil(eq_.now() + 5'000);
        eq_.runUntil(eq_.now() + 5'000);
    }
    eq_.runUntil(eq_.now() + 5'000'000);
    const std::uint64_t warmed = completions;

    // Steady state: the enqueue -> scan -> issue -> complete cycle,
    // including periodic refreshes, with the heap untouched.
    const std::uint64_t before = leaky_test_heap_allocs.load();
    for (int i = 0; i < 500; ++i) {
        while (!read(i))
            eq_.runUntil(eq_.now() + 5'000);
        eq_.runUntil(eq_.now() + 5'000);
    }
    eq_.runUntil(eq_.now() + 5'000'000);
    const std::uint64_t after = leaky_test_heap_allocs.load();

    EXPECT_EQ(after, before);
    EXPECT_EQ(completions, warmed + 500);
}

} // namespace
