/** @file MappingSpec / MappingFunction / gf2 tests: the XOR-function
 *  mapping family — grammar accept/reject table, randomized invertible
 *  GF(2) round trips, non-invertible rejection, preset equivalence. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dram/mapping.hh"
#include "sim/rng.hh"

namespace {

using leaky::dram::Address;
using leaky::dram::Field;
using leaky::dram::kNumFields;
using leaky::dram::MappingFunction;
using leaky::dram::MappingPreset;
using leaky::dram::MappingSpec;
using leaky::dram::Organization;
namespace gf2 = leaky::dram::gf2;

// --------------------------------------------------------- gf2 toolkit

TEST(Gf2BitBasis, InsertReduceRank)
{
    gf2::BitBasis basis;
    EXPECT_TRUE(basis.insert(0b1100));
    EXPECT_TRUE(basis.insert(0b0110));
    EXPECT_FALSE(basis.insert(0b1010)); // = 1100 ^ 0110.
    EXPECT_EQ(basis.rank(), 2u);
    EXPECT_TRUE(basis.contains(0b1010));
    EXPECT_FALSE(basis.contains(0b1000));
    EXPECT_EQ(basis.reduce(0), 0u);
    EXPECT_FALSE(basis.insert(0));
}

TEST(Gf2BitBasis, SameSpanIsBasisIndependent)
{
    gf2::BitBasis a, b;
    a.insert(0b101);
    a.insert(0b011);
    b.insert(0b110); // = 101 ^ 011.
    b.insert(0b011);
    EXPECT_TRUE(a.sameSpan(b));
    b.insert(0b001);
    EXPECT_FALSE(a.sameSpan(b));
}

TEST(Gf2Annihilator, OrthogonalComplementOfTheSpan)
{
    leaky::sim::Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint32_t nbits = 4 + trial % 16;
        gf2::BitBasis basis;
        for (int i = 0; i < 6; ++i)
            basis.insert(rng.below(std::uint64_t{1} << nbits));
        const auto ann = gf2::annihilator(basis, nbits);
        EXPECT_EQ(ann.size(), nbits - basis.rank());
        for (std::uint64_t m : ann)
            for (std::uint64_t v : basis.rows())
                EXPECT_EQ(__builtin_popcountll(m & v) & 1, 0)
                    << "mask not orthogonal to span";
        // The annihilator masks are linearly independent.
        gf2::BitBasis check;
        for (std::uint64_t m : ann)
            EXPECT_TRUE(check.insert(m));
    }
}

// ------------------------------------------------- MappingSpec grammar

TEST(MappingSpec, ParseAcceptTable)
{
    // (input, canonical spelling) — pinned: these strings are the CLI
    // and CSV surface, so regressions here break user configs.
    const std::pair<const char *, const char *> accept[] = {
        {"row-interleaved", "row-interleaved"},
        {"bank-first", "bank-first"},
        {"channel-last", "channel-last"},
        // A field order equal to a preset canonicalizes onto it.
        {"order:col,bg,ba,ra,row,ch", "row-interleaved"},
        {"order:bg,ba,ra,col,row,ch", "bank-first"},
        {"order:ba,col,ra,bg,row,ch", "order:ba,col,ra,bg,row,ch"},
        // Ranges expand; terms keep their output-bit (LSB-first) order.
        {"xor:col=6:8", "xor:col=6,7,8"},
        {"xor:bg=13+19,14,15", "xor:bg=13+19,14,15"},
        // Field order in the text is canonical, not as written.
        {"xor:row=19:20;col=6:7", "xor:col=6,7;row=19,20"},
        // An omitted or empty field is zero-width.
        {"xor:ch=;col=6", "xor:col=6"},
    };
    for (const auto &[input, canonical] : accept) {
        MappingSpec spec;
        std::string error;
        ASSERT_TRUE(MappingSpec::tryParse(input, &spec, &error))
            << input << ": " << error;
        EXPECT_EQ(spec.str(), canonical) << input;
        // Canonical spellings are stable round trips.
        MappingSpec again;
        ASSERT_TRUE(MappingSpec::tryParse(spec.str(), &again, &error))
            << spec.str() << ": " << error;
        EXPECT_EQ(spec, again) << input;
    }
}

TEST(MappingSpec, ParseRejectTable)
{
    // (input, error fragment) — the messages are user-facing CLI
    // output; pin the discriminating fragment of each.
    const std::pair<const char *, const char *> reject[] = {
        {"bogus", "unknown mapping"},
        {"", "unknown mapping"},
        {"order:col,bg", "needs all 6"},
        {"order:col,col,ba,ra,row,ch", "duplicate field"},
        {"order:col,bg,ba,ra,row,zz", "unknown field"},
        {"xor:", "empty xor: spec"},
        {"xor:zz=6", "unknown field"},
        {"xor:col", "no '='"},
        {"xor:col=6;col=7", "duplicate field"},
        {"xor:col=5", "cache line"},
        {"xor:col=64", "out of the 64-bit address range"},
        {"xor:col=abc", "expected a physical bit index"},
        {"xor:col=6+6", "appears twice"},
        {"xor:col=12:6", "descending range"},
        {"xor:col=6,", "expected a physical bit index"},
    };
    for (const auto &[input, fragment] : reject) {
        MappingSpec spec;
        std::string error;
        EXPECT_FALSE(MappingSpec::tryParse(input, &spec, &error))
            << input;
        EXPECT_NE(error.find(fragment), std::string::npos)
            << input << " -> \"" << error << '"';
    }
}

TEST(MappingSpec, EqualityIsCanonicalText)
{
    const MappingSpec preset(MappingPreset::kRowInterleaved);
    EXPECT_EQ(preset, MappingSpec::parse("order:col,bg,ba,ra,row,ch"));
    // A preset never equals the xor: spelling of the same function —
    // sweep axes distinguish the two deliberately.
    const MappingFunction fn(Organization{}, 1, preset);
    EXPECT_NE(preset, fn.asXorSpec());
    EXPECT_EQ(fn.asXorSpec(),
              MappingSpec::parse(fn.asXorSpec().str()));
}

// --------------------------------------------------- MappingFunction

TEST(MappingFunction, PresetsMatchTheirXorRespelling)
{
    Organization org;
    for (MappingPreset preset : leaky::dram::kAllMappingPresets) {
        for (std::uint32_t channels : {1u, 2u}) {
            const MappingFunction fn(org, channels, preset);
            // Every preset is a pure bit permutation...
            for (std::size_t i = 0; i < kNumFields; ++i) {
                const auto f = static_cast<Field>(i);
                for (std::uint32_t j = 0; j < fn.fieldWidth(f); ++j)
                    EXPECT_EQ(
                        __builtin_popcountll(fn.outputMask(f, j)), 1);
            }
            // ...and its explicit xor: respelling decodes identically.
            const MappingFunction xor_fn(org, channels, fn.asXorSpec());
            leaky::sim::Rng rng(17 * channels);
            for (int i = 0; i < 200; ++i) {
                const std::uint64_t line =
                    rng.below(std::uint64_t{1} << fn.totalBits());
                const Address a = fn.decodeLine(line);
                const Address b = xor_fn.decodeLine(line);
                EXPECT_TRUE(a.sameRow(b));
                EXPECT_EQ(a.column, b.column);
                EXPECT_EQ(a.channel, b.channel);
            }
        }
    }
}

/** Apply @p ops random GF(2) row operations (add output row k to
 *  output row j) to a permutation matrix — each op is elementary, so
 *  the result is a uniform-ish random sample of invertible mappings
 *  reachable from the preset. */
std::array<std::vector<std::uint64_t>, kNumFields>
randomInvertibleMasks(const MappingFunction &base, leaky::sim::Rng &rng,
                      int ops)
{
    std::array<std::vector<std::uint64_t>, kNumFields> masks{};
    for (std::size_t i = 0; i < kNumFields; ++i)
        masks[i] = base.fieldMasks(static_cast<Field>(i));
    std::vector<std::pair<std::size_t, std::size_t>> rows;
    for (std::size_t i = 0; i < kNumFields; ++i)
        for (std::size_t j = 0; j < masks[i].size(); ++j)
            rows.push_back({i, j});
    for (int op = 0; op < ops; ++op) {
        const auto &dst = rows[rng.below(rows.size())];
        const auto &src = rows[rng.below(rows.size())];
        if (dst == src)
            continue;
        masks[dst.first][dst.second] ^= masks[src.first][src.second];
    }
    return masks;
}

TEST(MappingFunction, RandomInvertibleMatricesRoundTrip)
{
    Organization org;
    leaky::sim::Rng rng(2026);
    const MappingFunction base(org, 2, MappingPreset::kRowInterleaved);
    for (int trial = 0; trial < 20; ++trial) {
        const auto masks = randomInvertibleMasks(base, rng, 40);
        const MappingFunction fn(org, 2,
                                 MappingSpec::fromMasks(masks));
        for (int i = 0; i < 100; ++i) {
            // decode(compose(x)) == x...
            Address addr;
            addr.channel = static_cast<std::uint32_t>(rng.below(2));
            addr.rank =
                static_cast<std::uint32_t>(rng.below(org.ranks));
            addr.bankgroup =
                static_cast<std::uint32_t>(rng.below(org.bankgroups));
            addr.bank = static_cast<std::uint32_t>(
                rng.below(org.banks_per_group));
            addr.row = static_cast<std::uint32_t>(rng.below(org.rows));
            addr.column =
                static_cast<std::uint32_t>(rng.below(org.columns));
            const Address back = fn.decode(fn.compose(addr));
            EXPECT_TRUE(back.sameRow(addr));
            EXPECT_EQ(back.column, addr.column);
            EXPECT_EQ(back.channel, addr.channel);
            // ...and compose(decode(line)) == line.
            const std::uint64_t line =
                rng.below(std::uint64_t{1} << fn.totalBits());
            EXPECT_EQ(fn.composeLine(fn.decodeLine(line)), line);
        }
    }
}

TEST(MappingFunctionDeath, RejectsNonInvertibleSpecs)
{
    Organization org;
    // ra reuses physical bit 13 (bg's) and line bit 18 goes unused:
    // two physical lines would alias onto one DRAM cell.
    EXPECT_DEATH(
        MappingFunction(
            org, 1,
            MappingSpec::parse(
                "xor:col=6:12;bg=13,14,15;ba=16,17;ra=13;row=19:35")),
        "not invertible");
}

TEST(MappingFunctionDeath, RejectsWrongFieldWidths)
{
    Organization org; // bankgroups = 8 needs 3 bg output bits.
    EXPECT_DEATH(
        MappingFunction(
            org, 1,
            MappingSpec::parse(
                "xor:col=6:12;bg=13,14;ba=16,17;ra=18;row=19:35")),
        "defines 2 output bits");
}

TEST(MappingFunctionDeath, RejectsInputBitsOutsideTheMappedRange)
{
    Organization org; // 1 channel: physical bits 6..35 are mapped.
    EXPECT_DEATH(
        MappingFunction(
            org, 1,
            MappingSpec::parse(
                "xor:col=6:12;bg=13,14,40;ba=16,17;ra=18;row=19:35")),
        "outside the mapped range");
}

} // namespace
