/** @file Rng unit and property tests: determinism and uniformity. */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hh"

namespace {

using leaky::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ForkIsIndependentButDeterministic)
{
    Rng parent_a(5);
    Rng parent_b(5);
    Rng child_a = parent_a.fork();
    Rng child_b = parent_b.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child_a(), child_b());
}

/** Property sweep: below(bound) covers the full range for small bounds. */
class RngCoverage : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngCoverage, CoversAllValues)
{
    const auto bound = GetParam();
    Rng rng(bound * 7919 + 3);
    std::vector<bool> seen(bound, false);
    for (std::uint64_t i = 0; i < bound * 200; ++i)
        seen[rng.below(bound)] = true;
    for (std::uint64_t v = 0; v < bound; ++v)
        EXPECT_TRUE(seen[v]) << "value " << v << " never drawn";
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngCoverage,
                         ::testing::Values(2, 3, 5, 8, 13, 32));

// The shared seed fan-out must not collide across neighbouring
// (base, index) pairs: an additive `base + index` stream makes
// (base, 1) == (base + 1, 0), correlating sweep-neighbour systems'
// per-channel defenses.
TEST(SeedFanout, NeighbouringBasesAndIndicesAreIndependent)
{
    using leaky::sim::seedFanout;
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t base = 1; base <= 8; ++base)
        for (std::uint64_t ch = 0; ch < 8; ++ch)
            seeds.push_back(seedFanout(base, ch));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end())
        << "seed fan-out collided on neighbouring (base, index) pairs";
    // Never the "unseeded" sentinel, and stable across calls.
    EXPECT_NE(seedFanout(0, 0), 0u);
    EXPECT_EQ(seedFanout(42, 3), seedFanout(42, 3));
}

} // namespace
